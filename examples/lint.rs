//! Static analysis with coded diagnostics: lint a deliberately broken
//! document, render the findings rustc-style against its source text, then
//! show the engine's lint gate refusing the document at admission — and
//! admitting it anyway once the offending code is downgraded to `allow`,
//! whereupon the solver fails exactly where it always did.
//!
//! Run with `cargo run --example lint`.

use std::sync::Arc;

use cmif::core::diag::{codes, SeverityConfig};
use cmif::format::parse_document_unvalidated;
use cmif::lint::{admission_gate, Linter};
use cmif::scheduler::{Engine, EngineConfig, JitterModel, LintPolicy, SchedulerError, Submission};
use cmif::Result;

/// A short bulletin with a little of everything wrong: an undefined style,
/// an undeclared channel, an external node whose data has no descriptor —
/// and a pair of explicit arcs that chase each other one second into the
/// future, forever. (The two captions sharing the caption channel would
/// also warn as double-booked, but only once the cycle is fixed: a
/// diverging graph has no fixpoint times to compare.)
const BROKEN: &str = r#"(cmif
  (channels
    (channel audio audio)
    (channel caption text))
  (seq (name bulletin)
    (par (name story)
      (ext (name voice) (channel audio) (file "story-audio")
        (sync_arc begin must begin "../line" 1000 ms "" 0 inf))
      (imm (name line) (channel caption) (duration 3000)
        (style headline)
        (sync_arc begin must begin "../voice" 1000 ms "" 0 inf)
        (data "Van Gogh recovered"))
      (imm (name lower-third) (channel caption) (duration 2000)
        (data "Amsterdam"))
      (imm (name ticker) (channel wire) (duration 2000)
        (data "more at eleven")))))
"#;

fn main() -> Result<()> {
    let doc = parse_document_unvalidated(BROKEN)?;

    // 1. Lint and render: every finding, graded by the registry defaults,
    //    underlining the offending source bytes via the parser's SourceMap.
    let linter = Linter::new();
    let report = linter.check(&doc);
    println!(
        "=== lint report ({} findings) ===\n",
        report.diagnostics().len()
    );
    println!("{}", report.render(doc.sources.as_deref()));

    // 2. The same linter as an engine admission gate: deny-severity findings
    //    refuse the document before it costs a worker.
    let engine = Engine::new(EngineConfig {
        workers: 1,
        lint_gate: Some(admission_gate(linter)),
        ..EngineConfig::default()
    });
    let submission = || Submission::new(Arc::new(doc.clone()), JitterModel::ideal());

    match engine.admit(submission()) {
        Err(SchedulerError::LintRejected { diagnostics }) => {
            let denies = diagnostics.iter().filter(|d| d.is_deny()).count();
            println!(
                "=== admission ===\n\nrefused at the gate: {denies} deny finding(s), \
                 zero workers spent"
            );
        }
        other => println!("unexpected admission outcome: {other:?}"),
    }

    // 3. Downgrade every gating code to `allow` for this one submission: the
    //    document now reaches the solver, which diverges on the arc cycle —
    //    the same failure it always produced, just a worker later.
    let waved_through = SeverityConfig::new()
        .allow(codes::ARC_CYCLE)
        .allow(codes::UNKNOWN_STYLE)
        .allow(codes::UNKNOWN_CHANNEL)
        .allow(codes::DANGLING_DESCRIPTOR);
    let id = engine.admit(submission().lint(LintPolicy::Configured(waved_through)))?;
    match engine.wait(id).result {
        Err(SchedulerError::ConstraintCycle { phase, points }) => println!(
            "\nwith the codes allowed, the solver itself diverged: \
             {phase} did not converge over {points} event points"
        ),
        other => println!("\nunexpected solve outcome: {other:?}"),
    }
    Ok(())
}
