//! Quickstart: build a small CMIF document with the builder API, serialize
//! it to the human-readable interchange form, parse it back, schedule it and
//! print the timeline.
//!
//! Run with `cargo run --example quickstart`.

use cmif::core::prelude::*;
use cmif::format::{parse_document, write_document};
use cmif::scheduler::{ConstraintGraph, ScheduleOptions};
use cmif::Result;

fn main() -> Result<()> {
    // 1. Author a document: two channels, one parallel scene.
    let doc =
        DocumentBuilder::new("quickstart")
            .channel("audio", MediaKind::Audio)
            .channel("caption", MediaKind::Text)
            .descriptor(
                DataDescriptor::new("greeting", MediaKind::Audio, "pcm8")
                    .with_duration(TimeMs::from_secs(4))
                    .with_size(32_000)
                    .with_rates(RateInfo::audio(8_000, 8_000)),
            )
            .root_seq(|root| {
                root.par("scene-1", |scene| {
                    scene.ext("voice", "audio", "greeting");
                    scene.ext_with("subtitle", "caption", "greeting", |n| {
                        n.duration_ms(3_000);
                        // The subtitle must start within 250 ms of the voice.
                        n.arc(SyncArc::hard_start("../voice", "").with_window(
                            DelayMs::ZERO,
                            MaxDelay::Bounded(DelayMs::from_millis(250)),
                        ));
                    });
                });
                root.par("scene-2", |scene| {
                    scene.imm_text("credits", "caption", "produced with CMIF", 2_000);
                });
            })
            .build()?;

    // 2. Serialize to the transportable interchange form and parse it back.
    let text = write_document(&doc)?;
    println!("--- interchange form ({} bytes) ---\n{text}", text.len());
    let parsed = parse_document(&text)?;
    assert_eq!(parsed.leaves().len(), doc.leaves().len());

    // 3. Schedule the parsed document and print the timeline: derive the
    //    constraint graph once, then relax it.
    let mut graph = ConstraintGraph::derive(&parsed, &parsed.catalog, &ScheduleOptions::default())?;
    let result = graph.solve(&parsed, &parsed.catalog)?;
    println!("--- schedule ---");
    println!("{}", result.schedule.render_table());
    println!("{}", result.schedule.render_gantt(60));
    println!(
        "consistent: {} (total {})",
        result.is_consistent(),
        result.schedule.total_duration
    );
    Ok(())
}
