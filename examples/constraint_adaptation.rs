//! Transportability across devices: the same Evening News document targeted
//! at three presentation environments.
//!
//! The paper's point is that one transportable document plus per-device
//! constraint filtering replaces three hand-made documents. This example
//! runs the pipeline for a workstation, a low-end PC and an audio-only
//! kiosk, and prints what each device must degrade or drop, how much media
//! shrinks, and whether the Must synchronization still holds under each
//! device's jitter.
//!
//! Run with `cargo run --example constraint_adaptation`.

use cmif::media::store::BlockStore;
use cmif::news::{capture_news_media, evening_news};
use cmif::pipeline::constraint::DeviceProfile;
use cmif::pipeline::pipeline::PipelineBuilder;
use cmif::scheduler::JitterModel;
use cmif::Result;

fn main() -> Result<()> {
    let doc = evening_news()?;
    let devices = [
        (DeviceProfile::workstation(), JitterModel::uniform(40, 1)),
        (DeviceProfile::low_end_pc(), JitterModel::uniform(200, 2)),
        (DeviceProfile::audio_kiosk(), JitterModel::uniform(400, 3)),
    ];

    for (device, jitter) in devices {
        // Each device gets its own copy of the captured media, because the
        // constraint filters materialise degraded blocks in place.
        let store = BlockStore::new();
        capture_news_media(&store, 1991)?;
        let before_bytes = store.total_bytes();

        let run = PipelineBuilder::new(device.clone())
            .materialize_filters(true)
            .jitter(jitter)
            .playback_runs(5)
            .run(&doc, &store)?;
        let after_bytes = store.total_bytes();

        println!("================================================================");
        println!("device: {}", device.name);
        println!("----------------------------------------------------------------");
        println!("constraint mapping:\n{}", run.filter_plan);
        println!(
            "media: {:.1} MB -> {:.1} MB ({} blocks degraded, {} channels dropped)",
            before_bytes as f64 / 1e6,
            after_bytes as f64 / 1e6,
            run.filter_plan.degraded_blocks(),
            run.filter_plan.dropped_channels.len()
        );
        println!(
            "schedule: {} total, {} specification violations",
            run.solve.schedule.total_duration,
            run.solve.violations.len()
        );
        println!(
            "device conflicts remaining: {}",
            run.conflicts.of_class(2).len()
        );
        if let Some(playback) = &run.playback {
            println!(
                "playback under jitter: {} must violations, {} may violations, max drift {} ms",
                playback.must_violations,
                playback.may_violations,
                playback.max_drift_ms()
            );
        }
        println!("presentable: {}", run.is_presentable());
    }
    Ok(())
}
