//! Fault drill: host churn, degraded fetches and self-healing repair on
//! the simulated cluster (§6 of the paper, under hostile weather).
//!
//! A media server and a mirror hold the Evening News at replication
//! factor 2. A seeded fault plan makes one transfer in ten die mid-flight
//! and kills the server outright partway through the run. The drill shows
//! what the robustness layer does about it: fetches walk to surviving
//! replicas with bounded retries, the health machine records every
//! transition, the repair queue restores the replication factor, and a
//! fully partitioned reader gets a typed error carrying the per-replica
//! attempt trace instead of a hang.
//!
//! Every number printed is in simulated units and the plan is seeded, so
//! the output is identical on every machine.
//!
//! Run with `cargo run --example fault_drill`.

use std::collections::BTreeSet;

use cmif::core::channel::MediaKind;
use cmif::core::Symbol;
use cmif::distrib::network::{Link, Network};
use cmif::distrib::store::DistributedStore;
use cmif::distrib::transport::referenced_keys;
use cmif::distrib::{DistribError, FaultPlan, RetryPolicy};
use cmif::media::MediaGenerator;
use cmif::news::evening_news;
use cmif::pipeline::{DeviceProfile, PipelineBuilder};
use cmif::Result;

fn main() -> Result<()> {
    // --- Setup: a five-host LAN, every block and document at RF 2. ------
    let hosts = ["cwi-server", "mirror", "desk", "home", "kiosk"];
    let cluster = DistributedStore::with_replication(Network::uniform(&hosts, Link::lan()), 2)?;
    let doc = evening_news()?;
    let mut generator = MediaGenerator::new(1991);
    for descriptor in doc.catalog.iter() {
        let block = match descriptor.medium {
            MediaKind::Audio => generator.audio(
                descriptor.key.as_str(),
                descriptor.duration.map(|d| d.as_millis()).unwrap_or(1_000),
                8_000,
            ),
            MediaKind::Video => generator.video(descriptor.key.as_str(), 2_000, 64, 48, 25.0, 24),
            _ => generator.image(descriptor.key.as_str(), 320, 240, 24),
        };
        cluster.put_block("cwi-server", block, descriptor.clone())?;
    }
    cluster.publish_document("cwi-server", "evening-news", &doc)?;
    let keys: BTreeSet<Symbol> = referenced_keys(&doc, None).into_iter().collect();
    println!(
        "published `evening-news` with {} media blocks on {} hosts at RF {}",
        keys.len(),
        hosts.len(),
        cluster.replication_factor()
    );

    // --- The weather arrives: a seeded fault plan. ----------------------
    // One transfer in ten dies mid-flight, and the media server is killed
    // outright after the fifth transfer the plan sees.
    let cluster = cluster
        .with_fault_plan(
            FaultPlan::seeded(41)
                .fail_transfers(0.1)
                .kill_host_at(5, "cwi-server"),
        )
        .with_retry_policy(RetryPolicy::with_attempts(5));
    cluster.reset_traffic();
    println!("\n--- fault plan armed: 10% transfer loss, server killed at transfer 5 ---");

    // --- Degraded reads: the desk fetches everything anyway. ------------
    let report = cluster.fetch_blocks_for_traced("desk", &keys)?;
    println!(
        "desk read every block: {} fetched + {} already local, {} degraded \
         fetch(es), {} retry(ies), {} simulated ms",
        report.fetched, report.local_hits, report.degraded, report.retries, report.simulated_ms
    );

    println!("health transitions observed so far:");
    for transition in cluster.health_log() {
        println!(
            "  {}: {} -> {} ({})",
            transition.host, transition.from, transition.to, transition.cause
        );
    }

    // --- Self-healing: the kill enqueued every under-replicated object. --
    println!(
        "\nrepair queue after the host kill: {} object(s)",
        cluster.pending_repairs()
    );
    let repair = cluster.repair_all();
    for action in &repair.actions {
        println!("  {action}");
    }
    println!(
        "repair pass: {} restored, {} lost, {} deferred; {} B copied in {} simulated ms",
        repair.repaired.len(),
        repair.lost.len(),
        repair.deferred.len(),
        repair.bytes_copied,
        repair.simulated_ms
    );

    // --- Traffic ledger: delivered and failed bytes, per link. -----------
    println!("\n--- per-link traffic (delivered | failed) ---");
    let traffic = cluster.traffic();
    for (from, to, link) in traffic.per_link() {
        println!(
            "  {from} -> {to}: {} B in {} transfer(s) | {} B in {} failed",
            link.structure_bytes + link.media_bytes,
            link.transfers,
            link.failed_bytes,
            link.failed_transfers
        );
    }

    // --- The pipeline rides the same machinery. --------------------------
    // `home` runs the full presentation pipeline against the degraded
    // cluster; the run reports how its media arrived.
    let run = PipelineBuilder::new(DeviceProfile::workstation())
        .playback_runs(0)
        .run_distributed(&cluster, "home", "evening-news")?;
    let fetch = run.fetch.as_ref().map(|f| {
        format!(
            "{} fetched + {} local, {} degraded, {} retries",
            f.fetched, f.local_hits, f.degraded, f.retries
        )
    });
    println!(
        "\nhome presented the document (presentable: {}); media arrival: {}",
        run.is_presentable(),
        fetch.unwrap_or_default()
    );

    // --- A full partition is an error, not a hang. -----------------------
    // Cut the kiosk off from every surviving replica and watch the typed
    // error carry the whole attempt trace.
    let island =
        DistributedStore::with_replication(Network::uniform(&["a", "b", "kiosk"], Link::lan()), 2)?;
    let block = MediaGenerator::new(7).audio("anthem", 1_000, 8_000);
    let descriptor = block.describe();
    island.put_block("a", block, descriptor)?;
    let holders = island.replicas_of("anthem");
    let reader = ["a", "b", "kiosk"]
        .into_iter()
        .find(|h| !holders.contains(&h.to_string()))
        .unwrap_or("kiosk");
    let majority: Vec<&str> = ["a", "b", "kiosk"]
        .into_iter()
        .filter(|h| *h != reader)
        .collect();
    let island = island.with_fault_plan(FaultPlan::seeded(3).partition(&majority, &[reader]));
    match island.fetch_block(reader, "anthem") {
        Err(DistribError::Partitioned { to, key, attempts }) => {
            println!("\n--- `{to}` is partitioned: fetch of `{key}` refused cleanly ---");
            for attempt in &attempts {
                println!("  {attempt}");
            }
        }
        other => println!("unexpected outcome: {other:?}"),
    }

    Ok(())
}
