//! Hyper navigation and conditional synchronization arcs (the paper's §3.2
//! and §5.3.3 future-work directions).
//!
//! The reader watches the Evening News, turns captions on (a conditional
//! arc), then jumps ahead to the insurance graphic — which invalidates the
//! arcs whose controlling events were skipped, exactly the third conflict
//! class of the paper.
//!
//! Run with `cargo run --example hyper_navigation`.

use cmif::core::arc::SyncArc;
use cmif::core::time::{MediaTime, TimeMs};
use cmif::hyper::conditional::{
    apply_conditionals, Condition, ConditionalArc, PresentationContext,
};
use cmif::hyper::links::LinkSet;
use cmif::hyper::navigation::Navigator;
use cmif::news::evening_news;
use cmif::scheduler::{ConstraintGraph, ScheduleOptions};
use cmif::Result;

fn main() -> Result<()> {
    let doc = evening_news()?;
    let options = ScheduleOptions::default();

    // A conditional arc: when the reader enables the "captions-on" flag the
    // museum-name label waits two seconds into the narration before it
    // appears (so it does not collide with the caption strip).
    let label = doc.find("/story-3/label-track/museum-name")?;
    let conditional = ConditionalArc::new(
        label,
        Condition::Flag("captions-on".into()),
        SyncArc::relaxed_start("/story-3/narration", "").with_offset(MediaTime::seconds(10)),
    );

    // One graph serves every presentation context: the document's
    // constraints are derived once, each context only injects (or retracts)
    // the conditional arc and re-relaxes incrementally.
    let mut graph = ConstraintGraph::derive(&doc, &doc.catalog, &options)?;
    for flags in [
        PresentationContext::full(),
        PresentationContext::full().with_flag("captions-on"),
    ] {
        apply_conditionals(
            &mut graph,
            &doc,
            &doc.catalog,
            std::slice::from_ref(&conditional),
            &flags,
        )?;
        let result = graph.solve(&doc, &doc.catalog)?;
        let museum_start = result.schedule.node_times[&label].0;
        println!(
            "captions-on = {:<5} -> museum label appears at {museum_start}",
            flags
                .flags
                .contains(&cmif::core::Symbol::intern("captions-on"))
        );
    }

    // Plain navigation over the unconditioned schedule.
    graph.retract_injected();
    let solved = graph.solve(&doc, &doc.catalog)?;
    let mut links = LinkSet::new();
    links.add(
        &doc,
        "skip to the insurance figures",
        "/story-3/graphic-track/painting-one",
        "/story-3/graphic-track/insurance-graph",
    )?;
    let navigator = Navigator::new(&doc, &solved).with_links(links);

    let painting_one = doc.find("/story-3/graphic-track/painting-one")?;
    println!("\nchoices while the first painting is on screen:");
    for link in navigator.choices_at(painting_one) {
        println!("  -> {}", link.label);
    }

    let nav = navigator
        .follow(painting_one, "skip to the insurance figures")?
        .expect("the link exists");
    println!(
        "\nfollowed the link: presentation resumes at {} ({} events skipped, {} remaining)",
        nav.resume_at,
        nav.skipped,
        nav.remaining.len()
    );
    println!(
        "arcs invalidated by the jump (class-3 conflicts): {}",
        nav.invalidated.len()
    );
    for conflict in &nav.invalidated {
        println!("  {conflict}");
    }

    // Fast-forward 20 seconds from the start.
    if let Some(ff) = navigator.fast_forward(TimeMs::ZERO, 20_000)? {
        println!(
            "\nfast-forward by 20 s lands at {} with {} events remaining",
            ff.resume_at,
            ff.remaining.len()
        );
    }
    Ok(())
}
