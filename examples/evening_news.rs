//! The Evening News (Figures 4 and 10 of the paper), end to end.
//!
//! Builds the stolen-paintings story with its five channels and explicit
//! synchronization arcs, captures synthetic media for it, runs the full
//! CWI/Multimedia Pipeline against a workstation device, and prints the
//! structure views, the schedule, the presentation map, the conflict report
//! and a storyboard.
//!
//! Run with `cargo run --example evening_news`.

use cmif::format::{channel_view, conventional_view, embedded_view};
use cmif::media::store::BlockStore;
use cmif::news::{capture_news_media, evening_news};
use cmif::pipeline::constraint::DeviceProfile;
use cmif::pipeline::pipeline::PipelineBuilder;
use cmif::pipeline::presentation::render_map;
use cmif::pipeline::viewer::render_storyboard;
use cmif::Result;

fn main() -> Result<()> {
    // Stage 1: capture the media (synthetic stand-ins for the broadcast).
    let store = BlockStore::new();
    capture_news_media(&store, 1991)?;

    // Stage 2: the document structure (the CMIF contribution).
    let doc = evening_news()?;
    println!("=== document structure (conventional view, Fig. 5a) ===");
    println!("{}", conventional_view(&doc)?);
    println!("=== document structure (embedded view, Fig. 5b) ===");
    println!("{}", embedded_view(&doc)?);
    println!("=== channel columns (Fig. 10) ===");
    println!("{}", channel_view(&doc, &doc.catalog)?);

    // Stages 3-5: presentation mapping, constraint filtering, scheduling,
    // conflicts, viewing, playback — on a workstation.
    let run = PipelineBuilder::new(DeviceProfile::workstation()).run(&doc, &store)?;

    println!("=== presentation map (virtual real estate) ===");
    println!("{}", render_map(&run.presentation));

    println!("=== schedule ===");
    println!("{}", run.solve.schedule.render_gantt(72));

    println!("=== conflict report ===");
    println!("{}", run.conflicts);

    println!("=== table of contents ===");
    println!("{}", run.table_of_contents);

    println!("=== storyboard (one frame every 8 s) ===");
    let frames: Vec<_> = run
        .storyboard
        .iter()
        .filter(|f| f.at.as_millis() % 8_000 == 0)
        .cloned()
        .collect();
    println!("{}", render_storyboard(&frames));

    if let Some(playback) = &run.playback {
        println!("=== playback simulation ===\n{playback}");
    }
    println!("presentable on a workstation: {}", run.is_presentable());
    Ok(())
}
