//! Live authoring: a rundown edited while it plays.
//!
//! CMIFed's headline workflow is *edit while playing* — the author changes
//! a document whose presentation is running and the system re-schedules
//! only what the change could affect. This example walks both halves:
//!
//! 1. an [`EditSession`] applies a late-breaking script change to a
//!    16-story broadcast and repairs the schedule incrementally, printing
//!    the dirty-region counters that make the repair cheap;
//! 2. a [`PlayerSession`] plays the original cut to the mid-broadcast
//!    boundary, swaps onto the revised schedule, and finishes — the fired
//!    history survives the swap verbatim, only the unplayed tail moves.
//!
//! Run with `cargo run --example live_edit`.

use std::sync::Arc;

use cmif::core::edit::{DocRevision, Edit, NodeSpec};
use cmif::scheduler::{
    ConstraintGraph, EditSession, JitterModel, PlaybackEvent, PlayerSession, ScheduleOptions,
};
use cmif::synthetic::SyntheticNews;
use cmif::Result;

fn main() -> Result<()> {
    let doc = Arc::new(SyntheticNews::with_stories(16).build()?);
    let catalog = doc.catalog.clone();

    // ---- 1. Incremental re-authoring. ----------------------------------
    let mut author = EditSession::begin(
        DocRevision::initial(Arc::clone(&doc)),
        &catalog,
        ScheduleOptions::default(),
    )?;
    println!(
        "opened a session on {} nodes / {} constraints",
        doc.node_count(),
        author.stats().constraints_total
    );

    // Breaking news for the second half of the broadcast: a caption
    // dropped into story 12, then the story's graphics→narration arc
    // pushed out to make room for it.
    let story = doc.find("/story-12")?;
    author.apply(&Edit::InsertSubtree {
        parent: story,
        spec: NodeSpec::imm_text("breaking", "BREAKING: late update")
            .on_channel("caption")
            .lasting_ms(2_500),
    })?;
    let stats = *author.stats();
    println!(
        "insert: +{} constraints, -{} replaced, {} points reset, {} fixpoint updates",
        stats.last_added, stats.last_replaced, stats.last_reset_points, stats.last_updates
    );
    author.apply(&Edit::RetimeArc {
        index: 24, // story 12's first explicit arc
        min_delay_ms: 0,
        max_delay_ms: None,
        offset_ms: Some(1_200),
    })?;
    let stats = *author.stats();
    println!(
        "retime: +{} constraints, -{} replaced, {} points reset, {} fixpoint updates",
        stats.last_added, stats.last_replaced, stats.last_reset_points, stats.last_updates
    );
    let revised = author.solve_result()?;

    // ---- 2. Mid-broadcast swap. ----------------------------------------
    let original = ConstraintGraph::derive(&doc, &catalog, &ScheduleOptions::default())?
        .solve(&doc, &catalog)?;
    let jitter = JitterModel::uniform(80, 7);
    let mut session = PlayerSession::new(&doc, &original, &catalog, &jitter)?;
    session.tick(0)?;
    let total = session.total_duration().as_millis();
    let boundary = total / 2;
    session.tick(boundary)?;
    let fired = session
        .report_preview()
        .events
        .iter()
        .filter(|e| e.actual_end.as_millis() < boundary)
        .count();
    println!("\nplayed to {boundary}ms of {total}ms: {fired} events already fired before the swap");

    session.swap_revision(author.revision().doc(), &revised, &catalog)?;
    let swapped_at = session.poll_events().into_iter().find_map(|e| match e {
        PlaybackEvent::Revised { at } => Some(at),
        _ => None,
    });
    println!(
        "swapped onto the revised rundown at {}ms — fired history kept verbatim",
        swapped_at.expect("the swap marks the stream").as_millis()
    );

    session.tick(total + 60_000)?;
    let report = session.report_preview();
    let breaking = report
        .events
        .iter()
        .find(|e| e.name == cmif::core::Symbol::intern("breaking"))
        .expect("the inserted caption plays in the revised tail");
    println!(
        "revised tail played out: {} events total, 'breaking' ran {}..{}ms",
        report.events.len(),
        breaking.actual_begin.as_millis(),
        breaking.actual_end.as_millis()
    );
    Ok(())
}
