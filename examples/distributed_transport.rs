//! Structure-only document transport across a simulated cluster (§6 of the
//! paper).
//!
//! A server at CWI holds the Evening News media; a desk workstation and an
//! audio-only home terminal both want to present the document. The example
//! publishes the document on the server, transports *only the structure* to
//! each reader, and then fetches just the blocks each device can present —
//! comparing the traffic against shipping everything eagerly.
//!
//! Run with `cargo run --example distributed_transport`.

use cmif::core::channel::MediaKind;
use cmif::distrib::network::{Link, Network};
use cmif::distrib::store::DistributedStore;
use cmif::distrib::transport::{compare_transport, referenced_keys};
use cmif::format::{document_to_bytes, WireEncoding};
use cmif::media::MediaGenerator;
use cmif::news::evening_news;
use cmif::Result;

fn main() -> Result<()> {
    // A LAN between the media server and the desk, a WAN link to the home
    // terminal.
    let mut network = Network::uniform(&["cwi-server", "desk", "home"], Link::lan());
    network.connect("cwi-server", "home", Link::wan());
    let cluster = DistributedStore::new(network);

    // The server captures and stores the media blocks.
    let doc = evening_news()?;
    let mut generator = MediaGenerator::new(1991);
    for descriptor in doc.catalog.iter() {
        let block = match descriptor.medium {
            MediaKind::Audio => generator.audio(
                descriptor.key.as_str(),
                descriptor.duration.map(|d| d.as_millis()).unwrap_or(1_000),
                8_000,
            ),
            MediaKind::Video => generator.video(
                descriptor.key.as_str(),
                descriptor.duration.map(|d| d.as_millis()).unwrap_or(1_000),
                64,
                48,
                25.0,
                24,
            ),
            _ => generator.image(descriptor.key.as_str(), 320, 240, 24),
        };
        cluster.put_block("cwi-server", block, descriptor.clone())?;
    }
    let published = cluster.publish_document("cwi-server", "evening-news", &doc)?;
    println!(
        "document structure published on cwi-server: {published} bytes ({})",
        cluster.wire_encoding()
    );

    // What would each wire form cost on this document? The store publishes
    // binary by default; text is what the same structure costs when it has
    // to stay human-readable on the wire.
    let text_bytes = document_to_bytes(&doc, WireEncoding::Text)?.len();
    let binary_bytes = document_to_bytes(&doc, WireEncoding::Binary)?.len();
    println!(
        "wire form comparison: text {text_bytes} B vs binary {binary_bytes} B \
         ({:.0}% smaller on the wire)",
        100.0 * (1.0 - binary_bytes as f64 / text_bytes as f64)
    );
    println!(
        "referenced media blocks: {} ({} if only audio is wanted)",
        referenced_keys(&doc, None).len(),
        referenced_keys(&doc, Some(&[MediaKind::Audio])).len()
    );

    // Desk workstation: wants everything, but lazily.
    let comparison = compare_transport(
        &cluster,
        &doc,
        "cwi-server",
        "desk",
        "home",
        "evening-news",
        Some(&[MediaKind::Audio]),
    )?;

    println!("\n--- eager transport to `desk` (structure + every block) ---");
    println!(
        "structure {} B, media {:.2} MB, {} blocks, {:.1} simulated s",
        comparison.eager.structure_bytes,
        comparison.eager.media_bytes as f64 / 1e6,
        comparison.eager.blocks_moved,
        comparison.eager.simulated_ms as f64 / 1e3
    );
    println!("--- lazy transport to `home` (structure, then audio only) ---");
    println!(
        "structure {} B, media {:.2} MB, {} blocks, {:.1} simulated s",
        comparison.lazy.structure_bytes,
        comparison.lazy.media_bytes as f64 / 1e6,
        comparison.lazy.blocks_moved,
        comparison.lazy.simulated_ms as f64 / 1e3
    );
    println!(
        "structure on the wire: eager {} B + lazy {} B as {}; \
         the same two transfers as text would have moved {} B",
        comparison.eager.structure_bytes,
        comparison.lazy.structure_bytes,
        cluster.wire_encoding(),
        2 * text_bytes
    );
    println!("--- per-link traffic (lazy phase) ---");
    for (from, to, link) in comparison.lazy_traffic.per_link() {
        println!(
            "{from} -> {to}: {} B structure, {} B media, {} transfer(s)",
            link.structure_bytes, link.media_bytes, link.transfers
        );
    }
    println!(
        "\nthe eager strategy moves {:.0}x more bytes than the audio-only reader needed",
        comparison.byte_ratio()
    );

    // The home terminal can still open and reason about the whole document —
    // structure access never needed the media.
    let received = cluster.open_document("home", "evening-news")?;
    println!(
        "home terminal sees {} events on {} channels without holding the video",
        received.leaves().len(),
        received.channels.len()
    );

    // --- Act two: the server dies mid-broadcast. -------------------------
    // Same cluster shape, but now at replication factor 2 so losing the
    // origin is survivable. The desk starts reading, the server is marked
    // down partway through, and the remaining fetches walk to surviving
    // replicas while the repair queue restores the replication factor.
    let mut network = Network::uniform(&["cwi-server", "desk", "home"], Link::lan());
    network.connect("cwi-server", "home", Link::wan());
    let cluster = DistributedStore::with_replication(network, 2)?;
    let mut generator = MediaGenerator::new(1991);
    for descriptor in doc.catalog.iter() {
        let block = match descriptor.medium {
            MediaKind::Audio => generator.audio(
                descriptor.key.as_str(),
                descriptor.duration.map(|d| d.as_millis()).unwrap_or(1_000),
                8_000,
            ),
            MediaKind::Video => generator.video(
                descriptor.key.as_str(),
                descriptor.duration.map(|d| d.as_millis()).unwrap_or(1_000),
                64,
                48,
                25.0,
                24,
            ),
            _ => generator.image(descriptor.key.as_str(), 320, 240, 24),
        };
        cluster.put_block("cwi-server", block, descriptor.clone())?;
    }
    cluster.publish_document("cwi-server", "evening-news", &doc)?;

    println!("\n--- act two: origin dies mid-broadcast (RF 2) ---");
    let keys = referenced_keys(&doc, None);
    let (first_half, second_half) = keys.split_at(keys.len() / 2);
    for key in first_half {
        cluster.fetch_block("desk", key.as_str())?;
    }
    cluster.mark_down("cwi-server")?;
    for key in second_half {
        cluster.fetch_block("desk", key.as_str())?;
    }
    println!(
        "desk finished the broadcast: {} blocks before the crash, {} after, \
         all from surviving replicas",
        first_half.len(),
        second_half.len()
    );
    for transition in cluster.health_log() {
        println!(
            "  {}: {} -> {} ({})",
            transition.host, transition.from, transition.to, transition.cause
        );
    }
    let repair = cluster.repair_all();
    println!(
        "repair restored RF {} for {} object(s): {} B copied in {} simulated ms, \
         {} lost",
        cluster.replication_factor(),
        repair.repaired.len(),
        repair.bytes_copied,
        repair.simulated_ms,
        repair.lost.len()
    );
    Ok(())
}
