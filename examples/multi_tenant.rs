//! One engine, three tenants: weighted fair scheduling and admission
//! quotas over a shared worker pool.
//!
//! The paper's player serves one reader; the ROADMAP north-star is a
//! server multiplexing many. This example runs a "broadcast" tenant
//! flooding the queue, a "kiosk" tenant with triple dispatch weight, and
//! a "guest" tenant held to a 10-admission quota — all on the same
//! two-worker engine — then prints the per-tenant scoreboard
//! (`tenant_stats`) and the work-stealing split (`queue_stats`).
//!
//! Run with `cargo run --example multi_tenant`.

use std::sync::Arc;
use std::time::Instant;

use cmif::scheduler::{
    Engine, EngineConfig, JitterModel, QuotaConfig, SchedulerError, Submission, TenantId,
    TenantPolicy,
};
use cmif::synthetic::SyntheticNews;
use cmif::Result;

fn main() -> Result<()> {
    let doc = Arc::new(SyntheticNews::with_stories(2).build()?);
    let engine = Engine::new(EngineConfig {
        workers: 2,
        ..EngineConfig::default()
    });

    let broadcast = TenantId::new(1); // floods, default weight
    let kiosk = TenantId::new(2); // 3x dispatch share
    let guest = TenantId::new(3); // quota: 10 admissions, no refill
    engine.set_tenant_policy(kiosk, TenantPolicy::weighted(3));
    engine.set_tenant_policy(
        guest,
        TenantPolicy::default().with_quota(QuotaConfig::new(10, 0.0)),
    );

    // The broadcast tenant dumps 500 documents in one batched admission
    // (one queue transaction, contiguous ids).
    let submit = |tenant: TenantId, seed: u64| {
        Submission::new(Arc::clone(&doc), JitterModel::uniform(120, seed)).tenant(tenant)
    };
    engine.submit_batch((0..500).map(|i| submit(broadcast, i)))?;

    // The kiosk tenant submits one urgent document *behind* the flood;
    // weighted fair dispatch pulls it forward anyway.
    let urgent_started = Instant::now();
    let urgent = engine.admit(submit(kiosk, 1_000))?;
    let outcome = engine.wait(urgent);
    println!(
        "kiosk document finished in {:.1}ms with {} broadcast documents still queued ({})",
        urgent_started.elapsed().as_secs_f64() * 1e3,
        engine.backlog(),
        if outcome.is_ok() { "ok" } else { "failed" },
    );

    // The guest hammers 25 admissions against a 10-token bucket.
    let mut refusals = 0;
    for i in 0..25 {
        match engine.admit(submit(guest, 2_000 + i)) {
            Ok(_) => {}
            Err(SchedulerError::QuotaExceeded { tenant, .. }) => {
                assert_eq!(tenant, guest);
                refusals += 1;
            }
            Err(other) => return Err(other.into()),
        }
    }
    println!("guest quota refused {refusals}/25 admissions\n");

    engine.drain();
    println!("tenant        weight  submitted  refused  ok  p99 ms");
    for stats in engine.tenant_stats() {
        println!(
            "{:<13} {:<7} {:<10} {:<8} {:<3} {:.1}",
            stats.tenant.to_string(),
            stats.weight,
            stats.submitted,
            stats.quota_refusals,
            stats.ok,
            stats.p99_latency_ms,
        );
    }
    let queue = engine.queue_stats();
    println!(
        "\nqueue: {} dispatched, {:.1}% stolen between workers",
        queue.dispatched(),
        queue.steal_ratio() * 100.0
    );
    engine.shutdown();
    Ok(())
}
