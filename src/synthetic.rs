//! Parameterised synthetic news documents.
//!
//! The benchmark harness needs documents of controlled size and shape: a
//! broadcast with `n` stories, each with the five-channel structure of the
//! Evening News, optionally decorated with explicit synchronization arcs.
//! [`SyntheticNews`] generates them deterministically, and
//! [`balanced_tree`] generates abstract seq/par trees of a given depth and
//! fan-out for the Figure 5/6 parsing and serialization benches.

use crate::error::Result;
use cmif_core::arc::SyncArc;
use cmif_core::channel::MediaKind;
use cmif_core::descriptor::DataDescriptor;
use cmif_core::node::NodeKind;
use cmif_core::prelude::{AttrValue, DocumentBuilder, NodeBuilder, Symbol};
use cmif_core::time::{DelayMs, MaxDelay, RateInfo, TimeMs};
use cmif_core::tree::Document;

/// Parameters of a synthetic news broadcast.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SyntheticNews {
    /// Number of stories in the broadcast.
    pub stories: usize,
    /// Seconds of narration per story.
    pub story_seconds: i64,
    /// Captions per story.
    pub captions_per_story: usize,
    /// Graphics per story.
    pub graphics_per_story: usize,
    /// When true, each story gets explicit arcs (graphic onto audio,
    /// captions onto video) like Figure 10; when false only the implicit
    /// structure synchronizes it.
    pub explicit_arcs: bool,
}

impl Default for SyntheticNews {
    fn default() -> Self {
        SyntheticNews {
            stories: 4,
            story_seconds: 30,
            captions_per_story: 5,
            graphics_per_story: 3,
            explicit_arcs: true,
        }
    }
}

impl SyntheticNews {
    /// Convenience constructor: a broadcast with `stories` stories and the
    /// other parameters at their defaults.
    pub fn with_stories(stories: usize) -> SyntheticNews {
        SyntheticNews {
            stories,
            ..SyntheticNews::default()
        }
    }

    /// Builds the document.
    pub fn build(&self) -> Result<Document> {
        let mut builder = DocumentBuilder::new("synthetic news")
            .channel("audio", MediaKind::Audio)
            .channel("video", MediaKind::Video)
            .channel("graphic", MediaKind::Image)
            .channel("caption", MediaKind::Text)
            .channel("label", MediaKind::Label);

        for story in 0..self.stories {
            builder = builder
                .descriptor(
                    DataDescriptor::new(format!("s{story}/audio"), MediaKind::Audio, "pcm8")
                        .with_duration(TimeMs::from_secs(self.story_seconds))
                        .with_size((self.story_seconds * 8_000) as u64)
                        .with_rates(RateInfo::audio(8_000, 8_000))
                        .with_extra("story", AttrValue::Id(Symbol::intern(&format!("s{story}")))),
                )
                .descriptor(
                    DataDescriptor::new(format!("s{story}/video"), MediaKind::Video, "rgb24")
                        .with_duration(TimeMs::from_secs(self.story_seconds))
                        .with_size((self.story_seconds * 25 * 320 * 240 * 3) as u64)
                        .with_resolution(320, 240)
                        .with_color_depth(24)
                        .with_rates(RateInfo::video(25.0))
                        .with_extra("story", AttrValue::Id(Symbol::intern(&format!("s{story}")))),
                );
            for graphic in 0..self.graphics_per_story {
                builder = builder.descriptor(
                    DataDescriptor::new(
                        format!("s{story}/graphic-{graphic}"),
                        MediaKind::Image,
                        "raster24",
                    )
                    .with_size(640 * 480 * 3)
                    .with_resolution(640, 480)
                    .with_color_depth(24)
                    .with_extra("story", AttrValue::Id(Symbol::intern(&format!("s{story}")))),
                );
            }
        }

        let config = *self;
        let mut doc = builder
            .root_seq(|news| {
                for story in 0..config.stories {
                    news.par(&format!("story-{story}"), |s| {
                        config.build_story(s, story);
                    });
                }
            })
            .build_unchecked()?;

        if self.explicit_arcs {
            for story in 0..self.stories {
                let graphics = doc.find(&format!("/story-{story}/graphics"))?;
                doc.add_arc(
                    graphics,
                    SyncArc::hard_start(format!("/story-{story}/narration").as_str(), "")
                        .with_window(DelayMs::ZERO, MaxDelay::Bounded(DelayMs::from_millis(500))),
                )?;
                let captions = doc.find(&format!("/story-{story}/captions"))?;
                doc.add_arc(
                    captions,
                    SyncArc::hard_start(format!("/story-{story}/film").as_str(), "")
                        .with_window(DelayMs::ZERO, MaxDelay::Bounded(DelayMs::from_millis(250))),
                )?;
            }
        }
        cmif_core::validate::validate(&doc)?;
        Ok(doc)
    }

    fn build_story(&self, s: &mut NodeBuilder<'_>, story: usize) {
        s.ext("narration", "audio", &format!("s{story}/audio"));
        s.ext("film", "video", &format!("s{story}/video"));
        s.seq("graphics", |track| {
            let each_ms = (self.story_seconds * 1_000) / self.graphics_per_story.max(1) as i64;
            for graphic in 0..self.graphics_per_story {
                track.ext_with(
                    &format!("graphic-{graphic}"),
                    "graphic",
                    &format!("s{story}/graphic-{graphic}"),
                    |n| {
                        n.duration_ms(each_ms);
                    },
                );
            }
        });
        s.seq("captions", |track| {
            let each_ms = (self.story_seconds * 1_000) / self.captions_per_story.max(1) as i64;
            for caption in 0..self.captions_per_story {
                track.imm_text(
                    &format!("caption-{caption}"),
                    "caption",
                    format!("story {story} caption {caption}: witnesses report new developments"),
                    each_ms,
                );
            }
        });
        s.imm_text("title", "label", format!("Story {story}"), 5_000);
    }

    /// The number of leaf events a built document will contain.
    pub fn expected_events(&self) -> usize {
        self.stories * (3 + self.captions_per_story + self.graphics_per_story)
    }
}

/// Builds an abstract balanced document tree of the given depth and fan-out:
/// alternating parallel and sequential interior levels with immediate text
/// leaves at the bottom. Used by the tree-form and node-format benches.
pub fn balanced_tree(depth: usize, fanout: usize) -> Result<Document> {
    fn fill(node: &mut NodeBuilder<'_>, level: usize, depth: usize, fanout: usize) {
        if level + 2 >= depth {
            for i in 0..fanout {
                node.imm_text(
                    &format!("leaf-{i}"),
                    "caption",
                    format!("leaf at level {level}"),
                    1_000,
                );
            }
            return;
        }
        for i in 0..fanout {
            if level % 2 == 0 {
                node.seq(&format!("seq-{i}"), |child| {
                    fill(child, level + 1, depth, fanout)
                });
            } else {
                node.par(&format!("par-{i}"), |child| {
                    fill(child, level + 1, depth, fanout)
                });
            }
        }
    }
    let doc = DocumentBuilder::new("balanced tree")
        .channel("caption", MediaKind::Text)
        .root_par(|root| fill(root, 0, depth.max(1), fanout.max(1)))
        .build()?;
    Ok(doc)
}

/// Counts the nodes of each kind in a document: `(seq, par, ext, imm)`.
pub fn node_kind_counts(doc: &Document) -> (usize, usize, usize, usize) {
    let mut counts = (0, 0, 0, 0);
    for id in doc.preorder() {
        match doc.node(id).map(|n| n.kind.clone()) {
            Ok(NodeKind::Seq) => counts.0 += 1,
            Ok(NodeKind::Par) => counts.1 += 1,
            Ok(NodeKind::Ext) => counts.2 += 1,
            Ok(NodeKind::Imm(_)) => counts.3 += 1,
            Err(_) => {}
        }
    }
    counts
}

#[cfg(test)]
mod tests {
    use super::*;
    use cmif_scheduler::{ConstraintGraph, ScheduleOptions};

    fn solve_doc(doc: &cmif_core::tree::Document) -> cmif_scheduler::SolveResult {
        ConstraintGraph::derive(doc, &doc.catalog, &ScheduleOptions::default())
            .unwrap()
            .solve(doc, &doc.catalog)
            .unwrap()
    }

    #[test]
    fn synthetic_news_builds_and_schedules() {
        let config = SyntheticNews::with_stories(3);
        let doc = config.build().unwrap();
        assert_eq!(doc.leaves().len(), config.expected_events());
        assert_eq!(doc.arcs().len(), 6);
        let result = solve_doc(&doc);
        assert!(result.is_consistent());
        assert_eq!(result.schedule.total_duration, TimeMs::from_secs(90));
    }

    #[test]
    fn implicit_only_variant_has_no_arcs() {
        let config = SyntheticNews {
            explicit_arcs: false,
            ..SyntheticNews::with_stories(2)
        };
        let doc = config.build().unwrap();
        assert!(doc.arcs().is_empty());
        let result = solve_doc(&doc);
        assert_eq!(result.schedule.total_duration, TimeMs::from_secs(60));
    }

    #[test]
    fn story_count_scales_the_document() {
        let small = SyntheticNews::with_stories(1).build().unwrap();
        let large = SyntheticNews::with_stories(8).build().unwrap();
        assert!(large.node_count() > 6 * small.node_count());
        assert_eq!(large.catalog.len(), 8 * small.catalog.len());
    }

    #[test]
    fn balanced_tree_has_expected_shape() {
        let doc = balanced_tree(3, 3).unwrap();
        assert_eq!(doc.depth(), 3);
        let (seq, par, ext, imm) = node_kind_counts(&doc);
        assert_eq!(par, 1); // the root
        assert_eq!(seq, 3); // level 1
        assert_eq!(ext, 0);
        assert_eq!(imm, 9); // level 2 leaves
        let flat = balanced_tree(1, 4).unwrap();
        assert_eq!(flat.leaves().len(), 4);
    }
}
