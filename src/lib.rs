//! # cmif — umbrella crate for the CMIF reproduction
//!
//! This crate re-exports every crate of the workspace under one roof and
//! provides the shared example documents (the paper's Evening News and a
//! parameterised synthetic news generator) used by the runnable examples,
//! the integration tests and the benchmark harness.
//!
//! The individual crates:
//!
//! * [`core`] (`cmif-core`) — the CMIF document model;
//! * [`format`] (`cmif-format`) — the human-readable interchange format;
//! * [`scheduler`] (`cmif-scheduler`) — synchronization, conflicts, playback;
//! * [`media`] (`cmif-media`) — synthetic media, stores, DDBMS;
//! * [`pipeline`] (`cmif-pipeline`) — the CWI/Multimedia Pipeline stages;
//! * [`distrib`] (`cmif-distrib`) — the simulated distributed store;
//! * [`hyper`] (`cmif-hyper`) — conditional arcs and navigation;
//! * [`lint`] (`cmif-lint`) — static analysis with coded diagnostics;
//! * [`baselines`] (`cmif-baselines`) — Muse- and MIF-style comparators.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub use cmif_baselines as baselines;
pub use cmif_core as core;
pub use cmif_distrib as distrib;
pub use cmif_format as format;
pub use cmif_hyper as hyper;
pub use cmif_lint as lint;
pub use cmif_media as media;
pub use cmif_pipeline as pipeline;
pub use cmif_scheduler as scheduler;

pub mod error;
pub mod news;
pub mod synthetic;

pub use error::{Error, Result};
