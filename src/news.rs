//! The Evening News example document (Figures 4 and 10 of the paper).
//!
//! "As an example multimedia document, consider a (pre-created) version of
//! the evening television news. […] the news is divided into a number of
//! separate program blocks, each of which consists of spoken text, a main
//! video stream, one view of a static background graphic illustration, and
//! one labelling text stream" plus a synchronized caption stream (§4).
//!
//! [`evening_news`] builds the Figure 10 fragment — the stolen-paintings
//! story — complete with its five channels, its implicit synchronization and
//! the explicit arcs the paper calls out:
//!
//! * the graphic channel is start-synchronized with the audio;
//! * the captions are start-synchronized with the video (not the audio);
//! * the end of the second caption starts the second painting, with an
//!   offset;
//! * the end of the fourth caption holds back the next video sequence
//!   (the freeze-frame arc);
//! * the label channel is loosely (`May`) synchronized.
//!
//! [`capture_news_media`] fills a block store with synthetic media whose
//! shapes match the document, so the full pipeline can run on it.

use crate::error::Result;
use cmif_core::arc::{Anchor, SyncArc};
use cmif_core::channel::{ChannelDef, MediaKind};
use cmif_core::descriptor::DataDescriptor;
use cmif_core::prelude::{Attr, AttrName, AttrValue, DocumentBuilder, StyleDef};
use cmif_core::time::{DelayMs, MaxDelay, MediaTime, RateInfo, TimeMs};
use cmif_core::tree::Document;
use cmif_media::store::BlockStore;
use cmif_pipeline::capture::{CaptureRequest, CaptureTool};

/// Durations (in milliseconds) of the audio/caption beats of the story.
/// The story is 40 seconds long: intro, set-up, location, public outcry,
/// painting value.
const BEATS_MS: [i64; 5] = [6_000, 8_000, 10_000, 8_000, 8_000];

/// Builds the Evening News story document of Figures 4 and 10.
///
/// The document is self-contained: every referenced data descriptor is
/// embedded in its catalog, so it can be scheduled and transported without a
/// block store. Use [`capture_news_media`] when the actual (synthetic) media
/// bytes are needed too.
pub fn evening_news() -> Result<Document> {
    let total_ms: i64 = BEATS_MS.iter().sum();

    let mut builder = DocumentBuilder::new("Evening News — stolen paintings")
        .meta("author", AttrValue::Str("CWI news desk".into()))
        .meta("language", AttrValue::Id("nl".into()))
        .channel("audio", MediaKind::Audio)
        .channel("video", MediaKind::Video)
        .channel("graphic", MediaKind::Image)
        .channel_def(
            ChannelDef::new("caption", MediaKind::Text)
                .with_extra("language", AttrValue::Id("en".into())),
        )
        .channel("label", MediaKind::Label)
        .style(StyleDef::new("caption-style").with_attr(Attr::new(
            AttrName::TFormatting,
            AttrValue::list([
                AttrValue::list([
                    AttrValue::Id("font".into()),
                    AttrValue::Id("helvetica".into()),
                ]),
                AttrValue::list([AttrValue::Id("size".into()), AttrValue::Number(14)]),
            ]),
        )))
        .style(
            StyleDef::new("label-style")
                .with_parent("caption-style")
                .with_attr(Attr::new(AttrName::Duration, AttrValue::Number(4_000))),
        );

    // Data descriptors for the story's media.
    builder = builder
        .descriptor(
            DataDescriptor::new("story3/audio", MediaKind::Audio, "pcm8")
                .with_duration(TimeMs::from_millis(total_ms))
                .with_size((total_ms * 8) as u64)
                .with_rates(RateInfo::audio(8_000, 8_000))
                .with_extra("story", AttrValue::Id("stolen-paintings".into()))
                .with_extra("language", AttrValue::Id("nl".into())),
        )
        .descriptor(
            DataDescriptor::new("story3/talking-head-1", MediaKind::Video, "rgb24")
                .with_duration(TimeMs::from_millis(10_000))
                .with_size(10 * 25 * 320 * 240 * 3)
                .with_resolution(320, 240)
                .with_color_depth(24)
                .with_rates(RateInfo::video(25.0)),
        )
        .descriptor(
            DataDescriptor::new("story3/crime-scene", MediaKind::Video, "rgb24")
                .with_duration(TimeMs::from_millis(20_000))
                .with_size(20 * 25 * 320 * 240 * 3)
                .with_resolution(320, 240)
                .with_color_depth(24)
                .with_rates(RateInfo::video(25.0)),
        )
        .descriptor(
            DataDescriptor::new("story3/talking-head-2", MediaKind::Video, "rgb24")
                .with_duration(TimeMs::from_millis(10_000))
                .with_size(10 * 25 * 320 * 240 * 3)
                .with_resolution(320, 240)
                .with_color_depth(24)
                .with_rates(RateInfo::video(25.0)),
        );
    for (key, title) in [
        ("story3/painting-one", "Irises"),
        ("story3/painting-two", "Self-portrait"),
        ("story3/insurance-graph", "Insured value 1980-1991"),
    ] {
        builder = builder.descriptor(
            DataDescriptor::new(key, MediaKind::Image, "raster24")
                .with_size(640 * 480 * 3)
                .with_resolution(640, 480)
                .with_color_depth(24)
                .with_extra("title", AttrValue::Str(title.into()))
                .with_extra("subject", AttrValue::Id("painting".into())),
        );
    }

    let caption_texts = [
        "Tonight: paintings worth ten million stolen from the museum",
        "The thieves entered through the restoration workshop",
        "Police are questioning two witnesses seen near the service entrance",
        "The insurance company had just revalued the collection",
        "The museum reopens tomorrow with reproductions on display",
    ];

    let doc = builder
        .root_seq(|news| {
            news.par("story-3", |story| {
                // Audio: one continuous narration block.
                story.ext("narration", "audio", "story3/audio");

                // Video: talking head, crime scene report, talking head.
                story.seq("video-track", |track| {
                    track.ext("talking-head-1", "video", "story3/talking-head-1");
                    track.ext("crime-scene", "video", "story3/crime-scene");
                    track.ext_with("talking-head-2", "video", "story3/talking-head-2", |n| {
                        // Figure 10: the new video sequence may not start
                        // until the caption text is over (freeze-frame arc).
                        n.arc(
                            SyncArc::hard_start("/story-3/caption-track/caption-4", "")
                                .from_source_anchor(Anchor::End)
                                .with_window(DelayMs::ZERO, MaxDelay::Unbounded),
                        );
                    });
                });

                // Graphic: three stills, start-synchronized with the audio.
                story.seq("graphic-track", |track| {
                    track.ext_with("painting-one", "graphic", "story3/painting-one", |n| {
                        n.duration_ms(12_000);
                        n.arc(SyncArc::hard_start("/story-3/narration", "").with_window(
                            DelayMs::ZERO,
                            MaxDelay::Bounded(DelayMs::from_millis(500)),
                        ));
                    });
                    track.ext_with("painting-two", "graphic", "story3/painting-two", |n| {
                        n.duration_ms(12_000);
                        // Figure 10: an arc from the end of the second
                        // caption to the start of the second graphic, with
                        // an offset.
                        n.arc(
                            SyncArc::hard_start("/story-3/caption-track/caption-2", "")
                                .from_source_anchor(Anchor::End)
                                .with_offset(MediaTime::seconds(1))
                                .with_window(
                                    DelayMs::ZERO,
                                    MaxDelay::Bounded(DelayMs::from_millis(1_000)),
                                ),
                        );
                    });
                    track.ext_with(
                        "insurance-graph",
                        "graphic",
                        "story3/insurance-graph",
                        |n| {
                            n.duration_ms(10_000);
                        },
                    );
                });

                // Caption: five beats, start-synchronized with the video.
                story.seq("caption-track", |track| {
                    for (i, (beat, text)) in BEATS_MS.iter().zip(caption_texts).enumerate() {
                        let name = format!("caption-{}", i + 1);
                        track.imm_text(&name, "caption", text, *beat);
                    }
                });

                // Label: loosely synchronized titles.
                story.seq("label-track", |track| {
                    track.imm_text("story-name", "label", "Story 3: Museum theft", 8_000);
                    track.imm_text(
                        "museum-name",
                        "label",
                        "Rijksmuseum van Moderne Kunst",
                        16_000,
                    );
                    track.imm_text("announcer-name", "label", "Anchor: J. van Dam", 16_000);
                });
            });
        })
        .build_unchecked()?;

    let mut doc = doc;
    // The caption track is start-synchronized with the video track (and not
    // with the audio), §5.3.4.
    let caption_track = doc.find("/story-3/caption-track")?;
    doc.add_arc(
        caption_track,
        SyncArc::hard_start("/story-3/video-track", "")
            .with_window(DelayMs::ZERO, MaxDelay::Bounded(DelayMs::from_millis(250))),
    )?;
    // The label channel is a May synchronization: "if the label is a little
    // late, then there is no reason for panic" (§5.3.2).
    let label_track = doc.find("/story-3/label-track")?;
    doc.add_arc(
        label_track,
        SyncArc::relaxed_start("/story-3/narration", "").with_window(
            DelayMs::ZERO,
            MaxDelay::Bounded(DelayMs::from_millis(2_000)),
        ),
    )?;

    cmif_core::validate::validate(&doc)?;
    Ok(doc)
}

/// Captures synthetic media matching [`evening_news`] into `store` and
/// returns the document (its catalog refreshed from the captured
/// descriptors' sizes is not required — the embedded catalog already
/// matches).
pub fn capture_news_media(store: &BlockStore, seed: u64) -> Result<()> {
    let mut tool = CaptureTool::new(store, seed);
    let total_ms: i64 = BEATS_MS.iter().sum();
    tool.capture(
        &CaptureRequest::audio("story3/audio", total_ms).with_attribute("language", "nl"),
    )?;
    // Keep the synthetic video small (64x48): the document's descriptors
    // describe broadcast-sized media, but the pipeline only needs bytes with
    // the right shape, not 1991 broadcast volumes in a unit-test heap.
    tool.capture(&CaptureRequest::video(
        "story3/talking-head-1",
        10_000,
        (64, 48),
        24,
    ))?;
    tool.capture(&CaptureRequest::video(
        "story3/crime-scene",
        20_000,
        (64, 48),
        24,
    ))?;
    tool.capture(&CaptureRequest::video(
        "story3/talking-head-2",
        10_000,
        (64, 48),
        24,
    ))?;
    tool.capture(&CaptureRequest::image(
        "story3/painting-one",
        (640, 480),
        24,
    ))?;
    tool.capture(&CaptureRequest::image(
        "story3/painting-two",
        (640, 480),
        24,
    ))?;
    tool.capture(&CaptureRequest::image(
        "story3/insurance-graph",
        (640, 480),
        24,
    ))?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use cmif_scheduler::{ConstraintGraph, ScheduleOptions};

    fn solve_doc(doc: &cmif_core::tree::Document) -> cmif_scheduler::SolveResult {
        ConstraintGraph::derive(doc, &doc.catalog, &ScheduleOptions::default())
            .unwrap()
            .solve(doc, &doc.catalog)
            .unwrap()
    }

    #[test]
    fn evening_news_is_valid_and_schedulable() {
        let doc = evening_news().unwrap();
        assert_eq!(doc.channels.len(), 5);
        assert!(doc.catalog.len() >= 7);
        let result = solve_doc(&doc);
        assert!(
            result.is_consistent(),
            "violations: {:?}",
            result.violations
        );
        // The story runs 40 s of narration; the freeze-frame arc pushes the
        // final talking head to the end of the fourth caption (t = 32 s), so
        // the video track ends at 42 s.
        assert_eq!(result.schedule.total_duration, TimeMs::from_secs(42));
    }

    #[test]
    fn figure10_arcs_shape_the_schedule() {
        let doc = evening_news().unwrap();
        let result = solve_doc(&doc);
        // The second painting starts one second after the second caption
        // ends (caption-1 6 s + caption-2 8 s + 1 s offset = 15 s).
        let painting_two = doc.find("/story-3/graphic-track/painting-two").unwrap();
        assert_eq!(
            result.schedule.node_times[&painting_two].0,
            TimeMs::from_secs(15)
        );
        // The final talking head waits for the fourth caption to end (32 s)
        // even though the crime-scene footage ends at 30 s.
        let head2 = doc.find("/story-3/video-track/talking-head-2").unwrap();
        assert_eq!(result.schedule.node_times[&head2].0, TimeMs::from_secs(32));
    }

    #[test]
    fn media_capture_matches_the_document() {
        let store = BlockStore::new();
        capture_news_media(&store, 7).unwrap();
        let doc = evening_news().unwrap();
        for leaf in doc.leaves() {
            if let Some(key) = doc.file_of(leaf).unwrap() {
                assert!(
                    store.descriptor(key.as_str()).is_ok(),
                    "missing media for {key}"
                );
            }
        }
    }
}
