//! The unified error type of the `cmif` umbrella crate.
//!
//! Every layer of the workspace keeps its own error enum with
//! layer-specific context (node ids, source positions with byte offsets,
//! channel names, pipeline stages, host names), and `From` conversions run
//! along the crate dependency DAG:
//!
//! ```text
//! core ← format / media / scheduler ← pipeline / distrib / hyper ← cmif::Error
//! ```
//!
//! [`Error`] is the top of that lattice: any workspace error converts into
//! it with `?`, and [`std::error::Error::source`] walks back down to the
//! layer that actually failed. Application code (the examples, integration
//! tests and benches) only needs [`cmif::Result`](crate::Result).

use std::fmt;

use cmif_core::error::CoreError;
use cmif_distrib::DistribError;
use cmif_format::FormatError;
use cmif_hyper::HyperError;
use cmif_media::MediaError;
use cmif_pipeline::PipelineError;
use cmif_scheduler::SchedulerError;

/// Result alias for application code built on the umbrella crate.
pub type Result<T> = std::result::Result<T, Error>;

/// Any error the CMIF workspace can produce, tagged by the layer it
/// surfaced from.
#[derive(Debug, Clone, PartialEq)]
pub enum Error {
    /// From `cmif-core`: the document model.
    Core(CoreError),
    /// From `cmif-format`: the interchange format (carries source
    /// positions with line, column and byte offset).
    Format(FormatError),
    /// From `cmif-media`: blocks, stores and codecs.
    Media(MediaError),
    /// From `cmif-scheduler`: constraint solving and playback.
    Scheduler(SchedulerError),
    /// From `cmif-pipeline`: the CWI/Multimedia Pipeline (carries the
    /// failing stage).
    Pipeline(PipelineError),
    /// From `cmif-distrib`: the simulated distributed store.
    Distrib(DistribError),
    /// From `cmif-hyper`: links, conditional arcs and navigation.
    Hyper(HyperError),
}

impl Error {
    /// The name of the layer the error surfaced from.
    pub fn layer(&self) -> &'static str {
        match self {
            Error::Core(_) => "core",
            Error::Format(_) => "format",
            Error::Media(_) => "media",
            Error::Scheduler(_) => "scheduler",
            Error::Pipeline(_) => "pipeline",
            Error::Distrib(_) => "distrib",
            Error::Hyper(_) => "hyper",
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Core(e) => write!(f, "cmif core: {e}"),
            Error::Format(e) => write!(f, "cmif format: {e}"),
            Error::Media(e) => write!(f, "cmif media: {e}"),
            Error::Scheduler(e) => write!(f, "cmif scheduler: {e}"),
            Error::Pipeline(e) => write!(f, "cmif pipeline: {e}"),
            Error::Distrib(e) => write!(f, "cmif distrib: {e}"),
            Error::Hyper(e) => write!(f, "cmif hyper: {e}"),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Core(e) => Some(e),
            Error::Format(e) => Some(e),
            Error::Media(e) => Some(e),
            Error::Scheduler(e) => Some(e),
            Error::Pipeline(e) => Some(e),
            Error::Distrib(e) => Some(e),
            Error::Hyper(e) => Some(e),
        }
    }
}

impl From<CoreError> for Error {
    fn from(e: CoreError) -> Self {
        Error::Core(e)
    }
}

impl From<FormatError> for Error {
    fn from(e: FormatError) -> Self {
        Error::Format(e)
    }
}

impl From<MediaError> for Error {
    fn from(e: MediaError) -> Self {
        Error::Media(e)
    }
}

impl From<SchedulerError> for Error {
    fn from(e: SchedulerError) -> Self {
        Error::Scheduler(e)
    }
}

impl From<PipelineError> for Error {
    fn from(e: PipelineError) -> Self {
        Error::Pipeline(e)
    }
}

impl From<DistribError> for Error {
    fn from(e: DistribError) -> Self {
        Error::Distrib(e)
    }
}

impl From<HyperError> for Error {
    fn from(e: HyperError) -> Self {
        Error::Hyper(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::error::Error as StdError;

    #[test]
    fn every_layer_converts() {
        let layers: Vec<Error> = vec![
            CoreError::EmptyDocument.into(),
            FormatError::UnexpectedEof.into(),
            MediaError::UnknownBlock { key: "x".into() }.into(),
            SchedulerError::ConstraintCycle {
                phase: "solve",
                points: 2,
            }
            .into(),
            PipelineError::from(CoreError::EmptyDocument).into(),
            DistribError::UnknownHost { host: "vax".into() }.into(),
            HyperError::Core(CoreError::EmptyDocument).into(),
        ];
        let names: Vec<&str> = layers.iter().map(Error::layer).collect();
        assert_eq!(
            names,
            [
                "core",
                "format",
                "media",
                "scheduler",
                "pipeline",
                "distrib",
                "hyper"
            ]
        );
    }

    #[test]
    fn sources_walk_back_down_the_dag() {
        // distrib wraps format wraps nothing: the chain has two hops.
        let err: Error = DistribError::Format(FormatError::UnexpectedEof).into();
        let distrib = err.source().expect("distrib source");
        let format = distrib.source().expect("format source");
        assert!(format.to_string().contains("end of input"));
        assert!(format.source().is_none());
    }

    #[test]
    fn display_prefixes_the_layer() {
        let err: Error = CoreError::EmptyDocument.into();
        assert!(err.to_string().starts_with("cmif core:"));
    }
}
