//! Integration tests: the interchange format round-trips real documents and
//! the scheduler sees the same document on both sides.

use cmif::core::prelude::*;
use cmif::format::{
    document_to_bytes, parse_document, read_document_bytes, write_document, WireEncoding,
};
use cmif::news::evening_news;
use cmif::scheduler::{ConstraintGraph, ScheduleOptions};
use cmif::synthetic::{balanced_tree, SyntheticNews};
use proptest::prelude::*;

fn schedules_match(a: &Document, b: &Document) {
    let options = ScheduleOptions::default();
    let result_a = ConstraintGraph::derive(a, &a.catalog, &options)
        .unwrap()
        .solve(a, &a.catalog)
        .unwrap();
    let result_b = ConstraintGraph::derive(b, &b.catalog, &options)
        .unwrap()
        .solve(b, &b.catalog)
        .unwrap();
    assert_eq!(
        result_a.schedule.total_duration,
        result_b.schedule.total_duration
    );
    assert_eq!(
        result_a.schedule.entries.len(),
        result_b.schedule.entries.len()
    );
    for (ea, eb) in result_a
        .schedule
        .entries
        .iter()
        .zip(&result_b.schedule.entries)
    {
        assert_eq!(ea.name, eb.name);
        assert_eq!(ea.channel, eb.channel);
        assert_eq!(ea.begin, eb.begin);
        assert_eq!(ea.end, eb.end);
    }
    assert_eq!(result_a.violations.len(), result_b.violations.len());
}

/// The four-way fixed point both interchange forms must hold:
/// text → parse → binary → decode → text is byte-identical to the first
/// text, and a second binary generation is byte-identical to the first.
/// Once a document has been through either codec, nothing about its wire
/// representation ever drifts again.
fn four_way_fixed_point(doc: &Document) {
    let text_1 = write_document(doc).unwrap();
    let parsed = parse_document(&text_1).unwrap();
    let binary_1 = document_to_bytes(&parsed, WireEncoding::Binary).unwrap();
    let (decoded, encoding) = read_document_bytes(&binary_1).unwrap();
    assert_eq!(encoding, WireEncoding::Binary);
    let text_2 = write_document(&decoded).unwrap();
    assert_eq!(text_1, text_2, "text drifted across a binary round trip");
    let binary_2 = document_to_bytes(&decoded, WireEncoding::Binary).unwrap();
    assert_eq!(binary_1, binary_2, "binary encoding is not deterministic");
    assert!(
        binary_1.len() < text_1.len(),
        "binary ({}) must be smaller than text ({})",
        binary_1.len(),
        text_1.len()
    );
}

#[test]
fn evening_news_round_trips_through_the_interchange_format() {
    let doc = evening_news().unwrap();
    let text = write_document(&doc).unwrap();
    let parsed = parse_document(&text).unwrap();

    assert_eq!(parsed.channels, doc.channels);
    assert_eq!(parsed.styles, doc.styles);
    assert_eq!(parsed.catalog, doc.catalog);
    assert_eq!(parsed.meta, doc.meta);
    assert_eq!(parsed.leaves().len(), doc.leaves().len());
    assert_eq!(parsed.arcs().len(), doc.arcs().len());
    schedules_match(&doc, &parsed);

    // The second generation of text is identical to the first: the format is
    // a fixed point after one round trip.
    let text_again = write_document(&parsed).unwrap();
    assert_eq!(text, text_again);
}

#[test]
fn synthetic_broadcasts_round_trip_at_every_size() {
    for stories in [1, 2, 5, 10] {
        let doc = SyntheticNews::with_stories(stories).build().unwrap();
        let text = write_document(&doc).unwrap();
        let parsed = parse_document(&text).unwrap();
        assert_eq!(
            parsed.leaves().len(),
            doc.leaves().len(),
            "stories = {stories}"
        );
        assert_eq!(parsed.arcs().len(), doc.arcs().len());
        schedules_match(&doc, &parsed);
    }
}

#[test]
fn evening_news_holds_the_four_way_fixed_point() {
    let doc = evening_news().unwrap();
    four_way_fixed_point(&doc);
    // The binary decode also schedules identically to the original.
    let binary = document_to_bytes(&doc, WireEncoding::Binary).unwrap();
    let (decoded, _) = read_document_bytes(&binary).unwrap();
    assert_eq!(decoded.channels, doc.channels);
    assert_eq!(decoded.styles, doc.styles);
    assert_eq!(decoded.catalog, doc.catalog);
    assert_eq!(decoded.meta, doc.meta);
    assert_eq!(decoded.arcs().len(), doc.arcs().len());
    schedules_match(&doc, &decoded);
}

#[test]
fn synthetic_broadcasts_hold_the_four_way_fixed_point_at_every_size() {
    for stories in [1, 2, 5, 10] {
        let doc = SyntheticNews::with_stories(stories).build().unwrap();
        four_way_fixed_point(&doc);
    }
}

#[test]
fn structure_text_is_small_compared_to_referenced_media() {
    let doc = evening_news().unwrap();
    let text = write_document(&doc).unwrap();
    let stats = cmif::core::stats::stats(&doc, &doc.catalog).unwrap();
    assert!(
        text.len() < 16 * 1024,
        "structure text is {} bytes",
        text.len()
    );
    assert!(stats.referenced_data_bytes > 10 * 1_000_000);
    assert!(stats.data_to_structure_ratio() > 100.0);
}

#[test]
fn parse_rejects_truncated_documents() {
    let doc = evening_news().unwrap();
    let text = write_document(&doc).unwrap();
    let truncated = &text[..text.len() / 2];
    assert!(parse_document(truncated).is_err());
}

#[test]
fn tree_views_render_for_parsed_documents() {
    let doc = evening_news().unwrap();
    let text = write_document(&doc).unwrap();
    let parsed = parse_document(&text).unwrap();
    let conventional = cmif::format::conventional_view(&parsed).unwrap();
    let embedded = cmif::format::embedded_view(&parsed).unwrap();
    assert_eq!(conventional.lines().count(), parsed.preorder().len());
    assert!(embedded.contains("[seq caption-track"));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Balanced trees of any shape survive the round trip with identical
    /// node-kind counts, depth and leaf count.
    #[test]
    fn balanced_trees_round_trip(depth in 1usize..5, fanout in 1usize..5) {
        let doc = balanced_tree(depth, fanout).unwrap();
        let text = write_document(&doc).unwrap();
        let parsed = parse_document(&text).unwrap();
        prop_assert_eq!(parsed.depth(), doc.depth());
        prop_assert_eq!(parsed.leaves().len(), doc.leaves().len());
        prop_assert_eq!(
            cmif::synthetic::node_kind_counts(&parsed),
            cmif::synthetic::node_kind_counts(&doc)
        );
        let text_again = write_document(&parsed).unwrap();
        prop_assert_eq!(text, text_again);
        four_way_fixed_point(&doc);
    }

    /// Synthetic broadcasts of any parameterisation stay schedulable and
    /// consistent after a round trip.
    #[test]
    fn synthetic_news_round_trips(
        stories in 1usize..4,
        captions in 1usize..6,
        graphics in 1usize..4,
        explicit_arcs in proptest::bool::ANY,
    ) {
        let config = SyntheticNews {
            stories,
            captions_per_story: captions,
            graphics_per_story: graphics,
            explicit_arcs,
            story_seconds: 20,
        };
        let doc = config.build().unwrap();
        let parsed = parse_document(&write_document(&doc).unwrap()).unwrap();
        let result = ConstraintGraph::derive(&parsed, &parsed.catalog, &ScheduleOptions::default())
            .unwrap()
            .solve(&parsed, &parsed.catalog)
            .unwrap();
        prop_assert!(result.is_consistent());
        prop_assert_eq!(parsed.leaves().len(), config.expected_events());
        four_way_fixed_point(&doc);
    }
}
