//! Soundness of the static analyser, property-tested over the synthetic
//! news generator: a lint-clean verdict must imply the scheduler can
//! actually schedule the document (no structural error, no cycle), and
//! every span the analyser attaches must point inside the source buffer
//! it claims to describe.

use cmif::core::diag::codes;
use cmif::format::{parse_document_unvalidated, write_document};
use cmif::lint::Linter;
use cmif::scheduler::{ConstraintGraph, ScheduleOptions};
use cmif::synthetic::SyntheticNews;
use proptest::{prop_assert, proptest, ProptestConfig};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Lint-clean implies schedulable: whatever the generator produces,
    /// if the full registry reports no deny-severity finding then solving
    /// must succeed — the analyser is only allowed to err on the side of
    /// reporting, never to wave a truly broken document through.
    #[test]
    fn lint_clean_documents_always_solve(
        stories in 1usize..5,
        captions in 0usize..5,
        graphics in 0usize..4,
        explicit_arcs in proptest::bool::ANY,
    ) {
        let doc = SyntheticNews {
            stories,
            story_seconds: 10,
            captions_per_story: captions,
            graphics_per_story: graphics,
            explicit_arcs,
        }
        .build()
        .unwrap();
        let report = Linter::new().check(&doc);
        prop_assert!(
            !report.has_deny(),
            "generator produced a denied document: {}",
            report.render(None)
        );
        let solved = ConstraintGraph::derive(&doc, &doc.catalog, &ScheduleOptions::default())
            .and_then(|mut g| g.solve(&doc, &doc.catalog));
        prop_assert!(solved.is_ok(), "lint-clean but unsolvable: {solved:?}");
    }

    /// Every diagnostic produced for a *parsed* document carries spans that
    /// lie within the source buffer, start before end, and survive the
    /// write → parse round trip of the document itself.
    #[test]
    fn diagnostic_spans_stay_inside_the_source_buffer(
        stories in 1usize..4,
        captions in 0usize..4,
    ) {
        let doc = SyntheticNews {
            stories,
            story_seconds: 5,
            captions_per_story: captions,
            graphics_per_story: 1,
            explicit_arcs: true,
        }
        .build()
        .unwrap();
        let text = write_document(&doc).unwrap();
        let parsed = parse_document_unvalidated(&text).unwrap();
        // Lint with depth/size limits tightened until *something* fires,
        // so the span property is exercised on every case.
        let limits = cmif::lint::Limits { max_depth: 1, max_nodes: 1 };
        let report = Linter::new().with_limits(limits).check(&parsed);
        prop_assert!(!report.is_clean());
        for diag in report.diagnostics() {
            let spans = diag
                .span
                .iter()
                .chain(diag.related.iter().filter_map(|r| r.span.as_ref()));
            for span in spans {
                prop_assert!(span.start.offset <= span.end.offset, "inverted span {span:?}");
                prop_assert!(
                    span.end.offset <= text.len(),
                    "span {span:?} escapes the {}-byte buffer",
                    text.len()
                );
            }
        }
    }
}

/// Regression: the cycle diagnostic must list the exact route of the
/// injected arcs — both node paths, in the begin-to-begin chain the two
/// arcs form — not merely report "a cycle exists somewhere".
#[test]
fn the_cycle_diagnostic_lists_the_injected_arc_route() {
    let source = r#"(cmif
  (channels
    (channel caption text)
    (channel banner text))
  (par (name story)
    (imm (name line) (channel caption) (duration 3000)
      (sync_arc begin must begin "../banner" 1000 ms "" 0 inf)
      (data "first"))
    (imm (name banner) (channel banner) (duration 3000)
      (sync_arc begin must begin "../line" 1000 ms "" 0 inf)
      (data "second"))))
"#;
    let doc = parse_document_unvalidated(source).unwrap();
    let report = Linter::new().check(&doc);
    let cycle = report
        .diagnostics()
        .iter()
        .find(|d| d.code == codes::ARC_CYCLE)
        .expect("the cycle is reported");

    // The route walks begin(line) -> begin(banner) -> begin(line) (or the
    // rotation starting at banner); either way both paths appear, and the
    // route is phrased in event points.
    assert!(cycle.message.contains("begin(/line)"), "{}", cycle.message);
    assert!(
        cycle.message.contains("begin(/banner)"),
        "{}",
        cycle.message
    );
    // Each arc of the cycle is attached as a related note carrying the
    // carrier's path and the arc's source span.
    let arcs: Vec<_> = cycle
        .related
        .iter()
        .filter(|r| r.message.contains("explicit arc"))
        .collect();
    assert_eq!(arcs.len(), 2, "{:#?}", cycle.related);
    assert!(arcs.iter().any(|r| r.message.contains("/line")));
    assert!(arcs.iter().any(|r| r.message.contains("/banner")));
    assert!(arcs.iter().all(|r| r.span.is_some()));
}
