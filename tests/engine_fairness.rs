//! Multi-tenant fairness tests for the engine's weighted-fair run queue:
//! a tenant flooding the queue with thousands of documents must not delay
//! a one-document tenant (the stride scheduler interleaves tenants, it
//! does not FIFO the whole backlog), and a per-tenant quota must refuse
//! the noisy tenant without touching its neighbours.

use std::sync::Arc;
use std::time::{Duration, Instant};

use cmif::core::tree::Document;
use cmif::scheduler::{
    Engine, EngineConfig, JitterModel, QuotaConfig, SchedulerError, Submission, TenantId,
    TenantPolicy,
};
use cmif::synthetic::SyntheticNews;

fn doc() -> Arc<Document> {
    Arc::new(SyntheticNews::with_stories(1).build().unwrap())
}

fn submission(document: &Arc<Document>, seed: u64, tenant: TenantId) -> Submission {
    Submission::new(Arc::clone(document), JitterModel::uniform(80, seed)).tenant(tenant)
}

#[test]
fn a_flooding_tenant_does_not_starve_a_one_document_tenant() {
    const FLOOD: usize = 10_000;
    let noisy = TenantId::new(1);
    let quiet = TenantId::new(2);
    let engine = Engine::new(EngineConfig {
        workers: 2,
        ..EngineConfig::default()
    });
    let document = doc();

    // Idle-engine baseline: the quiet tenant alone, once to warm the
    // workers and once timed.
    engine.wait(engine.admit(submission(&document, 0, quiet)).unwrap());
    let started = Instant::now();
    let id = engine.admit(submission(&document, 1, quiet)).unwrap();
    assert!(engine.wait(id).is_ok());
    let idle_latency = started.elapsed();

    // The noisy tenant floods ten thousand documents in one batch...
    engine
        .submit_batch((0..FLOOD).map(|i| submission(&document, i as u64, noisy)))
        .expect("the queue is unbounded");

    // ...and the quiet tenant's single document still comes right through.
    let started = Instant::now();
    let id = engine.admit(submission(&document, 2, quiet)).unwrap();
    let outcome = engine.wait(id);
    let contended_latency = started.elapsed();
    let backlog_at_completion = engine.backlog();
    assert!(outcome.is_ok(), "{:?}", outcome.result);
    assert_eq!(outcome.tenant, quiet);

    // The flood must still be mostly queued when the quiet document
    // finishes — otherwise this run proved nothing about fairness.
    assert!(
        backlog_at_completion > FLOOD / 2,
        "the flood nearly drained before the quiet tenant completed \
         (backlog {backlog_at_completion}); fairness was not exercised"
    );
    // Completion latency bounded by a small constant multiple of the idle
    // run (the generous slack absorbs CI scheduling noise; a FIFO queue
    // would be seconds here, three orders of magnitude over the bound).
    let bound = idle_latency * 64 + Duration::from_millis(250);
    assert!(
        contended_latency < bound,
        "quiet tenant took {contended_latency:?} behind a {FLOOD}-document flood \
         (idle {idle_latency:?}, bound {bound:?})"
    );

    // Nothing of the flood is lost, and the stats split per tenant.
    let drained = engine.drain();
    assert_eq!(drained.len(), FLOOD);
    assert!(drained.iter().all(|o| o.tenant == noisy && o.is_ok()));
    let stats = engine.tenant_stats();
    let row = |tenant: TenantId| {
        stats
            .iter()
            .find(|s| s.tenant == tenant)
            .unwrap_or_else(|| panic!("{tenant} missing from tenant_stats"))
    };
    assert_eq!(row(noisy).submitted, FLOOD as u64);
    assert_eq!(row(noisy).completed, FLOOD as u64);
    assert_eq!(row(quiet).submitted, 3);
    assert_eq!(row(quiet).ok, 3);
    engine.shutdown();
}

#[test]
fn a_quota_refuses_the_noisy_tenant_without_touching_its_neighbour() {
    let noisy = TenantId::new(1);
    let quiet = TenantId::new(2);
    let engine = Engine::new(EngineConfig {
        workers: 1,
        ..EngineConfig::default()
    });
    // Five admissions of burst, no refill: the sixth must be refused
    // forever (retry_after_ms == u64::MAX).
    engine.set_tenant_policy(
        noisy,
        TenantPolicy::default().with_quota(QuotaConfig::new(5, 0.0)),
    );
    let document = doc();

    let mut admitted = 0usize;
    let mut refused = 0usize;
    for i in 0..10u64 {
        match engine.admit(submission(&document, i, noisy)) {
            Ok(_) => admitted += 1,
            Err(SchedulerError::QuotaExceeded {
                tenant,
                retry_after_ms,
            }) => {
                assert_eq!(tenant, noisy);
                assert_eq!(retry_after_ms, u64::MAX, "a dead bucket never refills");
                refused += 1;
            }
            Err(other) => panic!("unexpected admission error: {other}"),
        }
    }
    assert_eq!((admitted, refused), (5, 5));

    // The neighbour is not subject to the noisy tenant's policy.
    for i in 0..10u64 {
        engine
            .admit(submission(&document, i, quiet))
            .expect("the quiet tenant has no quota");
    }
    let outcomes = engine.drain();
    assert_eq!(outcomes.len(), 15);
    assert!(outcomes.iter().all(|o| o.is_ok()));

    let stats = engine.tenant_stats();
    let noisy_row = stats.iter().find(|s| s.tenant == noisy).unwrap();
    assert_eq!(noisy_row.quota_refusals, 5);
    assert_eq!(noisy_row.completed, 5);
    engine.shutdown();
}
