//! Concurrent-admission tests for the engine's bounded queue: N producer
//! threads racing `try_submit`/`submit`/`wait` against a small
//! `max_backlog`, with a final `drain` — no outcome may be lost or
//! delivered twice, the drained tail must come back in admission order,
//! and the backlog must respect its bound the whole time.

use std::collections::HashSet;
use std::sync::Arc;
use std::thread;

use cmif::core::tree::Document;
use cmif::scheduler::{DocId, DocOutcome, Engine, EngineConfig, JitterModel, SchedulerError};
use cmif::synthetic::SyntheticNews;

fn doc() -> Arc<Document> {
    Arc::new(SyntheticNews::with_stories(1).build().unwrap())
}

const MAX_BACKLOG: usize = 4;
const WORKERS: usize = 2;
const PRODUCERS: usize = 4;
const DOCS_PER_PRODUCER: usize = 24;

/// What one producer thread brought home: the ids it was issued and the
/// outcomes it already collected itself via `wait`.
struct ProducerReport {
    admitted: Vec<DocId>,
    collected: Vec<DocOutcome>,
}

#[test]
fn racing_producers_lose_no_outcome_and_drain_in_admission_order() {
    let engine = Arc::new(Engine::new(EngineConfig {
        workers: WORKERS,
        max_backlog: Some(MAX_BACKLOG),
        ..EngineConfig::default()
    }));
    let document = doc();

    let producers: Vec<_> = (0..PRODUCERS)
        .map(|producer| {
            let engine = Arc::clone(&engine);
            let document = Arc::clone(&document);
            thread::spawn(move || {
                let mut admitted = Vec::new();
                let mut collected = Vec::new();
                for i in 0..DOCS_PER_PRODUCER {
                    let jitter = JitterModel::uniform(80, (producer * 1_000 + i) as u64);
                    let id = if i % 2 == 0 {
                        // Non-blocking half: spin on Backpressure like a
                        // latency-sensitive client would.
                        loop {
                            match engine.try_submit(Arc::clone(&document), jitter.clone()) {
                                Ok(id) => break id,
                                Err(SchedulerError::Backpressure { backlog }) => {
                                    // The refusal itself must respect the bound.
                                    assert!(backlog <= MAX_BACKLOG + WORKERS);
                                    thread::yield_now();
                                }
                                Err(other) => panic!("unexpected admission error: {other}"),
                            }
                        }
                    } else {
                        // Blocking half.
                        engine
                            .submit(Arc::clone(&document), jitter)
                            .expect("engine is open")
                    };
                    assert!(
                        engine.backlog() <= MAX_BACKLOG + WORKERS,
                        "backlog exceeded its bound"
                    );
                    admitted.push(id);
                    // Collect a third of our own outcomes concurrently with
                    // everyone else's admissions and the final drain.
                    if i % 3 == 0 {
                        collected.push(engine.wait(id));
                    }
                }
                ProducerReport {
                    admitted,
                    collected,
                }
            })
        })
        .collect();

    let reports: Vec<ProducerReport> = producers
        .into_iter()
        .map(|p| p.join().expect("producer thread panicked"))
        .collect();
    let drained = engine.drain();

    // Drained outcomes come back in admission order.
    let drained_ids: Vec<DocId> = drained.iter().map(|o| o.id).collect();
    let mut sorted = drained_ids.clone();
    sorted.sort();
    assert_eq!(drained_ids, sorted, "drain broke admission order");

    // Every admitted document has exactly one outcome, delivered either to
    // the producer that waited on it or to the final drain — none lost,
    // none duplicated.
    let mut seen: HashSet<DocId> = HashSet::new();
    for outcome in reports.iter().flat_map(|r| &r.collected).chain(&drained) {
        assert!(seen.insert(outcome.id), "{} delivered twice", outcome.id);
        assert!(outcome.is_ok(), "{}: {:?}", outcome.id, outcome.result);
    }
    let admitted: HashSet<DocId> = reports.iter().flat_map(|r| &r.admitted).copied().collect();
    assert_eq!(admitted.len(), PRODUCERS * DOCS_PER_PRODUCER);
    assert_eq!(seen, admitted, "outcomes lost or invented");
    assert_eq!(engine.undelivered(), 0);
}

#[test]
fn close_races_cleanly_with_producers() {
    // Producers hammer a bounded engine while the main thread closes it:
    // every admission must either succeed (outcome delivered) or fail with
    // EngineClosed/Backpressure — and drain must account for exactly the
    // successful ones.
    let engine = Arc::new(Engine::new(EngineConfig {
        workers: 2,
        max_backlog: Some(2),
        ..EngineConfig::default()
    }));
    let document = doc();

    let producers: Vec<_> = (0..3)
        .map(|producer| {
            let engine = Arc::clone(&engine);
            let document = Arc::clone(&document);
            thread::spawn(move || {
                let mut admitted = 0usize;
                for i in 0..64 {
                    let jitter = JitterModel::uniform(50, (producer * 64 + i) as u64);
                    match engine.submit(Arc::clone(&document), jitter) {
                        Ok(_) => admitted += 1,
                        Err(SchedulerError::EngineClosed) => break,
                        Err(other) => panic!("unexpected admission error: {other}"),
                    }
                }
                admitted
            })
        })
        .collect();

    // Let some admissions through, then slam the door.
    while engine.backlog() == 0 && engine.undelivered() == 0 {
        thread::yield_now();
    }
    engine.close();
    let admitted: usize = producers
        .into_iter()
        .map(|p| p.join().expect("producer thread panicked"))
        .sum();
    let outcomes = engine.drain();
    assert_eq!(outcomes.len(), admitted, "drain lost an admitted outcome");
    assert!(outcomes.iter().all(DocOutcome::is_ok));
    assert!(matches!(
        engine.try_submit(document, JitterModel::ideal()),
        Err(SchedulerError::EngineClosed)
    ));
}
