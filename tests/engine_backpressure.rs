//! Concurrent-admission tests for the engine's bounded queue: N producer
//! threads racing `try_submit`/`submit`/`wait` against a small
//! `max_backlog`, with a final `drain` — no outcome may be lost or
//! delivered twice, the drained tail must come back in admission order,
//! and the backlog must respect its bound the whole time.

use std::collections::HashSet;
use std::sync::{Arc, Condvar, Mutex};
use std::thread;

use cmif::core::tree::Document;
use cmif::scheduler::{
    DocId, DocOutcome, Engine, EngineConfig, JitterModel, JobHook, SchedulerError,
};
use cmif::synthetic::SyntheticNews;

fn doc() -> Arc<Document> {
    Arc::new(SyntheticNews::with_stories(1).build().unwrap())
}

const MAX_BACKLOG: usize = 4;
const WORKERS: usize = 2;
const PRODUCERS: usize = 4;
const DOCS_PER_PRODUCER: usize = 24;

/// What one producer thread brought home: the ids it was issued and the
/// outcomes it already collected itself via `wait`.
struct ProducerReport {
    admitted: Vec<DocId>,
    collected: Vec<DocOutcome>,
}

#[test]
fn racing_producers_lose_no_outcome_and_drain_in_admission_order() {
    let engine = Arc::new(Engine::new(EngineConfig {
        workers: WORKERS,
        max_backlog: Some(MAX_BACKLOG),
        ..EngineConfig::default()
    }));
    let document = doc();

    let producers: Vec<_> = (0..PRODUCERS)
        .map(|producer| {
            let engine = Arc::clone(&engine);
            let document = Arc::clone(&document);
            thread::spawn(move || {
                let mut admitted = Vec::new();
                let mut collected = Vec::new();
                for i in 0..DOCS_PER_PRODUCER {
                    let jitter = JitterModel::uniform(80, (producer * 1_000 + i) as u64);
                    let id = if i % 2 == 0 {
                        // Non-blocking half: spin on Backpressure like a
                        // latency-sensitive client would.
                        loop {
                            match engine.try_submit(Arc::clone(&document), jitter.clone()) {
                                Ok(id) => break id,
                                Err(SchedulerError::Backpressure { backlog }) => {
                                    // The refusal itself must respect the bound.
                                    assert!(backlog <= MAX_BACKLOG + WORKERS);
                                    thread::yield_now();
                                }
                                Err(other) => panic!("unexpected admission error: {other}"),
                            }
                        }
                    } else {
                        // Blocking half.
                        engine
                            .submit(Arc::clone(&document), jitter)
                            .expect("engine is open")
                    };
                    assert!(
                        engine.backlog() <= MAX_BACKLOG + WORKERS,
                        "backlog exceeded its bound"
                    );
                    admitted.push(id);
                    // Collect a third of our own outcomes concurrently with
                    // everyone else's admissions and the final drain.
                    if i % 3 == 0 {
                        collected.push(engine.wait(id));
                    }
                }
                ProducerReport {
                    admitted,
                    collected,
                }
            })
        })
        .collect();

    let reports: Vec<ProducerReport> = producers
        .into_iter()
        .map(|p| p.join().expect("producer thread panicked"))
        .collect();
    let drained = engine.drain();

    // Drained outcomes come back in admission order.
    let drained_ids: Vec<DocId> = drained.iter().map(|o| o.id).collect();
    let mut sorted = drained_ids.clone();
    sorted.sort();
    assert_eq!(drained_ids, sorted, "drain broke admission order");

    // Every admitted document has exactly one outcome, delivered either to
    // the producer that waited on it or to the final drain — none lost,
    // none duplicated.
    let mut seen: HashSet<DocId> = HashSet::new();
    for outcome in reports.iter().flat_map(|r| &r.collected).chain(&drained) {
        assert!(seen.insert(outcome.id), "{} delivered twice", outcome.id);
        assert!(outcome.is_ok(), "{}: {:?}", outcome.id, outcome.result);
    }
    let admitted: HashSet<DocId> = reports.iter().flat_map(|r| &r.admitted).copied().collect();
    assert_eq!(admitted.len(), PRODUCERS * DOCS_PER_PRODUCER);
    assert_eq!(seen, admitted, "outcomes lost or invented");
    assert_eq!(engine.undelivered(), 0);
}

/// A manually opened gate the job hook parks every running job on.
struct StallGate {
    stalled: Mutex<bool>,
    opened: Condvar,
}

impl StallGate {
    fn new() -> Arc<StallGate> {
        Arc::new(StallGate {
            stalled: Mutex::new(true),
            opened: Condvar::new(),
        })
    }

    fn hold(&self) {
        let mut stalled = self.stalled.lock().unwrap();
        while *stalled {
            stalled = self.opened.wait(stalled).unwrap();
        }
    }

    fn open(&self) {
        *self.stalled.lock().unwrap() = false;
        self.opened.notify_all();
    }
}

#[test]
fn blocked_submitters_are_admitted_in_arrival_order() {
    // Regression test for condvar wake-order starvation: before the FIFO
    // ticket gate, submitters parked on the capacity condvar raced on
    // every wakeup, so an unlucky early submitter could be overtaken
    // indefinitely by late arrivals. Arrival order is sequenced here via
    // `waiting_submitters()`, so the assertion below is deterministic:
    // admission order (DocId order) must equal arrival order.
    const LATE_PRODUCERS: usize = 8;
    let gate = StallGate::new();
    let hook_gate = Arc::clone(&gate);
    let engine = Arc::new(Engine::new(EngineConfig {
        workers: 1,
        max_backlog: Some(1),
        job_hook: Some(JobHook::new(move |_| hook_gate.hold())),
        ..EngineConfig::default()
    }));
    let document = doc();

    // One document stalled inside the worker, one filling the single
    // backlog slot: every further submit must park in the ticket gate.
    engine
        .submit(Arc::clone(&document), JitterModel::ideal())
        .unwrap();
    while engine.queue_stats().dispatched() == 0 {
        thread::yield_now();
    }
    engine
        .submit(Arc::clone(&document), JitterModel::ideal())
        .unwrap();

    let admissions: Arc<Mutex<Vec<(usize, DocId)>>> = Arc::new(Mutex::new(Vec::new()));
    let producers: Vec<_> = (0..LATE_PRODUCERS)
        .map(|producer| {
            let worker_engine = Arc::clone(&engine);
            let document = Arc::clone(&document);
            let admissions = Arc::clone(&admissions);
            let handle = thread::spawn(move || {
                let id = worker_engine
                    .submit(document, JitterModel::ideal())
                    .expect("engine stays open");
                admissions.lock().unwrap().push((producer, id));
            });
            // Only spawn the next producer once this one is parked in the
            // gate — that pins the arrival order to the producer index.
            while engine.waiting_submitters() < producer + 1 {
                thread::yield_now();
            }
            handle
        })
        .collect();

    gate.open();
    for producer in producers {
        producer.join().expect("producer thread panicked");
    }

    let mut admissions = Arc::into_inner(admissions)
        .expect("all producers joined")
        .into_inner()
        .unwrap();
    admissions.sort_by_key(|&(_, id)| id);
    let admitted_order: Vec<usize> = admissions.iter().map(|&(producer, _)| producer).collect();
    assert_eq!(
        admitted_order,
        (0..LATE_PRODUCERS).collect::<Vec<_>>(),
        "a late submitter overtook an earlier one"
    );

    let outcomes = engine.drain();
    assert_eq!(outcomes.len(), 2 + LATE_PRODUCERS);
    assert!(outcomes.iter().all(DocOutcome::is_ok));
}

#[test]
fn close_races_cleanly_with_producers() {
    // Producers hammer a bounded engine while the main thread closes it:
    // every admission must either succeed (outcome delivered) or fail with
    // EngineClosed/Backpressure — and drain must account for exactly the
    // successful ones.
    let engine = Arc::new(Engine::new(EngineConfig {
        workers: 2,
        max_backlog: Some(2),
        ..EngineConfig::default()
    }));
    let document = doc();

    let producers: Vec<_> = (0..3)
        .map(|producer| {
            let engine = Arc::clone(&engine);
            let document = Arc::clone(&document);
            thread::spawn(move || {
                let mut admitted = 0usize;
                for i in 0..64 {
                    let jitter = JitterModel::uniform(50, (producer * 64 + i) as u64);
                    match engine.submit(Arc::clone(&document), jitter) {
                        Ok(_) => admitted += 1,
                        Err(SchedulerError::EngineClosed) => break,
                        Err(other) => panic!("unexpected admission error: {other}"),
                    }
                }
                admitted
            })
        })
        .collect();

    // Let some admissions through, then slam the door.
    while engine.backlog() == 0 && engine.undelivered() == 0 {
        thread::yield_now();
    }
    engine.close();
    let admitted: usize = producers
        .into_iter()
        .map(|p| p.join().expect("producer thread panicked"))
        .sum();
    let outcomes = engine.drain();
    assert_eq!(outcomes.len(), admitted, "drain lost an admitted outcome");
    assert!(outcomes.iter().all(DocOutcome::is_ok));
    assert!(matches!(
        engine.try_submit(document, JitterModel::ideal()),
        Err(SchedulerError::EngineClosed)
    ));
}
