//! Integration tests: the whole pipeline, the distributed store and the
//! baselines working together on the paper's example document.

use std::collections::BTreeSet;

use cmif::baselines::{conversion_loss, to_static, MuseTimeline};
use cmif::core::channel::MediaKind;
use cmif::distrib::network::{Link, Network};
use cmif::distrib::store::DistributedStore;
use cmif::distrib::transport::referenced_keys;
use cmif::media::store::BlockStore;
use cmif::media::{index_store, MediaGenerator, Query};
use cmif::news::{capture_news_media, evening_news};
use cmif::pipeline::constraint::DeviceProfile;
use cmif::pipeline::pipeline::PipelineBuilder;
use cmif::scheduler::{ConstraintGraph, JitterModel, ScheduleOptions};

#[test]
fn evening_news_presents_on_a_workstation() {
    let store = BlockStore::new();
    capture_news_media(&store, 7).unwrap();
    let doc = evening_news().unwrap();
    let run = PipelineBuilder::new(DeviceProfile::workstation())
        .run(&doc, &store)
        .unwrap();
    assert!(run.is_presentable(), "conflicts: {}", run.conflicts);
    assert!(run.filter_plan.is_identity());
    assert_eq!(run.presentation.len(), 5);
    assert!(run.presentation.overlapping_regions().is_empty());
    let playback = run.playback.unwrap();
    assert_eq!(playback.must_violations, 0);
    assert_eq!(playback.total_duration, run.solve.schedule.total_duration);
}

#[test]
fn constraint_filtering_shrinks_media_for_the_low_end_pc() {
    let store = BlockStore::new();
    capture_news_media(&store, 7).unwrap();
    let before = store.total_bytes();
    let doc = evening_news().unwrap();
    let run = PipelineBuilder::new(DeviceProfile::low_end_pc())
        .materialize_filters(true)
        .jitter(JitterModel::uniform(150, 5))
        .playback_runs(3)
        .run(&doc, &store)
        .unwrap();
    assert!(run.filter_plan.degraded_blocks() >= 3);
    assert!(store.total_bytes() < before / 2);
    // The tolerance windows absorb 150 ms of jitter: no Must violations.
    assert_eq!(run.playback.unwrap().must_violations, 0);
    // Resolution and colour-depth conflicts are gone after filtering.
    assert!(run
        .conflicts
        .of_class(2)
        .iter()
        .all(|c| matches!(c, cmif::scheduler::Conflict::ConcurrencyExceeded { .. })));
}

#[test]
fn audio_kiosk_presents_the_narration_only() {
    let store = BlockStore::new();
    capture_news_media(&store, 7).unwrap();
    let doc = evening_news().unwrap();
    let run = PipelineBuilder::new(DeviceProfile::audio_kiosk())
        .run(&doc, &store)
        .unwrap();
    assert!(!run.is_presentable());
    let dropped: BTreeSet<&str> = run
        .filter_plan
        .dropped_channels
        .iter()
        .map(|channel| channel.as_str())
        .collect();
    assert!(dropped.contains("video"));
    assert!(dropped.contains("graphic"));
    assert!(dropped.contains("caption"));
    assert!(dropped.contains("label"));
    assert!(!dropped.contains("audio"));
}

#[test]
fn distributed_presentation_fetches_only_what_the_device_presents() {
    let cluster = DistributedStore::new(Network::uniform(&["server", "kiosk"], Link::wan()));
    let doc = evening_news().unwrap();
    // Server-side media.
    let mut generator = MediaGenerator::new(3);
    for descriptor in doc.catalog.iter() {
        let block = match descriptor.medium {
            MediaKind::Audio => generator.audio(descriptor.key.as_str(), 40_000, 8_000),
            MediaKind::Video => generator.video(descriptor.key.as_str(), 10_000, 64, 48, 25.0, 24),
            _ => generator.image(descriptor.key.as_str(), 128, 96, 24),
        };
        cluster
            .put_block("server", block, descriptor.clone())
            .unwrap();
    }
    cluster.publish_document("server", "news", &doc).unwrap();
    cluster.reset_traffic();

    // The kiosk receives the structure, decides what it can present, and
    // fetches only those blocks.
    let received = cluster
        .transport_document("server", "kiosk", "news")
        .unwrap();
    let wanted: BTreeSet<cmif::core::Symbol> =
        referenced_keys(&received, Some(&[MediaKind::Audio]))
            .into_iter()
            .collect();
    cluster.fetch_blocks_for("kiosk", &wanted).unwrap();

    let traffic = cluster.traffic();
    assert_eq!(wanted.len(), 1);
    // 40 s of 8 kHz 8-bit PCM narration.
    assert_eq!(traffic.media_bytes, 320_000);
    assert!(traffic.structure_bytes < 10_000);
    // All of it crossed the single server→kiosk WAN link.
    let link = traffic.link("server", "kiosk");
    assert_eq!(link.media_bytes, 320_000);
    assert_eq!(link.structure_bytes, traffic.structure_bytes);
    assert_eq!(traffic.links_used(), 1);
    // The kiosk can schedule the full document from structure alone; its
    // local shard is reachable without holding any store-wide lock.
    let local = cluster.local_store("kiosk").unwrap();
    assert_eq!(local.len(), 1);
    let solved = ConstraintGraph::derive(&received, &received.catalog, &ScheduleOptions::default())
        .unwrap()
        .solve(&received, &received.catalog)
        .unwrap();
    assert_eq!(
        solved.schedule.total_duration,
        cmif::core::time::TimeMs::from_secs(42)
    );
}

#[test]
fn ddbms_queries_find_news_material_without_touching_payloads() {
    let store = BlockStore::new();
    capture_news_media(&store, 7).unwrap();
    let db = index_store(&store).unwrap();
    store.reset_stats();
    let paintings = db.query(&Query::any().with_medium(MediaKind::Image));
    assert_eq!(paintings.len(), 3);
    let dutch = db.query(&Query::any().with_attribute("language", "nl"));
    assert_eq!(dutch.len(), 1);
    let (_, payload_reads, _) = store.access_stats();
    assert_eq!(payload_reads, 0);
}

#[test]
fn baselines_lose_what_cmif_keeps() {
    let doc = evening_news().unwrap();
    let solved = ConstraintGraph::derive(&doc, &doc.catalog, &ScheduleOptions::default())
        .unwrap()
        .solve(&doc, &doc.catalog)
        .unwrap();

    // The Muse-style timeline has the events but none of the structure or
    // tolerance information.
    let timeline = MuseTimeline::from_schedule(&solved.schedule);
    assert_eq!(timeline.len(), doc.leaves().len());
    let loss = conversion_loss(&doc);
    assert!(loss.structure_nodes_lost >= 6);
    assert_eq!(loss.arcs_lost, doc.arcs().len());

    // Retargeting: lengthening the first caption forces hand edits of many
    // downstream cues in the timeline, none in CMIF.
    let caption_1 = doc.find("/story-3/caption-track/caption-1").unwrap();
    assert!(timeline.retarget_cost(caption_1, 2_000) > 5);

    // The MIF-style static document keeps structure but loses all timing.
    let (static_doc, report) = to_static(&doc).unwrap();
    assert_eq!(report.elements_kept, doc.preorder().len());
    assert_eq!(report.channels_lost, 5);
    assert!(report.continuous_media_lost >= 4);
    assert!(static_doc.render().contains("# story-3"));
}
