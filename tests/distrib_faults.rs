//! Fault-tolerance coverage for the distributed store: scripted host kills
//! mid-run never break replicated reads, the repair queue restores the
//! replication factor after a loss, a full partition surfaces as a typed
//! error carrying the per-replica attempt trace, and no single-host loss
//! can lose an RF ≥ 2 block.

use std::sync::Arc;
use std::time::{Duration, Instant};

use cmif::distrib::network::{Link, Network};
use cmif::distrib::store::DistributedStore;
use cmif::distrib::{DistribError, FaultPlan, HealthState, RepairWorker, RetryPolicy};
use cmif::media::MediaGenerator;
use cmif::news::evening_news;

use proptest::prelude::*;

fn audio_block(
    key: &str,
    seed: u64,
) -> (
    cmif::media::MediaBlock,
    cmif::core::descriptor::DataDescriptor,
) {
    let block = MediaGenerator::new(seed).audio(key, 4_000, 8_000);
    let descriptor = block.describe();
    (block, descriptor)
}

/// An RF-2 LAN cluster with `blocks` audio blocks put via host `a`.
fn replicated_cluster(hosts: &[&str], blocks: usize) -> DistributedStore {
    let store = DistributedStore::with_replication(Network::uniform(hosts, Link::lan()), 2)
        .expect("cluster large enough for RF 2");
    for i in 0..blocks {
        let (block, descriptor) = audio_block(&format!("clip-{i:02}"), 7 + i as u64);
        store.put_block(hosts[0], block, descriptor).unwrap();
    }
    store
}

#[test]
fn a_scripted_host_kill_mid_run_never_breaks_replicated_reads() {
    let hosts = ["a", "b", "c", "d"];
    // Kill the origin after the third transfer: replication already copied
    // every block somewhere else, so all later fetches must be served by
    // the surviving replicas.
    let store =
        replicated_cluster(&hosts, 6).with_fault_plan(FaultPlan::seeded(41).kill_host_at(3, "a"));
    for i in 0..6 {
        let key = format!("clip-{i:02}");
        for dest in ["b", "c", "d"] {
            store
                .fetch_block(dest, &key)
                .unwrap_or_else(|e| panic!("fetch of `{key}` to `{dest}` failed: {e}"));
        }
    }
    assert_eq!(store.health_of("a").unwrap(), HealthState::Down);
    assert!(store
        .health_log()
        .iter()
        .any(|t| t.host == "a" && t.to == HealthState::Down && t.cause == "fault-kill"));
}

#[test]
fn repair_restores_the_replication_factor_after_a_host_loss() {
    let hosts = ["a", "b", "c", "d"];
    let store = replicated_cluster(&hosts, 8);
    store.mark_down("a").unwrap();
    assert!(store.pending_repairs() > 0, "loss must enqueue repairs");

    let before = store.traffic();
    let report = store.repair_all();
    assert!(report.is_clean(), "report: {report:?}");
    assert!(report.lost.is_empty());
    assert!(!report.actions.is_empty());
    assert!(report.bytes_copied > 0);
    assert_eq!(store.pending_repairs(), 0);

    // Repair traffic is real traffic, charged per link, and none of it
    // touches the down host.
    let after = store.traffic();
    assert!(after.media_bytes > before.media_bytes);
    assert!(report
        .actions
        .iter()
        .all(|action| action.from != "a" && action.to != "a"));

    // Every block is back to two *serviceable* replicas.
    for i in 0..8 {
        let key = format!("clip-{i:02}");
        let live = store
            .replicas_of(&key)
            .into_iter()
            .filter(|h| store.health_of(h).unwrap() == HealthState::Up)
            .count();
        assert!(live >= 2, "block `{key}` has {live} live replicas");
    }
}

#[test]
fn a_full_partition_surfaces_as_partitioned_with_an_attempt_trace() {
    let hosts = ["a", "b", "c", "d"];
    let store = replicated_cluster(&hosts, 2);
    // Cut a non-holder off from the rest of the cluster: no replica of
    // anything is reachable from its side of the split.
    let holders = store.replicas_of("clip-00");
    let isolated = *hosts
        .iter()
        .find(|h| !holders.contains(&h.to_string()))
        .unwrap();
    let majority: Vec<&str> = hosts.iter().copied().filter(|h| *h != isolated).collect();
    let store = store.with_fault_plan(FaultPlan::seeded(5).partition(&majority, &[isolated]));
    let err = store.fetch_block(isolated, "clip-00").unwrap_err();
    match err {
        DistribError::Partitioned { to, key, attempts } => {
            assert_eq!(to, isolated);
            assert_eq!(key, "clip-00");
            assert!(!attempts.is_empty(), "trace must list the replicas tried");
            for attempt in &attempts {
                assert!(
                    matches!(
                        *attempt.error,
                        DistribError::TransferPartitioned { .. } | DistribError::HostDown { .. }
                    ),
                    "unexpected attempt error: {}",
                    attempt.error
                );
            }
        }
        other => panic!("expected Partitioned, got: {other}"),
    }
}

#[test]
fn total_transfer_loss_exhausts_retries_and_charges_failed_traffic() {
    let hosts = ["a", "b", "c"];
    let store = replicated_cluster(&hosts, 1)
        .with_fault_plan(FaultPlan::seeded(11).fail_transfers(1.0))
        .with_retry_policy(RetryPolicy::with_attempts(3));
    // Forget the setup traffic so the counters below are the fetch's own.
    store.reset_traffic();
    let holders = store.replicas_of("clip-00");
    let reader = *hosts
        .iter()
        .find(|h| !holders.contains(&h.to_string()))
        .unwrap();
    let err = store.fetch_block(reader, "clip-00").unwrap_err();
    match err {
        DistribError::RetriesExhausted { attempts, .. } => {
            assert_eq!(attempts.len(), 3, "the whole retry budget was spent");
        }
        other => panic!("expected RetriesExhausted, got: {other}"),
    }
    let traffic = store.traffic();
    assert_eq!(traffic.failed_transfers, 3);
    assert!(traffic.failed_bytes > 0);
    assert_eq!(
        traffic.media_bytes, 0,
        "failed transfers must not count as delivered media"
    );
}

#[test]
fn a_degraded_fetch_recovers_via_a_surviving_replica() {
    let hosts = ["a", "b", "c", "d"];
    let store = replicated_cluster(&hosts, 1);
    // Both holders of clip-00 are known; cut the first-ranked source's
    // link once so the fetch has to walk to the next replica.
    let holders = store.replicas_of("clip-00");
    assert_eq!(holders.len(), 2);
    let dest = hosts
        .iter()
        .find(|h| !holders.contains(&h.to_string()))
        .unwrap();
    let mut plan = FaultPlan::seeded(23);
    for holder in &holders {
        plan = plan.fail_link(holder.clone(), *dest, 1);
    }
    let store = store.with_fault_plan(plan);
    let outcome = store
        .fetch_block_traced(dest, cmif::core::Symbol::intern("clip-00"))
        .unwrap();
    assert!(outcome.degraded, "the fetch had to walk past a failure");
    assert!(outcome.attempts >= 2);
    assert!(store.local_store(dest).unwrap().contains("clip-00"));
    assert_eq!(
        store.traffic().failed_transfers,
        outcome.attempts as u64 - 1
    );
}

#[test]
fn observed_transfer_failures_drive_the_health_machine() {
    // Every transfer dies; replica copies of each publish blame the
    // receiving host, so repeated publishes walk `b` Up → Suspect → Down.
    let store = DistributedStore::with_replication(Network::uniform(&["a", "b"], Link::lan()), 2)
        .unwrap()
        .with_fault_plan(FaultPlan::seeded(2).fail_transfers(1.0));
    let doc = evening_news().unwrap();
    // A lost replica copy does not fail the publish — the origin holds the
    // document and repair owes the copy.
    for i in 0..4 {
        store
            .publish_document("a", &format!("bulletin-{i}"), &doc)
            .unwrap();
    }
    assert_eq!(store.health_of("b").unwrap(), HealthState::Down);
    let log = store.health_log();
    assert!(log
        .iter()
        .any(|t| t.host == "b" && t.to == HealthState::Suspect && t.cause == "observed-failure"));
    assert!(log
        .iter()
        .any(|t| t.host == "b" && t.to == HealthState::Down && t.cause == "observed-failure"));
    assert!(
        store.pending_repairs() > 0,
        "lost replica copies owe repairs"
    );
}

#[test]
fn document_fetches_walk_replicas_like_block_fetches() {
    let hosts = ["a", "b", "c", "d"];
    let store = replicated_cluster(&hosts, 0);
    let doc = evening_news().unwrap();
    store.publish_document("a", "news", &doc).unwrap();
    store.mark_down("a").unwrap();
    // Some host that never saw the publish can still open it: the fetch
    // walks to the surviving replica.
    let reader = hosts
        .iter()
        .find(|h| {
            store.health_of(h).unwrap() == HealthState::Up
                && !store.documents_on(h).unwrap().contains(&"news".to_string())
        })
        .expect("a host without the document");
    let fetched = store.fetch_document(reader, "news").unwrap();
    assert_eq!(fetched.node_count(), doc.node_count());
    // And it is now cached locally: a second open costs nothing.
    let transfers = store.traffic().transfers;
    store.fetch_document(reader, "news").unwrap();
    assert_eq!(store.traffic().transfers, transfers);
}

#[test]
fn a_background_repair_worker_drains_the_queue() {
    let hosts = ["a", "b", "c", "d"];
    let store = Arc::new(replicated_cluster(&hosts, 4));
    let worker = RepairWorker::spawn(Arc::clone(&store));
    store.mark_down("a").unwrap();
    let deadline = Instant::now() + Duration::from_secs(10);
    while store.pending_repairs() > 0 && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(2));
    }
    worker.stop();
    assert_eq!(store.pending_repairs(), 0, "worker never drained the queue");
    for i in 0..4 {
        let key = format!("clip-{i:02}");
        let live = store
            .replicas_of(&key)
            .into_iter()
            .filter(|h| store.health_of(h).unwrap() == HealthState::Up)
            .count();
        assert!(live >= 2, "block `{key}` has {live} live replicas");
    }
}

#[test]
fn decommission_removes_the_host_from_placement_and_ring() {
    let hosts = ["a", "b", "c", "d"];
    let store = replicated_cluster(&hosts, 6);
    store.decommission("a").unwrap();
    assert_eq!(store.health_of("a").unwrap(), HealthState::Decommissioned);
    // New puts never land on the decommissioned host, old blocks no longer
    // name it as a replica, and repair restores the factor elsewhere.
    store.repair_all();
    for i in 0..6 {
        let key = format!("clip-{i:02}");
        let replicas = store.replicas_of(&key);
        assert!(!replicas.contains(&"a".to_string()), "`{key}` still on a");
        assert!(
            replicas.len() >= 2,
            "`{key}` under-replicated: {replicas:?}"
        );
    }
    let (block, descriptor) = audio_block("fresh", 99);
    store.put_block("b", block, descriptor).unwrap();
    assert!(!store.replicas_of("fresh").contains(&"a".to_string()));
    // A decommissioned host cannot come back with `mark_up`.
    assert!(store.mark_up("a").is_err());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// With RF 2, losing any single host loses no block: every block stays
    /// fetchable by every surviving host, and a repair pass restores two
    /// live replicas everywhere.
    #[test]
    fn any_single_host_loss_never_loses_a_replicated_block(
        cluster_size in 3usize..6,
        victim in 0usize..6,
        blocks in 1usize..8,
        seed in 0u64..1_000,
    ) {
        let names: Vec<String> = (0..cluster_size).map(|i| format!("node-{i}")).collect();
        let hosts: Vec<&str> = names.iter().map(String::as_str).collect();
        let victim = &names[victim % cluster_size];
        let store = DistributedStore::with_replication(
            Network::uniform(&hosts, Link::lan()),
            2,
        ).unwrap();
        for i in 0..blocks {
            let (block, descriptor) = audio_block(&format!("clip-{i:02}"), seed + i as u64);
            store.put_block(hosts[i % cluster_size], block, descriptor).unwrap();
        }
        store.mark_down(victim).unwrap();
        for i in 0..blocks {
            let key = format!("clip-{i:02}");
            for reader in names.iter().filter(|h| *h != victim) {
                prop_assert!(
                    store.fetch_block(reader, &key).is_ok(),
                    "block `{key}` unreadable from `{reader}` after losing `{victim}`"
                );
            }
        }
        let report = store.repair_all();
        prop_assert!(report.lost.is_empty(), "lost: {:?}", report.lost);
        for i in 0..blocks {
            let key = format!("clip-{i:02}");
            let live = store
                .replicas_of(&key)
                .into_iter()
                .filter(|h| h != victim)
                .count();
            prop_assert!(live >= 2, "block `{key}` has {live} live replicas");
        }
    }
}
