//! Hardening tests for the wire decoders: hostile, truncated and corrupted
//! inputs must always surface as a typed [`FormatError`] — never a panic,
//! never a stack overflow, never an allocation unbounded by input length.
//!
//! The unit tests inside `cmif-format` cover each decoder mechanism; this
//! suite attacks the public wire entry points ([`read_document_bytes`],
//! [`Document::from_read`]) the way a transport peer would.

use cmif::core::tree::Document;
use cmif::format::{document_to_bytes, read_document_bytes, FormatError, WireEncoding, WireFormat};
use cmif::news::evening_news;
use cmif::synthetic::SyntheticNews;
use proptest::prelude::*;

fn wire_corpus() -> Vec<Vec<u8>> {
    let news = evening_news().unwrap();
    let synthetic = SyntheticNews::with_stories(3).build().unwrap();
    vec![
        document_to_bytes(&news, WireEncoding::Binary).unwrap(),
        document_to_bytes(&news, WireEncoding::Text).unwrap(),
        document_to_bytes(&synthetic, WireEncoding::Binary).unwrap(),
        document_to_bytes(&synthetic, WireEncoding::Text).unwrap(),
    ]
}

#[test]
fn truncation_at_every_byte_offset_is_a_typed_error() {
    for bytes in wire_corpus() {
        let binary = WireEncoding::detect(&bytes) == WireEncoding::Binary;
        for end in 0..bytes.len() {
            match read_document_bytes(&bytes[..end]) {
                // The checksummed binary frame rejects *every* strict
                // prefix, and (past the magic) says where it gave up.
                Err(err) => {
                    if binary && end >= 4 {
                        assert!(
                            err.span().is_some() || err.position().is_some(),
                            "truncation at {end} lost its location: {err}"
                        );
                    }
                }
                // Text has no frame: a prefix that only lost trailing
                // whitespace can still be a complete document. The binary
                // form must never accept one.
                Ok(_) => assert!(
                    !binary,
                    "a strict prefix of a binary document decoded (cut at {end})"
                ),
            }
        }
    }
}

#[test]
fn single_byte_corruption_of_binary_documents_is_always_detected() {
    let doc = evening_news().unwrap();
    let bytes = document_to_bytes(&doc, WireEncoding::Binary).unwrap();
    for i in 0..bytes.len() {
        let mut hostile = bytes.clone();
        hostile[i] ^= 0xFF;
        assert!(
            read_document_bytes(&hostile).is_err(),
            "flipping byte {i} went unnoticed"
        );
    }
}

#[test]
fn depth_bombs_in_either_form_are_rejected_with_too_deep() {
    // Text: a 100k-deep parenthesis bomb.
    let bomb = format!("{}a{}", "(".repeat(100_000), ")".repeat(100_000));
    assert!(matches!(
        read_document_bytes(bomb.as_bytes()).unwrap_err(),
        FormatError::TooDeep { .. }
    ));
    // The same nesting arriving through the io::Read entry point.
    assert!(Document::from_read(&mut bomb.as_bytes()).is_err());
}

#[test]
fn huge_declared_lengths_fail_before_allocating() {
    // A syntactically plausible binary header whose payload length claims
    // 4 GiB: the decoder must refuse from the *actual* byte count, not
    // trust the declaration and allocate.
    let mut hostile = Vec::new();
    hostile.extend_from_slice(&[0xC3, b'M', b'I', b'F']);
    hostile.extend_from_slice(&1u16.to_le_bytes()); // version
    hostile.extend_from_slice(&0u16.to_le_bytes()); // flags
    hostile.extend_from_slice(&u32::MAX.to_le_bytes()); // payload length
    hostile.extend_from_slice(&0u32.to_le_bytes()); // checksum
    hostile.extend_from_slice(&[0u8; 64]); // far less than declared
    let err = read_document_bytes(&hostile).unwrap_err();
    assert!(err.span().is_some() || err.position().is_some());
}

#[test]
fn bad_versions_flags_and_trailing_bytes_are_rejected() {
    let doc = evening_news().unwrap();
    let good = document_to_bytes(&doc, WireEncoding::Binary).unwrap();

    let mut wrong_version = good.clone();
    wrong_version[4] = 0xFF;
    wrong_version[5] = 0x7F;
    assert!(matches!(
        read_document_bytes(&wrong_version).unwrap_err(),
        FormatError::UnsupportedVersion { .. }
    ));

    let mut reserved_flags = good.clone();
    reserved_flags[6] = 0x01;
    assert!(read_document_bytes(&reserved_flags).is_err());

    let mut trailing = good.clone();
    trailing.push(0x00);
    assert!(read_document_bytes(&trailing).is_err());
}

#[test]
fn decoded_hostile_documents_never_bypass_validation() {
    // The binary decoder validates like the text parser does: a decoded
    // document is presentable or the decode fails. Round-tripping a valid
    // document must therefore still validate.
    let doc = evening_news().unwrap();
    let bytes = document_to_bytes(&doc, WireEncoding::Binary).unwrap();
    let (decoded, _) = read_document_bytes(&bytes).unwrap();
    assert!(cmif::core::validate::validate(&decoded).is_ok());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Arbitrary bytes never panic either decoder, whichever form the
    /// detector routes them to.
    #[test]
    fn arbitrary_bytes_never_panic(bytes in proptest::collection::vec(any::<u8>(), 0..4096)) {
        let _ = read_document_bytes(&bytes);
        let _ = Document::from_read(&mut bytes.as_slice());
    }

    /// Arbitrary bytes stamped with the binary magic exercise the hardened
    /// binary path specifically — header parsing, checksum verification and
    /// section decoding — and still never panic.
    #[test]
    fn arbitrary_binary_framed_bytes_never_panic(
        tail in proptest::collection::vec(any::<u8>(), 0..2048),
    ) {
        let mut bytes = vec![0xC3, b'M', b'I', b'F'];
        bytes.extend_from_slice(&tail);
        prop_assert!(read_document_bytes(&bytes).is_err() || !tail.is_empty());
    }

    /// Random mutations of a real binary document (any byte, any value)
    /// either decode to a validated document or fail with a typed error.
    #[test]
    fn mutated_real_documents_decode_or_fail_cleanly(
        index in 0usize..4096,
        value in any::<u8>(),
    ) {
        let doc = SyntheticNews::with_stories(2).build().unwrap();
        let mut bytes = document_to_bytes(&doc, WireEncoding::Binary).unwrap();
        let index = index % bytes.len();
        bytes[index] = value;
        if let Ok((decoded, _)) = read_document_bytes(&bytes) {
            prop_assert!(cmif::core::validate::validate(&decoded).is_ok());
        }
    }
}
