//! Integration tests for the layered error architecture: a malformed CMIF
//! document pushed through `cmif-format` must surface as a `cmif::Error`
//! whose chain preserves the lexer/parser source position — line, column
//! and byte offset — and whose `source()` chain walks back down to the
//! layer that failed.

use std::error::Error as StdError;

use cmif::format::lexer::tokenize;
use cmif::format::{parse_document, FormatError, Position, Span};
use cmif::news::evening_news;

/// Parses a malformed document and returns the unified error.
fn parse_err(source: &str) -> cmif::Error {
    let err = parse_document(source).expect_err("document is malformed");
    cmif::Error::from(err)
}

#[test]
fn lexer_errors_keep_line_column_and_byte_offset_through_the_chain() {
    // The `%` on line 3, column 9 is no CMIF token. Byte offset: the two
    // preceding lines are "(cmif\n" (6 bytes) and "  (channels)\n" (13
    // bytes), plus 8 bytes of indentation and keyword on line 3.
    let source = "(cmif\n  (channels)\n  (seq [%]))";
    let bad_byte = source.find('%').expect("source contains the bad byte");

    let err = parse_err(source);
    assert_eq!(err.layer(), "format");
    let cmif::Error::Format(format_err) = &err else {
        panic!("expected a format-layer error, got {err:?}");
    };
    // `[` is already not a CMIF token; the error anchors there, one byte
    // before the `%`.
    let at = format_err
        .position()
        .expect("lexer errors carry a position");
    assert_eq!(at.line, 3);
    assert_eq!(at.offset, bad_byte - 1);
    assert_eq!(&source[at.offset..at.offset + 1], "[");

    // The rendered message shows line:column; the chain bottoms out at the
    // format layer (no deeper source).
    assert!(err.to_string().contains("3:"));
    let source_err = err.source().expect("cmif::Error exposes its layer");
    assert!(source_err.source().is_none());
}

#[test]
fn truncated_documents_report_where_the_text_ends() {
    let doc = evening_news().expect("the news builds");
    let text = cmif::format::write_document(&doc).expect("the news serializes");
    let truncated = &text[..text.len() / 2];

    let err = parse_err(truncated);
    let cmif::Error::Format(format_err) = &err else {
        panic!("expected a format-layer error, got {err:?}");
    };
    // Truncation surfaces as unbalanced parentheses anchored on an open
    // paren inside the retained half, or as a bare EOF — both are format
    // errors; a position, when present, must point into the retained text.
    if let Some(at) = format_err.position() {
        assert!(at.offset < truncated.len());
        assert_eq!(&truncated[at.offset..at.offset + 1], "(");
    }
}

#[test]
fn bad_numbers_carry_the_offending_literal_and_its_position() {
    let source = "(cmif\n  (channels (channel caption text))\n  (seq (name demo)\n    (imm (name x) (channel caption) (duration 12.7.9) (data \"hi\"))))";
    let err = parse_err(source);
    let cmif::Error::Format(FormatError::BadNumber { text, at }) = &err else {
        panic!("expected BadNumber, got {err:?}");
    };
    assert_eq!(text, "12.7.9");
    assert_eq!(at.offset, source.find("12.7.9").expect("literal present"));
    assert_eq!(at.line, 4);
}

#[test]
fn lexer_spans_cover_token_text_and_survive_as_error_anchors() {
    let source = "(seq (name \"two words\") 1250)";
    let tokens = tokenize(source).expect("source tokenizes");
    // Every span slices exactly its own text back out of the source.
    for token in &tokens {
        let text = token.span.text(source).expect("span within source");
        assert_eq!(text.len(), token.span.len());
        assert!(!text.is_empty());
    }
    let string_token = &tokens[4];
    assert_eq!(string_token.span.text(source), Some("\"two words\""));
    assert_eq!(string_token.position().column, 12);

    // A span built from error positions behaves the same way.
    let span = Span::new(Position::new(1, 1, 0), Position::new(1, 5, 4));
    assert_eq!(span.text(source), Some("(seq"));
}

#[test]
fn distrib_transport_preserves_format_positions_two_layers_up() {
    use cmif::distrib::DistribError;
    // A document that fails to parse *after* transport keeps the parser's
    // position through DistribError into cmif::Error.
    let bad = "(cmif (channels) (seq (name x) (imm (name y) (duration oops))))";
    let format_err = parse_document(bad).expect_err("malformed document");
    let err: cmif::Error = DistribError::Format(format_err.clone()).into();

    assert_eq!(err.layer(), "distrib");
    let distrib = err.source().expect("distrib source");
    let format = distrib.source().expect("format source below distrib");
    assert_eq!(format.to_string(), format_err.to_string());
    if let Some(at) = format_err.position() {
        assert!(at.offset < bad.len());
    }
}

#[test]
fn scheduler_and_pipeline_layers_chain_to_core() {
    use cmif::core::prelude::CoreError;
    use cmif::pipeline::PipelineError;

    let err: cmif::Error = PipelineError::from(CoreError::UnknownChannel {
        channel: "audio-left".into(),
    })
    .in_stage("presentation")
    .into();
    assert_eq!(err.layer(), "pipeline");
    assert!(err.to_string().contains("presentation"));
    let pipeline = err.source().expect("pipeline source");
    let core = pipeline.source().expect("core source below pipeline");
    assert!(core.to_string().contains("audio-left"));
}
