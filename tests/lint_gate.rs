//! The acceptance scenario for the admission lint gate: a document whose
//! explicit arcs chase each other forever is refused at admission with a
//! rendered, span-carrying cycle diagnostic naming the arcs of the cycle —
//! while the *same* document, submitted with the cycle code set to
//! `allow`, reaches the solver and fails there exactly as it did before
//! static analysis existed.

use std::sync::Arc;

use cmif::core::diag::{codes, render_all, SeverityConfig};
use cmif::format::parse_document_unvalidated;
use cmif::lint::{admission_gate, Linter};
use cmif::scheduler::{Engine, EngineConfig, JitterModel, LintPolicy, SchedulerError, Submission};

/// Structurally sound except for one thing: `line` begins a second after
/// `banner`, which begins a second after `line`. Distinct channels, so the
/// cycle is the only finding.
const CYCLED: &str = r#"(cmif
  (channels
    (channel caption text)
    (channel banner text))
  (par (name story)
    (imm (name line) (channel caption) (duration 3000)
      (sync_arc begin must begin "../banner" 1000 ms "" 0 inf)
      (data "first"))
    (imm (name banner) (channel banner) (duration 3000)
      (sync_arc begin must begin "../line" 1000 ms "" 0 inf)
      (data "second"))))
"#;

fn gated_engine() -> Engine {
    Engine::new(EngineConfig {
        workers: 1,
        lint_gate: Some(admission_gate(Linter::new())),
        ..EngineConfig::default()
    })
}

#[test]
fn a_cycled_document_is_refused_at_admission_with_the_arc_route() {
    let doc = Arc::new(parse_document_unvalidated(CYCLED).unwrap());
    let engine = gated_engine();

    let err = engine
        .admit(Submission::new(Arc::clone(&doc), JitterModel::ideal()))
        .unwrap_err();
    let SchedulerError::LintRejected { diagnostics } = err else {
        panic!("expected LintRejected, got {err:?}");
    };
    let cycle = diagnostics
        .iter()
        .find(|d| d.code == codes::ARC_CYCLE)
        .expect("the cycle is reported");
    assert!(cycle.is_deny());
    // The message names the cycle's route through both arcs.
    assert!(cycle.message.contains("/line"), "{}", cycle.message);
    assert!(cycle.message.contains("/banner"), "{}", cycle.message);

    // Rendered against the document's own source map, the diagnostic
    // underlines the offending `sync_arc` source text.
    let rendered = render_all(&diagnostics, doc.sources.as_deref());
    assert!(rendered.contains("L101"), "{rendered}");
    assert!(rendered.contains("sync_arc"), "{rendered}");
    assert!(rendered.contains('^'), "{rendered}");

    engine.shutdown();
}

#[test]
fn allowing_the_cycle_code_hands_the_document_to_the_solver() {
    let doc = Arc::new(parse_document_unvalidated(CYCLED).unwrap());
    let engine = gated_engine();

    // Same document, same engine — but this submission's policy downgrades
    // L101 to allow, so admission succeeds and the solver diverges where
    // it always did.
    let waved = SeverityConfig::new().allow(codes::ARC_CYCLE);
    let id = engine
        .admit(
            Submission::new(Arc::clone(&doc), JitterModel::ideal())
                .lint(LintPolicy::Configured(waved)),
        )
        .expect("allow-listed submission is admitted");
    let result = engine.wait(id).result;
    assert!(
        matches!(result, Err(SchedulerError::ConstraintCycle { .. })),
        "expected the solver's cycle error, got {result:?}"
    );

    engine.shutdown();
}

#[test]
fn skipping_the_gate_or_running_ungated_admits_the_document() {
    let doc = Arc::new(parse_document_unvalidated(CYCLED).unwrap());

    // LintPolicy::Skip bypasses the gate wholesale.
    let gated = gated_engine();
    let id = gated
        .admit(Submission::new(Arc::clone(&doc), JitterModel::ideal()).lint(LintPolicy::Skip))
        .expect("skip policy bypasses the gate");
    assert!(gated.wait(id).result.is_err());
    gated.shutdown();

    // An engine with no gate configured behaves exactly as before this
    // subsystem existed.
    let ungated = Engine::new(EngineConfig {
        workers: 1,
        ..EngineConfig::default()
    });
    let id = ungated
        .admit(Submission::new(doc, JitterModel::ideal()))
        .expect("ungated engine admits anything parseable");
    assert!(ungated.wait(id).result.is_err());
    ungated.shutdown();
}

#[test]
fn clean_documents_pass_the_gate_untouched() {
    let doc = Arc::new(
        cmif::synthetic::SyntheticNews::with_stories(2)
            .build()
            .unwrap(),
    );
    let engine = gated_engine();
    let id = engine
        .admit(Submission::new(doc, JitterModel::ideal()))
        .expect("a clean document is admitted");
    assert!(engine.wait(id).result.is_ok());
    engine.shutdown();
}
