//! Concurrency coverage for the sharded distributed store: raced fetches
//! charge exactly one transfer, concurrent publishers on distinct hosts
//! keep per-link accounting exact, and the consistent-hash placement stays
//! stable as the cluster grows.

use std::sync::{Arc, Barrier};
use std::thread;

use cmif::distrib::network::{Link, Network};
use cmif::distrib::placement::PlacementRing;
use cmif::distrib::store::DistributedStore;
use cmif::media::MediaGenerator;
use cmif::news::evening_news;

fn audio_block(
    key: &str,
) -> (
    cmif::media::MediaBlock,
    cmif::core::descriptor::DataDescriptor,
) {
    let block = MediaGenerator::new(7).audio(key, 4_000, 8_000);
    let descriptor = block.describe();
    (block, descriptor)
}

#[test]
fn racing_fetches_of_one_block_charge_exactly_one_transfer() {
    let store = Arc::new(DistributedStore::new(Network::uniform(
        &["server", "desk", "laptop"],
        Link::lan(),
    )));
    let (block, descriptor) = audio_block("speech");
    let bytes = block.payload.size_bytes();
    store.put_block("server", block, descriptor).unwrap();

    let threads = 8;
    let barrier = Arc::new(Barrier::new(threads));
    let handles: Vec<_> = (0..threads)
        .map(|_| {
            let store = Arc::clone(&store);
            let barrier = Arc::clone(&barrier);
            thread::spawn(move || {
                barrier.wait();
                store.fetch_block("desk", "speech").unwrap()
            })
        })
        .collect();
    let costs: Vec<u64> = handles.into_iter().map(|h| h.join().unwrap()).collect();

    // One racer performed (and was charged for) the transfer; the rest
    // waited on the reservation and found the block local.
    assert_eq!(costs.iter().filter(|&&c| c > 0).count(), 1);
    let traffic = store.traffic();
    assert_eq!(
        traffic.transfers, 1,
        "a raced block must charge one transfer"
    );
    assert_eq!(traffic.media_bytes, bytes);
    assert_eq!(traffic.link("server", "desk").transfers, 1);
    assert_eq!(store.local_blocks("desk").unwrap(), vec!["speech"]);
}

#[test]
fn repeated_fetch_races_never_double_charge() {
    let store = Arc::new(DistributedStore::new(Network::uniform(
        &["server", "desk"],
        Link::lan(),
    )));
    let keys: Vec<String> = (0..16).map(|i| format!("clip-{i:02}")).collect();
    for key in &keys {
        let (block, descriptor) = audio_block(key);
        store.put_block("server", block, descriptor).unwrap();
    }
    for key in &keys {
        let barrier = Arc::new(Barrier::new(4));
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let store = Arc::clone(&store);
                let barrier = Arc::clone(&barrier);
                let key = key.clone();
                thread::spawn(move || {
                    barrier.wait();
                    store.fetch_block("desk", &key).unwrap();
                })
            })
            .collect();
        for handle in handles {
            handle.join().unwrap();
        }
    }
    let traffic = store.traffic();
    assert_eq!(traffic.transfers, keys.len() as u64);
    assert_eq!(traffic.link("server", "desk").transfers, keys.len() as u64);
}

#[test]
fn every_host_fetching_the_same_block_charges_once_per_destination() {
    let hosts = ["server", "d0", "d1", "d2", "d3", "d4"];
    let store = Arc::new(DistributedStore::new(Network::uniform(&hosts, Link::lan())));
    let (block, descriptor) = audio_block("anthem");
    let bytes = block.payload.size_bytes();
    store.put_block("server", block, descriptor).unwrap();

    let destinations: Vec<&str> = hosts[1..].to_vec();
    let barrier = Arc::new(Barrier::new(destinations.len()));
    let handles: Vec<_> = destinations
        .iter()
        .map(|dest| {
            let store = Arc::clone(&store);
            let barrier = Arc::clone(&barrier);
            let dest = dest.to_string();
            thread::spawn(move || {
                barrier.wait();
                store.fetch_block(&dest, "anthem").unwrap();
            })
        })
        .collect();
    for handle in handles {
        handle.join().unwrap();
    }

    let traffic = store.traffic();
    assert_eq!(traffic.transfers, destinations.len() as u64);
    assert_eq!(traffic.media_bytes, bytes * destinations.len() as u64);
    // Sources may be any replica that existed at fetch time, but each
    // destination received the payload exactly once.
    for dest in &destinations {
        let inbound: u64 = traffic
            .per_link()
            .filter(|(_, to, _)| to == dest)
            .map(|(_, _, link)| link.transfers)
            .sum();
        assert_eq!(inbound, 1, "host {dest} was charged {inbound} transfers");
    }
    assert_eq!(store.replicas_of("anthem").len(), hosts.len());
}

#[test]
fn concurrent_publishers_on_distinct_hosts_account_links_exactly() {
    let network = Network::uniform(&["a", "b", "c", "d"], Link::lan());
    let store = Arc::new(DistributedStore::with_replication(network, 2).unwrap());
    let doc = evening_news().unwrap();
    let docs_per_host = 10;

    let barrier = Arc::new(Barrier::new(4));
    let handles: Vec<_> = ["a", "b", "c", "d"]
        .into_iter()
        .map(|origin| {
            let store = Arc::clone(&store);
            let barrier = Arc::clone(&barrier);
            let doc = doc.clone();
            thread::spawn(move || {
                barrier.wait();
                let mut published = 0u64;
                for i in 0..docs_per_host {
                    published += store
                        .publish_document(origin, &format!("{origin}-doc-{i}"), &doc)
                        .unwrap() as u64;
                }
                (origin, published)
            })
        })
        .collect();
    let results: Vec<(&str, u64)> = handles.into_iter().map(|h| h.join().unwrap()).collect();

    let traffic = store.traffic();
    // Replication factor 2: every publish moved the structure exactly once.
    assert_eq!(traffic.transfers, 4 * docs_per_host as u64);
    let total_published: u64 = results.iter().map(|(_, bytes)| bytes).sum();
    assert_eq!(traffic.structure_bytes, total_published);
    assert_eq!(traffic.media_bytes, 0);
    // Per-link accounting is exact per origin: each origin's outbound
    // transfers equal its own publishes, with no self-links and no
    // cross-origin bleed under concurrency.
    for (origin, published) in &results {
        let outbound: u64 = traffic
            .per_link()
            .filter(|(from, _, _)| from == origin)
            .map(|(_, _, link)| link.transfers)
            .sum();
        assert_eq!(outbound, docs_per_host as u64);
        let outbound_bytes: u64 = traffic
            .per_link()
            .filter(|(from, _, _)| from == origin)
            .map(|(_, _, link)| link.structure_bytes)
            .sum();
        assert_eq!(outbound_bytes, *published);
    }
    assert!(traffic.per_link().all(|(from, to, _)| from != to));
}

#[test]
fn consistent_hash_placement_is_stable_as_the_cluster_grows() {
    let hosts: Vec<String> = (0..4).map(|i| format!("node-{i}")).collect();
    let grown: Vec<String> = (0..5).map(|i| format!("node-{i}")).collect();
    let before = PlacementRing::new(&hosts);
    let after = PlacementRing::new(&grown);

    let keys = 1_000;
    let mut moved = 0;
    for i in 0..keys {
        let key = format!("block-{i}");
        let old = before.primary(&key).unwrap();
        let new = after.primary(&key).unwrap();
        if old != new {
            moved += 1;
            assert_eq!(
                new, "node-4",
                "key `{key}` moved between pre-existing hosts"
            );
        }
    }
    // ~1/5 of keys should move to the new host; far from a full reshuffle.
    assert!(moved > keys / 20, "implausibly few keys moved: {moved}");
    assert!(moved < 2 * keys / 5, "too many keys moved: {moved}");
}

#[test]
fn consistent_hash_placement_is_stable_as_the_cluster_shrinks() {
    // The inverse of the growth test: removing one of five hosts must move
    // only the departed host's keys, each landing on a surviving host.
    let hosts: Vec<String> = (0..5).map(|i| format!("node-{i}")).collect();
    let before = PlacementRing::new(&hosts);
    let mut after = PlacementRing::new(&hosts);
    assert!(after.remove_host("node-2"));
    assert!(!after.contains("node-2"));

    let keys = 1_000;
    let mut moved = 0;
    for i in 0..keys {
        let key = format!("block-{i}");
        let old = before.primary(&key).unwrap();
        let new = after.primary(&key).unwrap();
        assert_ne!(new, "node-2", "key `{key}` routed to the removed host");
        if old != new {
            moved += 1;
            assert_eq!(
                old, "node-2",
                "key `{key}` moved despite its host surviving"
            );
        }
    }
    // ~1/5 of keys lived on the removed host; far from a full reshuffle.
    assert!(moved > keys / 20, "implausibly few keys moved: {moved}");
    assert!(moved < 2 * keys / 5, "too many keys moved: {moved}");
}
