//! Integration tests for the session-based scheduling engine: step-wise
//! `PlayerSession` playback, incremental `ConstraintGraph` re-relaxation,
//! and the multi-document `Engine` run queue.

use std::sync::Arc;

use cmif::core::arc::SyncArc;
use cmif::core::prelude::*;
use cmif::core::tree::Document;
use cmif::scheduler::{
    ConstraintGraph, DocId, Engine, EngineConfig, JitterModel, PlaybackEvent, PlaybackReport,
    PlayerSession, ScheduleOptions, SchedulerError, SessionState, SolveResult,
};
use cmif::synthetic::SyntheticNews;

fn broadcast(stories: usize) -> Document {
    SyntheticNews::with_stories(stories).build().unwrap()
}

fn solved(doc: &Document) -> SolveResult {
    ConstraintGraph::derive(doc, &doc.catalog, &ScheduleOptions::default())
        .unwrap()
        .solve(doc, &doc.catalog)
        .unwrap()
}

fn cyclic_doc() -> Document {
    let mut doc = DocumentBuilder::new("cycle")
        .channel("audio", MediaKind::Audio)
        .descriptor(
            DataDescriptor::new("a", MediaKind::Audio, "pcm8").with_duration(TimeMs::from_secs(2)),
        )
        .root_par(|root| {
            root.ext("x", "audio", "a");
            root.ext("y", "audio", "a");
        })
        .build()
        .unwrap();
    let x = doc.find("/x").unwrap();
    let y = doc.find("/y").unwrap();
    doc.add_arc(
        x,
        SyncArc::hard_start("../y", "").with_offset(MediaTime::seconds(1)),
    )
    .unwrap();
    doc.add_arc(
        y,
        SyncArc::hard_start("../x", "").with_offset(MediaTime::seconds(1)),
    )
    .unwrap();
    doc
}

/// Collect the `Started` event order and the final report of a session
/// driven at a given tick step.
fn drive(
    doc: &Document,
    result: &SolveResult,
    jitter: &JitterModel,
    step_ms: i64,
) -> (Vec<(Symbol, TimeMs)>, PlaybackReport) {
    let mut session = PlayerSession::new(doc, result, &doc.catalog, jitter).unwrap();
    let mut starts = Vec::new();
    let mut now = 0;
    loop {
        let state = session.tick(now).unwrap();
        for event in session.poll_events() {
            if let PlaybackEvent::Started { name, at, .. } = event {
                starts.push((name, at));
            }
        }
        if state == SessionState::Finished {
            break;
        }
        now += step_ms;
    }
    let report = session.report().unwrap().clone();
    (starts, report)
}

#[test]
fn tick_cadence_does_not_change_a_seeded_run() {
    // Determinism under a seeded JitterModel: the same session ticked at
    // 100 ms, 700 ms and 5 s cadences delivers the same events in the same
    // order and produces the identical report.
    let doc = broadcast(2);
    let result = solved(&doc);
    let jitter = JitterModel::uniform(180, 42);
    let (starts_fine, report_fine) = drive(&doc, &result, &jitter, 100);
    let (starts_mid, report_mid) = drive(&doc, &result, &jitter, 700);
    let (starts_coarse, report_coarse) = drive(&doc, &result, &jitter, 5_000);
    assert_eq!(starts_fine, starts_mid);
    assert_eq!(starts_fine, starts_coarse);
    assert_eq!(report_fine, report_mid);
    assert_eq!(report_fine, report_coarse);
    assert!(!starts_fine.is_empty());
}

#[test]
fn seek_then_tick_matches_a_cold_run() {
    let doc = broadcast(2);
    let result = solved(&doc);
    let jitter = JitterModel::uniform(120, 7);

    // Cold run: tick front to back.
    let (cold_starts, cold_report) = drive(&doc, &result, &jitter, 400);

    // Sought run: jump halfway in, then tick to the end.
    let mut session = PlayerSession::new(&doc, &result, &doc.catalog, &jitter).unwrap();
    let half = TimeMs(cold_report.total_duration.as_millis() / 2);
    session.seek(half);
    let mut sought_starts = Vec::new();
    let mut now = 0;
    loop {
        let state = session.tick(now).unwrap();
        for event in session.poll_events() {
            if let PlaybackEvent::Started { name, at, .. } = event {
                sought_starts.push((name, at));
            }
        }
        if state == SessionState::Finished {
            break;
        }
        now += 400;
    }

    // The report is independent of how the session was driven…
    assert_eq!(session.report().unwrap(), &cold_report);
    // …and the delivered tail is exactly the cold run's events from the
    // seek target onwards.
    let cold_tail: Vec<_> = cold_starts
        .iter()
        .filter(|(_, at)| *at >= half)
        .cloned()
        .collect();
    assert_eq!(sought_starts, cold_tail);
    assert!(sought_starts.len() < cold_starts.len());
}

#[test]
fn engine_rejects_a_cyclic_document_while_a_sibling_completes() {
    let engine = Engine::new(EngineConfig {
        workers: 1,
        ..EngineConfig::default()
    });
    let bad = engine
        .submit_labeled("cyclic", cyclic_doc(), JitterModel::ideal())
        .unwrap();
    let good = engine
        .submit_labeled("news", broadcast(1), JitterModel::ideal())
        .unwrap();

    let bad_outcome = engine.wait(bad);
    assert!(matches!(
        bad_outcome.result,
        Err(SchedulerError::ConstraintCycle { .. })
    ));

    // The same worker that rejected the cycle plays the sibling to the end.
    let good_outcome = engine.wait(good);
    let report = good_outcome.result.expect("sibling document completes");
    assert_eq!(report.must_violations, 0);
    assert!(report.total_duration > TimeMs::ZERO);
}

#[test]
fn sixty_four_concurrent_documents_match_sequential_runs() {
    // The acceptance bar: 64 documents played concurrently on 8 workers
    // produce per-document reports identical (same seed) to sequential
    // single-session runs.
    let docs: Vec<(Arc<Document>, JitterModel)> = (0..64u64)
        .map(|i| {
            (
                Arc::new(broadcast(1 + (i as usize % 3))),
                JitterModel::uniform(100 + (i as i64 % 5) * 40, i),
            )
        })
        .collect();

    // Sequential reference, one session at a time.
    let sequential: Vec<PlaybackReport> = docs
        .iter()
        .map(|(doc, jitter)| {
            let result = solved(doc);
            PlayerSession::new(doc, &result, &doc.catalog, jitter)
                .unwrap()
                .run_to_completion()
        })
        .collect();

    // Concurrent: all 64 admitted up front, 8 workers.
    let engine = Engine::new(EngineConfig {
        workers: 8,
        ..EngineConfig::default()
    });
    // Submitting shares the `Arc` — 64 admissions, zero tree copies.
    let ids: Vec<DocId> = docs
        .iter()
        .map(|(doc, jitter)| engine.submit(Arc::clone(doc), jitter.clone()).unwrap())
        .collect();
    let outcomes = engine.drain();
    assert_eq!(outcomes.len(), 64);

    for ((id, outcome), reference) in ids.iter().zip(&outcomes).zip(&sequential) {
        assert_eq!(*id, outcome.id);
        let report = outcome.result.as_ref().expect("document plays");
        assert_eq!(report, reference, "{id}: concurrent run diverged");
    }
}

#[test]
fn pause_resume_do_not_change_the_outcome() {
    let doc = broadcast(1);
    let result = solved(&doc);
    let jitter = JitterModel::uniform(90, 13);

    let (_, straight) = drive(&doc, &result, &jitter, 500);

    let mut session = PlayerSession::new(&doc, &result, &doc.catalog, &jitter).unwrap();
    session.tick(0).unwrap();
    session.tick(2_000).unwrap();
    session.pause(3_000).unwrap();
    assert_eq!(session.state(), SessionState::Paused);
    // A long wall-clock gap while paused is invisible to the presentation.
    session.resume(60_000);
    let total = straight.total_duration.as_millis();
    session.tick(60_000 + total).unwrap();
    assert_eq!(session.state(), SessionState::Finished);
    assert_eq!(session.report().unwrap(), &straight);
}
