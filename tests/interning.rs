//! Integration tests for the global string interner: round-trip fidelity
//! over arbitrary (including empty and non-ASCII) strings, and id
//! uniqueness when many threads intern the same vocabulary at once.

use std::collections::BTreeSet;
use std::sync::Barrier;
use std::thread;

use cmif::core::Symbol;
use proptest::prelude::*;

/// Builds a string from drawn code points, covering the empty string,
/// ASCII, multi-byte unicode and surrogate-adjacent values (mapped back
/// into the valid range by `char::from_u32` filtering).
fn string_from_codes(codes: &[u32]) -> String {
    codes
        .iter()
        .filter_map(|&code| char::from_u32(code % 0x11_0000))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// `intern(s).as_str() == s` for arbitrary strings, and interning is
    /// idempotent: the same text always yields the same id.
    #[test]
    fn intern_round_trips_arbitrary_strings(
        codes in proptest::collection::vec(any::<u32>(), 0..24),
    ) {
        let text = string_from_codes(&codes);
        let symbol = Symbol::intern(&text);
        prop_assert_eq!(symbol.as_str(), text.as_str());
        prop_assert_eq!(Symbol::intern(&text), symbol);
        prop_assert_eq!(Symbol::from_owned(text.clone()), symbol);
        prop_assert_eq!(Symbol::lookup(&text), Some(symbol));
        prop_assert_eq!(symbol.is_empty(), text.is_empty());
    }
}

#[test]
fn empty_and_unicode_strings_round_trip() {
    for text in [
        "",
        " ",
        "caption",
        "ondertiteling-日本語",
        "🎬🎞️",
        "a\u{0301}",
    ] {
        let symbol = Symbol::intern(text);
        assert_eq!(symbol.as_str(), text);
        assert_eq!(Symbol::intern(text), symbol, "intern of {text:?} split");
    }
}

#[test]
fn concurrent_intern_from_n_threads_yields_one_id_per_string() {
    const THREADS: usize = 8;
    const STRINGS: usize = 40;
    let texts: Vec<String> = (0..STRINGS)
        .map(|i| format!("integration-race-{i}"))
        .collect();
    let barrier = Barrier::new(THREADS);

    // Every thread interns the whole vocabulary; the barrier lines them up
    // so first-intern races actually happen.
    let per_thread: Vec<Vec<u32>> = thread::scope(|scope| {
        let handles: Vec<_> = (0..THREADS)
            .map(|_| {
                scope.spawn(|| {
                    barrier.wait();
                    texts.iter().map(|t| Symbol::intern(t).id()).collect()
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    // No duplicate ids: every thread saw the identical id for each string.
    for thread_ids in &per_thread {
        assert_eq!(thread_ids, &per_thread[0], "two threads disagree on ids");
    }
    // No lost symbols, and the ids are pairwise distinct across strings.
    let distinct: BTreeSet<u32> = per_thread[0].iter().copied().collect();
    assert_eq!(distinct.len(), STRINGS);
    for text in &texts {
        assert!(
            Symbol::lookup(text).is_some(),
            "symbol {text:?} was lost in the race"
        );
    }
}
