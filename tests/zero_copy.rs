//! Zero-copy parsing: the lexer borrows token text from the source (no
//! per-token `String` for identifiers and references), the parser interns
//! straight from those borrows, and the whole path round-trips the
//! Figure 10 news fragment without loss.

use std::borrow::Cow;

use cmif::format::lexer::{tokenize, TokenKind};
use cmif::format::{parse_document, write_document};
use cmif::news::evening_news;
use cmif::scheduler::{ConstraintGraph, ScheduleOptions};

/// True when `slice` points into `source`'s own buffer.
fn borrows_from(source: &str, slice: &str) -> bool {
    let range = source.as_ptr() as usize..source.as_ptr() as usize + source.len();
    slice.is_empty() || range.contains(&(slice.as_ptr() as usize))
}

#[test]
fn fig10_news_fragment_round_trips_through_zero_copy_parsing() {
    // Figure 10's stolen-paintings story: write → parse → write again.
    let doc = evening_news().unwrap();
    let text = write_document(&doc).unwrap();
    let parsed = parse_document(&text).unwrap();

    assert_eq!(parsed.channels, doc.channels);
    assert_eq!(parsed.styles, doc.styles);
    assert_eq!(parsed.catalog, doc.catalog);
    assert_eq!(parsed.meta, doc.meta);
    assert_eq!(parsed.leaves().len(), doc.leaves().len());
    assert_eq!(parsed.arcs().len(), doc.arcs().len());

    // Re-serialization is a fixed point: byte-identical second generation.
    let text_again = write_document(&parsed).unwrap();
    assert_eq!(text, text_again);

    // The re-parsed document schedules identically (names and channels
    // interned from borrowed tokens resolve to the same symbols).
    let options = ScheduleOptions::default();
    let original = ConstraintGraph::derive(&doc, &doc.catalog, &options)
        .unwrap()
        .solve(&doc, &doc.catalog)
        .unwrap();
    let reparsed = ConstraintGraph::derive(&parsed, &parsed.catalog, &options)
        .unwrap()
        .solve(&parsed, &parsed.catalog)
        .unwrap();
    assert_eq!(
        original.schedule.total_duration,
        reparsed.schedule.total_duration
    );
    for (a, b) in original
        .schedule
        .entries
        .iter()
        .zip(&reparsed.schedule.entries)
    {
        assert_eq!(a.name, b.name);
        assert_eq!(a.channel, b.channel);
    }
}

#[test]
fn lexer_allocates_no_string_for_ident_and_ref_tokens() {
    // Tokenize the full Figure 10 interchange text and check EVERY ident
    // and ref token borrows from the source buffer. `&str` payloads make
    // per-token `String`s unrepresentable at the type level; this pins the
    // runtime half: the slices really are views into the input, not copies
    // (the compat allocation story: the only owned token payloads permitted
    // are `Cow::Owned` strings that contained escape sequences).
    let doc = evening_news().unwrap();
    let source = write_document(&doc).unwrap();
    let tokens = tokenize(&source).unwrap();
    assert!(tokens.len() > 300, "fixture too small to be meaningful");

    let mut idents = 0usize;
    let mut borrowed_strings = 0usize;
    let mut owned_strings = 0usize;
    for token in &tokens {
        match &token.kind {
            TokenKind::Ident(text) | TokenKind::Ref(text) => {
                idents += 1;
                assert!(
                    borrows_from(&source, text),
                    "token {text:?} was copied out of the source"
                );
            }
            TokenKind::Str(Cow::Borrowed(text)) => {
                borrowed_strings += 1;
                assert!(
                    borrows_from(&source, text),
                    "string token {text:?} was copied out of the source"
                );
            }
            TokenKind::Str(Cow::Owned(text)) => {
                owned_strings += 1;
                // Only escape-carrying literals may own their buffer.
                assert!(
                    source.contains('\\'),
                    "string {text:?} owns a buffer although the source has no escapes"
                );
            }
            _ => {}
        }
    }
    assert!(idents > 100, "expected a vocabulary-heavy document");
    assert!(borrowed_strings > 0, "plain strings should borrow");
    // The news fragment has no escape sequences, so nothing owns.
    assert_eq!(owned_strings, 0);
}
