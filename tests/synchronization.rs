//! Integration tests: synchronization semantics across the document model,
//! the scheduler and the playback simulator, including property-based
//! invariants over generated documents.

use cmif::core::arc::SyncArc;
use cmif::core::prelude::*;
use cmif::hyper::navigation::Navigator;
use cmif::news::evening_news;
use cmif::scheduler::{
    full_report, invalid_arcs_when_seeking, must_satisfaction_rate, ConstraintGraph,
    EnvironmentLimits, JitterModel, PlayerSession, ScheduleOptions,
};

/// Derive-then-relax through the session API (the old one-shot `solve`).
fn solve_doc(doc: &cmif::core::tree::Document) -> cmif::scheduler::SolveResult {
    ConstraintGraph::derive(doc, &doc.catalog, &ScheduleOptions::default())
        .unwrap()
        .solve(doc, &doc.catalog)
        .unwrap()
}

/// One full playback run through a `PlayerSession` (the old one-shot `play`).
fn play_doc(
    doc: &cmif::core::tree::Document,
    result: &cmif::scheduler::SolveResult,
    jitter: &JitterModel,
) -> cmif::scheduler::PlaybackReport {
    PlayerSession::new(doc, result, &doc.catalog, jitter)
        .unwrap()
        .run_to_completion()
}
use cmif::synthetic::SyntheticNews;
use proptest::prelude::*;

#[test]
fn evening_news_schedule_matches_the_paper_narrative() {
    let doc = evening_news().unwrap();
    let result = solve_doc(&doc);
    assert!(result.is_consistent());
    let schedule = &result.schedule;

    // Start synchronization across all blocks at the beginning of the story.
    for path in [
        "/story-3/narration",
        "/story-3/video-track/talking-head-1",
        "/story-3/caption-track/caption-1",
        "/story-3/graphic-track/painting-one",
        "/story-3/label-track/story-name",
    ] {
        let node = doc.find(path).unwrap();
        assert_eq!(
            schedule.node_times[&node].0,
            TimeMs::ZERO,
            "{path} should start at t=0"
        );
    }

    // Events on one channel never overlap.
    for channel in ["audio", "video", "graphic", "caption", "label"] {
        assert!(
            schedule.max_channel_concurrency(channel) <= 1,
            "channel {channel} presents two blocks at once"
        );
    }

    // The freeze-frame arc of Figure 10 creates a real gap on the video
    // channel which the player bridges with freeze-frame time.
    let report = play_doc(&doc, &result, &JitterModel::ideal());
    assert_eq!(report.freeze_frame_ms, 2_000);
    assert_eq!(report.must_violations, 0);

    // A workstation has no device conflicts with this document.
    let conflicts = full_report(
        &doc,
        &result,
        &doc.catalog,
        Some(&EnvironmentLimits::workstation()),
    )
    .unwrap();
    assert!(conflicts.is_clean(), "unexpected conflicts: {conflicts}");
}

#[test]
fn tolerance_windows_absorb_exactly_the_jitter_they_declare() {
    let doc = evening_news().unwrap();
    let result = solve_doc(&doc);
    // The tightest Must window in the news is 250 ms (captions onto video).
    let small = JitterModel::uniform(100, 42);
    let large = JitterModel::uniform(2_000, 42);
    let rate_small = must_satisfaction_rate(&doc, &result, &doc.catalog, &small, 30).unwrap();
    let rate_large = must_satisfaction_rate(&doc, &result, &doc.catalog, &large, 30).unwrap();
    assert!(rate_small >= rate_large);
    assert!(
        rate_small > 0.9,
        "small jitter should almost always satisfy, got {rate_small}"
    );
    assert!(
        rate_large < 0.5,
        "2 s of jitter must break 250 ms windows, got {rate_large}"
    );
}

#[test]
fn seeking_into_the_news_invalidates_cross_track_arcs() {
    let doc = evening_news().unwrap();
    let result = solve_doc(&doc);
    // Seek to the final talking head (t = 32 s): the captions and paintings
    // that controlled earlier events are over, so their arcs are invalid.
    let head2 = doc.find("/story-3/video-track/talking-head-2").unwrap();
    let invalid = invalid_arcs_when_seeking(&doc, &result.schedule, head2).unwrap();
    assert!(!invalid.is_empty());
    assert!(invalid.iter().all(|c| c.class() == 3));

    // The navigator reports the same thing and re-bases the rest.
    let navigator = Navigator::new(&doc, &result);
    let nav = navigator.seek(head2).unwrap();
    assert_eq!(nav.resume_at, TimeMs::from_secs(32));
    assert_eq!(nav.invalidated.len(), invalid.len());
    assert_eq!(nav.remaining_duration(), TimeMs::from_secs(10));
}

#[test]
fn must_and_may_strictness_differ_in_playback() {
    // One document, two arcs: a Must window and a May window of the same
    // width, both violated by construction via a long controlling block.
    let mut doc = DocumentBuilder::new("strictness")
        .channel("audio", MediaKind::Audio)
        .channel("label", MediaKind::Label)
        .descriptor(
            DataDescriptor::new("speech", MediaKind::Audio, "pcm8")
                .with_duration(TimeMs::from_secs(5)),
        )
        .root_seq(|root| {
            root.ext("voice", "audio", "speech");
            root.imm_text("late-title", "label", "late", 1_000);
            root.imm_text("late-credit", "label", "later", 1_000);
        })
        .build()
        .unwrap();
    let title = doc.find("/late-title").unwrap();
    let credit = doc.find("/late-credit").unwrap();
    doc.add_arc(
        title,
        SyncArc::hard_start("/", "")
            .with_window(DelayMs::ZERO, MaxDelay::Bounded(DelayMs::from_millis(100))),
    )
    .unwrap();
    doc.add_arc(
        credit,
        SyncArc::relaxed_start("/", "")
            .with_window(DelayMs::ZERO, MaxDelay::Bounded(DelayMs::from_millis(100))),
    )
    .unwrap();
    let result = solve_doc(&doc);
    // Both windows are violated by the ASAP schedule, but only the Must one
    // makes the document inconsistent.
    assert_eq!(result.violations.len(), 2);
    assert!(!result.is_consistent());
    let report = play_doc(&doc, &result, &JitterModel::ideal());
    assert_eq!(report.must_violations, 1);
    assert_eq!(report.may_violations, 1);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Structural invariants of every synthetic broadcast: sequential
    /// stories accumulate, channels never overlap, playback on an ideal
    /// device reproduces the schedule exactly.
    #[test]
    fn synthetic_news_scheduling_invariants(
        stories in 1usize..5,
        captions in 1usize..5,
        graphics in 1usize..4,
        story_seconds in 10i64..40,
    ) {
        let config = SyntheticNews {
            stories,
            captions_per_story: captions,
            graphics_per_story: graphics,
            story_seconds,
            explicit_arcs: true,
        };
        let doc = config.build().unwrap();
        let result = solve_doc(&doc);
        prop_assert!(result.is_consistent());
        // Stories are sequential: the broadcast lasts stories * story_seconds.
        prop_assert_eq!(
            result.schedule.total_duration,
            TimeMs::from_secs(stories as i64 * story_seconds)
        );
        // No channel is asked to present two blocks at once.
        for channel in ["audio", "video", "graphic", "caption", "label"] {
            prop_assert!(result.schedule.max_channel_concurrency(channel) <= 1);
        }
        // Ideal playback reproduces the schedule with zero drift.
        let report = play_doc(&doc, &result, &JitterModel::ideal());
        prop_assert_eq!(report.max_drift_ms(), 0);
        prop_assert_eq!(report.must_violations, 0);
        prop_assert_eq!(report.total_duration, result.schedule.total_duration);
    }

    /// Every event of every story starts no earlier than its story and ends
    /// no later than the story's end (parent containment).
    #[test]
    fn parent_containment_holds(stories in 1usize..4) {
        let doc = SyntheticNews::with_stories(stories).build().unwrap();
        let result = solve_doc(&doc);
        for story in 0..stories {
            let story_node = doc.find(&format!("/story-{story}")).unwrap();
            let (story_begin, story_end) = result.schedule.node_times[&story_node];
            for leaf in doc.leaves() {
                let ancestors = doc.ancestors(leaf).unwrap();
                if !ancestors.contains(&story_node) {
                    continue;
                }
                let (begin, end) = result.schedule.node_times[&leaf];
                prop_assert!(begin >= story_begin);
                prop_assert!(end <= story_end);
            }
        }
    }

    /// Jitter within the declared tolerance windows never causes a Must
    /// violation on documents with 500 ms windows.
    #[test]
    fn jitter_within_windows_is_always_absorbed(seed in 0u64..500) {
        let doc = SyntheticNews { stories: 2, ..SyntheticNews::default() }.build().unwrap();
        let result = solve_doc(&doc);
        // The synthetic arcs declare 250-500 ms windows; 200 ms of jitter on
        // channels that are not controlling anything hard must be safe.
        let jitter = JitterModel::uniform(200, seed)
            .with_channel("graphic", 0)
            .with_channel("caption", 0);
        let report = play_doc(&doc, &result, &jitter);
        prop_assert_eq!(report.must_violations, 0);
    }
}
