//! Live-authoring equivalence and swap-safety properties.
//!
//! Two invariants pin the edit-while-playing refactor down:
//!
//! 1. **Incremental ≡ cold.** For a random script of edits applied through
//!    an [`EditSession`], the incrementally repaired fixpoint must assemble
//!    the *identical* [`SolveResult`] a cold full re-solve of the edited
//!    document produces — after every single edit, not just at the end.
//! 2. **History is immutable.** A mid-playback revision swap
//!    ([`PlayerSession::swap_revision`]) never rewrites already-fired
//!    events: everything that finished before the swap boundary survives
//!    verbatim, and everything that began keeps its begin times.

use std::sync::Arc;

use cmif::core::edit::{DocRevision, Edit, NodeSpec};
use cmif::core::tree::Document;
use cmif::core::Symbol;
use cmif::scheduler::{
    ConstraintGraph, EditSession, JitterModel, PlayerSession, ScheduleOptions, SolveResult,
};
use cmif::synthetic::SyntheticNews;

use proptest::prelude::*;

/// Splitmix-style generator so edit scripts derive deterministically from a
/// proptest-chosen seed.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: usize) -> usize {
        (self.next() % n.max(1) as u64) as usize
    }
}

/// One random edit against the current state of `doc`. Some choices are
/// deliberately allowed to be invalid (removing a node that would orphan
/// the root, swapping a descriptor across media kinds): the session must
/// reject those without disturbing its state, and the equivalence check
/// afterwards proves it did.
fn random_edit(doc: &Document, rng: &mut Rng, serial: usize) -> Edit {
    let composites: Vec<_> = doc
        .preorder()
        .into_iter()
        .filter(|&id| doc.node(id).map(|n| n.kind.is_composite()).unwrap_or(false))
        .collect();
    let leaves = doc.leaves();
    let keys: Vec<Symbol> = doc.catalog.iter().map(|d| d.key).collect();
    let non_root: Vec<_> = {
        let root = doc.root().unwrap();
        doc.preorder()
            .into_iter()
            .filter(|&id| id != root)
            .collect()
    };

    match rng.below(6) {
        0 => Edit::InsertSubtree {
            parent: composites[rng.below(composites.len())],
            spec: NodeSpec::imm_text(format!("late-{serial}"), "breaking update")
                .on_channel("caption")
                .lasting_ms(500 + (rng.below(8_000) as i64)),
        },
        1 if !keys.is_empty() => Edit::InsertSubtree {
            parent: composites[rng.below(composites.len())],
            spec: NodeSpec::ext(
                format!("clip-{serial}"),
                keys[rng.below(keys.len())].as_str(),
            )
            .on_channel("audio"),
        },
        2 if !non_root.is_empty() => Edit::RemoveSubtree {
            node: non_root[rng.below(non_root.len())],
        },
        3 if !doc.arcs().is_empty() => Edit::RetimeArc {
            index: rng.below(doc.arcs().len()),
            min_delay_ms: -(rng.below(200) as i64),
            max_delay_ms: Some(rng.below(2_000) as i64),
            offset_ms: Some(rng.below(3_000) as i64),
        },
        4 if !leaves.is_empty() && !keys.is_empty() => Edit::SwapDescriptor {
            node: leaves[rng.below(leaves.len())],
            file: keys[rng.below(keys.len())].as_str().to_string(),
        },
        _ if !leaves.is_empty() => Edit::AssignChannel {
            node: leaves[rng.below(leaves.len())],
            channel: Symbol::intern("label"),
        },
        _ => Edit::InsertSubtree {
            parent: composites[rng.below(composites.len())],
            spec: NodeSpec::imm_text(format!("fallback-{serial}"), "…").on_channel("caption"),
        },
    }
}

fn cold_solve(doc: &Document, resolver: &cmif::core::descriptor::DescriptorCatalog) -> SolveResult {
    ConstraintGraph::derive(doc, resolver, &ScheduleOptions::default())
        .unwrap()
        .solve(doc, resolver)
        .unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Invariant 1: after every applied edit of a random script, the
    /// incremental repair equals a cold full re-solve of the edited
    /// document — same schedule, same constraints, same violations.
    #[test]
    fn random_edit_scripts_match_a_cold_full_resolve(
        stories in 1usize..5,
        script_len in 1usize..12,
        seed in 0u64..100_000,
    ) {
        let doc = Arc::new(SyntheticNews::with_stories(stories).build().unwrap());
        let catalog = doc.catalog.clone();
        let mut session = EditSession::begin(
            DocRevision::initial(doc),
            &catalog,
            ScheduleOptions::default(),
        )
        .unwrap();
        let mut rng = Rng(seed.wrapping_mul(2).wrapping_add(1));
        let mut applied = 0usize;
        let mut rejected = 0usize;
        for serial in 0..script_len {
            let edit = random_edit(session.revision().doc(), &mut rng, serial);
            match session.apply(&edit) {
                Ok(_) => applied += 1,
                Err(_) => rejected += 1, // session must be undisturbed
            }
            let incremental = session.solve_result().unwrap();
            let cold = cold_solve(session.revision().doc(), &catalog);
            prop_assert_eq!(
                &incremental, &cold,
                "divergence after {} applied / {} rejected edits (last: {:?})",
                applied, rejected, edit
            );
        }
    }

    /// Invariant 2: a revision swap at a mid-playback boundary keeps every
    /// already-finished event byte-identical and never moves the begin
    /// times of events that already started.
    #[test]
    fn a_revision_swap_never_rewrites_already_fired_events(
        stories in 1usize..4,
        boundary_pct in 10i64..90,
        jitter_ms in 0i64..200,
        seed in 0u64..1_000,
    ) {
        let doc = Arc::new(SyntheticNews::with_stories(stories).build().unwrap());
        let catalog = doc.catalog.clone();
        let result = cold_solve(&doc, &catalog);
        let jitter = JitterModel::uniform(jitter_ms, seed.wrapping_add(11));
        let mut session = PlayerSession::new(&doc, &result, &catalog, &jitter).unwrap();

        // Anchor the wall clock, then advance to the swap boundary.
        session.tick(0).unwrap();
        let total = session.total_duration().as_millis();
        let boundary = total * boundary_pct / 100;
        session.tick(boundary).unwrap();

        // Snapshot the fired history (strict inequalities dodge the
        // delivered-at-exactly-the-boundary edge in either direction).
        let before = session.report_preview().clone();
        let finished: Vec<_> = before
            .events
            .iter()
            .filter(|e| e.actual_end.as_millis() < boundary)
            .cloned()
            .collect();
        let begun: Vec<_> = before
            .events
            .iter()
            .filter(|e| e.actual_begin.as_millis() < boundary)
            .cloned()
            .collect();

        // Edit the document mid-flight: append a coda story and re-solve
        // incrementally, then swap the session onto the new revision.
        let mut rng = Rng(seed.wrapping_mul(3).wrapping_add(7));
        let mut author = EditSession::begin(
            DocRevision::initial(Arc::clone(&doc)),
            &catalog,
            ScheduleOptions::default(),
        )
        .unwrap();
        let root = doc.root().unwrap();
        author
            .apply(&Edit::InsertSubtree {
                parent: root,
                spec: NodeSpec::imm_text("coda", "and one more thing")
                    .on_channel("caption")
                    .lasting_ms(4_000),
            })
            .unwrap();
        for serial in 0..2usize {
            let edit = random_edit(author.revision().doc(), &mut rng, serial);
            let _ = author.apply(&edit); // rejections leave the session intact
        }
        let revised = author.solve_result().unwrap();
        session
            .swap_revision(author.revision().doc(), &revised, &catalog)
            .unwrap();

        let after = session.report_preview();
        for event in &finished {
            prop_assert!(
                after.events.iter().any(|e| e == event),
                "finished event {:?} was rewritten by the swap",
                event
            );
        }
        for event in &begun {
            prop_assert!(
                after.events.iter().any(|e| e.node == event.node
                    && e.name == event.name
                    && e.scheduled_begin == event.scheduled_begin
                    && e.actual_begin == event.actual_begin),
                "begun event {:?} lost its begin time in the swap",
                event
            );
        }

        // Playing the tail out never revisits the history either.
        session.tick(total.max(boundary) + 60_000).unwrap();
        let final_report = session.report_preview();
        for event in &finished {
            prop_assert!(final_report.events.iter().any(|e| e == event));
        }
    }
}
