//! Consistent-hash placement of blocks and documents onto hosts.
//!
//! The sharded [`crate::store::DistributedStore`] needs a placement policy
//! that (a) spreads keys evenly over the cluster, (b) is deterministic — the
//! same key always lands on the same hosts, with no coordination — and
//! (c) stays stable when the cluster grows: adding a host must move only
//! ~`1/n` of the keys, not reshuffle everything. That is the classic
//! consistent-hashing ring: each host is hashed onto a circle at several
//! virtual points, and a key belongs to the first hosts found walking
//! clockwise from the key's own hash.
//!
//! The hash is FNV-1a, implemented inline: it is tiny, allocation-free and —
//! unlike `std`'s `DefaultHasher` — guaranteed stable across releases, which
//! keeps simulated placements reproducible.

use crate::network::HostId;

/// Seed/offset constant of 64-bit FNV-1a.
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// Multiplication prime of 64-bit FNV-1a.
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Stable 64-bit FNV-1a over a byte string, finished with a Murmur3-style
/// avalanche mix. Plain FNV-1a spreads short, similar strings (host names
/// differing only in a vnode suffix) poorly across the high bits that
/// decide ring order; the finalizer diffuses every input bit over the whole
/// word.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash = FNV_OFFSET;
    for &byte in bytes {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(FNV_PRIME);
    }
    hash ^= hash >> 33;
    hash = hash.wrapping_mul(0xff51_afd7_ed55_8ccd);
    hash ^= hash >> 33;
    hash = hash.wrapping_mul(0xc4ce_b9fe_1a85_ec53);
    hash ^ (hash >> 33)
}

/// A consistent-hash ring over a set of hosts.
///
/// Construction hashes every host onto the ring at
/// [`PlacementRing::DEFAULT_VNODES`] virtual points (more points smooth the
/// key distribution). [`PlacementRing::hosts_for`] then maps a key to its
/// first `count` distinct owners clockwise from the key's hash — the
/// replica set used by the distributed store.
#[derive(Debug, Clone)]
pub struct PlacementRing {
    /// `(ring position, index into hosts)`, sorted by position.
    points: Vec<(u64, usize)>,
    hosts: Vec<HostId>,
}

impl PlacementRing {
    /// Virtual points per host used by [`PlacementRing::new`].
    pub const DEFAULT_VNODES: u32 = 64;

    /// Builds a ring over the given hosts with the default number of
    /// virtual points per host. Duplicate host names are ignored.
    pub fn new(hosts: &[HostId]) -> PlacementRing {
        PlacementRing::with_vnodes(hosts, PlacementRing::DEFAULT_VNODES)
    }

    /// Builds a ring with an explicit number of virtual points per host
    /// (at least one).
    pub fn with_vnodes(hosts: &[HostId], vnodes: u32) -> PlacementRing {
        let mut unique: Vec<HostId> = Vec::with_capacity(hosts.len());
        for host in hosts {
            if !unique.contains(host) {
                unique.push(host.clone());
            }
        }
        let vnodes = vnodes.max(1);
        let mut points = Vec::with_capacity(unique.len() * vnodes as usize);
        for (index, host) in unique.iter().enumerate() {
            for vnode in 0..vnodes {
                let point = fnv1a(format!("{host}#{vnode}").as_bytes());
                points.push((point, index));
            }
        }
        points.sort_unstable();
        PlacementRing {
            points,
            hosts: unique,
        }
    }

    /// The hosts on the ring, in insertion order.
    pub fn hosts(&self) -> &[HostId] {
        &self.hosts
    }

    /// Number of distinct hosts on the ring.
    pub fn len(&self) -> usize {
        self.hosts.len()
    }

    /// True when the ring has no hosts.
    pub fn is_empty(&self) -> bool {
        self.hosts.is_empty()
    }

    /// The first `count` distinct hosts clockwise from the key's hash — the
    /// key's replica set. Returns fewer than `count` hosts only when the
    /// ring holds fewer distinct hosts.
    pub fn hosts_for(&self, key: &str, count: usize) -> Vec<&HostId> {
        if self.hosts.is_empty() || count == 0 {
            return Vec::new();
        }
        let wanted = count.min(self.hosts.len());
        let target = fnv1a(key.as_bytes());
        let start = self.points.partition_point(|(point, _)| *point < target);
        let mut taken = vec![false; self.hosts.len()];
        let mut owners = Vec::with_capacity(wanted);
        for offset in 0..self.points.len() {
            let (_, host_index) = self.points[(start + offset) % self.points.len()];
            if !taken[host_index] {
                taken[host_index] = true;
                owners.push(&self.hosts[host_index]);
                if owners.len() == wanted {
                    break;
                }
            }
        }
        owners
    }

    /// The key's primary owner (first host clockwise from the key's hash).
    pub fn primary(&self, key: &str) -> Option<&HostId> {
        self.hosts_for(key, 1).into_iter().next()
    }

    /// Removes a host (and all its virtual points) from the ring — the
    /// inverse of construction-time addition, with the same stability
    /// guarantee mirrored: survivors' points are hashed from their names
    /// alone, so they do not move, and every key the departed host owned
    /// falls to the next host clockwise. Only ~`1/n` of the keys change
    /// primary owner; keys between two surviving hosts are untouched.
    ///
    /// Returns `false` (and changes nothing) when the host is not on the
    /// ring.
    pub fn remove_host(&mut self, host: &str) -> bool {
        let Some(index) = self.hosts.iter().position(|h| h == host) else {
            return false;
        };
        self.hosts.remove(index);
        // Drop the departed host's points and re-aim the survivors' host
        // indices past the removed slot. `retain` keeps the sort order, so
        // no re-sort is needed.
        self.points.retain(|&(_, host_index)| host_index != index);
        for point in &mut self.points {
            if point.1 > index {
                point.1 -= 1;
            }
        }
        true
    }

    /// True when the host is on the ring.
    pub fn contains(&self, host: &str) -> bool {
        self.hosts.iter().any(|h| h == host)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ring_of(names: &[&str]) -> PlacementRing {
        let hosts: Vec<HostId> = names.iter().map(|n| n.to_string()).collect();
        PlacementRing::new(&hosts)
    }

    #[test]
    fn placement_is_deterministic() {
        let a = ring_of(&["alpha", "beta", "gamma"]);
        let b = ring_of(&["alpha", "beta", "gamma"]);
        for i in 0..100 {
            let key = format!("block-{i}");
            assert_eq!(a.hosts_for(&key, 2), b.hosts_for(&key, 2));
        }
    }

    #[test]
    fn replica_sets_are_distinct_hosts() {
        let ring = ring_of(&["alpha", "beta", "gamma", "delta"]);
        for i in 0..50 {
            let owners = ring.hosts_for(&format!("key-{i}"), 3);
            assert_eq!(owners.len(), 3);
            let mut sorted: Vec<_> = owners.clone();
            sorted.sort();
            sorted.dedup();
            assert_eq!(sorted.len(), 3, "replica set must not repeat a host");
        }
    }

    #[test]
    fn requesting_more_replicas_than_hosts_returns_all_hosts() {
        let ring = ring_of(&["alpha", "beta"]);
        assert_eq!(ring.hosts_for("anything", 10).len(), 2);
        assert!(ring.hosts_for("anything", 0).is_empty());
        assert!(PlacementRing::new(&[]).hosts_for("anything", 3).is_empty());
    }

    #[test]
    fn every_host_owns_a_fair_share() {
        let ring = ring_of(&["alpha", "beta", "gamma", "delta"]);
        let mut counts = std::collections::BTreeMap::new();
        for i in 0..1_000 {
            let owner = ring.primary(&format!("block-{i}")).unwrap().clone();
            *counts.entry(owner).or_insert(0u32) += 1;
        }
        assert_eq!(counts.len(), 4, "every host should own some keys");
        for (host, count) in counts {
            // Perfect balance would be 250; allow a generous spread.
            assert!(
                (100..=450).contains(&count),
                "host {host} owns {count} of 1000 keys — ring is badly unbalanced"
            );
        }
    }

    #[test]
    fn removing_a_host_moves_only_the_departed_hosts_keys() {
        let mut ring = ring_of(&["alpha", "beta", "gamma", "delta", "epsilon"]);
        let before: Vec<HostId> = (0..1_000)
            .map(|i| ring.primary(&format!("block-{i}")).unwrap().clone())
            .collect();
        assert!(ring.remove_host("gamma"));
        assert!(!ring.contains("gamma"));
        assert_eq!(ring.len(), 4);
        let mut moved = 0;
        for (i, old) in before.iter().enumerate() {
            let key = format!("block-{i}");
            let new = ring.primary(&key).unwrap();
            if old != new {
                moved += 1;
                assert_eq!(
                    old, "gamma",
                    "key `{key}` moved although its owner survived"
                );
            }
        }
        // ~1/5 of the keys belonged to the departed host; nothing else moved.
        assert!(moved > 50, "suspiciously few keys moved: {moved}");
        assert!(moved < 400, "keys moved that gamma never owned: {moved}");
        // Removal is the exact inverse of addition: the shrunken ring is
        // indistinguishable from one built without the host.
        let rebuilt = ring_of(&["alpha", "beta", "delta", "epsilon"]);
        for i in 0..200 {
            let key = format!("block-{i}");
            assert_eq!(ring.hosts_for(&key, 2), rebuilt.hosts_for(&key, 2));
        }
        // Unknown hosts are a no-op.
        assert!(!ring.remove_host("gamma"));
        assert_eq!(ring.len(), 4);
    }

    #[test]
    fn removing_every_host_empties_the_ring() {
        let mut ring = ring_of(&["a", "b"]);
        assert!(ring.remove_host("a"));
        assert_eq!(ring.hosts_for("key", 2), vec!["b"]);
        assert!(ring.remove_host("b"));
        assert!(ring.is_empty());
        assert!(ring.hosts_for("key", 1).is_empty());
        assert!(ring.primary("key").is_none());
    }

    #[test]
    fn adding_a_host_moves_only_its_own_share_of_keys() {
        let before = ring_of(&["alpha", "beta", "gamma", "delta"]);
        let after = ring_of(&["alpha", "beta", "gamma", "delta", "epsilon"]);
        let mut moved = 0;
        for i in 0..1_000 {
            let key = format!("block-{i}");
            let old = before.primary(&key).unwrap();
            let new = after.primary(&key).unwrap();
            if old != new {
                moved += 1;
                // Consistent hashing only ever moves keys *to* the new host.
                assert_eq!(new, "epsilon", "key `{key}` moved between old hosts");
            }
        }
        // Expected ~1/5 of keys; assert well under a full reshuffle and
        // above zero so the test keeps meaning.
        assert!(moved > 50, "suspiciously few keys moved: {moved}");
        assert!(
            moved < 400,
            "too many keys moved for consistent hashing: {moved}"
        );
    }
}
