//! Bounded retry with exponential backoff and jitter for degraded fetches.
//!
//! When a replica source fails mid-transfer the store does not give up: it
//! walks the surviving holders nearest-first and, between rounds, backs off
//! exponentially so a glitching cluster is not hammered. The backoff is
//! *simulated* milliseconds — it is added to the fetch's reported cost, not
//! slept — and the jitter comes from a seeded generator, so every retry
//! schedule is reproducible.

use rand::rngs::SmallRng;
use rand::Rng;

/// How a degraded fetch retries: attempt budget and backoff shape.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total transfer attempts per fetch across all replicas (≥ 1).
    pub max_attempts: u32,
    /// Backoff before the second attempt; doubles each round.
    pub base_backoff_ms: u64,
    /// Upper bound the exponential backoff saturates at.
    pub max_backoff_ms: u64,
    /// Extra uniform jitter in `[0, jitter_ms]` added to each backoff so
    /// concurrent retries do not synchronize.
    pub jitter_ms: u64,
}

impl Default for RetryPolicy {
    /// Three attempts, 10 ms base doubling to at most 200 ms, ±5 ms jitter.
    fn default() -> RetryPolicy {
        RetryPolicy {
            max_attempts: 3,
            base_backoff_ms: 10,
            max_backoff_ms: 200,
            jitter_ms: 5,
        }
    }
}

impl RetryPolicy {
    /// A policy with an explicit attempt budget (clamped to at least one)
    /// and the default backoff shape.
    pub fn with_attempts(max_attempts: u32) -> RetryPolicy {
        RetryPolicy {
            max_attempts: max_attempts.max(1),
            ..RetryPolicy::default()
        }
    }

    /// A policy that never retries and never backs off — the pre-fault
    /// behaviour, useful for benchmarks isolating raw transfer cost.
    pub fn none() -> RetryPolicy {
        RetryPolicy {
            max_attempts: 1,
            base_backoff_ms: 0,
            max_backoff_ms: 0,
            jitter_ms: 0,
        }
    }

    /// Simulated backoff before attempt number `attempt` (1-based): zero
    /// before the first attempt, then `base · 2^(attempt-2)` saturating at
    /// `max_backoff_ms`, plus uniform jitter from `rng`.
    pub fn backoff_ms(&self, attempt: u32, rng: &mut SmallRng) -> u64 {
        if attempt <= 1 || (self.base_backoff_ms == 0 && self.jitter_ms == 0) {
            return 0;
        }
        let exponent = attempt.saturating_sub(2).min(32);
        let exponential = self
            .base_backoff_ms
            .saturating_mul(1u64 << exponent)
            .min(self.max_backoff_ms.max(self.base_backoff_ms));
        let jitter = if self.jitter_ms > 0 {
            rng.gen_range(0..=self.jitter_ms)
        } else {
            0
        };
        exponential.saturating_add(jitter)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn backoff_doubles_then_saturates() {
        let policy = RetryPolicy {
            max_attempts: 8,
            base_backoff_ms: 10,
            max_backoff_ms: 50,
            jitter_ms: 0,
        };
        let mut rng = SmallRng::seed_from_u64(0);
        let schedule: Vec<u64> = (1..=7).map(|a| policy.backoff_ms(a, &mut rng)).collect();
        assert_eq!(schedule, vec![0, 10, 20, 40, 50, 50, 50]);
    }

    #[test]
    fn jitter_is_bounded_and_seed_stable() {
        let policy = RetryPolicy::default();
        let mut rng = SmallRng::seed_from_u64(9);
        for attempt in 2..=20 {
            let backoff = policy.backoff_ms(attempt, &mut rng);
            let floor = policy
                .base_backoff_ms
                .saturating_mul(1 << (attempt - 2).min(32))
                .min(policy.max_backoff_ms);
            assert!(backoff >= floor && backoff <= floor + policy.jitter_ms);
        }
        let mut a = SmallRng::seed_from_u64(3);
        let mut b = SmallRng::seed_from_u64(3);
        let first: Vec<u64> = (1..=10).map(|n| policy.backoff_ms(n, &mut a)).collect();
        let second: Vec<u64> = (1..=10).map(|n| policy.backoff_ms(n, &mut b)).collect();
        assert_eq!(first, second);
    }

    #[test]
    fn the_none_policy_is_a_single_free_attempt() {
        let policy = RetryPolicy::none();
        assert_eq!(policy.max_attempts, 1);
        let mut rng = SmallRng::seed_from_u64(0);
        assert_eq!(policy.backoff_ms(5, &mut rng), 0);
        assert_eq!(RetryPolicy::with_attempts(0).max_attempts, 1);
    }
}
