//! The simulated network between document/media hosts.
//!
//! The paper's research-directions section (§6) argues that "the use of both
//! distributed databases and distributed operating systems support is vital
//! to the efficient implementation of multimedia systems" and names the
//! Amoeba distributed OS as the intended base. There is no Amoeba cluster
//! here, so the network is a cost model: per-pair latency plus
//! bandwidth-proportional transfer time, accumulated in *simulated*
//! milliseconds. The model is deliberately simple — what matters for the §6
//! claim is the relative cost of moving a few kilobytes of document
//! structure versus megabytes of media data.

use std::collections::BTreeMap;

/// Identifier of a host in the simulated cluster.
pub type HostId = String;

/// A point-to-point link description.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Link {
    /// One-way latency in simulated milliseconds.
    pub latency_ms: u64,
    /// Throughput in bytes per simulated second.
    pub bandwidth_bps: u64,
}

impl Link {
    /// A campus LAN of the early 1990s: 10 Mbit/s Ethernet, 2 ms latency.
    pub fn lan() -> Link {
        Link {
            latency_ms: 2,
            bandwidth_bps: 1_250_000,
        }
    }

    /// A wide-area link: 512 kbit/s, 80 ms latency.
    pub fn wan() -> Link {
        Link {
            latency_ms: 80,
            bandwidth_bps: 64_000,
        }
    }

    /// Time to move `bytes` over this link, in simulated milliseconds.
    pub fn transfer_ms(&self, bytes: u64) -> u64 {
        if self.bandwidth_bps == 0 {
            return u64::MAX;
        }
        self.latency_ms + (bytes.saturating_mul(1000)) / self.bandwidth_bps
    }
}

/// The cluster topology: hosts and the links between them.
///
/// Links are stored as a nested `from → to → Link` map rather than a map
/// keyed by `(HostId, HostId)` tuples: `String` keys can be looked up by
/// `&str`, so [`Network::link`] — which sits under every traffic charge —
/// performs no heap allocation.
#[derive(Debug, Clone, Default)]
pub struct Network {
    default_link: Option<Link>,
    links: BTreeMap<HostId, BTreeMap<HostId, Link>>,
    hosts: Vec<HostId>,
}

impl Network {
    /// Creates an empty network.
    pub fn new() -> Network {
        Network::default()
    }

    /// Creates a network where every pair of hosts is connected by the same
    /// link.
    pub fn uniform(hosts: &[&str], link: Link) -> Network {
        Network {
            default_link: Some(link),
            links: BTreeMap::new(),
            hosts: hosts.iter().map(|h| h.to_string()).collect(),
        }
    }

    /// Adds a host.
    pub fn add_host(&mut self, host: impl Into<String>) {
        let host = host.into();
        if !self.hosts.contains(&host) {
            self.hosts.push(host);
        }
    }

    /// The hosts known to the network.
    pub fn hosts(&self) -> &[HostId] {
        &self.hosts
    }

    /// True when the host is part of the network.
    pub fn contains(&self, host: &str) -> bool {
        self.hosts.iter().any(|h| h == host)
    }

    /// Sets the link between a specific pair of hosts (in both directions).
    pub fn connect(&mut self, a: impl Into<String>, b: impl Into<String>, link: Link) {
        let a = a.into();
        let b = b.into();
        self.add_host(a.clone());
        self.add_host(b.clone());
        self.links
            .entry(a.clone())
            .or_default()
            .insert(b.clone(), link);
        self.links.entry(b).or_default().insert(a, link);
    }

    /// The link between two hosts, if any (specific link, then default;
    /// transfers within one host are free). Allocation-free: this runs on
    /// every traffic charge.
    pub fn link(&self, from: &str, to: &str) -> Option<Link> {
        if from == to {
            return Some(Link {
                latency_ms: 0,
                bandwidth_bps: u64::MAX,
            });
        }
        self.links
            .get(from)
            .and_then(|peers| peers.get(to))
            .copied()
            .or(self.default_link)
    }

    /// Cost in simulated milliseconds of moving `bytes` from one host to
    /// another, or `None` when the hosts are not connected.
    pub fn transfer_ms(&self, from: &str, to: &str, bytes: u64) -> Option<u64> {
        self.link(from, to).map(|link| link.transfer_ms(bytes))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn link_transfer_time_includes_latency_and_bandwidth() {
        let lan = Link::lan();
        assert_eq!(lan.transfer_ms(0), 2);
        assert_eq!(lan.transfer_ms(1_250_000), 1_002);
        let wan = Link::wan();
        assert!(wan.transfer_ms(64_000) > 1_000);
        let dead = Link {
            latency_ms: 1,
            bandwidth_bps: 0,
        };
        assert_eq!(dead.transfer_ms(10), u64::MAX);
    }

    #[test]
    fn uniform_network_connects_every_pair() {
        let network = Network::uniform(&["cwi-a", "cwi-b", "cwi-c"], Link::lan());
        assert_eq!(network.hosts().len(), 3);
        assert!(network.contains("cwi-b"));
        assert!(network.transfer_ms("cwi-a", "cwi-c", 1_000).is_some());
    }

    #[test]
    fn local_transfers_are_free() {
        let network = Network::uniform(&["host"], Link::wan());
        assert_eq!(network.transfer_ms("host", "host", 1_000_000_000), Some(0));
    }

    #[test]
    fn specific_links_override_the_default() {
        let mut network = Network::uniform(&["a", "b"], Link::lan());
        network.connect("a", "c", Link::wan());
        assert_eq!(network.link("a", "b").unwrap(), Link::lan());
        assert_eq!(network.link("a", "c").unwrap(), Link::wan());
        assert_eq!(network.link("c", "a").unwrap(), Link::wan());
        assert_eq!(network.hosts().len(), 3);
    }

    #[test]
    fn unconnected_hosts_without_default_have_no_link() {
        let mut network = Network::new();
        network.add_host("x");
        network.add_host("y");
        assert!(network.link("x", "y").is_none());
        assert!(network.transfer_ms("x", "y", 1).is_none());
    }
}
