//! Traffic accounting: cluster-wide totals plus per-link breakdowns.
//!
//! The §6 cost model only means something if the accounting is honest: every
//! simulated transfer is recorded exactly once, attributed to the directed
//! link `(from, to)` it crossed, and split into *structure* bytes (document
//! interchange text, descriptors) versus *media* bytes (block payloads).
//! The per-link view is what lets the `ext_distrib` benchmark show which
//! links carry structure and which carry media.

use std::collections::BTreeMap;

use crate::network::HostId;

/// Running totals for one directed link `(from, to)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct LinkStats {
    /// Bytes of document structure moved over this link.
    pub structure_bytes: u64,
    /// Bytes of media payload moved over this link.
    pub media_bytes: u64,
    /// Simulated milliseconds spent on this link's transfers.
    pub simulated_ms: u64,
    /// Number of transfers over this link.
    pub transfers: u64,
    /// Bytes that were in flight on transfers that failed or were aborted.
    /// Kept apart from `structure_bytes`/`media_bytes`: failed bytes
    /// occupied the link but delivered nothing, so folding them into the
    /// delivered counters would overstate goodput.
    pub failed_bytes: u64,
    /// Number of transfers over this link that failed or were aborted.
    pub failed_transfers: u64,
}

impl LinkStats {
    /// Total bytes moved over this link.
    pub fn total_bytes(&self) -> u64 {
        self.structure_bytes + self.media_bytes
    }
}

/// Running totals of simulated traffic: cluster-wide sums plus the same
/// counters broken down per directed link.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct TrafficStats {
    /// Bytes of document structure moved between hosts.
    pub structure_bytes: u64,
    /// Bytes of media payload moved between hosts.
    pub media_bytes: u64,
    /// Simulated milliseconds spent on transfers.
    pub simulated_ms: u64,
    /// Number of transfers performed.
    pub transfers: u64,
    /// Bytes in flight on failed/aborted transfers, cluster-wide.
    pub failed_bytes: u64,
    /// Failed/aborted transfers, cluster-wide.
    pub failed_transfers: u64,
    /// Per-link counters, keyed `from → to` (nested so lookups and updates
    /// borrow `&str` keys without allocating).
    per_link: BTreeMap<HostId, BTreeMap<HostId, LinkStats>>,
}

impl TrafficStats {
    /// The counters for the directed link `(from, to)`; all-zero when the
    /// link never carried a transfer.
    pub fn link(&self, from: &str, to: &str) -> LinkStats {
        self.per_link
            .get(from)
            .and_then(|inner| inner.get(to))
            .copied()
            .unwrap_or_default()
    }

    /// Every directed link that carried at least one transfer, as
    /// `(from, to, stats)`, ordered by `from` then `to`.
    pub fn per_link(&self) -> impl Iterator<Item = (&str, &str, LinkStats)> + '_ {
        self.per_link.iter().flat_map(|(from, inner)| {
            inner
                .iter()
                .map(move |(to, stats)| (from.as_str(), to.as_str(), *stats))
        })
    }

    /// Number of directed links that carried at least one transfer.
    pub fn links_used(&self) -> usize {
        self.per_link.values().map(BTreeMap::len).sum()
    }

    /// Records one completed transfer in the totals and in the link's own
    /// counters.
    pub(crate) fn record(&mut self, from: &str, to: &str, bytes: u64, is_structure: bool, ms: u64) {
        self.simulated_ms += ms;
        self.transfers += 1;
        if is_structure {
            self.structure_bytes += bytes;
        } else {
            self.media_bytes += bytes;
        }
        if let Some(link) = self.link_entry(from, to) {
            link.simulated_ms += ms;
            link.transfers += 1;
            if is_structure {
                link.structure_bytes += bytes;
            } else {
                link.media_bytes += bytes;
            }
        }
    }

    /// Records one failed/aborted transfer: the bytes it had in flight go
    /// to the failed counters only — never into the delivered totals or
    /// the `transfers` count — while any simulated time the link burned is
    /// still charged (the wire was busy even though nothing arrived).
    pub(crate) fn record_failure(&mut self, from: &str, to: &str, bytes: u64, ms: u64) {
        self.simulated_ms += ms;
        self.failed_bytes += bytes;
        self.failed_transfers += 1;
        if let Some(link) = self.link_entry(from, to) {
            link.simulated_ms += ms;
            link.failed_bytes += bytes;
            link.failed_transfers += 1;
        }
    }

    /// The mutable per-link entry for `(from, to)`, created on first use.
    fn link_entry(&mut self, from: &str, to: &str) -> Option<&mut LinkStats> {
        if !self.per_link.contains_key(from) {
            self.per_link.insert(from.to_string(), BTreeMap::new());
        }
        let inner = self.per_link.get_mut(from)?;
        if !inner.contains_key(to) {
            inner.insert(to.to_string(), LinkStats::default());
        }
        inner.get_mut(to)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_and_per_link_counters_agree() {
        let mut stats = TrafficStats::default();
        stats.record("server", "desk", 1_000, true, 3);
        stats.record("server", "desk", 2_000, false, 5);
        stats.record("server", "kiosk", 500, false, 7);

        assert_eq!(stats.structure_bytes, 1_000);
        assert_eq!(stats.media_bytes, 2_500);
        assert_eq!(stats.simulated_ms, 15);
        assert_eq!(stats.transfers, 3);

        let desk = stats.link("server", "desk");
        assert_eq!(desk.structure_bytes, 1_000);
        assert_eq!(desk.media_bytes, 2_000);
        assert_eq!(desk.total_bytes(), 3_000);
        assert_eq!(desk.transfers, 2);
        assert_eq!(stats.link("server", "kiosk").transfers, 1);
        assert_eq!(stats.links_used(), 2);

        // Totals are the sum of the per-link counters.
        let (mut s, mut m, mut ms, mut t) = (0, 0, 0, 0);
        for (_, _, link) in stats.per_link() {
            s += link.structure_bytes;
            m += link.media_bytes;
            ms += link.simulated_ms;
            t += link.transfers;
        }
        assert_eq!((s, m, ms, t), (1_000, 2_500, 15, 3));
    }

    #[test]
    fn failed_transfers_are_charged_separately_from_delivered_traffic() {
        let mut stats = TrafficStats::default();
        stats.record("server", "desk", 1_000, false, 4);
        stats.record_failure("server", "desk", 3_000, 2);
        stats.record_failure("server", "kiosk", 500, 0);

        // Delivered totals are untouched by failures.
        assert_eq!(stats.media_bytes, 1_000);
        assert_eq!(stats.transfers, 1);
        // Failures live in their own counters; link time is still charged.
        assert_eq!(stats.failed_bytes, 3_500);
        assert_eq!(stats.failed_transfers, 2);
        assert_eq!(stats.simulated_ms, 6);

        let desk = stats.link("server", "desk");
        assert_eq!(desk.media_bytes, 1_000);
        assert_eq!(desk.failed_bytes, 3_000);
        assert_eq!(desk.failed_transfers, 1);
        assert_eq!(desk.total_bytes(), 1_000, "failed bytes are not goodput");
        // A link that only ever failed still shows up in the breakdown.
        assert_eq!(stats.link("server", "kiosk").failed_transfers, 1);
        assert_eq!(stats.links_used(), 2);
    }

    #[test]
    fn links_are_directional_and_unknown_links_are_zero() {
        let mut stats = TrafficStats::default();
        stats.record("a", "b", 10, true, 1);
        assert_eq!(stats.link("a", "b").transfers, 1);
        assert_eq!(stats.link("b", "a"), LinkStats::default());
        assert_eq!(stats.link("x", "y"), LinkStats::default());
    }
}
