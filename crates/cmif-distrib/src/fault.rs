//! Deterministic, seeded fault injection for the simulated cluster.
//!
//! A [`FaultPlan`] sits between the store and the [`crate::Network`]: every
//! transfer the store attempts is first submitted to the plan, which may
//! deliver it (optionally with extra delay), drop it, or report that the
//! link is partitioned. Faults come from two sources:
//!
//! * **Scripted events**, keyed by the cluster-wide transfer sequence
//!   number (`kill host d2 at the 5th transfer`, `partition {a,b} from
//!   {c,d} at the 20th`). The sequence number is the plan's clock — the
//!   simulation has no wall clock, so "mid-broadcast" means "between two
//!   transfers", which is exactly reproducible.
//! * **Probabilistic faults** from a seeded generator (`fail 10 % of
//!   transfers`, `delay 20 % by up to 50 ms`). The same seed over the same
//!   transfer order replays the same faults, so a failing fuzz run is a
//!   regression test.
//!
//! The plan never mutates the store directly: [`FaultPlan::decide`] returns
//! a [`TransferDecision`] and the store applies the consequences (health
//! transitions, repair enqueueing, traffic accounting) itself — one
//! direction of data flow, no lock cycles.

use std::collections::BTreeSet;

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::network::HostId;

/// What the plan did to one attempted transfer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum InjectedFault {
    /// The transfer dies mid-flight (bytes charged as failed, source
    /// blamed, retryable).
    TransferFailed,
    /// The two endpoints are on opposite sides of an active partition.
    Partitioned,
}

/// The plan's verdict on one attempted transfer, plus any scripted host
/// churn that came due at this point of the sequence.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TransferDecision {
    /// The injected fault, if any (`None` = deliver).
    pub fault: Option<InjectedFault>,
    /// Extra simulated latency injected on top of the link cost.
    pub extra_ms: u64,
    /// Hosts the script just killed; the store marks them down (which
    /// queues their blocks for repair).
    pub killed: Vec<HostId>,
    /// Hosts the script just revived; the store marks them up.
    pub revived: Vec<HostId>,
}

/// A scripted fault event, fired when the transfer sequence reaches
/// `at_transfer`.
#[derive(Debug, Clone, PartialEq)]
enum Script {
    Kill(HostId),
    Revive(HostId),
    Partition(BTreeSet<HostId>, BTreeSet<HostId>),
    Heal,
}

/// A deterministic fault schedule over the cluster. See the module docs.
#[derive(Debug, Clone)]
pub struct FaultPlan {
    seed: u64,
    rng: SmallRng,
    /// Cluster-wide transfers attempted so far (the plan's clock).
    transfers: u64,
    /// Probability that any one transfer dies mid-flight.
    fail_probability: f64,
    /// Probability that a delivered transfer is delayed.
    delay_probability: f64,
    /// Upper bound (inclusive) of the injected delay.
    max_delay_ms: u64,
    /// `(at_transfer, event)`, unordered; fired events are retired.
    scripts: Vec<(u64, Script)>,
    /// Active partitions: a transfer crossing any pair is blocked.
    partitions: Vec<(BTreeSet<HostId>, BTreeSet<HostId>)>,
    /// Directed links with forced failures remaining.
    link_failures: Vec<(HostId, HostId, u64)>,
}

impl FaultPlan {
    /// An empty plan (no faults) whose probabilistic stream is a pure
    /// function of `seed`.
    pub fn seeded(seed: u64) -> FaultPlan {
        FaultPlan {
            seed,
            rng: SmallRng::seed_from_u64(seed),
            transfers: 0,
            fail_probability: 0.0,
            delay_probability: 0.0,
            max_delay_ms: 0,
            scripts: Vec::new(),
            partitions: Vec::new(),
            link_failures: Vec::new(),
        }
    }

    /// The seed the probabilistic stream was built from.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Transfers submitted to the plan so far.
    pub fn transfers_seen(&self) -> u64 {
        self.transfers
    }

    /// Every transfer independently dies mid-flight with probability `p`
    /// (clamped to `[0, 1]`).
    pub fn fail_transfers(mut self, p: f64) -> FaultPlan {
        self.fail_probability = p.clamp(0.0, 1.0);
        self
    }

    /// Every delivered transfer is delayed by `1..=max_ms` extra simulated
    /// milliseconds with probability `p`.
    pub fn delay_transfers(mut self, p: f64, max_ms: u64) -> FaultPlan {
        self.delay_probability = p.clamp(0.0, 1.0);
        self.max_delay_ms = max_ms;
        self
    }

    /// Kills `host` when the cluster-wide transfer sequence reaches
    /// `at_transfer` (1-based: `1` fires before the first transfer).
    pub fn kill_host_at(mut self, at_transfer: u64, host: impl Into<HostId>) -> FaultPlan {
        self.scripts.push((at_transfer, Script::Kill(host.into())));
        self
    }

    /// Revives `host` at the given point of the sequence.
    pub fn revive_host_at(mut self, at_transfer: u64, host: impl Into<HostId>) -> FaultPlan {
        self.scripts
            .push((at_transfer, Script::Revive(host.into())));
        self
    }

    /// Splits the cluster at the given point of the sequence: transfers
    /// between a host in `side_a` and a host in `side_b` are blocked (both
    /// directions) until a [`FaultPlan::heal_at`] event fires.
    pub fn partition_at(mut self, at_transfer: u64, side_a: &[&str], side_b: &[&str]) -> FaultPlan {
        let a = side_a.iter().map(|h| h.to_string()).collect();
        let b = side_b.iter().map(|h| h.to_string()).collect();
        self.scripts.push((at_transfer, Script::Partition(a, b)));
        self
    }

    /// Partitions immediately (before the first transfer).
    pub fn partition(self, side_a: &[&str], side_b: &[&str]) -> FaultPlan {
        self.partition_at(0, side_a, side_b)
    }

    /// Removes every active partition at the given point of the sequence.
    pub fn heal_at(mut self, at_transfer: u64) -> FaultPlan {
        self.scripts.push((at_transfer, Script::Heal));
        self
    }

    /// Forces the next `count` transfers over the directed link
    /// `from → to` to fail (independent of the probabilistic stream).
    pub fn fail_link(
        mut self,
        from: impl Into<HostId>,
        to: impl Into<HostId>,
        count: u64,
    ) -> FaultPlan {
        self.link_failures.push((from.into(), to.into(), count));
        self
    }

    /// True when an active partition separates the two hosts. Used by the
    /// store when ranking replica sources, so a partitioned holder is
    /// classified as unreachable instead of being "tried" pointlessly.
    pub fn is_partitioned(&self, a: &str, b: &str) -> bool {
        self.partitions.iter().any(|(left, right)| {
            (left.contains(a) && right.contains(b)) || (left.contains(b) && right.contains(a))
        })
    }

    /// Fires any scripted events that are due at the *current* point of
    /// the sequence without consuming a transfer slot. The store calls
    /// this from churn-free paths (e.g. health queries in drills); decide
    /// calls it internally.
    fn fire_due_scripts(&mut self, decision: &mut TransferDecision) {
        let now = self.transfers;
        let mut index = 0;
        while index < self.scripts.len() {
            if self.scripts[index].0 <= now {
                let (_, script) = self.scripts.swap_remove(index);
                match script {
                    Script::Kill(host) => decision.killed.push(host),
                    Script::Revive(host) => decision.revived.push(host),
                    Script::Partition(a, b) => self.partitions.push((a, b)),
                    Script::Heal => self.partitions.clear(),
                }
            } else {
                index += 1;
            }
        }
    }

    /// Judges one attempted transfer: advances the sequence clock, fires
    /// due scripted events, and rolls the probabilistic faults. The store
    /// must apply `killed`/`revived` *before* honouring `fault`, so a
    /// scripted kill of the source surfaces as that host being down.
    pub fn decide(&mut self, from: &str, to: &str) -> TransferDecision {
        self.transfers += 1;
        let mut decision = TransferDecision::default();
        self.fire_due_scripts(&mut decision);

        if self.is_partitioned(from, to) {
            decision.fault = Some(InjectedFault::Partitioned);
            return decision;
        }
        for (link_from, link_to, remaining) in &mut self.link_failures {
            if *remaining > 0 && link_from == from && link_to == to {
                *remaining -= 1;
                decision.fault = Some(InjectedFault::TransferFailed);
                return decision;
            }
        }
        if self.fail_probability > 0.0 && self.rng.gen_range(0.0..1.0) < self.fail_probability {
            decision.fault = Some(InjectedFault::TransferFailed);
            return decision;
        }
        if self.delay_probability > 0.0
            && self.max_delay_ms > 0
            && self.rng.gen_range(0.0..1.0) < self.delay_probability
        {
            decision.extra_ms = self.rng.gen_range(1..=self.max_delay_ms);
        }
        decision
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn an_empty_plan_delivers_everything() {
        let mut plan = FaultPlan::seeded(7);
        for _ in 0..100 {
            let decision = plan.decide("a", "b");
            assert_eq!(decision.fault, None);
            assert_eq!(decision.extra_ms, 0);
            assert!(decision.killed.is_empty());
        }
        assert_eq!(plan.transfers_seen(), 100);
    }

    #[test]
    fn probabilistic_failures_are_reproducible_per_seed() {
        let outcomes = |seed: u64| -> Vec<bool> {
            let mut plan = FaultPlan::seeded(seed).fail_transfers(0.3);
            (0..200)
                .map(|_| plan.decide("a", "b").fault.is_some())
                .collect()
        };
        let first = outcomes(42);
        assert_eq!(first, outcomes(42), "same seed, same fault stream");
        assert_ne!(first, outcomes(43), "different seed, different stream");
        let failed = first.iter().filter(|&&f| f).count();
        assert!(
            (30..=90).contains(&failed),
            "~30% of 200 expected, got {failed}"
        );
    }

    #[test]
    fn scripted_kills_fire_exactly_once_at_their_transfer() {
        let mut plan = FaultPlan::seeded(0)
            .kill_host_at(3, "d1")
            .revive_host_at(5, "d1");
        assert!(plan.decide("a", "b").killed.is_empty());
        assert!(plan.decide("a", "b").killed.is_empty());
        let third = plan.decide("a", "b");
        assert_eq!(third.killed, vec!["d1".to_string()]);
        assert!(third.revived.is_empty());
        assert!(plan.decide("a", "b").killed.is_empty(), "retired");
        let fifth = plan.decide("a", "b");
        assert_eq!(fifth.revived, vec!["d1".to_string()]);
    }

    #[test]
    fn partitions_block_both_directions_until_healed() {
        let mut plan = FaultPlan::seeded(0)
            .partition(&["a", "b"], &["c"])
            .heal_at(3);
        assert_eq!(
            plan.decide("a", "c").fault,
            Some(InjectedFault::Partitioned)
        );
        assert_eq!(
            plan.decide("c", "b").fault,
            Some(InjectedFault::Partitioned)
        );
        assert!(plan.is_partitioned("a", "c"));
        // Same side: unaffected — and the heal fires during this third
        // decide, so the split is gone afterwards.
        assert_eq!(plan.decide("a", "b").fault, None);
        assert!(!plan.is_partitioned("a", "c"));
        assert_eq!(plan.decide("a", "c").fault, None);
    }

    #[test]
    fn forced_link_failures_burn_down_their_count() {
        let mut plan = FaultPlan::seeded(0).fail_link("a", "b", 2);
        assert!(plan.decide("a", "b").fault.is_some());
        // The reverse direction is a different link.
        assert!(plan.decide("b", "a").fault.is_none());
        assert!(plan.decide("a", "b").fault.is_some());
        assert!(plan.decide("a", "b").fault.is_none(), "count exhausted");
    }

    #[test]
    fn injected_delays_are_bounded_and_seed_stable() {
        let mut plan = FaultPlan::seeded(11).delay_transfers(1.0, 50);
        let delays: Vec<u64> = (0..50).map(|_| plan.decide("a", "b").extra_ms).collect();
        assert!(delays.iter().all(|&d| (1..=50).contains(&d)));
        let mut replay = FaultPlan::seeded(11).delay_transfers(1.0, 50);
        let replayed: Vec<u64> = (0..50).map(|_| replay.decide("a", "b").extra_ms).collect();
        assert_eq!(delays, replayed);
    }
}
