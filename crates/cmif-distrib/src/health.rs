//! Per-host health tracking: the `Up → Suspect → Down` state machine.
//!
//! The store watches every transfer it attempts. A host that keeps failing
//! its transfers is first *suspected* (deprioritized as a fetch source,
//! still tried) and then declared *down* (skipped entirely, its blocks
//! queued for re-replication). A successful transfer clears the record —
//! one good round trip is proof of life. The thresholds are a policy knob
//! ([`HealthPolicy`]) because a LAN and a WAN justify different patience.
//!
//! Administrative transitions ride the same machine: `mark_down` forces
//! `Down` (maintenance, or a fault plan killing the host), `mark_up`
//! forces `Up`, and `decommission` moves the host to the terminal
//! [`HealthState::Decommissioned`] — the host also leaves the placement
//! ring, so nothing is ever scheduled onto it again.

use std::fmt;

/// The serviceability of one host, as observed by the store.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum HealthState {
    /// Transfers succeed; the host is a first-choice replica source.
    Up,
    /// Recent transfers failed; still tried, but only after every `Up`
    /// holder.
    Suspect,
    /// Enough consecutive failures (or an explicit `mark_down`): skipped
    /// as a source and destination until `mark_up`.
    Down,
    /// Permanently removed from service (`decommission`); terminal.
    Decommissioned,
}

impl HealthState {
    /// True when the host may serve or receive transfers.
    pub fn is_serviceable(&self) -> bool {
        matches!(self, HealthState::Up | HealthState::Suspect)
    }
}

impl fmt::Display for HealthState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.pad(match self {
            HealthState::Up => "up",
            HealthState::Suspect => "suspect",
            HealthState::Down => "down",
            HealthState::Decommissioned => "decommissioned",
        })
    }
}

/// When observed failures move a host along `Up → Suspect → Down`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HealthPolicy {
    /// Consecutive failures after which a host becomes [`HealthState::Suspect`].
    pub failures_to_suspect: u32,
    /// Consecutive failures after which a host becomes [`HealthState::Down`]
    /// (must be ≥ `failures_to_suspect`; enforced at construction).
    pub failures_to_down: u32,
}

impl Default for HealthPolicy {
    /// One failure casts suspicion; three in a row declare the host down.
    fn default() -> HealthPolicy {
        HealthPolicy {
            failures_to_suspect: 1,
            failures_to_down: 3,
        }
    }
}

impl HealthPolicy {
    /// A policy with explicit thresholds; `failures_to_down` is clamped to
    /// at least `failures_to_suspect` (a host cannot go down before it is
    /// suspected) and both to at least one.
    pub fn new(failures_to_suspect: u32, failures_to_down: u32) -> HealthPolicy {
        let failures_to_suspect = failures_to_suspect.max(1);
        HealthPolicy {
            failures_to_suspect,
            failures_to_down: failures_to_down.max(failures_to_suspect),
        }
    }
}

/// One host's health record: current state plus the consecutive-failure
/// counter that drives observed transitions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HostHealth {
    state: HealthState,
    consecutive_failures: u32,
}

impl Default for HostHealth {
    /// Hosts start `Up` with a clean record.
    fn default() -> HostHealth {
        HostHealth {
            state: HealthState::Up,
            consecutive_failures: 0,
        }
    }
}

/// One state-machine transition, kept in the store's health log so churn
/// drills and tests can assert the exact path a host took.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HealthTransition {
    /// The host that changed state.
    pub host: String,
    /// The state it left.
    pub from: HealthState,
    /// The state it entered.
    pub to: HealthState,
    /// What drove the transition (`"observed-failure"`,
    /// `"observed-success"`, `"mark-down"`, `"mark-up"`, `"decommission"`).
    pub cause: &'static str,
}

impl fmt::Display for HealthTransition {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: {} -> {} ({})",
            self.host, self.from, self.to, self.cause
        )
    }
}

impl HostHealth {
    /// The host's current state.
    pub fn state(&self) -> HealthState {
        self.state
    }

    /// Consecutive failed transfers since the last success.
    pub fn consecutive_failures(&self) -> u32 {
        self.consecutive_failures
    }

    /// Records a failed transfer; returns the new state when it changed.
    /// `Down` and `Decommissioned` hosts stay where they are.
    pub fn observe_failure(&mut self, policy: &HealthPolicy) -> Option<HealthState> {
        let state = self.state();
        if !state.is_serviceable() {
            return None;
        }
        self.consecutive_failures = self.consecutive_failures.saturating_add(1);
        let next = if self.consecutive_failures >= policy.failures_to_down {
            HealthState::Down
        } else if self.consecutive_failures >= policy.failures_to_suspect {
            HealthState::Suspect
        } else {
            HealthState::Up
        };
        (next != state).then(|| {
            self.state = next;
            next
        })
    }

    /// Records a successful transfer: clears the failure streak and
    /// returns `Some(Up)` when that recovered a `Suspect` host. `Down`
    /// hosts do *not* self-heal on a stray success — an operator (or the
    /// fault plan) must `mark_up` — so a flapping host cannot oscillate
    /// into the replica set between probes.
    pub fn observe_success(&mut self) -> Option<HealthState> {
        self.consecutive_failures = 0;
        if self.state == HealthState::Suspect {
            self.state = HealthState::Up;
            return Some(HealthState::Up);
        }
        None
    }

    /// Forces a state (administrative transition); returns the previous
    /// state when it changed. Decommissioned hosts never leave that state.
    pub fn force(&mut self, state: HealthState) -> Option<HealthState> {
        let current = self.state;
        if current == HealthState::Decommissioned || current == state {
            return None;
        }
        self.state = state;
        self.consecutive_failures = 0;
        Some(current)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn failures_walk_up_suspect_down_under_the_default_policy() {
        let policy = HealthPolicy::default();
        let mut health = HostHealth::default();
        assert_eq!(health.state(), HealthState::Up);
        assert_eq!(health.observe_failure(&policy), Some(HealthState::Suspect));
        assert_eq!(health.observe_failure(&policy), None, "still suspect");
        assert_eq!(health.observe_failure(&policy), Some(HealthState::Down));
        // Down is sticky for further failures and for successes.
        assert_eq!(health.observe_failure(&policy), None);
        assert_eq!(health.observe_success(), None);
        assert_eq!(health.state(), HealthState::Down);
    }

    #[test]
    fn a_success_recovers_a_suspect_host_and_resets_the_streak() {
        let policy = HealthPolicy::default();
        let mut health = HostHealth::default();
        health.observe_failure(&policy);
        assert_eq!(health.state(), HealthState::Suspect);
        assert_eq!(health.observe_success(), Some(HealthState::Up));
        assert_eq!(health.consecutive_failures(), 0);
        // The streak restarts from zero: down needs three fresh failures.
        health.observe_failure(&policy);
        health.observe_failure(&policy);
        assert_eq!(health.state(), HealthState::Suspect);
    }

    #[test]
    fn forced_transitions_override_but_decommission_is_terminal() {
        let mut health = HostHealth::default();
        assert_eq!(health.force(HealthState::Down), Some(HealthState::Up));
        assert_eq!(health.force(HealthState::Down), None, "no-op repeat");
        assert_eq!(health.force(HealthState::Up), Some(HealthState::Down));
        assert_eq!(
            health.force(HealthState::Decommissioned),
            Some(HealthState::Up)
        );
        assert_eq!(health.force(HealthState::Up), None, "terminal");
        assert_eq!(health.state(), HealthState::Decommissioned);
        assert!(!health.state().is_serviceable());
    }

    #[test]
    fn policy_clamps_nonsensical_thresholds() {
        let policy = HealthPolicy::new(0, 0);
        assert_eq!(policy.failures_to_suspect, 1);
        assert_eq!(policy.failures_to_down, 1);
        let mut health = HostHealth::default();
        // suspect==down: the first failure goes straight to Down.
        assert_eq!(health.observe_failure(&policy), Some(HealthState::Down));
        let policy = HealthPolicy::new(5, 2);
        assert_eq!(policy.failures_to_down, 5, "down >= suspect");
    }
}
