//! Self-healing re-replication: the queue of under-replicated objects and
//! the background worker that drains it.
//!
//! When a host goes down (observed by the health machine, forced by an
//! operator, or killed by a fault plan) every block and document it held
//! may have dropped below the store's replication factor. The store scans
//! its placement indices and enqueues the affected keys here; a repair
//! pass ([`crate::DistributedStore::repair_all`]) then copies each object
//! from its nearest surviving holder to fresh ring-chosen hosts until the
//! factor is restored, charging the copies to [`crate::TrafficStats`] like
//! any other transfer — repair traffic is real traffic.
//!
//! The queue itself is deliberately dumb: FIFO plus dedup. All placement
//! decisions stay in the store, where the ring, health map and traffic
//! accounting live.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::{self, JoinHandle};
use std::time::Duration;

use std::collections::{BTreeSet, VecDeque};

use cmif_core::symbol::Symbol;

use crate::network::HostId;
use crate::store::DistributedStore;

/// One under-replicated object awaiting repair.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum RepairItem {
    /// A media block, by interned key.
    Block(Symbol),
    /// A published document, by interned name.
    Document(Symbol),
}

impl RepairItem {
    /// The object's key/name.
    pub fn key(&self) -> Symbol {
        match self {
            RepairItem::Block(key) | RepairItem::Document(key) => *key,
        }
    }

    /// `"block"` or `"document"`, for reports and logs.
    pub fn kind(&self) -> &'static str {
        match self {
            RepairItem::Block(_) => "block",
            RepairItem::Document(_) => "document",
        }
    }
}

impl std::fmt::Display for RepairItem {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} `{}`", self.kind(), self.key().as_str())
    }
}

/// FIFO of objects suspected to be under-replicated, with duplicate
/// suppression — a host-down scan touching a thousand keys enqueues each
/// key once no matter how many scans run.
#[derive(Debug, Default)]
pub struct RepairQueue {
    pending: VecDeque<RepairItem>,
    queued: BTreeSet<RepairItem>,
}

impl RepairQueue {
    /// Adds an item unless it is already queued; true when newly added.
    pub fn enqueue(&mut self, item: RepairItem) -> bool {
        if self.queued.insert(item) {
            self.pending.push_back(item);
            true
        } else {
            false
        }
    }

    /// Takes the oldest queued item.
    pub fn pop(&mut self) -> Option<RepairItem> {
        let item = self.pending.pop_front()?;
        self.queued.remove(&item);
        Some(item)
    }

    /// Number of items waiting.
    pub fn len(&self) -> usize {
        self.pending.len()
    }

    /// True when nothing is waiting.
    pub fn is_empty(&self) -> bool {
        self.pending.is_empty()
    }
}

/// One replica copy performed during a repair pass.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RepairAction {
    /// What was copied.
    pub item: RepairItem,
    /// The surviving holder the copy came from.
    pub from: HostId,
    /// The host that received the new replica.
    pub to: HostId,
    /// Payload (or wire) bytes moved.
    pub bytes: u64,
    /// Simulated milliseconds the copy took.
    pub simulated_ms: u64,
}

impl std::fmt::Display for RepairAction {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "re-replicated {} from `{}` to `{}` ({} bytes, {} ms)",
            self.item, self.from, self.to, self.bytes, self.simulated_ms
        )
    }
}

/// Outcome of one repair pass over the queue.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RepairReport {
    /// Every replica copy performed, in order.
    pub actions: Vec<RepairAction>,
    /// Items restored to the full replication factor.
    pub repaired: Vec<RepairItem>,
    /// Items with *zero* surviving holders — unrecoverable data loss
    /// (cannot happen from a single host loss at RF ≥ 2). Not re-queued.
    pub lost: Vec<RepairItem>,
    /// Items the pass could not (fully) restore this time — a copy failed
    /// or too few serviceable target hosts exist. Re-queued for the next
    /// pass only when a copy failed; a cluster that is simply too small
    /// is not retried until membership changes.
    pub deferred: Vec<RepairItem>,
    /// Total payload/wire bytes copied.
    pub bytes_copied: u64,
    /// Total simulated milliseconds spent copying.
    pub simulated_ms: u64,
}

impl RepairReport {
    /// True when the pass left nothing to do and lost nothing.
    pub fn is_clean(&self) -> bool {
        self.lost.is_empty() && self.deferred.is_empty()
    }
}

/// A background thread draining the store's repair queue — the "repair
/// daemon" a real cluster would run. Polls the queue, runs
/// [`DistributedStore::repair_all`] when work appears, and stops (joining
/// the thread) on [`RepairWorker::stop`] or drop.
#[derive(Debug)]
pub struct RepairWorker {
    stop: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
}

impl RepairWorker {
    /// Spawns the worker over a shared store.
    pub fn spawn(store: Arc<DistributedStore>) -> RepairWorker {
        let stop = Arc::new(AtomicBool::new(false));
        let flag = Arc::clone(&stop);
        let handle = thread::Builder::new()
            .name("cmif-repair".to_string())
            .spawn(move || {
                while !flag.load(Ordering::Acquire) {
                    if store.pending_repairs() > 0 {
                        store.repair_all();
                    }
                    thread::park_timeout(Duration::from_millis(1));
                }
            })
            .ok();
        RepairWorker { stop, handle }
    }

    /// Stops the worker and waits for its thread to exit.
    pub fn stop(mut self) {
        self.shutdown();
    }

    fn shutdown(&mut self) {
        self.stop.store(true, Ordering::Release);
        if let Some(handle) = self.handle.take() {
            handle.thread().unpark();
            let _ = handle.join();
        }
    }
}

impl Drop for RepairWorker {
    fn drop(&mut self) {
        self.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn the_queue_deduplicates_and_preserves_fifo_order() {
        let mut queue = RepairQueue::default();
        let a = RepairItem::Block(Symbol::intern("repair-a"));
        let b = RepairItem::Document(Symbol::intern("repair-b"));
        assert!(queue.enqueue(a));
        assert!(queue.enqueue(b));
        assert!(!queue.enqueue(a), "duplicate suppressed");
        assert_eq!(queue.len(), 2);
        assert_eq!(queue.pop(), Some(a));
        // Popping releases the dedup slot: the key can queue again.
        assert!(queue.enqueue(a));
        assert_eq!(queue.pop(), Some(b));
        assert_eq!(queue.pop(), Some(a));
        assert!(queue.is_empty());
        assert_eq!(queue.pop(), None);
    }

    #[test]
    fn items_display_their_kind_and_key() {
        let item = RepairItem::Block(Symbol::intern("speech"));
        assert_eq!(item.to_string(), "block `speech`");
        assert_eq!(item.kind(), "block");
        let item = RepairItem::Document(Symbol::intern("news"));
        assert_eq!(item.to_string(), "document `news`");
    }
}
