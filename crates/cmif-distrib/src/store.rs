//! The distributed document and media store, sharded per host.
//!
//! Each host of the simulated cluster holds a set of CMIF documents (as
//! wire bytes — the compact binary form by default, canonical text on
//! request, see [`WireEncoding`]) and a local [`BlockStore`] of media
//! blocks. Documents are small and travel freely; media blocks are large
//! and travel only when something actually needs the bytes. That asymmetry
//! is the paper's §6 point: "the value of document sharing and multiple
//! access to information is vital", and it is the *description* that is
//! shared, not the data.
//!
//! # Sharding
//!
//! The host map is built once at construction and never changes shape
//! afterwards, so it needs no lock of its own. All mutable state is per
//! host: a host's documents sit behind that host's own `RwLock`, and its
//! media blocks behind the [`BlockStore`]'s internal locks. No lock spans
//! more than one host's state — a publisher writing host A never blocks a
//! reader of host B, and callbacks running against one host's store
//! ([`DistributedStore::with_local_store`]) can re-enter the distributed
//! store freely.
//!
//! Cross-host bookkeeping lives in two small, short-held structures: a
//! block → holders placement index (so locating a block is one map lookup
//! instead of a scan over every host) and the [`TrafficStats`] accumulator.

use std::collections::{BTreeMap, BTreeSet};
use std::sync::{Condvar, Mutex as StdMutex, MutexGuard, PoisonError};

use parking_lot::{Mutex, RwLock};

use cmif_core::descriptor::DataDescriptor;
use cmif_core::symbol::Symbol;
use cmif_core::tree::Document;
use cmif_format::{document_to_bytes, WireEncoding, WireFormat};
use cmif_media::store::BlockStore;
use cmif_media::{MediaBlock, MediaError};

use crate::error::{DistribError, Result};
use crate::network::{HostId, Network};
use crate::placement::PlacementRing;
pub use crate::traffic::{LinkStats, TrafficStats};

/// One host's storage shard. Everything mutable in here is guarded by this
/// host's own locks; nothing reaches across to another host.
#[derive(Debug, Default)]
struct HostShard {
    /// Documents held by this host, as wire bytes keyed by interned name.
    /// The bytes are whatever encoding the publisher chose; readers
    /// auto-detect by magic when opening.
    documents: RwLock<BTreeMap<Symbol, Vec<u8>>>,
    /// Media blocks held by this host (internally locked).
    blocks: BlockStore,
    /// Block keys currently being fetched *to* this host. A fetch reserves
    /// the key here before moving any bytes, so concurrent fetches of the
    /// same block charge exactly one transfer. Keys are `Copy` symbols —
    /// reserving one never allocates.
    inflight: StdMutex<BTreeSet<Symbol>>,
    /// Signalled when an in-flight fetch to this host finishes (either way).
    arrived: Condvar,
}

/// Locks an in-flight set, ignoring poisoning (a panicked fetch must not
/// wedge every later fetch to the host).
fn lock_inflight(shard: &HostShard) -> MutexGuard<'_, BTreeSet<Symbol>> {
    shard
        .inflight
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
}

/// Drop guard for a key reserved in a host's in-flight set: releases the
/// reservation and wakes waiters on every exit path, panics included.
struct InflightReservation<'a> {
    shard: &'a HostShard,
    key: Symbol,
}

impl Drop for InflightReservation<'_> {
    fn drop(&mut self) {
        let mut inflight = lock_inflight(self.shard);
        inflight.remove(&self.key);
        self.shard.arrived.notify_all();
    }
}

/// Where a block's replicas live, plus its payload size for cost ranking.
#[derive(Debug)]
struct BlockPlacement {
    /// Payload size in bytes (used to rank candidate sources by transfer
    /// cost without touching any host's store).
    bytes: u64,
    /// The hosts currently holding a copy.
    holders: BTreeSet<HostId>,
}

/// The distributed store: a cluster of per-host shards, a consistent-hash
/// placement policy with a configurable replication factor, and per-link
/// traffic accounting.
#[derive(Debug)]
pub struct DistributedStore {
    network: Network,
    /// One shard per host; append-frozen at construction, hence lock-free.
    shards: BTreeMap<HostId, HostShard>,
    /// Consistent-hash ring choosing replica hosts for new blocks/documents.
    ring: PlacementRing,
    /// Number of hosts that receive a copy of each block/document.
    replication: usize,
    /// Block key → holders index (replaces scanning every host's keys).
    /// Keyed by interned symbol: lookups and inserts compare integers.
    placement: RwLock<BTreeMap<Symbol, BlockPlacement>>,
    traffic: Mutex<TrafficStats>,
    /// The wire form new documents are published in (binary by default).
    wire: WireEncoding,
}

impl DistributedStore {
    /// Creates a store over the given network with one (empty) shard per
    /// network host and no replication (each block/document lives only
    /// where it is put).
    pub fn new(network: Network) -> DistributedStore {
        Self::build(network, 1)
    }

    /// Creates a store that replicates every `put_block`/`publish_document`
    /// onto `factor` hosts chosen by consistent hashing (the origin host
    /// counts as one replica). Fails with
    /// [`DistribError::InvalidReplication`] when `factor` is zero or larger
    /// than the cluster.
    pub fn with_replication(network: Network, factor: usize) -> Result<DistributedStore> {
        // Count distinct hosts: the shard map and the placement ring both
        // deduplicate, so a duplicated host name must not let an
        // unsatisfiable factor through.
        let hosts = network
            .hosts()
            .iter()
            .collect::<std::collections::BTreeSet<_>>()
            .len();
        if factor == 0 || factor > hosts {
            return Err(DistribError::InvalidReplication {
                requested: factor,
                hosts,
            });
        }
        Ok(Self::build(network, factor))
    }

    fn build(network: Network, replication: usize) -> DistributedStore {
        let mut shards = BTreeMap::new();
        for host in network.hosts() {
            shards.insert(host.clone(), HostShard::default());
        }
        let ring = PlacementRing::new(network.hosts());
        DistributedStore {
            network,
            shards,
            ring,
            replication,
            placement: RwLock::new(BTreeMap::new()),
            traffic: Mutex::new(TrafficStats::default()),
            wire: WireEncoding::default(),
        }
    }

    /// Chooses the wire form new documents are published in. Binary is the
    /// default; text keeps the stored bytes human-readable at the cost of
    /// larger structure transfers. Already-published documents keep the
    /// encoding they were published with — readers auto-detect.
    pub fn with_wire_encoding(mut self, encoding: WireEncoding) -> DistributedStore {
        self.wire = encoding;
        self
    }

    /// The wire form new documents are published in.
    pub fn wire_encoding(&self) -> WireEncoding {
        self.wire
    }

    /// The network this store simulates traffic over.
    pub fn network(&self) -> &Network {
        &self.network
    }

    /// How many hosts receive a copy of each newly stored block/document.
    pub fn replication_factor(&self) -> usize {
        self.replication
    }

    /// Looks a host's shard up, as a typed error instead of a panic when
    /// the host is unknown.
    fn shard(&self, host: &str) -> Result<&HostShard> {
        self.shards
            .get(host)
            .ok_or_else(|| DistribError::UnknownHost {
                host: host.to_string(),
            })
    }

    /// Records a transfer whose cost is already known.
    fn record(&self, from: &str, to: &str, bytes: u64, is_structure: bool, ms: u64) {
        self.traffic
            .lock()
            .record(from, to, bytes, is_structure, ms);
    }

    /// Computes a transfer's cost and records it.
    fn charge(&self, from: &str, to: &str, bytes: u64, is_structure: bool) -> Result<u64> {
        let cost =
            self.network
                .transfer_ms(from, to, bytes)
                .ok_or_else(|| DistribError::Unreachable {
                    from: from.to_string(),
                    to: to.to_string(),
                })?;
        self.record(from, to, bytes, is_structure, cost);
        Ok(cost)
    }

    /// Marks `host` as a holder of `key` in the placement index.
    fn index_holder(&self, key: Symbol, bytes: u64, host: &str) {
        let mut placement = self.placement.write();
        if let Some(entry) = placement.get_mut(&key) {
            entry.bytes = bytes;
            entry.holders.insert(host.to_string());
        } else {
            placement.insert(
                key,
                BlockPlacement {
                    bytes,
                    holders: [host.to_string()].into_iter().collect(),
                },
            );
        }
    }

    /// Traffic accumulated so far (totals plus per-link breakdown).
    pub fn traffic(&self) -> TrafficStats {
        self.traffic.lock().clone()
    }

    /// Resets the traffic counters (between benchmark phases).
    pub fn reset_traffic(&self) {
        *self.traffic.lock() = TrafficStats::default();
    }

    /// Plans the replica fan-out for a new block/document while the calling
    /// operation is still side-effect free: the first `replication - 1`
    /// ring-chosen hosts distinct from the origin, each validated to exist
    /// and be reachable, paired with the transfer cost for `bytes`. Empty
    /// without replication.
    fn plan_replicas(&self, key: &str, origin: &str, bytes: u64) -> Result<Vec<(HostId, u64)>> {
        let mut replicas = Vec::new();
        if self.replication > 1 {
            let targets: Vec<HostId> = self
                .ring
                .hosts_for(key, self.replication)
                .into_iter()
                .filter(|candidate| candidate.as_str() != origin)
                .take(self.replication - 1)
                .cloned()
                .collect();
            for target in targets {
                self.shard(&target)?;
                let cost = self
                    .network
                    .transfer_ms(origin, &target, bytes)
                    .ok_or_else(|| DistribError::Unreachable {
                        from: origin.to_string(),
                        to: target.clone(),
                    })?;
                replicas.push((target, cost));
            }
        }
        Ok(replicas)
    }

    // ------------------------------------------------------------------
    // Media blocks
    // ------------------------------------------------------------------

    /// Stores a media block on a host and, when the replication factor is
    /// above one, copies it to further ring-chosen hosts, charging each
    /// replica transfer. Returns the simulated milliseconds spent on
    /// replication (zero without replication).
    ///
    /// Replica targets and their reachability are validated *before* the
    /// origin insert, so an unreachable ring target fails the whole call
    /// cleanly: nothing is stored, indexed or charged, and the caller can
    /// retry after fixing the topology.
    pub fn put_block(
        &self,
        host: &str,
        block: MediaBlock,
        descriptor: DataDescriptor,
    ) -> Result<u64> {
        let shard = self.shard(host)?;
        let key = Symbol::intern(&block.key);
        let bytes = block.payload.size_bytes();
        let replicas = self.plan_replicas(key.as_str(), host, bytes)?;
        let replica_payload = (!replicas.is_empty()).then(|| block.payload.clone());

        shard
            .blocks
            .put_with_descriptor(block, descriptor.clone())
            .map_err(DistribError::Media)?;
        self.index_holder(key, bytes, host);

        let mut total_cost = 0;
        // The last replica consumes the payload/descriptor instead of
        // cloning them: K replicas cost K payload copies, not K + 1.
        if let Some(payload) = replica_payload {
            if let Some(((last_target, last_cost), rest)) = replicas.split_last() {
                for (target, cost) in rest {
                    total_cost += self.put_replica(
                        host,
                        target,
                        *cost,
                        key,
                        payload.clone(),
                        descriptor.clone(),
                    )?;
                }
                total_cost +=
                    self.put_replica(host, last_target, *last_cost, key, payload, descriptor)?;
            }
        }
        Ok(total_cost)
    }

    /// Copies one planned replica to `target`, charging the transfer and
    /// indexing the new holder. Returns the cost charged — zero when the
    /// target already holds the block (e.g. it was put there directly), in
    /// which case nothing moved and nothing is charged.
    fn put_replica(
        &self,
        origin: &str,
        target: &str,
        cost: u64,
        key: Symbol,
        payload: cmif_media::MediaPayload,
        descriptor: DataDescriptor,
    ) -> Result<u64> {
        let bytes = payload.size_bytes();
        match self
            .shard(target)?
            .blocks
            .put_with_descriptor(MediaBlock::new(key.as_str(), payload), descriptor)
        {
            Ok(()) => {
                self.record(origin, target, bytes, false, cost);
                self.index_holder(key, bytes, target);
                Ok(cost)
            }
            Err(MediaError::DuplicateBlock { .. }) => Ok(0),
            Err(e) => Err(DistribError::Media(e)),
        }
    }

    /// The keys of the blocks a host holds locally.
    pub fn local_blocks(&self, host: &str) -> Result<Vec<String>> {
        Ok(self.shard(host)?.blocks.keys())
    }

    /// Finds a host holding the block (the first holder in lexical order;
    /// use [`DistributedStore::nearest_source`] for cost-aware selection).
    /// Never interns: unknown keys miss without growing the pool.
    pub fn locate_block(&self, key: &str) -> Option<HostId> {
        let key = Symbol::lookup(key)?;
        let placement = self.placement.read();
        placement
            .get(&key)
            .and_then(|entry| entry.holders.iter().next().cloned())
    }

    /// Every host currently holding a copy of the block, in lexical order.
    pub fn replicas_of(&self, key: &str) -> Vec<HostId> {
        let Some(key) = Symbol::lookup(key) else {
            return Vec::new();
        };
        let placement = self.placement.read();
        placement
            .get(&key)
            .map(|entry| entry.holders.iter().cloned().collect())
            .unwrap_or_default()
    }

    /// The cheapest source to fetch the block to `to` from, ranked by the
    /// network's transfer cost for the block's actual size (ties break in
    /// lexical host order). `None` when no host holds the block or no
    /// holder is reachable.
    pub fn nearest_source(&self, to: &str, key: &str) -> Option<HostId> {
        // Validate the destination like every other API: a default link
        // must not make an unknown host look reachable.
        if !self.shards.contains_key(to) {
            return None;
        }
        self.select_source(to, Symbol::lookup(key)?, None).ok()
    }

    /// Picks the holder to serve `key` to `to`: the destination itself when
    /// it holds a copy, otherwise the holder cheapest for moving the given
    /// byte count (`None` ranks by the block's actual size; descriptor
    /// fetches pass `Some(0)` since they are latency-dominated). Errors
    /// distinguish a block nobody holds ([`MediaError::UnknownBlock`]) from
    /// one whose holders are all unreachable
    /// ([`DistribError::Unreachable`]).
    fn select_source(&self, to: &str, key: Symbol, bytes_override: Option<u64>) -> Result<HostId> {
        let placement = self.placement.read();
        let entry = placement.get(&key).ok_or_else(|| {
            DistribError::Media(MediaError::UnknownBlock {
                key: key.as_str().to_string(),
            })
        })?;
        if entry.holders.contains(to) {
            return Ok(to.to_string());
        }
        let bytes = bytes_override.unwrap_or(entry.bytes);
        entry
            .holders
            .iter()
            .filter_map(|holder| {
                self.network
                    .transfer_ms(holder, to, bytes)
                    .map(|cost| (cost, holder))
            })
            .min_by_key(|(cost, _)| *cost)
            .map(|(_, holder)| holder.clone())
            .ok_or_else(|| DistribError::Unreachable {
                // Holder sets are never empty once indexed; name the first
                // holder in the error so the operator sees the topology gap.
                from: entry.holders.iter().next().cloned().unwrap_or_default(),
                to: to.to_string(),
            })
    }

    /// Fetches a block's descriptor to `to` from the holder cheapest for
    /// descriptor-sized data (latency-dominated, unlike payload fetches).
    /// Only descriptor bytes move; when `to` itself holds the block the
    /// read is local and no transfer is recorded.
    pub fn fetch_descriptor(&self, to: &str, key: &str) -> Result<DataDescriptor> {
        self.shard(to)?;
        let key = Symbol::lookup(key).ok_or_else(|| {
            DistribError::Media(MediaError::UnknownBlock {
                key: key.to_string(),
            })
        })?;
        let from = self.select_source(to, key, Some(0))?;
        let descriptor = self
            .shard(&from)?
            .blocks
            .descriptor(key.as_str())
            .map_err(DistribError::Media)?;
        if from != to {
            self.charge(&from, to, descriptor.approx_descriptor_size() as u64, true)?;
        }
        Ok(descriptor)
    }

    /// Fetches a block's payload to `to` from the nearest holder, copying it
    /// into `to`'s local store (so later fetches are free) and charging the
    /// media transfer.
    ///
    /// The destination host reserves the key before any bytes move: when N
    /// callers race to fetch the same block, one performs (and is charged
    /// for) the transfer while the others wait on the reservation and then
    /// find the block local — exactly one transfer lands in
    /// [`TrafficStats`].
    pub fn fetch_block(&self, to: &str, key: &str) -> Result<u64> {
        // Never interns: a block that exists anywhere was interned when it
        // was put, so a pool miss is an unknown block — failing lookups of
        // caller-supplied keys must not grow the pool.
        let key = Symbol::lookup(key).ok_or_else(|| {
            DistribError::Media(MediaError::UnknownBlock {
                key: key.to_string(),
            })
        })?;
        self.fetch_block_symbol(to, key)
    }

    /// [`DistributedStore::fetch_block`] with the key already interned —
    /// the form the transport planner uses so a fetch loop over N keys does
    /// no string work at all.
    pub fn fetch_block_symbol(&self, to: &str, key: Symbol) -> Result<u64> {
        let dest = self.shard(to)?;
        {
            let mut inflight = lock_inflight(dest);
            loop {
                if dest.blocks.contains(key.as_str()) {
                    return Ok(0);
                }
                if !inflight.contains(&key) {
                    inflight.insert(key);
                    break;
                }
                // Another fetch of this key is in flight to this host; wait
                // for it to finish, then re-check (it may have failed, in
                // which case we take over the reservation).
                inflight = dest
                    .arrived
                    .wait(inflight)
                    .unwrap_or_else(PoisonError::into_inner);
            }
        }
        // Release the reservation on every exit path — including a panic
        // inside the transfer — so a failed fetch never wedges later
        // fetches of the same key to this host.
        let _reservation = InflightReservation { shard: dest, key };
        self.pull_block(dest, to, key)
    }

    /// The actual transfer behind [`DistributedStore::fetch_block`]; runs
    /// with the key reserved on the destination host.
    fn pull_block(&self, dest: &HostShard, to: &str, key: Symbol) -> Result<u64> {
        let from = self.select_source(to, key, None)?;
        let source = self.shard(&from)?;
        let payload = source
            .blocks
            .payload(key.as_str())
            .map_err(DistribError::Media)?;
        let descriptor = source
            .blocks
            .descriptor(key.as_str())
            .map_err(DistribError::Media)?;
        let bytes = payload.size_bytes();
        let cost = self.network.transfer_ms(&from, to, bytes).ok_or_else(|| {
            DistribError::Unreachable {
                from: from.clone(),
                to: to.to_string(),
            }
        })?;
        match dest
            .blocks
            .put_with_descriptor(MediaBlock::new(key.as_str(), payload), descriptor)
        {
            Ok(()) => {
                self.record(&from, to, bytes, false, cost);
                self.index_holder(key, bytes, to);
                Ok(cost)
            }
            // A direct `put_block` to this host slipped in between our
            // reservation and the insert: the block is local and no bytes
            // moved on our behalf, so nothing is charged.
            Err(MediaError::DuplicateBlock { .. }) => Ok(0),
            Err(e) => Err(DistribError::Media(e)),
        }
    }

    // ------------------------------------------------------------------
    // Documents
    // ------------------------------------------------------------------

    /// Publishes a document on a host under a name, serializing it in the
    /// store's wire encoding (binary by default, see
    /// [`DistributedStore::with_wire_encoding`]) and replicating the wire
    /// bytes to further ring-chosen hosts when the replication factor is
    /// above one (each replica transfer is charged as structure bytes).
    /// Only the structure is stored; media blocks stay wherever they are.
    /// Returns the structure size in bytes.
    ///
    /// Like [`DistributedStore::put_block`], replica targets are validated
    /// before anything is stored or charged, so an unreachable ring target
    /// fails the whole call with no partial state and no phantom traffic.
    pub fn publish_document(&self, host: &str, name: &str, doc: &Document) -> Result<usize> {
        let origin = self.shard(host)?;
        let name = Symbol::intern(name);
        let bytes = document_to_bytes(doc, self.wire).map_err(DistribError::Format)?;
        let size = bytes.len();
        let replicas = self.plan_replicas(name.as_str(), host, size as u64)?;

        // The last insert consumes `bytes` instead of cloning it: K
        // replicas cost K copies of the wire bytes, not K + 1.
        if replicas.is_empty() {
            origin.documents.write().insert(name, bytes);
            return Ok(size);
        }
        let mut bytes = bytes;
        origin.documents.write().insert(name, bytes.clone());
        let last = replicas.len() - 1;
        for (index, (target, cost)) in replicas.into_iter().enumerate() {
            let copy = if index == last {
                std::mem::take(&mut bytes)
            } else {
                bytes.clone()
            };
            self.record(host, &target, size as u64, true, cost);
            self.shard(&target)?.documents.write().insert(name, copy);
        }
        Ok(size)
    }

    /// The documents a host holds, in name order.
    pub fn documents_on(&self, host: &str) -> Result<Vec<String>> {
        let mut names: Vec<String> = self
            .shard(host)?
            .documents
            .read()
            .keys()
            .map(|name| name.as_str().to_string())
            .collect();
        names.sort();
        Ok(names)
    }

    /// Transports a document's structure from one host to another, charging
    /// only the structure bytes (as many as the wire form actually
    /// occupies). The bytes move verbatim — a text-published document stays
    /// text on the destination. Returns the decoded document.
    pub fn transport_document(&self, from: &str, to: &str, name: &str) -> Result<Document> {
        let dest = self.shard(to)?;
        let name = Symbol::lookup(name).ok_or_else(|| DistribError::UnknownDocument {
            host: from.to_string(),
            name: name.to_string(),
        })?;
        let bytes = self
            .shard(from)?
            .documents
            .read()
            .get(&name)
            .cloned()
            .ok_or_else(|| DistribError::UnknownDocument {
                host: from.to_string(),
                name: name.as_str().to_string(),
            })?;
        self.charge(from, to, bytes.len() as u64, true)?;
        let doc = Document::from_read(&mut bytes.as_slice()).map_err(DistribError::Format)?;
        dest.documents.write().insert(name, bytes);
        Ok(doc)
    }

    /// Reads a document a host already holds (no traffic), auto-detecting
    /// the wire form it was published in.
    pub fn open_document(&self, host: &str, name: &str) -> Result<Document> {
        let shard = self.shard(host)?;
        let missing = || DistribError::UnknownDocument {
            host: host.to_string(),
            name: name.to_string(),
        };
        let name = Symbol::lookup(name).ok_or_else(missing)?;
        let documents = shard.documents.read();
        let bytes = documents.get(&name).ok_or_else(missing)?;
        Document::from_read(&mut bytes.as_slice()).map_err(DistribError::Format)
    }

    /// Fetches to `host` the payloads of exactly the given descriptor keys
    /// (e.g. only the blocks a device can present). Returns the total
    /// simulated transfer time.
    pub fn fetch_blocks_for(&self, host: &str, keys: &BTreeSet<Symbol>) -> Result<u64> {
        let mut total = 0;
        for key in keys {
            total += self.fetch_block_symbol(host, *key)?;
        }
        Ok(total)
    }

    /// One host's local block store (for presentation pipelines running on
    /// that host). No distributed-store lock is held by the reference: the
    /// shard map is frozen and the [`BlockStore`] locks itself per call, so
    /// the caller may re-enter the distributed store freely.
    ///
    /// The reference is a *host-local* view: blocks inserted through it
    /// directly (e.g. `BlockStore::put`) are not registered in the cluster
    /// placement index and stay invisible to
    /// [`DistributedStore::locate_block`]/[`DistributedStore::fetch_block`].
    /// Use [`DistributedStore::put_block`] to store blocks the cluster
    /// should know about.
    pub fn local_store(&self, host: &str) -> Result<&BlockStore> {
        Ok(&self.shard(host)?.blocks)
    }

    /// Runs a callback against one host's local block store. Equivalent to
    /// [`DistributedStore::local_store`]; kept for callers that prefer the
    /// scoped form.
    pub fn with_local_store<R>(&self, host: &str, f: impl FnOnce(&BlockStore) -> R) -> Result<R> {
        Ok(f(self.local_store(host)?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::Link;
    use cmif_core::prelude::*;
    use cmif_media::MediaGenerator;
    use std::sync::{mpsc, Arc};
    use std::thread;
    use std::time::Duration;

    fn cluster() -> DistributedStore {
        DistributedStore::new(Network::uniform(&["server", "desk", "laptop"], Link::lan()))
    }

    fn seed_media(store: &DistributedStore, host: &str) {
        let mut generator = MediaGenerator::new(13);
        for (key, ms) in [("speech", 4_000), ("jingle", 1_000)] {
            let block = generator.audio(key, ms, 8_000);
            let descriptor = block.describe();
            store.put_block(host, block, descriptor).unwrap();
        }
        let image = generator.image("painting", 128, 128, 24);
        let descriptor = image.describe();
        store.put_block(host, image, descriptor).unwrap();
    }

    fn news_doc() -> Document {
        DocumentBuilder::new("news")
            .channel("audio", MediaKind::Audio)
            .channel("graphic", MediaKind::Image)
            .descriptor(
                DataDescriptor::new("speech", MediaKind::Audio, "pcm8")
                    .with_duration(TimeMs::from_secs(4))
                    .with_size(32_000),
            )
            .descriptor(
                DataDescriptor::new("painting", MediaKind::Image, "raster24")
                    .with_size(128 * 128 * 3),
            )
            .root_par(|story| {
                story.ext("voice", "audio", "speech");
                story.ext_with("art", "graphic", "painting", |n| {
                    n.duration_ms(4_000);
                });
            })
            .build()
            .unwrap()
    }

    #[test]
    fn unknown_hosts_are_rejected() {
        let store = cluster();
        assert!(matches!(
            store.documents_on("mainframe").unwrap_err(),
            DistribError::UnknownHost { .. }
        ));
    }

    #[test]
    fn blocks_are_located_and_fetched_lazily() {
        let store = cluster();
        seed_media(&store, "server");
        assert_eq!(store.locate_block("speech").as_deref(), Some("server"));
        assert!(store.locate_block("missing").is_none());
        assert!(store.local_blocks("desk").unwrap().is_empty());

        let cost = store.fetch_block("desk", "speech").unwrap();
        assert!(cost > 0);
        assert_eq!(store.local_blocks("desk").unwrap(), vec!["speech"]);
        // A second fetch is free: the block is now local.
        assert_eq!(store.fetch_block("desk", "speech").unwrap(), 0);
        let traffic = store.traffic();
        assert_eq!(traffic.media_bytes, 32_000);
        assert_eq!(traffic.transfers, 1);
        // The transfer is attributed to the link that carried it.
        let link = traffic.link("server", "desk");
        assert_eq!(link.media_bytes, 32_000);
        assert_eq!(link.transfers, 1);
        assert_eq!(traffic.links_used(), 1);
        // The fetched copy is indexed as a replica.
        assert_eq!(store.replicas_of("speech"), vec!["desk", "server"]);
    }

    #[test]
    fn descriptor_fetches_move_only_kilobytes() {
        let store = cluster();
        seed_media(&store, "server");
        let descriptor = store.fetch_descriptor("laptop", "painting").unwrap();
        assert_eq!(descriptor.medium, MediaKind::Image);
        let traffic = store.traffic();
        assert!(traffic.structure_bytes < 1_000);
        assert_eq!(traffic.media_bytes, 0);
        assert_eq!(
            traffic.link("server", "laptop").structure_bytes,
            traffic.structure_bytes
        );
    }

    #[test]
    fn documents_transport_without_their_media() {
        let store = cluster();
        seed_media(&store, "server");
        let doc = news_doc();
        let published = store
            .publish_document("server", "evening-news", &doc)
            .unwrap();
        assert!(published > 0);
        store.reset_traffic();

        let received = store
            .transport_document("server", "desk", "evening-news")
            .unwrap();
        assert_eq!(received.leaves().len(), 2);
        assert!(store
            .documents_on("desk")
            .unwrap()
            .contains(&"evening-news".to_string()));
        let traffic = store.traffic();
        assert!(traffic.structure_bytes > 0);
        assert_eq!(
            traffic.media_bytes, 0,
            "transporting the structure must not move media"
        );
        // The structure is tiny compared to the media it references.
        assert!(traffic.structure_bytes < 10_000);
    }

    #[test]
    fn open_document_requires_prior_transport_or_publish() {
        let store = cluster();
        let doc = news_doc();
        store.publish_document("server", "news", &doc).unwrap();
        assert!(store.open_document("server", "news").is_ok());
        assert!(matches!(
            store.open_document("desk", "news").unwrap_err(),
            DistribError::UnknownDocument { .. }
        ));
        assert!(matches!(
            store
                .transport_document("server", "desk", "absent")
                .unwrap_err(),
            DistribError::UnknownDocument { .. }
        ));
    }

    #[test]
    fn selective_fetch_moves_only_requested_blocks() {
        let store = cluster();
        seed_media(&store, "server");
        store.reset_traffic();
        // An audio-only device needs only the speech, not the painting.
        let wanted: BTreeSet<cmif_core::Symbol> =
            [cmif_core::Symbol::intern("speech")].into_iter().collect();
        let cost = store.fetch_blocks_for("laptop", &wanted).unwrap();
        assert!(cost > 0);
        let traffic = store.traffic();
        assert_eq!(traffic.media_bytes, 32_000);
        assert_eq!(store.local_blocks("laptop").unwrap(), vec!["speech"]);
    }

    #[test]
    fn local_store_supports_presentation_on_the_destination_host() {
        let store = cluster();
        seed_media(&store, "server");
        store.fetch_block("desk", "speech").unwrap();
        let duration = store
            .with_local_store("desk", |local| {
                local
                    .descriptor("speech")
                    .unwrap()
                    .duration
                    .unwrap()
                    .as_millis()
            })
            .unwrap();
        assert_eq!(duration, 4_000);
        // The borrowed form sees the same shard.
        assert_eq!(store.local_store("desk").unwrap().len(), 1);
    }

    #[test]
    fn fetch_prefers_the_nearest_replica() {
        // `alpha` sorts before `zulu`, so a first-holder-in-order policy
        // (the old `locate_block` behaviour) would pick the WAN replica.
        let mut network = Network::uniform(&["alpha", "reader", "zulu"], Link::lan());
        network.connect("alpha", "reader", Link::wan());
        let store = DistributedStore::new(network);
        let descriptor = MediaGenerator::new(1)
            .audio("speech", 4_000, 8_000)
            .describe();
        store
            .put_block(
                "alpha",
                MediaGenerator::new(1).audio("speech", 4_000, 8_000),
                descriptor.clone(),
            )
            .unwrap();
        store
            .put_block(
                "zulu",
                MediaGenerator::new(1).audio("speech", 4_000, 8_000),
                descriptor,
            )
            .unwrap();
        assert_eq!(store.replicas_of("speech"), vec!["alpha", "zulu"]);
        assert_eq!(
            store.nearest_source("reader", "speech").as_deref(),
            Some("zulu")
        );
        // Unknown destinations are rejected, default link or not.
        assert!(store.nearest_source("reader_typo", "speech").is_none());

        let cost = store.fetch_block("reader", "speech").unwrap();
        let traffic = store.traffic();
        assert_eq!(traffic.link("zulu", "reader").transfers, 1);
        assert_eq!(traffic.link("alpha", "reader"), LinkStats::default());
        assert!(
            cost < Link::wan().transfer_ms(32_000),
            "fetch was charged the WAN replica's cost"
        );
    }

    #[test]
    fn replication_copies_blocks_to_ring_chosen_hosts_and_charges_links() {
        let network = Network::uniform(&["a", "b", "c", "d"], Link::lan());
        let store = DistributedStore::with_replication(network, 3).unwrap();
        let block = MediaGenerator::new(2).audio("speech", 1_000, 8_000);
        let descriptor = block.describe();
        let cost = store.put_block("a", block, descriptor).unwrap();
        assert!(cost > 0);

        let replicas = store.replicas_of("speech");
        assert_eq!(replicas.len(), 3);
        assert!(
            replicas.contains(&"a".to_string()),
            "origin must hold a copy"
        );
        let traffic = store.traffic();
        assert_eq!(traffic.transfers, 2, "two replica copies moved");
        assert_eq!(traffic.media_bytes, 2 * 8_000);
        assert!(
            traffic.per_link().all(|(from, _, _)| from == "a"),
            "every replica transfer originates at the publishing host"
        );
    }

    #[test]
    fn replication_copies_documents_and_charges_structure_bytes() {
        let network = Network::uniform(&["a", "b", "c", "d"], Link::lan());
        let store = DistributedStore::with_replication(network, 2).unwrap();
        let size = store.publish_document("a", "news", &news_doc()).unwrap();
        let holders: Vec<&str> = ["a", "b", "c", "d"]
            .into_iter()
            .filter(|h| store.documents_on(h).unwrap().contains(&"news".to_string()))
            .collect();
        assert_eq!(holders.len(), 2);
        assert!(holders.contains(&"a"), "origin must hold the document");
        let traffic = store.traffic();
        assert_eq!(traffic.transfers, 1);
        assert_eq!(traffic.structure_bytes, size as u64);
        assert_eq!(traffic.media_bytes, 0);
    }

    #[test]
    fn local_descriptor_reads_record_no_traffic() {
        let store = cluster();
        seed_media(&store, "server");
        store.reset_traffic();
        // The server already holds the block: a descriptor "fetch" to it is
        // a local read, not a transfer.
        let descriptor = store.fetch_descriptor("server", "speech").unwrap();
        assert_eq!(descriptor.medium, MediaKind::Audio);
        let traffic = store.traffic();
        assert_eq!(traffic.transfers, 0);
        assert_eq!(traffic.links_used(), 0);
    }

    #[test]
    fn unreachable_holders_surface_as_unreachable_not_unknown() {
        let mut network = Network::new();
        network.add_host("a");
        network.add_host("b");
        network.add_host("c");
        network.connect("a", "b", Link::lan());
        let store = DistributedStore::new(network);
        let block = MediaGenerator::new(6).audio("speech", 1_000, 8_000);
        let descriptor = block.describe();
        store.put_block("c", block, descriptor).unwrap();
        // The block exists — the problem is topology, and the error says so.
        assert!(matches!(
            store.fetch_block("a", "speech").unwrap_err(),
            DistribError::Unreachable { .. }
        ));
        assert!(matches!(
            store.fetch_descriptor("a", "speech").unwrap_err(),
            DistribError::Unreachable { .. }
        ));
        // A block nobody holds is still UnknownBlock.
        assert!(matches!(
            store.fetch_block("a", "missing").unwrap_err(),
            DistribError::Media(MediaError::UnknownBlock { .. })
        ));
    }

    #[test]
    fn local_replica_serves_descriptors_even_over_free_links() {
        // Zero-latency links make every source cost 0; the destination's
        // own copy must still win so no phantom transfer is recorded.
        let free = Link {
            latency_ms: 0,
            bandwidth_bps: u64::MAX,
        };
        let store = DistributedStore::new(Network::uniform(&["alpha", "desk"], free));
        let descriptor = MediaGenerator::new(8)
            .audio("speech", 1_000, 8_000)
            .describe();
        store
            .put_block(
                "alpha",
                MediaGenerator::new(8).audio("speech", 1_000, 8_000),
                descriptor.clone(),
            )
            .unwrap();
        store
            .put_block(
                "desk",
                MediaGenerator::new(8).audio("speech", 1_000, 8_000),
                descriptor,
            )
            .unwrap();
        store.fetch_descriptor("desk", "speech").unwrap();
        assert_eq!(store.traffic().transfers, 0);
        assert_eq!(store.traffic().links_used(), 0);
    }

    #[test]
    fn unreachable_replica_targets_fail_before_any_state_changes() {
        // No default link and only a partial topology: some ring-chosen
        // replica target is unreachable from `a`.
        let mut network = Network::new();
        network.add_host("a");
        network.add_host("b");
        network.add_host("c");
        network.connect("a", "b", Link::lan());
        let store = DistributedStore::with_replication(network, 3).unwrap();
        let block = MediaGenerator::new(4).audio("speech", 1_000, 8_000);
        let descriptor = block.describe();
        let err = store.put_block("a", block, descriptor.clone()).unwrap_err();
        assert!(matches!(err, DistribError::Unreachable { .. }));
        // The failed put left nothing behind: no holders, no traffic, and
        // the origin can retry once the topology is fixed.
        assert!(store.replicas_of("speech").is_empty());
        assert!(store.local_blocks("a").unwrap().is_empty());
        assert_eq!(store.traffic().transfers, 0);
        let retry = MediaGenerator::new(4).audio("speech", 1_000, 8_000);
        assert!(matches!(
            store.put_block("a", retry, descriptor).unwrap_err(),
            DistribError::Unreachable { .. },
        ));
    }

    #[test]
    fn unreachable_publish_targets_fail_before_any_state_changes() {
        let mut network = Network::new();
        network.add_host("a");
        network.add_host("b");
        network.add_host("c");
        network.connect("a", "b", Link::lan());
        let store = DistributedStore::with_replication(network, 3).unwrap();
        let err = store
            .publish_document("a", "news", &news_doc())
            .unwrap_err();
        assert!(matches!(err, DistribError::Unreachable { .. }));
        // No host holds the document and nothing was charged, so a retry
        // after fixing the topology does not double-count traffic.
        for host in ["a", "b", "c"] {
            assert!(store.documents_on(host).unwrap().is_empty());
        }
        assert_eq!(store.traffic().transfers, 0);
        assert_eq!(store.traffic().structure_bytes, 0);
    }

    #[test]
    fn invalid_replication_factors_are_rejected() {
        let network = Network::uniform(&["a", "b", "c"], Link::lan());
        assert!(matches!(
            DistributedStore::with_replication(network.clone(), 0).unwrap_err(),
            DistribError::InvalidReplication {
                requested: 0,
                hosts: 3
            }
        ));
        assert!(matches!(
            DistributedStore::with_replication(network.clone(), 4).unwrap_err(),
            DistribError::InvalidReplication {
                requested: 4,
                hosts: 3
            }
        ));
        assert!(DistributedStore::with_replication(network, 3).is_ok());
        // Duplicate host names must not inflate the satisfiable factor.
        let duplicated = Network::uniform(&["a", "a", "b"], Link::lan());
        assert!(matches!(
            DistributedStore::with_replication(duplicated, 3).unwrap_err(),
            DistribError::InvalidReplication {
                requested: 3,
                hosts: 2
            }
        ));
    }

    #[test]
    fn documents_publish_as_binary_wire_bytes_by_default() {
        let store = cluster();
        let doc = news_doc();
        let size = store.publish_document("server", "news", &doc).unwrap();
        // The stored bytes open with the binary magic.
        let shard = store.shards.get("server").unwrap();
        let documents = shard.documents.read();
        let bytes = documents.get(&Symbol::intern("news")).unwrap();
        assert_eq!(
            cmif_format::WireEncoding::detect(bytes),
            WireEncoding::Binary
        );
        assert_eq!(bytes.len(), size);
        drop(documents);
        // And they decode back to the same document.
        let opened = store.open_document("server", "news").unwrap();
        assert_eq!(
            cmif_format::write_document(&opened).unwrap(),
            cmif_format::write_document(&doc).unwrap()
        );
    }

    #[test]
    fn binary_publishing_moves_fewer_structure_bytes_than_text() {
        let doc = news_doc();
        let network = Network::uniform(&["server", "desk", "laptop"], Link::lan());
        let binary_store = DistributedStore::new(network.clone());
        let text_store = DistributedStore::new(network).with_wire_encoding(WireEncoding::Text);
        assert_eq!(binary_store.wire_encoding(), WireEncoding::Binary);
        assert_eq!(text_store.wire_encoding(), WireEncoding::Text);

        let binary_size = binary_store
            .publish_document("server", "news", &doc)
            .unwrap();
        let text_size = text_store.publish_document("server", "news", &doc).unwrap();
        assert!(
            binary_size < text_size,
            "binary wire form ({binary_size} B) must beat text ({text_size} B)"
        );

        // TrafficStats record the smaller binary byte count on transport.
        binary_store.reset_traffic();
        text_store.reset_traffic();
        binary_store
            .transport_document("server", "desk", "news")
            .unwrap();
        text_store
            .transport_document("server", "desk", "news")
            .unwrap();
        assert_eq!(binary_store.traffic().structure_bytes, binary_size as u64);
        assert!(binary_store.traffic().structure_bytes < text_store.traffic().structure_bytes);
    }

    #[test]
    fn text_published_documents_stay_text_and_still_open_everywhere() {
        let store = cluster().with_wire_encoding(WireEncoding::Text);
        store
            .publish_document("server", "news", &news_doc())
            .unwrap();
        let received = store.transport_document("server", "desk", "news").unwrap();
        assert_eq!(received.leaves().len(), 2);
        // The destination holds the same text bytes the origin published.
        let shard = store.shards.get("desk").unwrap();
        let documents = shard.documents.read();
        let bytes = documents.get(&Symbol::intern("news")).unwrap();
        assert_eq!(cmif_format::WireEncoding::detect(bytes), WireEncoding::Text);
        drop(documents);
        assert!(store.open_document("desk", "news").is_ok());
    }

    #[test]
    fn writes_to_one_host_do_not_block_reads_of_another() {
        let store = Arc::new(cluster());
        store.publish_document("desk", "news", &news_doc()).unwrap();

        // Hold host `server`'s document write lock, as a publisher stuck
        // mid-write would, and read host `desk` from another thread. Under
        // the old global `RwLock<BTreeMap<HostId, HostStore>>` this
        // deadlocks until the guard drops; sharded, it must complete.
        let server_guard = store
            .shards
            .get("server")
            .expect("server shard exists")
            .documents
            .write();
        let (tx, rx) = mpsc::channel();
        let reader_store = Arc::clone(&store);
        let reader = thread::spawn(move || {
            let names = reader_store.documents_on("desk").unwrap();
            let doc = reader_store.open_document("desk", "news").unwrap();
            tx.send((names, doc.leaves().len())).unwrap();
        });
        let (names, leaves) = rx
            .recv_timeout(Duration::from_secs(10))
            .expect("reading host `desk` blocked behind a write lock on host `server`");
        drop(server_guard);
        reader.join().unwrap();
        assert_eq!(names, vec!["news"]);
        assert_eq!(leaves, 2);
    }
}
