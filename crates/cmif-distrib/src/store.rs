//! The distributed document and media store.
//!
//! Each host of the simulated cluster holds a set of CMIF documents (as
//! interchange text) and a local [`BlockStore`] of media blocks. Documents
//! are small and travel freely; media blocks are large and travel only when
//! something actually needs the bytes. That asymmetry is the paper's §6
//! point: "the value of document sharing and multiple access to information
//! is vital", and it is the *description* that is shared, not the data.

use std::collections::{BTreeMap, BTreeSet};

use parking_lot::RwLock;

use cmif_core::descriptor::DataDescriptor;
use cmif_core::tree::Document;
use cmif_format::{parse_document, write_document};
use cmif_media::store::BlockStore;
use cmif_media::{MediaBlock, MediaError};

use crate::error::{DistribError, Result};
use crate::network::{HostId, Network};

/// One host's storage.
#[derive(Debug, Default)]
struct HostStore {
    /// Documents held by this host, as interchange text keyed by name.
    documents: BTreeMap<String, String>,
    /// Media blocks held by this host.
    blocks: BlockStore,
}

/// Running totals of simulated traffic.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct TrafficStats {
    /// Bytes of document structure moved between hosts.
    pub structure_bytes: u64,
    /// Bytes of media payload moved between hosts.
    pub media_bytes: u64,
    /// Simulated milliseconds spent on transfers.
    pub simulated_ms: u64,
    /// Number of transfers performed.
    pub transfers: u64,
}

/// The distributed store: a cluster of hosts plus traffic accounting.
#[derive(Debug)]
pub struct DistributedStore {
    network: Network,
    hosts: RwLock<BTreeMap<HostId, HostStore>>,
    traffic: RwLock<TrafficStats>,
}

impl DistributedStore {
    /// Creates a store over the given network, with one (empty) host store
    /// per network host.
    pub fn new(network: Network) -> DistributedStore {
        let mut hosts = BTreeMap::new();
        for host in network.hosts() {
            hosts.insert(host.clone(), HostStore::default());
        }
        DistributedStore {
            network,
            hosts: RwLock::new(hosts),
            traffic: RwLock::new(TrafficStats::default()),
        }
    }

    fn require_host(&self, host: &str) -> Result<()> {
        if self.network.contains(host) {
            Ok(())
        } else {
            Err(DistribError::UnknownHost {
                host: host.to_string(),
            })
        }
    }

    /// Looks a host's store up in a read guard, as a typed error instead of
    /// a panic when the host is unknown.
    fn host_store<'a>(hosts: &'a BTreeMap<HostId, HostStore>, host: &str) -> Result<&'a HostStore> {
        hosts.get(host).ok_or_else(|| DistribError::UnknownHost {
            host: host.to_string(),
        })
    }

    fn host_store_mut<'a>(
        hosts: &'a mut BTreeMap<HostId, HostStore>,
        host: &str,
    ) -> Result<&'a mut HostStore> {
        hosts
            .get_mut(host)
            .ok_or_else(|| DistribError::UnknownHost {
                host: host.to_string(),
            })
    }

    fn charge(&self, from: &str, to: &str, bytes: u64, is_structure: bool) -> Result<u64> {
        let cost =
            self.network
                .transfer_ms(from, to, bytes)
                .ok_or_else(|| DistribError::Unreachable {
                    from: from.to_string(),
                    to: to.to_string(),
                })?;
        let mut traffic = self.traffic.write();
        traffic.simulated_ms += cost;
        traffic.transfers += 1;
        if is_structure {
            traffic.structure_bytes += bytes;
        } else {
            traffic.media_bytes += bytes;
        }
        Ok(cost)
    }

    /// Traffic accumulated so far.
    pub fn traffic(&self) -> TrafficStats {
        *self.traffic.read()
    }

    /// Resets the traffic counters (between benchmark phases).
    pub fn reset_traffic(&self) {
        *self.traffic.write() = TrafficStats::default();
    }

    // ------------------------------------------------------------------
    // Media blocks
    // ------------------------------------------------------------------

    /// Stores a media block on a host.
    pub fn put_block(
        &self,
        host: &str,
        block: MediaBlock,
        descriptor: DataDescriptor,
    ) -> Result<()> {
        let hosts = self.hosts.read();
        let store = Self::host_store(&hosts, host)?;
        store
            .blocks
            .put_with_descriptor(block, descriptor)
            .map_err(DistribError::Media)
    }

    /// The keys of the blocks a host holds locally.
    pub fn local_blocks(&self, host: &str) -> Result<Vec<String>> {
        let hosts = self.hosts.read();
        Ok(Self::host_store(&hosts, host)?.blocks.keys())
    }

    /// Finds which host holds a block.
    pub fn locate_block(&self, key: &str) -> Option<HostId> {
        let hosts = self.hosts.read();
        hosts
            .iter()
            .find(|(_, store)| store.blocks.keys().iter().any(|k| k == key))
            .map(|(host, _)| host.clone())
    }

    /// Fetches a block's descriptor to `to`, from whichever host holds it.
    /// Only descriptor bytes move.
    pub fn fetch_descriptor(&self, to: &str, key: &str) -> Result<DataDescriptor> {
        self.require_host(to)?;
        let from = self.locate_block(key).ok_or_else(|| {
            DistribError::Media(MediaError::UnknownBlock {
                key: key.to_string(),
            })
        })?;
        let descriptor = {
            let hosts = self.hosts.read();
            Self::host_store(&hosts, &from)?
                .blocks
                .descriptor(key)
                .map_err(DistribError::Media)?
        };
        self.charge(&from, to, descriptor.approx_descriptor_size() as u64, true)?;
        Ok(descriptor)
    }

    /// Fetches a block's payload to `to`, copying it into `to`'s local store
    /// (so later fetches are free) and charging the media transfer.
    pub fn fetch_block(&self, to: &str, key: &str) -> Result<u64> {
        {
            // Already local?
            let hosts = self.hosts.read();
            if Self::host_store(&hosts, to)?.blocks.contains(key) {
                return Ok(0);
            }
        }
        let from = self.locate_block(key).ok_or_else(|| {
            DistribError::Media(MediaError::UnknownBlock {
                key: key.to_string(),
            })
        })?;
        let (payload, descriptor) = {
            let hosts = self.hosts.read();
            let source = Self::host_store(&hosts, &from)?;
            (
                source.blocks.payload(key).map_err(DistribError::Media)?,
                source.blocks.descriptor(key).map_err(DistribError::Media)?,
            )
        };
        let bytes = payload.size_bytes();
        let cost = self.charge(&from, to, bytes, false)?;
        let hosts = self.hosts.read();
        match Self::host_store(&hosts, to)?
            .blocks
            .put_with_descriptor(MediaBlock::new(key, payload), descriptor)
        {
            Ok(()) => Ok(cost),
            // A concurrent fetch of the same block won the race between our
            // locality check and this insert: the block is local, which is
            // all the caller asked for.
            Err(MediaError::DuplicateBlock { .. }) => Ok(cost),
            Err(e) => Err(DistribError::Media(e)),
        }
    }

    // ------------------------------------------------------------------
    // Documents
    // ------------------------------------------------------------------

    /// Publishes a document on a host under a name. Only the structure (the
    /// interchange text) is stored; media blocks stay wherever they are.
    pub fn publish_document(&self, host: &str, name: &str, doc: &Document) -> Result<usize> {
        self.require_host(host)?;
        let text = write_document(doc).map_err(DistribError::Core)?;
        let size = text.len();
        let mut hosts = self.hosts.write();
        Self::host_store_mut(&mut hosts, host)?
            .documents
            .insert(name.to_string(), text);
        Ok(size)
    }

    /// The documents a host holds.
    pub fn documents_on(&self, host: &str) -> Result<Vec<String>> {
        let hosts = self.hosts.read();
        Ok(Self::host_store(&hosts, host)?
            .documents
            .keys()
            .cloned()
            .collect())
    }

    /// Transports a document's structure from one host to another, charging
    /// only the structure bytes. Returns the parsed document at the
    /// destination.
    pub fn transport_document(&self, from: &str, to: &str, name: &str) -> Result<Document> {
        self.require_host(to)?;
        let text = {
            let hosts = self.hosts.read();
            Self::host_store(&hosts, from)?
                .documents
                .get(name)
                .cloned()
                .ok_or_else(|| DistribError::UnknownDocument {
                    host: from.to_string(),
                    name: name.to_string(),
                })?
        };
        self.charge(from, to, text.len() as u64, true)?;
        {
            let mut hosts = self.hosts.write();
            Self::host_store_mut(&mut hosts, to)?
                .documents
                .insert(name.to_string(), text.clone());
        }
        parse_document(&text).map_err(DistribError::Format)
    }

    /// Reads a document a host already holds (no traffic).
    pub fn open_document(&self, host: &str, name: &str) -> Result<Document> {
        let hosts = self.hosts.read();
        let text = Self::host_store(&hosts, host)?
            .documents
            .get(name)
            .ok_or_else(|| DistribError::UnknownDocument {
                host: host.to_string(),
                name: name.to_string(),
            })?;
        parse_document(text).map_err(DistribError::Format)
    }

    /// Fetches to `host` the payloads of exactly the given descriptor keys
    /// (e.g. only the blocks a device can present). Returns the total
    /// simulated transfer time.
    pub fn fetch_blocks_for(&self, host: &str, keys: &BTreeSet<String>) -> Result<u64> {
        let mut total = 0;
        for key in keys {
            total += self.fetch_block(host, key)?;
        }
        Ok(total)
    }

    /// Access to one host's local block store (for presentation pipelines
    /// running on that host).
    pub fn with_local_store<R>(&self, host: &str, f: impl FnOnce(&BlockStore) -> R) -> Result<R> {
        let hosts = self.hosts.read();
        Ok(f(&Self::host_store(&hosts, host)?.blocks))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::Link;
    use cmif_core::prelude::*;
    use cmif_media::MediaGenerator;

    fn cluster() -> DistributedStore {
        DistributedStore::new(Network::uniform(&["server", "desk", "laptop"], Link::lan()))
    }

    fn seed_media(store: &DistributedStore, host: &str) {
        let mut generator = MediaGenerator::new(13);
        for (key, ms) in [("speech", 4_000), ("jingle", 1_000)] {
            let block = generator.audio(key, ms, 8_000);
            let descriptor = block.describe();
            store.put_block(host, block, descriptor).unwrap();
        }
        let image = generator.image("painting", 128, 128, 24);
        let descriptor = image.describe();
        store.put_block(host, image, descriptor).unwrap();
    }

    fn news_doc() -> Document {
        DocumentBuilder::new("news")
            .channel("audio", MediaKind::Audio)
            .channel("graphic", MediaKind::Image)
            .descriptor(
                DataDescriptor::new("speech", MediaKind::Audio, "pcm8")
                    .with_duration(TimeMs::from_secs(4))
                    .with_size(32_000),
            )
            .descriptor(
                DataDescriptor::new("painting", MediaKind::Image, "raster24")
                    .with_size(128 * 128 * 3),
            )
            .root_par(|story| {
                story.ext("voice", "audio", "speech");
                story.ext_with("art", "graphic", "painting", |n| {
                    n.duration_ms(4_000);
                });
            })
            .build()
            .unwrap()
    }

    #[test]
    fn unknown_hosts_are_rejected() {
        let store = cluster();
        assert!(matches!(
            store.documents_on("mainframe").unwrap_err(),
            DistribError::UnknownHost { .. }
        ));
    }

    #[test]
    fn blocks_are_located_and_fetched_lazily() {
        let store = cluster();
        seed_media(&store, "server");
        assert_eq!(store.locate_block("speech").as_deref(), Some("server"));
        assert!(store.locate_block("missing").is_none());
        assert!(store.local_blocks("desk").unwrap().is_empty());

        let cost = store.fetch_block("desk", "speech").unwrap();
        assert!(cost > 0);
        assert_eq!(store.local_blocks("desk").unwrap(), vec!["speech"]);
        // A second fetch is free: the block is now local.
        assert_eq!(store.fetch_block("desk", "speech").unwrap(), 0);
        let traffic = store.traffic();
        assert_eq!(traffic.media_bytes, 32_000);
        assert_eq!(traffic.transfers, 1);
    }

    #[test]
    fn descriptor_fetches_move_only_kilobytes() {
        let store = cluster();
        seed_media(&store, "server");
        let descriptor = store.fetch_descriptor("laptop", "painting").unwrap();
        assert_eq!(descriptor.medium, MediaKind::Image);
        let traffic = store.traffic();
        assert!(traffic.structure_bytes < 1_000);
        assert_eq!(traffic.media_bytes, 0);
    }

    #[test]
    fn documents_transport_without_their_media() {
        let store = cluster();
        seed_media(&store, "server");
        let doc = news_doc();
        let published = store
            .publish_document("server", "evening-news", &doc)
            .unwrap();
        assert!(published > 0);
        store.reset_traffic();

        let received = store
            .transport_document("server", "desk", "evening-news")
            .unwrap();
        assert_eq!(received.leaves().len(), 2);
        assert!(store
            .documents_on("desk")
            .unwrap()
            .contains(&"evening-news".to_string()));
        let traffic = store.traffic();
        assert!(traffic.structure_bytes > 0);
        assert_eq!(
            traffic.media_bytes, 0,
            "transporting the structure must not move media"
        );
        // The structure is tiny compared to the media it references.
        assert!(traffic.structure_bytes < 10_000);
    }

    #[test]
    fn open_document_requires_prior_transport_or_publish() {
        let store = cluster();
        let doc = news_doc();
        store.publish_document("server", "news", &doc).unwrap();
        assert!(store.open_document("server", "news").is_ok());
        assert!(matches!(
            store.open_document("desk", "news").unwrap_err(),
            DistribError::UnknownDocument { .. }
        ));
        assert!(matches!(
            store
                .transport_document("server", "desk", "absent")
                .unwrap_err(),
            DistribError::UnknownDocument { .. }
        ));
    }

    #[test]
    fn selective_fetch_moves_only_requested_blocks() {
        let store = cluster();
        seed_media(&store, "server");
        store.reset_traffic();
        // An audio-only device needs only the speech, not the painting.
        let wanted: BTreeSet<String> = ["speech".to_string()].into_iter().collect();
        let cost = store.fetch_blocks_for("laptop", &wanted).unwrap();
        assert!(cost > 0);
        let traffic = store.traffic();
        assert_eq!(traffic.media_bytes, 32_000);
        assert_eq!(store.local_blocks("laptop").unwrap(), vec!["speech"]);
    }

    #[test]
    fn local_store_supports_presentation_on_the_destination_host() {
        let store = cluster();
        seed_media(&store, "server");
        store.fetch_block("desk", "speech").unwrap();
        let duration = store
            .with_local_store("desk", |local| {
                local
                    .descriptor("speech")
                    .unwrap()
                    .duration
                    .unwrap()
                    .as_millis()
            })
            .unwrap();
        assert_eq!(duration, 4_000);
    }
}
