//! The distributed document and media store, sharded per host.
//!
//! Each host of the simulated cluster holds a set of CMIF documents (as
//! wire bytes — the compact binary form by default, canonical text on
//! request, see [`WireEncoding`]) and a local [`BlockStore`] of media
//! blocks. Documents are small and travel freely; media blocks are large
//! and travel only when something actually needs the bytes. That asymmetry
//! is the paper's §6 point: "the value of document sharing and multiple
//! access to information is vital", and it is the *description* that is
//! shared, not the data.
//!
//! # Sharding
//!
//! The host map is built once at construction and never changes shape
//! afterwards, so it needs no lock of its own. All mutable state is per
//! host: a host's documents sit behind that host's own `RwLock`, and its
//! media blocks behind the [`BlockStore`]'s internal locks. No lock spans
//! more than one host's state — a publisher writing host A never blocks a
//! reader of host B, and callbacks running against one host's store
//! ([`DistributedStore::with_local_store`]) can re-enter the distributed
//! store freely.
//!
//! Cross-host bookkeeping lives in small, short-held structures: a
//! block → holders placement index (so locating a block is one map lookup
//! instead of a scan over every host), a document → holders index, the
//! per-host health map, the repair queue, and the [`TrafficStats`]
//! accumulator.
//!
//! # Fault tolerance
//!
//! The store survives a hostile cluster. Every transfer funnels through a
//! single choke point that (a) consults the optional seeded [`FaultPlan`]
//! — scripted host kills, transfer failures/delays, partitions — (b)
//! gates on per-host health (`Up → Suspect → Down`, driven by observed
//! failures), and (c) charges failed transfers to the failed-traffic
//! counters. Degraded fetches walk the surviving replicas nearest-first
//! under a [`RetryPolicy`]; hosts that go down get their blocks and
//! documents queued for re-replication, which
//! [`DistributedStore::repair_all`] (or a background
//! [`crate::RepairWorker`]) drains until the replication factor is
//! restored.

use std::collections::{BTreeMap, BTreeSet};
use std::sync::{Condvar, Mutex as StdMutex, MutexGuard, PoisonError};

use parking_lot::{Mutex, RwLock};
use rand::rngs::SmallRng;
use rand::SeedableRng;

use cmif_core::descriptor::DataDescriptor;
use cmif_core::symbol::Symbol;
use cmif_core::tree::Document;
use cmif_format::{document_to_bytes, WireEncoding, WireFormat};
use cmif_media::store::BlockStore;
use cmif_media::{MediaBlock, MediaError};

use crate::error::{DistribError, FetchAttempt, Result};
use crate::fault::{FaultPlan, InjectedFault};
use crate::health::{HealthPolicy, HealthState, HealthTransition, HostHealth};
use crate::network::{HostId, Network};
use crate::placement::PlacementRing;
use crate::repair::{RepairAction, RepairItem, RepairQueue, RepairReport};
use crate::retry::RetryPolicy;
pub use crate::traffic::{LinkStats, TrafficStats};

/// One host's storage shard. Everything mutable in here is guarded by this
/// host's own locks; nothing reaches across to another host.
#[derive(Debug, Default)]
struct HostShard {
    /// Documents held by this host, as wire bytes keyed by interned name.
    /// The bytes are whatever encoding the publisher chose; readers
    /// auto-detect by magic when opening.
    documents: RwLock<BTreeMap<Symbol, Vec<u8>>>,
    /// Media blocks held by this host (internally locked).
    blocks: BlockStore,
    /// Block keys currently being fetched *to* this host. A fetch reserves
    /// the key here before moving any bytes, so concurrent fetches of the
    /// same block charge exactly one transfer. Keys are `Copy` symbols —
    /// reserving one never allocates.
    inflight: StdMutex<BTreeSet<Symbol>>,
    /// Signalled when an in-flight fetch to this host finishes (either way).
    arrived: Condvar,
}

/// Locks an in-flight set, ignoring poisoning (a panicked fetch must not
/// wedge every later fetch to the host).
fn lock_inflight(shard: &HostShard) -> MutexGuard<'_, BTreeSet<Symbol>> {
    shard
        .inflight
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
}

/// Drop guard for a key reserved in a host's in-flight set: releases the
/// reservation and wakes waiters on every exit path, panics included.
struct InflightReservation<'a> {
    shard: &'a HostShard,
    key: Symbol,
}

impl Drop for InflightReservation<'_> {
    fn drop(&mut self) {
        let mut inflight = lock_inflight(self.shard);
        inflight.remove(&self.key);
        self.shard.arrived.notify_all();
    }
}

/// Where a block's replicas live, plus its payload size for cost ranking.
#[derive(Debug)]
struct BlockPlacement {
    /// Payload size in bytes (used to rank candidate sources by transfer
    /// cost without touching any host's store).
    bytes: u64,
    /// The hosts currently holding a copy.
    holders: BTreeSet<HostId>,
}

/// Where a published document's copies live, plus its wire size. Kept so
/// a republish can invalidate stale holders and so repair can restore a
/// document's replication factor after a host loss.
#[derive(Debug)]
struct DocPlacement {
    /// Wire-byte size of the current version.
    bytes: u64,
    /// The hosts currently holding the current version.
    holders: BTreeSet<HostId>,
}

/// The result of one traced block fetch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FetchOutcome {
    /// Simulated milliseconds the fetch took (transfer plus any retry
    /// backoff); zero for a local hit.
    pub simulated_ms: u64,
    /// Transfer attempts performed (one for a clean remote fetch, zero
    /// for a local hit).
    pub attempts: u32,
    /// True when the destination already held the block.
    pub local: bool,
    /// True when the fetch succeeded only after at least one failed
    /// attempt — the block arrived, but over a degraded path.
    pub degraded: bool,
}

impl FetchOutcome {
    /// A local hit: nothing moved, nothing retried.
    fn local_hit() -> FetchOutcome {
        FetchOutcome {
            simulated_ms: 0,
            attempts: 0,
            local: true,
            degraded: false,
        }
    }
}

/// Aggregate trace of a multi-block fetch
/// ([`DistributedStore::fetch_blocks_for_traced`]) — what a pipeline's
/// media-staging step reports about the cluster weather it saw.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FetchReport {
    /// Blocks requested.
    pub requested: usize,
    /// Blocks that moved over the network.
    pub fetched: usize,
    /// Blocks already local to the destination.
    pub local_hits: usize,
    /// Blocks that arrived only after at least one failed attempt.
    pub degraded: usize,
    /// Failed attempts recovered from across all blocks.
    pub retries: u32,
    /// Total simulated milliseconds (transfers plus retry backoff).
    pub simulated_ms: u64,
}

/// The distributed store: a cluster of per-host shards, a consistent-hash
/// placement policy with a configurable replication factor, and per-link
/// traffic accounting.
#[derive(Debug)]
pub struct DistributedStore {
    network: Network,
    /// One shard per host; append-frozen at construction, hence lock-free.
    shards: BTreeMap<HostId, HostShard>,
    /// Consistent-hash ring choosing replica hosts for new blocks/documents.
    /// Behind a lock because decommissioning removes the host from the ring.
    ring: RwLock<PlacementRing>,
    /// Number of hosts that receive a copy of each block/document.
    replication: usize,
    /// Block key → holders index (replaces scanning every host's keys).
    /// Keyed by interned symbol: lookups and inserts compare integers.
    placement: RwLock<BTreeMap<Symbol, BlockPlacement>>,
    /// Document name → holders index, for republish invalidation and repair.
    doc_placement: RwLock<BTreeMap<Symbol, DocPlacement>>,
    traffic: Mutex<TrafficStats>,
    /// The wire form new documents are published in (binary by default).
    wire: WireEncoding,
    /// Per-host health records driving the `Up → Suspect → Down` machine.
    health: RwLock<BTreeMap<HostId, HostHealth>>,
    /// When observed failures suspect/down a host.
    health_policy: HealthPolicy,
    /// Every health transition, in order — the cluster's churn history.
    health_log: Mutex<Vec<HealthTransition>>,
    /// Optional seeded fault schedule every transfer is submitted to.
    fault: Mutex<Option<FaultPlan>>,
    /// How degraded fetches retry.
    retry: RetryPolicy,
    /// Jitter source for retry backoff (seeded; deterministic per store).
    retry_rng: Mutex<SmallRng>,
    /// Under-replicated objects awaiting re-replication.
    repairs: Mutex<RepairQueue>,
}

impl DistributedStore {
    /// Creates a store over the given network with one (empty) shard per
    /// network host and no replication (each block/document lives only
    /// where it is put).
    pub fn new(network: Network) -> DistributedStore {
        Self::build(network, 1)
    }

    /// Creates a store that replicates every `put_block`/`publish_document`
    /// onto `factor` hosts chosen by consistent hashing (the origin host
    /// counts as one replica). Fails with
    /// [`DistribError::InvalidReplication`] when `factor` is zero or larger
    /// than the cluster.
    pub fn with_replication(network: Network, factor: usize) -> Result<DistributedStore> {
        // Count distinct hosts: the shard map and the placement ring both
        // deduplicate, so a duplicated host name must not let an
        // unsatisfiable factor through.
        let hosts = network
            .hosts()
            .iter()
            .collect::<std::collections::BTreeSet<_>>()
            .len();
        if factor == 0 || factor > hosts {
            return Err(DistribError::InvalidReplication {
                requested: factor,
                hosts,
            });
        }
        Ok(Self::build(network, factor))
    }

    fn build(network: Network, replication: usize) -> DistributedStore {
        let mut shards = BTreeMap::new();
        let mut health = BTreeMap::new();
        for host in network.hosts() {
            shards.insert(host.clone(), HostShard::default());
            health.insert(host.clone(), HostHealth::default());
        }
        let ring = PlacementRing::new(network.hosts());
        DistributedStore {
            network,
            shards,
            ring: RwLock::new(ring),
            replication,
            placement: RwLock::new(BTreeMap::new()),
            doc_placement: RwLock::new(BTreeMap::new()),
            traffic: Mutex::new(TrafficStats::default()),
            wire: WireEncoding::default(),
            health: RwLock::new(health),
            health_policy: HealthPolicy::default(),
            health_log: Mutex::new(Vec::new()),
            fault: Mutex::new(None),
            retry: RetryPolicy::default(),
            retry_rng: Mutex::new(SmallRng::seed_from_u64(0xC31F)),
            repairs: Mutex::new(RepairQueue::default()),
        }
    }

    /// Chooses the wire form new documents are published in. Binary is the
    /// default; text keeps the stored bytes human-readable at the cost of
    /// larger structure transfers. Already-published documents keep the
    /// encoding they were published with — readers auto-detect.
    pub fn with_wire_encoding(mut self, encoding: WireEncoding) -> DistributedStore {
        self.wire = encoding;
        self
    }

    /// The wire form new documents are published in.
    pub fn wire_encoding(&self) -> WireEncoding {
        self.wire
    }

    /// Installs a seeded fault schedule: every later transfer is submitted
    /// to the plan, which may fail it, delay it, or fire scripted host
    /// kills/partitions. The retry jitter source is reseeded from the
    /// plan's seed, so the whole degraded run replays bit-for-bit.
    pub fn with_fault_plan(mut self, plan: FaultPlan) -> DistributedStore {
        *self.retry_rng.get_mut() = SmallRng::seed_from_u64(plan.seed() ^ 0x9E37_79B9_7F4A_7C15);
        *self.fault.get_mut() = Some(plan);
        self
    }

    /// Chooses how degraded fetches retry (attempt budget, backoff shape).
    pub fn with_retry_policy(mut self, policy: RetryPolicy) -> DistributedStore {
        self.retry = policy;
        self
    }

    /// Chooses when observed transfer failures suspect/down a host.
    pub fn with_health_policy(mut self, policy: HealthPolicy) -> DistributedStore {
        self.health_policy = policy;
        self
    }

    /// The retry policy degraded fetches run under.
    pub fn retry_policy(&self) -> RetryPolicy {
        self.retry
    }

    /// The thresholds driving observed health transitions.
    pub fn health_policy(&self) -> HealthPolicy {
        self.health_policy
    }

    /// The network this store simulates traffic over.
    pub fn network(&self) -> &Network {
        &self.network
    }

    /// How many hosts receive a copy of each newly stored block/document.
    pub fn replication_factor(&self) -> usize {
        self.replication
    }

    /// Looks a host's shard up, as a typed error instead of a panic when
    /// the host is unknown.
    fn shard(&self, host: &str) -> Result<&HostShard> {
        self.shards
            .get(host)
            .ok_or_else(|| DistribError::UnknownHost {
                host: host.to_string(),
            })
    }

    /// Records a transfer whose cost is already known.
    fn record(&self, from: &str, to: &str, bytes: u64, is_structure: bool, ms: u64) {
        self.traffic
            .lock()
            .record(from, to, bytes, is_structure, ms);
    }

    /// Computes a transfer's cost and records it — via the fault-aware
    /// choke point, blaming the source on failure.
    fn charge(&self, from: &str, to: &str, bytes: u64, is_structure: bool) -> Result<u64> {
        self.attempt_transfer(from, to, bytes, is_structure, from)
    }

    /// The single choke point every simulated transfer goes through.
    ///
    /// Order matters: (1) the fault plan judges the attempt first, so
    /// scripted churn due at this point of the sequence lands before the
    /// health gate sees it; (2) the health gate rejects transfers touching
    /// a down host; (3) the network prices the transfer (a missing link is
    /// the legacy [`DistribError::Unreachable`] — topology, not weather);
    /// (4) the injected verdict is applied — failures go to the
    /// failed-traffic counters and blame `blame`'s health record,
    /// deliveries are charged (plus any injected delay) and clear it.
    ///
    /// No lock is held across any other lock: fault, health, repair and
    /// traffic are taken and released strictly in sequence.
    fn attempt_transfer(
        &self,
        from: &str,
        to: &str,
        bytes: u64,
        is_structure: bool,
        blame: &str,
    ) -> Result<u64> {
        let decision = {
            let mut fault = self.fault.lock();
            fault.as_mut().map(|plan| plan.decide(from, to))
        };
        let (verdict, extra_ms) = match decision {
            Some(decision) => {
                for host in &decision.killed {
                    self.force_health(host, HealthState::Down, "fault-kill");
                }
                for host in &decision.revived {
                    self.force_health(host, HealthState::Up, "fault-revive");
                }
                (decision.fault, decision.extra_ms)
            }
            None => (None, 0),
        };
        for host in [from, to] {
            if !self.is_serviceable(host) {
                return Err(DistribError::HostDown {
                    host: host.to_string(),
                });
            }
        }
        let cost =
            self.network
                .transfer_ms(from, to, bytes)
                .ok_or_else(|| DistribError::Unreachable {
                    from: from.to_string(),
                    to: to.to_string(),
                })?;
        match verdict {
            Some(InjectedFault::Partitioned) => {
                // Blocked before any bytes move: the attempt counts, the
                // wire is never occupied.
                self.traffic.lock().record_failure(from, to, 0, 0);
                Err(DistribError::TransferPartitioned {
                    from: from.to_string(),
                    to: to.to_string(),
                })
            }
            Some(InjectedFault::TransferFailed) => {
                // The transfer died mid-flight: the link was busy for the
                // full window, the bytes delivered nothing.
                self.traffic.lock().record_failure(from, to, bytes, cost);
                self.observe_failure(blame);
                Err(DistribError::TransferFailed {
                    from: from.to_string(),
                    to: to.to_string(),
                    bytes,
                })
            }
            None => {
                let total = cost + extra_ms;
                self.record(from, to, bytes, is_structure, total);
                self.observe_success(blame);
                Ok(total)
            }
        }
    }

    // ------------------------------------------------------------------
    // Health and churn
    // ------------------------------------------------------------------

    /// The health state of one host.
    pub fn health_of(&self, host: &str) -> Result<HealthState> {
        self.shard(host)?;
        Ok(self
            .health
            .read()
            .get(host)
            .map(|record| record.state())
            .unwrap_or(HealthState::Up))
    }

    /// Every host with its current health state, in host order.
    pub fn health_snapshot(&self) -> Vec<(HostId, HealthState)> {
        self.health
            .read()
            .iter()
            .map(|(host, record)| (host.clone(), record.state()))
            .collect()
    }

    /// Every health transition observed so far, in order.
    pub fn health_log(&self) -> Vec<HealthTransition> {
        self.health_log.lock().clone()
    }

    /// True when the host may serve or receive transfers.
    fn is_serviceable(&self, host: &str) -> bool {
        self.health
            .read()
            .get(host)
            .map(|record| record.state().is_serviceable())
            .unwrap_or(false)
    }

    /// Errors with [`DistribError::HostDown`] when the host cannot serve.
    fn ensure_serviceable(&self, host: &str) -> Result<()> {
        if self.is_serviceable(host) {
            Ok(())
        } else {
            Err(DistribError::HostDown {
                host: host.to_string(),
            })
        }
    }

    /// Forces a host's health state, logging the transition; a move to
    /// `Down`/`Decommissioned` queues its under-replicated objects.
    fn force_health(&self, host: &str, state: HealthState, cause: &'static str) {
        let previous = {
            let mut health = self.health.write();
            health.get_mut(host).and_then(|record| record.force(state))
        };
        if let Some(from) = previous {
            self.health_log.lock().push(HealthTransition {
                host: host.to_string(),
                from,
                to: state,
                cause,
            });
            if !state.is_serviceable() {
                self.scan_for_repairs(host);
            }
        }
    }

    /// Records a failed transfer against a host's health; an observed
    /// `Down` transition queues the host's objects for repair.
    fn observe_failure(&self, host: &str) {
        let transition = {
            let mut health = self.health.write();
            health.get_mut(host).and_then(|record| {
                let from = record.state();
                record
                    .observe_failure(&self.health_policy)
                    .map(|to| (from, to))
            })
        };
        if let Some((from, to)) = transition {
            self.health_log.lock().push(HealthTransition {
                host: host.to_string(),
                from,
                to,
                cause: "observed-failure",
            });
            if to == HealthState::Down {
                self.scan_for_repairs(host);
            }
        }
    }

    /// Records a successful transfer against a host's health (one good
    /// round trip recovers a `Suspect` host).
    fn observe_success(&self, host: &str) {
        let transition = {
            let mut health = self.health.write();
            health.get_mut(host).and_then(|record| {
                let from = record.state();
                record.observe_success().map(|to| (from, to))
            })
        };
        if let Some((from, to)) = transition {
            self.health_log.lock().push(HealthTransition {
                host: host.to_string(),
                from,
                to,
                cause: "observed-success",
            });
        }
    }

    /// Administratively marks a host down (maintenance, or a drill). Its
    /// blocks and documents are queued for re-replication; fetches skip it
    /// until [`DistributedStore::mark_up`]. Errors on unknown or
    /// decommissioned hosts.
    pub fn mark_down(&self, host: &str) -> Result<()> {
        self.shard(host)?;
        if self.health_of(host)? == HealthState::Decommissioned {
            return Err(DistribError::HostDown {
                host: host.to_string(),
            });
        }
        self.force_health(host, HealthState::Down, "mark-down");
        Ok(())
    }

    /// Returns a down (or suspect) host to service. Errors on unknown or
    /// decommissioned hosts — decommissioning is terminal.
    pub fn mark_up(&self, host: &str) -> Result<()> {
        self.shard(host)?;
        if self.health_of(host)? == HealthState::Decommissioned {
            return Err(DistribError::HostDown {
                host: host.to_string(),
            });
        }
        self.force_health(host, HealthState::Up, "mark-up");
        Ok(())
    }

    /// Permanently removes a host from service: terminal health state,
    /// off the placement ring (survivors keep their ring points — only
    /// the departed host's ~`1/n` of the keys re-home), stripped from
    /// every holder set, and everything it held queued for repair.
    pub fn decommission(&self, host: &str) -> Result<()> {
        self.shard(host)?;
        // The repair scan inside runs while the holder sets still name the
        // host, so everything it held is considered.
        self.force_health(host, HealthState::Decommissioned, "decommission");
        self.ring.write().remove_host(host);
        {
            let mut placement = self.placement.write();
            for entry in placement.values_mut() {
                entry.holders.remove(host);
            }
        }
        {
            let mut docs = self.doc_placement.write();
            for entry in docs.values_mut() {
                entry.holders.remove(host);
            }
        }
        Ok(())
    }

    /// Queues every under-replicated object the (newly unserviceable)
    /// host holds.
    fn scan_for_repairs(&self, host: &str) {
        let mut found: Vec<RepairItem> = Vec::new();
        {
            let placement = self.placement.read();
            let health = self.health.read();
            let live = |candidate: &HostId| {
                health
                    .get(candidate)
                    .map(|record| record.state().is_serviceable())
                    .unwrap_or(false)
            };
            for (key, entry) in placement.iter() {
                if entry.holders.contains(host)
                    && entry.holders.iter().filter(|h| live(h)).count() < self.replication
                {
                    found.push(RepairItem::Block(*key));
                }
            }
            let docs = self.doc_placement.read();
            for (name, entry) in docs.iter() {
                if entry.holders.contains(host)
                    && entry.holders.iter().filter(|h| live(h)).count() < self.replication
                {
                    found.push(RepairItem::Document(*name));
                }
            }
        }
        let mut repairs = self.repairs.lock();
        for item in found {
            repairs.enqueue(item);
        }
    }

    /// Marks `host` as a holder of `key` in the placement index.
    fn index_holder(&self, key: Symbol, bytes: u64, host: &str) {
        let mut placement = self.placement.write();
        if let Some(entry) = placement.get_mut(&key) {
            entry.bytes = bytes;
            entry.holders.insert(host.to_string());
        } else {
            placement.insert(
                key,
                BlockPlacement {
                    bytes,
                    holders: [host.to_string()].into_iter().collect(),
                },
            );
        }
    }

    /// Traffic accumulated so far (totals plus per-link breakdown).
    pub fn traffic(&self) -> TrafficStats {
        self.traffic.lock().clone()
    }

    /// Resets the traffic counters (between benchmark phases).
    pub fn reset_traffic(&self) {
        *self.traffic.lock() = TrafficStats::default();
    }

    /// Plans the replica fan-out for a new block/document while the calling
    /// operation is still side-effect free: the first `replication - 1`
    /// *serviceable* ring-chosen hosts distinct from the origin (down hosts
    /// are skipped — the walk continues along the ring), each validated to
    /// exist and be reachable, paired with the transfer cost for `bytes`.
    /// Empty without replication. May return fewer targets than the factor
    /// asks for when too few hosts are serviceable; the caller queues the
    /// object for repair in that case.
    fn plan_replicas(&self, key: &str, origin: &str, bytes: u64) -> Result<Vec<(HostId, u64)>> {
        let mut replicas = Vec::new();
        if self.replication > 1 {
            let candidates: Vec<HostId> = {
                let ring = self.ring.read();
                let all = ring.len();
                ring.hosts_for(key, all).into_iter().cloned().collect()
            };
            let targets: Vec<HostId> = candidates
                .into_iter()
                .filter(|candidate| candidate.as_str() != origin && self.is_serviceable(candidate))
                .take(self.replication - 1)
                .collect();
            for target in targets {
                self.shard(&target)?;
                let cost = self
                    .network
                    .transfer_ms(origin, &target, bytes)
                    .ok_or_else(|| DistribError::Unreachable {
                        from: origin.to_string(),
                        to: target.clone(),
                    })?;
                replicas.push((target, cost));
            }
        }
        Ok(replicas)
    }

    // ------------------------------------------------------------------
    // Media blocks
    // ------------------------------------------------------------------

    /// Stores a media block on a host and, when the replication factor is
    /// above one, copies it to further ring-chosen hosts, charging each
    /// replica transfer. Returns the simulated milliseconds spent on
    /// replication (zero without replication).
    ///
    /// Replica targets and their reachability are validated *before* the
    /// origin insert, so an unreachable ring target fails the whole call
    /// cleanly: nothing is stored, indexed or charged, and the caller can
    /// retry after fixing the topology.
    pub fn put_block(
        &self,
        host: &str,
        block: MediaBlock,
        descriptor: DataDescriptor,
    ) -> Result<u64> {
        let shard = self.shard(host)?;
        self.ensure_serviceable(host)?;
        let key = Symbol::intern(&block.key);
        let bytes = block.payload.size_bytes();
        let replicas = self.plan_replicas(key.as_str(), host, bytes)?;
        let replica_payload = (!replicas.is_empty()).then(|| block.payload.clone());

        shard
            .blocks
            .put_with_descriptor(block, descriptor.clone())
            .map_err(DistribError::Media)?;
        self.index_holder(key, bytes, host);

        let mut total_cost = 0;
        // The last replica consumes the payload/descriptor instead of
        // cloning them: K replicas cost K payload copies, not K + 1.
        if let Some(payload) = replica_payload {
            if let Some(((last_target, _), rest)) = replicas.split_last() {
                for (target, _) in rest {
                    total_cost +=
                        self.put_replica(host, target, key, payload.clone(), descriptor.clone())?;
                }
                total_cost += self.put_replica(host, last_target, key, payload, descriptor)?;
            }
        }
        // Too few serviceable hosts to satisfy the factor right now: the
        // put still lands (degraded), and repair finishes the job once the
        // cluster recovers.
        if replicas.len() + 1 < self.replication {
            self.enqueue_repair(RepairItem::Block(key));
        }
        Ok(total_cost)
    }

    /// Copies one planned replica to `target`, charging the transfer and
    /// indexing the new holder. Returns the cost charged — zero when the
    /// target already holds the block (nothing moves, nothing is charged)
    /// and zero when the copy was cut down by an injected fault: a failed
    /// replica copy does not fail the put (the origin holds the data), it
    /// queues the block for repair instead.
    fn put_replica(
        &self,
        origin: &str,
        target: &str,
        key: Symbol,
        payload: cmif_media::MediaPayload,
        descriptor: DataDescriptor,
    ) -> Result<u64> {
        let bytes = payload.size_bytes();
        let shard = self.shard(target)?;
        if shard.blocks.contains(key.as_str()) {
            return Ok(0);
        }
        match self.attempt_transfer(origin, target, bytes, false, target) {
            Ok(cost) => match shard
                .blocks
                .put_with_descriptor(MediaBlock::new(key.as_str(), payload), descriptor)
            {
                Ok(()) => {
                    self.index_holder(key, bytes, target);
                    Ok(cost)
                }
                // A direct put raced in after our contains check; the
                // bytes moved, so the charge stands.
                Err(MediaError::DuplicateBlock { .. }) => Ok(cost),
                Err(e) => Err(DistribError::Media(e)),
            },
            Err(e) if e.is_retryable() => {
                self.enqueue_repair(RepairItem::Block(key));
                Ok(0)
            }
            Err(e) => Err(e),
        }
    }

    /// The keys of the blocks a host holds locally.
    pub fn local_blocks(&self, host: &str) -> Result<Vec<String>> {
        Ok(self.shard(host)?.blocks.keys())
    }

    /// Finds a host holding the block (the first holder in lexical order;
    /// use [`DistributedStore::nearest_source`] for cost-aware selection).
    /// Never interns: unknown keys miss without growing the pool.
    pub fn locate_block(&self, key: &str) -> Option<HostId> {
        let key = Symbol::lookup(key)?;
        let placement = self.placement.read();
        placement
            .get(&key)
            .and_then(|entry| entry.holders.iter().next().cloned())
    }

    /// Every host currently holding a copy of the block, in lexical order.
    pub fn replicas_of(&self, key: &str) -> Vec<HostId> {
        let Some(key) = Symbol::lookup(key) else {
            return Vec::new();
        };
        let placement = self.placement.read();
        placement
            .get(&key)
            .map(|entry| entry.holders.iter().cloned().collect())
            .unwrap_or_default()
    }

    /// The cheapest source to fetch the block to `to` from, ranked by the
    /// network's transfer cost for the block's actual size (ties break in
    /// lexical host order). `None` when no host holds the block or no
    /// holder is reachable.
    pub fn nearest_source(&self, to: &str, key: &str) -> Option<HostId> {
        // Validate the destination like every other API: a default link
        // must not make an unknown host look reachable.
        if !self.shards.contains_key(to) {
            return None;
        }
        self.select_source(to, Symbol::lookup(key)?, None).ok()
    }

    /// Picks the holder to serve `key` to `to`: the destination itself when
    /// it holds a copy, otherwise the holder cheapest for moving the given
    /// byte count (`None` ranks by the block's actual size; descriptor
    /// fetches pass `Some(0)` since they are latency-dominated). Errors
    /// distinguish a block nobody holds ([`MediaError::UnknownBlock`]) from
    /// one whose holders are all unreachable
    /// ([`DistribError::Unreachable`]).
    fn select_source(&self, to: &str, key: Symbol, bytes_override: Option<u64>) -> Result<HostId> {
        let placement = self.placement.read();
        let entry = placement.get(&key).ok_or_else(|| {
            DistribError::Media(MediaError::UnknownBlock {
                key: key.as_str().to_string(),
            })
        })?;
        if entry.holders.contains(to) {
            return Ok(to.to_string());
        }
        let bytes = bytes_override.unwrap_or(entry.bytes);
        entry
            .holders
            .iter()
            .filter_map(|holder| {
                self.network
                    .transfer_ms(holder, to, bytes)
                    // Prefer healthy holders: a suspect source only serves
                    // when every up holder is more expensive than its rank
                    // penalty, a down one only when nothing else exists.
                    .map(|cost| ((self.health_rank(holder), cost), holder))
            })
            .min_by_key(|(rank, _)| *rank)
            .map(|(_, holder)| holder.clone())
            .ok_or_else(|| DistribError::Unreachable {
                // Holder sets are never empty once indexed; name the first
                // holder in the error so the operator sees the topology gap.
                from: entry.holders.iter().next().cloned().unwrap_or_default(),
                to: to.to_string(),
            })
    }

    /// Sort rank of a host's health for source selection: `Up` hosts
    /// first, then `Suspect`, then `Down`/`Decommissioned`.
    fn health_rank(&self, host: &str) -> u8 {
        match self
            .health
            .read()
            .get(host)
            .map(|record| record.state())
            .unwrap_or(HealthState::Up)
        {
            HealthState::Up => 0,
            HealthState::Suspect => 1,
            HealthState::Down => 2,
            HealthState::Decommissioned => 3,
        }
    }

    /// Candidate sources for fetching `key` to `to`, nearest-first:
    /// every indexed holder except `to` itself and decommissioned hosts,
    /// ordered `Up` before `Suspect` before `Down` and by transfer cost
    /// within a rank. Topology-unreachable holders are returned separately
    /// so exhaustion can tell a configuration gap from cluster weather.
    /// Errors with [`MediaError::UnknownBlock`] when nobody holds the key.
    fn ranked_sources(&self, to: &str, key: Symbol) -> Result<(u64, Vec<HostId>, Vec<HostId>)> {
        let (bytes, holders) = {
            let placement = self.placement.read();
            let entry = placement.get(&key).ok_or_else(|| {
                DistribError::Media(MediaError::UnknownBlock {
                    key: key.as_str().to_string(),
                })
            })?;
            (
                entry.bytes,
                entry.holders.iter().cloned().collect::<Vec<HostId>>(),
            )
        };
        let mut ranked: Vec<(u8, u64, HostId)> = Vec::new();
        let mut unreachable: Vec<HostId> = Vec::new();
        for holder in holders {
            if holder == to {
                continue;
            }
            let rank = self.health_rank(&holder);
            if rank > 2 {
                continue;
            }
            match self.network.transfer_ms(&holder, to, bytes) {
                Some(cost) => ranked.push((rank, cost, holder)),
                None => unreachable.push(holder),
            }
        }
        ranked.sort();
        Ok((
            bytes,
            ranked.into_iter().map(|(_, _, host)| host).collect(),
            unreachable,
        ))
    }

    /// Fetches a block's descriptor to `to` from the holder cheapest for
    /// descriptor-sized data (latency-dominated, unlike payload fetches).
    /// Only descriptor bytes move; when `to` itself holds the block the
    /// read is local and no transfer is recorded.
    pub fn fetch_descriptor(&self, to: &str, key: &str) -> Result<DataDescriptor> {
        self.shard(to)?;
        let key = Symbol::lookup(key).ok_or_else(|| {
            DistribError::Media(MediaError::UnknownBlock {
                key: key.to_string(),
            })
        })?;
        let from = self.select_source(to, key, Some(0))?;
        let descriptor = self
            .shard(&from)?
            .blocks
            .descriptor(key.as_str())
            .map_err(DistribError::Media)?;
        if from != to {
            self.charge(&from, to, descriptor.approx_descriptor_size() as u64, true)?;
        }
        Ok(descriptor)
    }

    /// Fetches a block's payload to `to` from the nearest holder, copying it
    /// into `to`'s local store (so later fetches are free) and charging the
    /// media transfer.
    ///
    /// The destination host reserves the key before any bytes move: when N
    /// callers race to fetch the same block, one performs (and is charged
    /// for) the transfer while the others wait on the reservation and then
    /// find the block local — exactly one transfer lands in
    /// [`TrafficStats`].
    pub fn fetch_block(&self, to: &str, key: &str) -> Result<u64> {
        // Never interns: a block that exists anywhere was interned when it
        // was put, so a pool miss is an unknown block — failing lookups of
        // caller-supplied keys must not grow the pool.
        let key = Symbol::lookup(key).ok_or_else(|| {
            DistribError::Media(MediaError::UnknownBlock {
                key: key.to_string(),
            })
        })?;
        self.fetch_block_symbol(to, key)
    }

    /// [`DistributedStore::fetch_block`] with the key already interned —
    /// the form the transport planner uses so a fetch loop over N keys does
    /// no string work at all.
    pub fn fetch_block_symbol(&self, to: &str, key: Symbol) -> Result<u64> {
        Ok(self.fetch_block_traced(to, key)?.simulated_ms)
    }

    /// [`DistributedStore::fetch_block_symbol`], also reporting how the
    /// block arrived: local hit, clean transfer, or a degraded fetch that
    /// had to walk past failed replicas.
    pub fn fetch_block_traced(&self, to: &str, key: Symbol) -> Result<FetchOutcome> {
        let dest = self.shard(to)?;
        {
            let mut inflight = lock_inflight(dest);
            loop {
                if dest.blocks.contains(key.as_str()) {
                    return Ok(FetchOutcome::local_hit());
                }
                if !inflight.contains(&key) {
                    inflight.insert(key);
                    break;
                }
                // Another fetch of this key is in flight to this host; wait
                // for it to finish, then re-check (it may have failed, in
                // which case we take over the reservation).
                inflight = dest
                    .arrived
                    .wait(inflight)
                    .unwrap_or_else(PoisonError::into_inner);
            }
        }
        // Release the reservation on every exit path — including a panic
        // inside the transfer — so a failed fetch never wedges later
        // fetches of the same key to this host.
        let _reservation = InflightReservation { shard: dest, key };
        self.pull_block(dest, to, key)
    }

    /// The retry walk behind [`DistributedStore::fetch_block`]; runs with
    /// the key reserved on the destination host.
    ///
    /// Each round re-ranks the surviving holders nearest-first (health
    /// before cost — a holder that just failed us is `Suspect` and sinks)
    /// and tries them in order, charging exponential backoff with jitter
    /// between attempts, until the block arrives or the
    /// [`RetryPolicy`] budget runs out. Exhaustion is classified: any
    /// mid-flight transfer failure in the trace ⇒
    /// [`DistribError::RetriesExhausted`]; otherwise every path was cut by
    /// down hosts or partitions ⇒ [`DistribError::Partitioned`]. When no
    /// transfer was ever attempted because no holder has a link to `to`,
    /// the legacy [`DistribError::Unreachable`] names the topology gap.
    fn pull_block(&self, dest: &HostShard, to: &str, key: Symbol) -> Result<FetchOutcome> {
        let mut attempts: Vec<FetchAttempt> = Vec::new();
        let mut attempt_no: u32 = 0;
        let mut backoff_total: u64 = 0;
        'rounds: loop {
            let (bytes, candidates, unreachable) = self.ranked_sources(to, key)?;
            if candidates.is_empty() {
                if attempts.is_empty() && !unreachable.is_empty() {
                    // Pure topology gap, no dynamic faults involved: keep
                    // the legacy error operators already know.
                    return Err(DistribError::Unreachable {
                        from: unreachable[0].clone(),
                        to: to.to_string(),
                    });
                }
                break;
            }
            let mut tried_any = false;
            for from in candidates {
                if attempt_no >= self.retry.max_attempts {
                    break 'rounds;
                }
                attempt_no += 1;
                let backoff = {
                    let mut rng = self.retry_rng.lock();
                    self.retry.backoff_ms(attempt_no, &mut rng)
                };
                backoff_total += backoff;
                tried_any = true;
                match self.try_pull_from(dest, to, key, &from, bytes) {
                    Ok(cost) => {
                        return Ok(FetchOutcome {
                            simulated_ms: cost + backoff_total,
                            attempts: attempt_no,
                            local: false,
                            degraded: !attempts.is_empty(),
                        });
                    }
                    Err(error) if error.is_retryable() => attempts.push(FetchAttempt {
                        attempt: attempt_no,
                        source: from.clone(),
                        error: Box::new(error),
                        backoff_ms: backoff,
                    }),
                    Err(error) => return Err(error),
                }
            }
            if !tried_any {
                break;
            }
        }
        let mid_flight = attempts
            .iter()
            .any(|a| matches!(*a.error, DistribError::TransferFailed { .. }));
        if mid_flight {
            Err(DistribError::RetriesExhausted {
                to: to.to_string(),
                key: key.as_str().to_string(),
                attempts,
            })
        } else {
            Err(DistribError::Partitioned {
                to: to.to_string(),
                key: key.as_str().to_string(),
                attempts,
            })
        }
    }

    /// One transfer attempt of `key` from `from` to the reserved
    /// destination: charge the (fault-judged) transfer first, then copy
    /// payload and descriptor into the destination shard.
    fn try_pull_from(
        &self,
        dest: &HostShard,
        to: &str,
        key: Symbol,
        from: &str,
        bytes: u64,
    ) -> Result<u64> {
        let cost = self.attempt_transfer(from, to, bytes, false, from)?;
        let source = self.shard(from)?;
        let payload = source
            .blocks
            .payload(key.as_str())
            .map_err(DistribError::Media)?;
        let descriptor = source
            .blocks
            .descriptor(key.as_str())
            .map_err(DistribError::Media)?;
        let bytes = payload.size_bytes();
        match dest
            .blocks
            .put_with_descriptor(MediaBlock::new(key.as_str(), payload), descriptor)
        {
            Ok(()) => {
                self.index_holder(key, bytes, to);
                Ok(cost)
            }
            // A direct `put_block` to this host slipped in between our
            // reservation and the insert: the block is local; the bytes we
            // moved anyway stay charged.
            Err(MediaError::DuplicateBlock { .. }) => Ok(cost),
            Err(e) => Err(DistribError::Media(e)),
        }
    }

    // ------------------------------------------------------------------
    // Documents
    // ------------------------------------------------------------------

    /// Publishes a document on a host under a name, serializing it in the
    /// store's wire encoding (binary by default, see
    /// [`DistributedStore::with_wire_encoding`]) and replicating the wire
    /// bytes to further ring-chosen hosts when the replication factor is
    /// above one (each replica transfer is charged as structure bytes).
    /// Only the structure is stored; media blocks stay wherever they are.
    /// Returns the structure size in bytes.
    ///
    /// Like [`DistributedStore::put_block`], replica targets are validated
    /// before anything is stored or charged, so an unreachable ring target
    /// fails the whole call with no partial state and no phantom traffic.
    pub fn publish_document(&self, host: &str, name: &str, doc: &Document) -> Result<usize> {
        let origin = self.shard(host)?;
        self.ensure_serviceable(host)?;
        let name = Symbol::intern(name);
        let bytes = document_to_bytes(doc, self.wire).map_err(DistribError::Format)?;
        let size = bytes.len();
        let replicas = self.plan_replicas(name.as_str(), host, size as u64)?;

        // Republish invalidation: a host holding an older version that the
        // new replica set no longer names drops its stale bytes *before*
        // the new version lands anywhere, so no reader is served the old
        // document from a holder the placement no longer knows about.
        let new_holders: BTreeSet<HostId> = std::iter::once(host.to_string())
            .chain(replicas.iter().map(|(target, _)| target.clone()))
            .collect();
        let stale: Vec<HostId> = {
            let docs = self.doc_placement.read();
            docs.get(&name)
                .map(|entry| {
                    entry
                        .holders
                        .iter()
                        .filter(|holder| !new_holders.contains(*holder))
                        .cloned()
                        .collect()
                })
                .unwrap_or_default()
        };
        for stale_host in &stale {
            if let Ok(shard) = self.shard(stale_host) {
                shard.documents.write().remove(&name);
            }
        }

        let mut holders: BTreeSet<HostId> = BTreeSet::new();
        holders.insert(host.to_string());
        // The last insert consumes `bytes` instead of cloning it: K
        // replicas cost K copies of the wire bytes, not K + 1.
        if replicas.is_empty() {
            origin.documents.write().insert(name, bytes);
        } else {
            let mut bytes = bytes;
            origin.documents.write().insert(name, bytes.clone());
            let last = replicas.len() - 1;
            for (index, (target, _)) in replicas.into_iter().enumerate() {
                let copy = if index == last {
                    std::mem::take(&mut bytes)
                } else {
                    bytes.clone()
                };
                match self.attempt_transfer(host, &target, size as u64, true, &target) {
                    Ok(_) => {
                        self.shard(&target)?.documents.write().insert(name, copy);
                        holders.insert(target);
                    }
                    // A replica copy lost to a fault does not fail the
                    // publish; repair delivers the copy later.
                    Err(e) if e.is_retryable() => {
                        self.enqueue_repair(RepairItem::Document(name));
                    }
                    Err(e) => return Err(e),
                }
            }
        }
        let under_replicated = holders.len() < self.replication;
        self.doc_placement.write().insert(
            name,
            DocPlacement {
                bytes: size as u64,
                holders,
            },
        );
        if under_replicated {
            self.enqueue_repair(RepairItem::Document(name));
        }
        Ok(size)
    }

    /// The documents a host holds, in name order.
    pub fn documents_on(&self, host: &str) -> Result<Vec<String>> {
        let mut names: Vec<String> = self
            .shard(host)?
            .documents
            .read()
            .keys()
            .map(|name| name.as_str().to_string())
            .collect();
        names.sort();
        Ok(names)
    }

    /// Transports a document's structure from one host to another, charging
    /// only the structure bytes (as many as the wire form actually
    /// occupies). The bytes move verbatim — a text-published document stays
    /// text on the destination. Returns the decoded document.
    pub fn transport_document(&self, from: &str, to: &str, name: &str) -> Result<Document> {
        let dest = self.shard(to)?;
        let name = Symbol::lookup(name).ok_or_else(|| DistribError::UnknownDocument {
            host: from.to_string(),
            name: name.to_string(),
        })?;
        let bytes = self
            .shard(from)?
            .documents
            .read()
            .get(&name)
            .cloned()
            .ok_or_else(|| DistribError::UnknownDocument {
                host: from.to_string(),
                name: name.as_str().to_string(),
            })?;
        self.charge(from, to, bytes.len() as u64, true)?;
        let doc = Document::from_read(&mut bytes.as_slice()).map_err(DistribError::Format)?;
        let size = bytes.len() as u64;
        dest.documents.write().insert(name, bytes);
        self.index_doc_holder(name, size, to);
        Ok(doc)
    }

    /// Marks `host` as a holder of document `name` in the document index.
    fn index_doc_holder(&self, name: Symbol, bytes: u64, host: &str) {
        let mut docs = self.doc_placement.write();
        if let Some(entry) = docs.get_mut(&name) {
            entry.holders.insert(host.to_string());
        } else {
            docs.insert(
                name,
                DocPlacement {
                    bytes,
                    holders: [host.to_string()].into_iter().collect(),
                },
            );
        }
    }

    /// Reads a document a host already holds (no traffic), auto-detecting
    /// the wire form it was published in.
    pub fn open_document(&self, host: &str, name: &str) -> Result<Document> {
        let shard = self.shard(host)?;
        let missing = || DistribError::UnknownDocument {
            host: host.to_string(),
            name: name.to_string(),
        };
        let name = Symbol::lookup(name).ok_or_else(missing)?;
        let documents = shard.documents.read();
        let bytes = documents.get(&name).ok_or_else(missing)?;
        Document::from_read(&mut bytes.as_slice()).map_err(DistribError::Format)
    }

    /// Opens `name` on `to`, fetching the wire bytes from the nearest
    /// surviving holder first when the host has no local copy. Like
    /// [`DistributedStore::fetch_block`], the walk retries past down hosts
    /// and cut links under the store's [`RetryPolicy`], and the fetched
    /// copy lands in `to`'s shard so later opens are free. Exhaustion is
    /// classified the same way: mid-flight failures ⇒
    /// [`DistribError::RetriesExhausted`], otherwise
    /// [`DistribError::Partitioned`] — both carrying the per-replica
    /// attempt trace.
    pub fn fetch_document(&self, to: &str, name: &str) -> Result<Document> {
        let dest = self.shard(to)?;
        let missing = || DistribError::UnknownDocument {
            host: to.to_string(),
            name: name.to_string(),
        };
        let sym = Symbol::lookup(name).ok_or_else(missing)?;
        if dest.documents.read().contains_key(&sym) {
            return self.open_document(to, name);
        }
        let (size, holders) = {
            let docs = self.doc_placement.read();
            let entry = docs.get(&sym).ok_or_else(missing)?;
            (
                entry.bytes,
                entry.holders.iter().cloned().collect::<Vec<HostId>>(),
            )
        };
        let mut attempts: Vec<FetchAttempt> = Vec::new();
        let mut attempt_no: u32 = 0;
        'rounds: loop {
            // Re-rank each round: a holder that just failed us is Suspect
            // now and sinks below healthier replicas.
            let mut ranked: Vec<(u8, u64, HostId)> = Vec::new();
            let mut unreachable: Vec<HostId> = Vec::new();
            for holder in &holders {
                if holder == to {
                    continue;
                }
                let rank = self.health_rank(holder);
                if rank > 2 {
                    continue;
                }
                match self.network.transfer_ms(holder, to, size) {
                    Some(cost) => ranked.push((rank, cost, holder.clone())),
                    None => unreachable.push(holder.clone()),
                }
            }
            ranked.sort();
            if ranked.is_empty() {
                if attempts.is_empty() && !unreachable.is_empty() {
                    return Err(DistribError::Unreachable {
                        from: unreachable[0].clone(),
                        to: to.to_string(),
                    });
                }
                break;
            }
            let mut tried_any = false;
            for (_, _, from) in ranked {
                if attempt_no >= self.retry.max_attempts {
                    break 'rounds;
                }
                attempt_no += 1;
                let backoff = {
                    let mut rng = self.retry_rng.lock();
                    self.retry.backoff_ms(attempt_no, &mut rng)
                };
                tried_any = true;
                match self.try_transport_from(dest, to, sym, &from, size) {
                    Ok(doc) => return Ok(doc),
                    Err(error) if error.is_retryable() => attempts.push(FetchAttempt {
                        attempt: attempt_no,
                        source: from.clone(),
                        error: Box::new(error),
                        backoff_ms: backoff,
                    }),
                    Err(error) => return Err(error),
                }
            }
            if !tried_any {
                break;
            }
        }
        let mid_flight = attempts
            .iter()
            .any(|a| matches!(*a.error, DistribError::TransferFailed { .. }));
        if mid_flight {
            Err(DistribError::RetriesExhausted {
                to: to.to_string(),
                key: name.to_string(),
                attempts,
            })
        } else {
            Err(DistribError::Partitioned {
                to: to.to_string(),
                key: name.to_string(),
                attempts,
            })
        }
    }

    /// One transfer attempt of document `name`'s wire bytes from `from` to
    /// the destination shard: charge the (fault-judged) structure transfer,
    /// then copy and decode.
    fn try_transport_from(
        &self,
        dest: &HostShard,
        to: &str,
        name: Symbol,
        from: &str,
        size: u64,
    ) -> Result<Document> {
        self.attempt_transfer(from, to, size, true, from)?;
        let bytes = self
            .shard(from)?
            .documents
            .read()
            .get(&name)
            .cloned()
            .ok_or_else(|| DistribError::UnknownDocument {
                host: from.to_string(),
                name: name.as_str().to_string(),
            })?;
        let doc = Document::from_read(&mut bytes.as_slice()).map_err(DistribError::Format)?;
        let size = bytes.len() as u64;
        dest.documents.write().insert(name, bytes);
        self.index_doc_holder(name, size, to);
        Ok(doc)
    }

    /// Fetches to `host` the payloads of exactly the given descriptor keys
    /// (e.g. only the blocks a device can present). Returns the total
    /// simulated transfer time.
    pub fn fetch_blocks_for(&self, host: &str, keys: &BTreeSet<Symbol>) -> Result<u64> {
        Ok(self.fetch_blocks_for_traced(host, keys)?.simulated_ms)
    }

    /// [`DistributedStore::fetch_blocks_for`], also reporting how the
    /// blocks arrived — local hits, clean transfers, degraded fetches and
    /// the retries they recovered from.
    pub fn fetch_blocks_for_traced(
        &self,
        host: &str,
        keys: &BTreeSet<Symbol>,
    ) -> Result<FetchReport> {
        let mut report = FetchReport {
            requested: keys.len(),
            ..FetchReport::default()
        };
        for key in keys {
            let outcome = self.fetch_block_traced(host, *key)?;
            if outcome.local {
                report.local_hits += 1;
            } else {
                report.fetched += 1;
            }
            if outcome.degraded {
                report.degraded += 1;
            }
            report.retries += outcome.attempts.saturating_sub(1);
            report.simulated_ms += outcome.simulated_ms;
        }
        Ok(report)
    }

    /// One host's local block store (for presentation pipelines running on
    /// that host). No distributed-store lock is held by the reference: the
    /// shard map is frozen and the [`BlockStore`] locks itself per call, so
    /// the caller may re-enter the distributed store freely.
    ///
    /// The reference is a *host-local* view: blocks inserted through it
    /// directly (e.g. `BlockStore::put`) are not registered in the cluster
    /// placement index and stay invisible to
    /// [`DistributedStore::locate_block`]/[`DistributedStore::fetch_block`].
    /// Use [`DistributedStore::put_block`] to store blocks the cluster
    /// should know about.
    pub fn local_store(&self, host: &str) -> Result<&BlockStore> {
        Ok(&self.shard(host)?.blocks)
    }

    /// Runs a callback against one host's local block store. Equivalent to
    /// [`DistributedStore::local_store`]; kept for callers that prefer the
    /// scoped form.
    pub fn with_local_store<R>(&self, host: &str, f: impl FnOnce(&BlockStore) -> R) -> Result<R> {
        Ok(f(self.local_store(host)?))
    }

    // ------------------------------------------------------------------
    // Self-healing repair
    // ------------------------------------------------------------------

    /// Queues an object for re-replication (deduplicated).
    fn enqueue_repair(&self, item: RepairItem) {
        self.repairs.lock().enqueue(item);
    }

    /// Number of objects currently queued for repair.
    pub fn pending_repairs(&self) -> usize {
        self.repairs.lock().len()
    }

    /// Drains the repair queue once: every queued block/document is
    /// re-replicated from its nearest surviving holder onto serviceable
    /// ring-chosen hosts until the replication factor is restored, each
    /// copy charged to [`TrafficStats`] like any other transfer. Items
    /// whose copy fails transiently are re-queued for the next pass; items
    /// with zero surviving holders are reported lost (impossible for a
    /// single host loss at RF ≥ 2). The pass works on a snapshot of the
    /// queue, so it always terminates even while faults keep enqueueing.
    pub fn repair_all(&self) -> RepairReport {
        let mut batch = Vec::new();
        {
            let mut repairs = self.repairs.lock();
            while let Some(item) = repairs.pop() {
                batch.push(item);
            }
        }
        let mut report = RepairReport::default();
        for item in batch {
            match item {
                RepairItem::Block(key) => self.repair_block(key, &mut report),
                RepairItem::Document(name) => self.repair_document(name, &mut report),
            }
        }
        report
    }

    /// The next ring-chosen serviceable host that does not already hold
    /// the object — where a fresh replica should land.
    fn repair_target(&self, key: &str, holders: &BTreeSet<HostId>) -> Option<HostId> {
        let candidates: Vec<HostId> = {
            let ring = self.ring.read();
            let all = ring.len();
            ring.hosts_for(key, all).into_iter().cloned().collect()
        };
        candidates.into_iter().find(|candidate| {
            !holders.contains(candidate)
                && self.is_serviceable(candidate)
                && self.shards.contains_key(candidate.as_str())
        })
    }

    /// Re-replicates one block until it has `replication` live copies.
    fn repair_block(&self, key: Symbol, report: &mut RepairReport) {
        let item = RepairItem::Block(key);
        let Some((bytes, holders)) = ({
            let placement = self.placement.read();
            placement
                .get(&key)
                .map(|entry| (entry.bytes, entry.holders.clone()))
        }) else {
            return;
        };
        let mut live: BTreeSet<HostId> = holders
            .iter()
            .filter(|holder| {
                self.is_serviceable(holder)
                    && self
                        .shards
                        .get(holder.as_str())
                        .map(|shard| shard.blocks.contains(key.as_str()))
                        .unwrap_or(false)
            })
            .cloned()
            .collect();
        if live.is_empty() {
            report.lost.push(item);
            return;
        }
        while live.len() < self.replication {
            let Some(target) = self.repair_target(key.as_str(), &live) else {
                // Too few serviceable hosts: nothing to retry until the
                // cluster's membership changes.
                report.deferred.push(item);
                return;
            };
            let Some(source) = live
                .iter()
                .filter_map(|holder| {
                    self.network
                        .transfer_ms(holder, &target, bytes)
                        .map(|cost| (cost, holder.clone()))
                })
                .min_by_key(|(cost, _)| *cost)
                .map(|(_, holder)| holder)
            else {
                report.deferred.push(item);
                return;
            };
            match self.copy_block(&source, &target, key, bytes) {
                Ok(simulated_ms) => {
                    report.actions.push(RepairAction {
                        item,
                        from: source,
                        to: target.clone(),
                        bytes,
                        simulated_ms,
                    });
                    report.bytes_copied += bytes;
                    report.simulated_ms += simulated_ms;
                    live.insert(target);
                }
                Err(e) if e.is_retryable() => {
                    // Transient (injected fault, host mid-flap): try again
                    // on the next pass.
                    report.deferred.push(item);
                    self.enqueue_repair(item);
                    return;
                }
                Err(_) => {
                    report.deferred.push(item);
                    return;
                }
            }
        }
        report.repaired.push(item);
    }

    /// One repair copy of a block from a surviving holder to a fresh host.
    fn copy_block(&self, from: &str, to: &str, key: Symbol, bytes: u64) -> Result<u64> {
        let cost = self.attempt_transfer(from, to, bytes, false, to)?;
        let source = self.shard(from)?;
        let payload = source
            .blocks
            .payload(key.as_str())
            .map_err(DistribError::Media)?;
        let descriptor = source
            .blocks
            .descriptor(key.as_str())
            .map_err(DistribError::Media)?;
        match self
            .shard(to)?
            .blocks
            .put_with_descriptor(MediaBlock::new(key.as_str(), payload), descriptor)
        {
            Ok(()) | Err(MediaError::DuplicateBlock { .. }) => {
                self.index_holder(key, bytes, to);
                Ok(cost)
            }
            Err(e) => Err(DistribError::Media(e)),
        }
    }

    /// Re-replicates one document until it has `replication` live copies.
    fn repair_document(&self, name: Symbol, report: &mut RepairReport) {
        let item = RepairItem::Document(name);
        let Some((bytes, holders)) = ({
            let docs = self.doc_placement.read();
            docs.get(&name)
                .map(|entry| (entry.bytes, entry.holders.clone()))
        }) else {
            return;
        };
        let mut live: BTreeSet<HostId> = holders
            .iter()
            .filter(|holder| {
                self.is_serviceable(holder)
                    && self
                        .shards
                        .get(holder.as_str())
                        .map(|shard| shard.documents.read().contains_key(&name))
                        .unwrap_or(false)
            })
            .cloned()
            .collect();
        if live.is_empty() {
            report.lost.push(item);
            return;
        }
        while live.len() < self.replication {
            let Some(target) = self.repair_target(name.as_str(), &live) else {
                report.deferred.push(item);
                return;
            };
            let Some(source) = live
                .iter()
                .filter_map(|holder| {
                    self.network
                        .transfer_ms(holder, &target, bytes)
                        .map(|cost| (cost, holder.clone()))
                })
                .min_by_key(|(cost, _)| *cost)
                .map(|(_, holder)| holder)
            else {
                report.deferred.push(item);
                return;
            };
            let copied = self
                .attempt_transfer(&source, &target, bytes, true, &target)
                .and_then(|cost| {
                    let wire = self
                        .shard(&source)?
                        .documents
                        .read()
                        .get(&name)
                        .cloned()
                        .ok_or_else(|| DistribError::UnknownDocument {
                            host: source.clone(),
                            name: name.as_str().to_string(),
                        })?;
                    self.shard(&target)?.documents.write().insert(name, wire);
                    self.index_doc_holder(name, bytes, &target);
                    Ok(cost)
                });
            match copied {
                Ok(simulated_ms) => {
                    report.actions.push(RepairAction {
                        item,
                        from: source,
                        to: target.clone(),
                        bytes,
                        simulated_ms,
                    });
                    report.bytes_copied += bytes;
                    report.simulated_ms += simulated_ms;
                    live.insert(target);
                }
                Err(e) if e.is_retryable() => {
                    report.deferred.push(item);
                    self.enqueue_repair(item);
                    return;
                }
                Err(_) => {
                    report.deferred.push(item);
                    return;
                }
            }
        }
        report.repaired.push(item);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::Link;
    use cmif_core::prelude::*;
    use cmif_media::MediaGenerator;
    use std::sync::{mpsc, Arc};
    use std::thread;
    use std::time::Duration;

    fn cluster() -> DistributedStore {
        DistributedStore::new(Network::uniform(&["server", "desk", "laptop"], Link::lan()))
    }

    fn seed_media(store: &DistributedStore, host: &str) {
        let mut generator = MediaGenerator::new(13);
        for (key, ms) in [("speech", 4_000), ("jingle", 1_000)] {
            let block = generator.audio(key, ms, 8_000);
            let descriptor = block.describe();
            store.put_block(host, block, descriptor).unwrap();
        }
        let image = generator.image("painting", 128, 128, 24);
        let descriptor = image.describe();
        store.put_block(host, image, descriptor).unwrap();
    }

    fn news_doc() -> Document {
        DocumentBuilder::new("news")
            .channel("audio", MediaKind::Audio)
            .channel("graphic", MediaKind::Image)
            .descriptor(
                DataDescriptor::new("speech", MediaKind::Audio, "pcm8")
                    .with_duration(TimeMs::from_secs(4))
                    .with_size(32_000),
            )
            .descriptor(
                DataDescriptor::new("painting", MediaKind::Image, "raster24")
                    .with_size(128 * 128 * 3),
            )
            .root_par(|story| {
                story.ext("voice", "audio", "speech");
                story.ext_with("art", "graphic", "painting", |n| {
                    n.duration_ms(4_000);
                });
            })
            .build()
            .unwrap()
    }

    #[test]
    fn unknown_hosts_are_rejected() {
        let store = cluster();
        assert!(matches!(
            store.documents_on("mainframe").unwrap_err(),
            DistribError::UnknownHost { .. }
        ));
    }

    #[test]
    fn blocks_are_located_and_fetched_lazily() {
        let store = cluster();
        seed_media(&store, "server");
        assert_eq!(store.locate_block("speech").as_deref(), Some("server"));
        assert!(store.locate_block("missing").is_none());
        assert!(store.local_blocks("desk").unwrap().is_empty());

        let cost = store.fetch_block("desk", "speech").unwrap();
        assert!(cost > 0);
        assert_eq!(store.local_blocks("desk").unwrap(), vec!["speech"]);
        // A second fetch is free: the block is now local.
        assert_eq!(store.fetch_block("desk", "speech").unwrap(), 0);
        let traffic = store.traffic();
        assert_eq!(traffic.media_bytes, 32_000);
        assert_eq!(traffic.transfers, 1);
        // The transfer is attributed to the link that carried it.
        let link = traffic.link("server", "desk");
        assert_eq!(link.media_bytes, 32_000);
        assert_eq!(link.transfers, 1);
        assert_eq!(traffic.links_used(), 1);
        // The fetched copy is indexed as a replica.
        assert_eq!(store.replicas_of("speech"), vec!["desk", "server"]);
    }

    #[test]
    fn descriptor_fetches_move_only_kilobytes() {
        let store = cluster();
        seed_media(&store, "server");
        let descriptor = store.fetch_descriptor("laptop", "painting").unwrap();
        assert_eq!(descriptor.medium, MediaKind::Image);
        let traffic = store.traffic();
        assert!(traffic.structure_bytes < 1_000);
        assert_eq!(traffic.media_bytes, 0);
        assert_eq!(
            traffic.link("server", "laptop").structure_bytes,
            traffic.structure_bytes
        );
    }

    #[test]
    fn documents_transport_without_their_media() {
        let store = cluster();
        seed_media(&store, "server");
        let doc = news_doc();
        let published = store
            .publish_document("server", "evening-news", &doc)
            .unwrap();
        assert!(published > 0);
        store.reset_traffic();

        let received = store
            .transport_document("server", "desk", "evening-news")
            .unwrap();
        assert_eq!(received.leaves().len(), 2);
        assert!(store
            .documents_on("desk")
            .unwrap()
            .contains(&"evening-news".to_string()));
        let traffic = store.traffic();
        assert!(traffic.structure_bytes > 0);
        assert_eq!(
            traffic.media_bytes, 0,
            "transporting the structure must not move media"
        );
        // The structure is tiny compared to the media it references.
        assert!(traffic.structure_bytes < 10_000);
    }

    #[test]
    fn open_document_requires_prior_transport_or_publish() {
        let store = cluster();
        let doc = news_doc();
        store.publish_document("server", "news", &doc).unwrap();
        assert!(store.open_document("server", "news").is_ok());
        assert!(matches!(
            store.open_document("desk", "news").unwrap_err(),
            DistribError::UnknownDocument { .. }
        ));
        assert!(matches!(
            store
                .transport_document("server", "desk", "absent")
                .unwrap_err(),
            DistribError::UnknownDocument { .. }
        ));
    }

    #[test]
    fn selective_fetch_moves_only_requested_blocks() {
        let store = cluster();
        seed_media(&store, "server");
        store.reset_traffic();
        // An audio-only device needs only the speech, not the painting.
        let wanted: BTreeSet<cmif_core::Symbol> =
            [cmif_core::Symbol::intern("speech")].into_iter().collect();
        let cost = store.fetch_blocks_for("laptop", &wanted).unwrap();
        assert!(cost > 0);
        let traffic = store.traffic();
        assert_eq!(traffic.media_bytes, 32_000);
        assert_eq!(store.local_blocks("laptop").unwrap(), vec!["speech"]);
    }

    #[test]
    fn local_store_supports_presentation_on_the_destination_host() {
        let store = cluster();
        seed_media(&store, "server");
        store.fetch_block("desk", "speech").unwrap();
        let duration = store
            .with_local_store("desk", |local| {
                local
                    .descriptor("speech")
                    .unwrap()
                    .duration
                    .unwrap()
                    .as_millis()
            })
            .unwrap();
        assert_eq!(duration, 4_000);
        // The borrowed form sees the same shard.
        assert_eq!(store.local_store("desk").unwrap().len(), 1);
    }

    #[test]
    fn fetch_prefers_the_nearest_replica() {
        // `alpha` sorts before `zulu`, so a first-holder-in-order policy
        // (the old `locate_block` behaviour) would pick the WAN replica.
        let mut network = Network::uniform(&["alpha", "reader", "zulu"], Link::lan());
        network.connect("alpha", "reader", Link::wan());
        let store = DistributedStore::new(network);
        let descriptor = MediaGenerator::new(1)
            .audio("speech", 4_000, 8_000)
            .describe();
        store
            .put_block(
                "alpha",
                MediaGenerator::new(1).audio("speech", 4_000, 8_000),
                descriptor.clone(),
            )
            .unwrap();
        store
            .put_block(
                "zulu",
                MediaGenerator::new(1).audio("speech", 4_000, 8_000),
                descriptor,
            )
            .unwrap();
        assert_eq!(store.replicas_of("speech"), vec!["alpha", "zulu"]);
        assert_eq!(
            store.nearest_source("reader", "speech").as_deref(),
            Some("zulu")
        );
        // Unknown destinations are rejected, default link or not.
        assert!(store.nearest_source("reader_typo", "speech").is_none());

        let cost = store.fetch_block("reader", "speech").unwrap();
        let traffic = store.traffic();
        assert_eq!(traffic.link("zulu", "reader").transfers, 1);
        assert_eq!(traffic.link("alpha", "reader"), LinkStats::default());
        assert!(
            cost < Link::wan().transfer_ms(32_000),
            "fetch was charged the WAN replica's cost"
        );
    }

    #[test]
    fn replication_copies_blocks_to_ring_chosen_hosts_and_charges_links() {
        let network = Network::uniform(&["a", "b", "c", "d"], Link::lan());
        let store = DistributedStore::with_replication(network, 3).unwrap();
        let block = MediaGenerator::new(2).audio("speech", 1_000, 8_000);
        let descriptor = block.describe();
        let cost = store.put_block("a", block, descriptor).unwrap();
        assert!(cost > 0);

        let replicas = store.replicas_of("speech");
        assert_eq!(replicas.len(), 3);
        assert!(
            replicas.contains(&"a".to_string()),
            "origin must hold a copy"
        );
        let traffic = store.traffic();
        assert_eq!(traffic.transfers, 2, "two replica copies moved");
        assert_eq!(traffic.media_bytes, 2 * 8_000);
        assert!(
            traffic.per_link().all(|(from, _, _)| from == "a"),
            "every replica transfer originates at the publishing host"
        );
    }

    #[test]
    fn replication_copies_documents_and_charges_structure_bytes() {
        let network = Network::uniform(&["a", "b", "c", "d"], Link::lan());
        let store = DistributedStore::with_replication(network, 2).unwrap();
        let size = store.publish_document("a", "news", &news_doc()).unwrap();
        let holders: Vec<&str> = ["a", "b", "c", "d"]
            .into_iter()
            .filter(|h| store.documents_on(h).unwrap().contains(&"news".to_string()))
            .collect();
        assert_eq!(holders.len(), 2);
        assert!(holders.contains(&"a"), "origin must hold the document");
        let traffic = store.traffic();
        assert_eq!(traffic.transfers, 1);
        assert_eq!(traffic.structure_bytes, size as u64);
        assert_eq!(traffic.media_bytes, 0);
    }

    #[test]
    fn local_descriptor_reads_record_no_traffic() {
        let store = cluster();
        seed_media(&store, "server");
        store.reset_traffic();
        // The server already holds the block: a descriptor "fetch" to it is
        // a local read, not a transfer.
        let descriptor = store.fetch_descriptor("server", "speech").unwrap();
        assert_eq!(descriptor.medium, MediaKind::Audio);
        let traffic = store.traffic();
        assert_eq!(traffic.transfers, 0);
        assert_eq!(traffic.links_used(), 0);
    }

    #[test]
    fn unreachable_holders_surface_as_unreachable_not_unknown() {
        let mut network = Network::new();
        network.add_host("a");
        network.add_host("b");
        network.add_host("c");
        network.connect("a", "b", Link::lan());
        let store = DistributedStore::new(network);
        let block = MediaGenerator::new(6).audio("speech", 1_000, 8_000);
        let descriptor = block.describe();
        store.put_block("c", block, descriptor).unwrap();
        // The block exists — the problem is topology, and the error says so.
        assert!(matches!(
            store.fetch_block("a", "speech").unwrap_err(),
            DistribError::Unreachable { .. }
        ));
        assert!(matches!(
            store.fetch_descriptor("a", "speech").unwrap_err(),
            DistribError::Unreachable { .. }
        ));
        // A block nobody holds is still UnknownBlock.
        assert!(matches!(
            store.fetch_block("a", "missing").unwrap_err(),
            DistribError::Media(MediaError::UnknownBlock { .. })
        ));
    }

    #[test]
    fn local_replica_serves_descriptors_even_over_free_links() {
        // Zero-latency links make every source cost 0; the destination's
        // own copy must still win so no phantom transfer is recorded.
        let free = Link {
            latency_ms: 0,
            bandwidth_bps: u64::MAX,
        };
        let store = DistributedStore::new(Network::uniform(&["alpha", "desk"], free));
        let descriptor = MediaGenerator::new(8)
            .audio("speech", 1_000, 8_000)
            .describe();
        store
            .put_block(
                "alpha",
                MediaGenerator::new(8).audio("speech", 1_000, 8_000),
                descriptor.clone(),
            )
            .unwrap();
        store
            .put_block(
                "desk",
                MediaGenerator::new(8).audio("speech", 1_000, 8_000),
                descriptor,
            )
            .unwrap();
        store.fetch_descriptor("desk", "speech").unwrap();
        assert_eq!(store.traffic().transfers, 0);
        assert_eq!(store.traffic().links_used(), 0);
    }

    #[test]
    fn unreachable_replica_targets_fail_before_any_state_changes() {
        // No default link and only a partial topology: some ring-chosen
        // replica target is unreachable from `a`.
        let mut network = Network::new();
        network.add_host("a");
        network.add_host("b");
        network.add_host("c");
        network.connect("a", "b", Link::lan());
        let store = DistributedStore::with_replication(network, 3).unwrap();
        let block = MediaGenerator::new(4).audio("speech", 1_000, 8_000);
        let descriptor = block.describe();
        let err = store.put_block("a", block, descriptor.clone()).unwrap_err();
        assert!(matches!(err, DistribError::Unreachable { .. }));
        // The failed put left nothing behind: no holders, no traffic, and
        // the origin can retry once the topology is fixed.
        assert!(store.replicas_of("speech").is_empty());
        assert!(store.local_blocks("a").unwrap().is_empty());
        assert_eq!(store.traffic().transfers, 0);
        let retry = MediaGenerator::new(4).audio("speech", 1_000, 8_000);
        assert!(matches!(
            store.put_block("a", retry, descriptor).unwrap_err(),
            DistribError::Unreachable { .. },
        ));
    }

    #[test]
    fn unreachable_publish_targets_fail_before_any_state_changes() {
        let mut network = Network::new();
        network.add_host("a");
        network.add_host("b");
        network.add_host("c");
        network.connect("a", "b", Link::lan());
        let store = DistributedStore::with_replication(network, 3).unwrap();
        let err = store
            .publish_document("a", "news", &news_doc())
            .unwrap_err();
        assert!(matches!(err, DistribError::Unreachable { .. }));
        // No host holds the document and nothing was charged, so a retry
        // after fixing the topology does not double-count traffic.
        for host in ["a", "b", "c"] {
            assert!(store.documents_on(host).unwrap().is_empty());
        }
        assert_eq!(store.traffic().transfers, 0);
        assert_eq!(store.traffic().structure_bytes, 0);
    }

    #[test]
    fn invalid_replication_factors_are_rejected() {
        let network = Network::uniform(&["a", "b", "c"], Link::lan());
        assert!(matches!(
            DistributedStore::with_replication(network.clone(), 0).unwrap_err(),
            DistribError::InvalidReplication {
                requested: 0,
                hosts: 3
            }
        ));
        assert!(matches!(
            DistributedStore::with_replication(network.clone(), 4).unwrap_err(),
            DistribError::InvalidReplication {
                requested: 4,
                hosts: 3
            }
        ));
        assert!(DistributedStore::with_replication(network, 3).is_ok());
        // Duplicate host names must not inflate the satisfiable factor.
        let duplicated = Network::uniform(&["a", "a", "b"], Link::lan());
        assert!(matches!(
            DistributedStore::with_replication(duplicated, 3).unwrap_err(),
            DistribError::InvalidReplication {
                requested: 3,
                hosts: 2
            }
        ));
    }

    #[test]
    fn documents_publish_as_binary_wire_bytes_by_default() {
        let store = cluster();
        let doc = news_doc();
        let size = store.publish_document("server", "news", &doc).unwrap();
        // The stored bytes open with the binary magic.
        let shard = store.shards.get("server").unwrap();
        let documents = shard.documents.read();
        let bytes = documents.get(&Symbol::intern("news")).unwrap();
        assert_eq!(
            cmif_format::WireEncoding::detect(bytes),
            WireEncoding::Binary
        );
        assert_eq!(bytes.len(), size);
        drop(documents);
        // And they decode back to the same document.
        let opened = store.open_document("server", "news").unwrap();
        assert_eq!(
            cmif_format::write_document(&opened).unwrap(),
            cmif_format::write_document(&doc).unwrap()
        );
    }

    #[test]
    fn binary_publishing_moves_fewer_structure_bytes_than_text() {
        let doc = news_doc();
        let network = Network::uniform(&["server", "desk", "laptop"], Link::lan());
        let binary_store = DistributedStore::new(network.clone());
        let text_store = DistributedStore::new(network).with_wire_encoding(WireEncoding::Text);
        assert_eq!(binary_store.wire_encoding(), WireEncoding::Binary);
        assert_eq!(text_store.wire_encoding(), WireEncoding::Text);

        let binary_size = binary_store
            .publish_document("server", "news", &doc)
            .unwrap();
        let text_size = text_store.publish_document("server", "news", &doc).unwrap();
        assert!(
            binary_size < text_size,
            "binary wire form ({binary_size} B) must beat text ({text_size} B)"
        );

        // TrafficStats record the smaller binary byte count on transport.
        binary_store.reset_traffic();
        text_store.reset_traffic();
        binary_store
            .transport_document("server", "desk", "news")
            .unwrap();
        text_store
            .transport_document("server", "desk", "news")
            .unwrap();
        assert_eq!(binary_store.traffic().structure_bytes, binary_size as u64);
        assert!(binary_store.traffic().structure_bytes < text_store.traffic().structure_bytes);
    }

    #[test]
    fn text_published_documents_stay_text_and_still_open_everywhere() {
        let store = cluster().with_wire_encoding(WireEncoding::Text);
        store
            .publish_document("server", "news", &news_doc())
            .unwrap();
        let received = store.transport_document("server", "desk", "news").unwrap();
        assert_eq!(received.leaves().len(), 2);
        // The destination holds the same text bytes the origin published.
        let shard = store.shards.get("desk").unwrap();
        let documents = shard.documents.read();
        let bytes = documents.get(&Symbol::intern("news")).unwrap();
        assert_eq!(cmif_format::WireEncoding::detect(bytes), WireEncoding::Text);
        drop(documents);
        assert!(store.open_document("desk", "news").is_ok());
    }

    #[test]
    fn writes_to_one_host_do_not_block_reads_of_another() {
        let store = Arc::new(cluster());
        store.publish_document("desk", "news", &news_doc()).unwrap();

        // Hold host `server`'s document write lock, as a publisher stuck
        // mid-write would, and read host `desk` from another thread. Under
        // the old global `RwLock<BTreeMap<HostId, HostStore>>` this
        // deadlocks until the guard drops; sharded, it must complete.
        let server_guard = store
            .shards
            .get("server")
            .expect("server shard exists")
            .documents
            .write();
        let (tx, rx) = mpsc::channel();
        let reader_store = Arc::clone(&store);
        let reader = thread::spawn(move || {
            let names = reader_store.documents_on("desk").unwrap();
            let doc = reader_store.open_document("desk", "news").unwrap();
            tx.send((names, doc.leaves().len())).unwrap();
        });
        let (names, leaves) = rx
            .recv_timeout(Duration::from_secs(10))
            .expect("reading host `desk` blocked behind a write lock on host `server`");
        drop(server_guard);
        reader.join().unwrap();
        assert_eq!(names, vec!["news"]);
        assert_eq!(leaves, 2);
    }
}
