//! Error types for the distributed store.

use std::fmt;

use cmif_core::error::CoreError;
use cmif_format::FormatError;
use cmif_media::MediaError;

/// Result alias used throughout `cmif-distrib`.
pub type Result<T> = std::result::Result<T, DistribError>;

/// One failed attempt from a degraded fetch's retry walk, kept in the
/// error so callers (and tests) can see exactly which replicas were tried,
/// in what order, and why each failed.
#[derive(Debug, Clone, PartialEq)]
pub struct FetchAttempt {
    /// 1-based attempt number within the fetch.
    pub attempt: u32,
    /// The replica host the attempt pulled from.
    pub source: String,
    /// Why the attempt failed.
    pub error: Box<DistribError>,
    /// Simulated backoff charged before this attempt.
    pub backoff_ms: u64,
}

impl fmt::Display for FetchAttempt {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "attempt {} from `{}` failed after {} ms backoff: {}",
            self.attempt, self.source, self.backoff_ms, self.error
        )
    }
}

fn write_attempts(f: &mut fmt::Formatter<'_>, attempts: &[FetchAttempt]) -> fmt::Result {
    for attempt in attempts {
        write!(f, "; {attempt}")?;
    }
    Ok(())
}

/// Errors raised by the simulated distributed store.
#[derive(Debug, Clone, PartialEq)]
pub enum DistribError {
    /// The named host is not part of the cluster.
    UnknownHost {
        /// The unknown host name.
        host: String,
    },
    /// Two hosts have no (direct or default) link between them.
    Unreachable {
        /// The sending host.
        from: String,
        /// The receiving host.
        to: String,
    },
    /// A replication factor that the cluster cannot satisfy (zero, or more
    /// replicas than hosts).
    InvalidReplication {
        /// The requested number of replicas per block/document.
        requested: usize,
        /// The number of hosts in the cluster.
        hosts: usize,
    },
    /// A host does not hold the named document.
    UnknownDocument {
        /// The host queried.
        host: String,
        /// The missing document name.
        name: String,
    },
    /// The host is marked down (by the health machine, an operator, or a
    /// fault plan) and cannot serve or receive transfers. Retryable: a
    /// fetch moves on to the next replica.
    HostDown {
        /// The down host.
        host: String,
    },
    /// A single transfer was cut by an active network partition.
    /// Retryable: a replica on this side of the split may still serve.
    TransferPartitioned {
        /// The sending host.
        from: String,
        /// The receiving host.
        to: String,
    },
    /// A transfer died mid-flight (injected fault or flaky link). The
    /// bytes were charged to the link as failed traffic. Retryable.
    TransferFailed {
        /// The sending host.
        from: String,
        /// The receiving host.
        to: String,
        /// Bytes that were in flight when the transfer died.
        bytes: u64,
    },
    /// A fetch exhausted its retry budget without any replica delivering.
    /// At least one attempt failed for a retryable reason other than a
    /// partition; the trace lists every attempt in order.
    RetriesExhausted {
        /// The host that wanted the block.
        to: String,
        /// The block being fetched.
        key: String,
        /// Every failed attempt, in order.
        attempts: Vec<FetchAttempt>,
    },
    /// No replica of the block is reachable from the requesting host —
    /// every holder is either down or on the far side of a partition. The
    /// trace lists the per-replica outcomes that led to the verdict.
    Partitioned {
        /// The host that wanted the block.
        to: String,
        /// The block being fetched.
        key: String,
        /// Every failed attempt, in order (may be empty when every holder
        /// was excluded before a transfer was even attempted).
        attempts: Vec<FetchAttempt>,
    },
    /// A media-store error on one of the hosts.
    Media(MediaError),
    /// A document-model error.
    Core(CoreError),
    /// A document failed to parse or serialize during transport. The inner
    /// error keeps the lexer/parser source position (line, column, byte
    /// offset).
    Format(FormatError),
}

impl fmt::Display for DistribError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DistribError::UnknownHost { host } => write!(f, "host `{host}` is not in the cluster"),
            DistribError::Unreachable { from, to } => {
                write!(f, "hosts `{from}` and `{to}` are not connected")
            }
            DistribError::InvalidReplication { requested, hosts } => {
                write!(
                    f,
                    "replication factor {requested} cannot be satisfied by a cluster of {hosts} host(s)"
                )
            }
            DistribError::UnknownDocument { host, name } => {
                write!(f, "host `{host}` does not hold document `{name}`")
            }
            DistribError::HostDown { host } => write!(f, "host `{host}` is down"),
            DistribError::TransferPartitioned { from, to } => {
                write!(
                    f,
                    "transfer `{from}` -> `{to}` blocked by a network partition"
                )
            }
            DistribError::TransferFailed { from, to, bytes } => {
                write!(
                    f,
                    "transfer `{from}` -> `{to}` failed mid-flight ({bytes} bytes lost)"
                )
            }
            DistribError::RetriesExhausted { to, key, attempts } => {
                write!(
                    f,
                    "fetch of `{key}` to `{to}` exhausted {} attempt(s)",
                    attempts.len()
                )?;
                write_attempts(f, attempts)
            }
            DistribError::Partitioned { to, key, attempts } => {
                write!(f, "no replica of `{key}` is reachable from `{to}`")?;
                write_attempts(f, attempts)
            }
            DistribError::Media(e) => write!(f, "media store error: {e}"),
            DistribError::Core(e) => write!(f, "document error: {e}"),
            DistribError::Format(e) => write!(f, "interchange format error: {e}"),
        }
    }
}

impl DistribError {
    /// True when a fetch may sensibly retry this failure against another
    /// replica (or the same one after backoff). Topology gaps
    /// ([`DistribError::Unreachable`]) are *not* retryable: a missing link
    /// is configuration, not weather, and retrying cannot create it.
    pub fn is_retryable(&self) -> bool {
        matches!(
            self,
            DistribError::HostDown { .. }
                | DistribError::TransferPartitioned { .. }
                | DistribError::TransferFailed { .. }
        )
    }
}

impl std::error::Error for DistribError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DistribError::Media(e) => Some(e),
            DistribError::Core(e) => Some(e),
            DistribError::Format(e) => Some(e),
            _ => None,
        }
    }
}

impl From<FormatError> for DistribError {
    fn from(e: FormatError) -> Self {
        DistribError::Format(e)
    }
}

impl From<MediaError> for DistribError {
    fn from(e: MediaError) -> Self {
        DistribError::Media(e)
    }
}

impl From<CoreError> for DistribError {
    fn from(e: CoreError) -> Self {
        DistribError::Core(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_hosts_and_documents() {
        let err = DistribError::UnknownHost { host: "vax".into() };
        assert!(err.to_string().contains("vax"));
        let err = DistribError::UnknownDocument {
            host: "a".into(),
            name: "news".into(),
        };
        assert!(err.to_string().contains("news"));
        let err = DistribError::Unreachable {
            from: "a".into(),
            to: "b".into(),
        };
        assert!(err.to_string().contains("not connected"));
        let err = DistribError::InvalidReplication {
            requested: 5,
            hosts: 3,
        };
        assert!(err.to_string().contains("replication factor 5"));
        assert!(err.to_string().contains("3 host"));
    }

    #[test]
    fn fault_errors_carry_their_attempt_trace() {
        let attempt = FetchAttempt {
            attempt: 1,
            source: "d2".into(),
            error: Box::new(DistribError::HostDown { host: "d2".into() }),
            backoff_ms: 0,
        };
        let err = DistribError::Partitioned {
            to: "desk".into(),
            key: "video-1".into(),
            attempts: vec![attempt.clone()],
        };
        let text = err.to_string();
        assert!(text.contains("no replica of `video-1`"));
        assert!(text.contains("attempt 1 from `d2`"));
        let err = DistribError::RetriesExhausted {
            to: "desk".into(),
            key: "video-1".into(),
            attempts: vec![attempt],
        };
        assert!(err.to_string().contains("exhausted 1 attempt"));
    }

    #[test]
    fn retryable_classification_excludes_topology_and_terminal_errors() {
        assert!(DistribError::HostDown { host: "a".into() }.is_retryable());
        assert!(DistribError::TransferFailed {
            from: "a".into(),
            to: "b".into(),
            bytes: 10,
        }
        .is_retryable());
        assert!(DistribError::TransferPartitioned {
            from: "a".into(),
            to: "b".into(),
        }
        .is_retryable());
        assert!(!DistribError::Unreachable {
            from: "a".into(),
            to: "b".into(),
        }
        .is_retryable());
        assert!(!DistribError::UnknownHost { host: "a".into() }.is_retryable());
        assert!(!DistribError::Partitioned {
            to: "a".into(),
            key: "k".into(),
            attempts: Vec::new(),
        }
        .is_retryable());
    }

    #[test]
    fn wraps_media_and_core_errors() {
        let err: DistribError = MediaError::UnknownBlock { key: "x".into() }.into();
        assert!(matches!(err, DistribError::Media(_)));
        let err: DistribError = CoreError::EmptyDocument.into();
        assert!(matches!(err, DistribError::Core(_)));
    }
}
