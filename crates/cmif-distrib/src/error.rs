//! Error types for the distributed store.

use std::fmt;

use cmif_core::error::CoreError;
use cmif_format::FormatError;
use cmif_media::MediaError;

/// Result alias used throughout `cmif-distrib`.
pub type Result<T> = std::result::Result<T, DistribError>;

/// Errors raised by the simulated distributed store.
#[derive(Debug, Clone, PartialEq)]
pub enum DistribError {
    /// The named host is not part of the cluster.
    UnknownHost {
        /// The unknown host name.
        host: String,
    },
    /// Two hosts have no (direct or default) link between them.
    Unreachable {
        /// The sending host.
        from: String,
        /// The receiving host.
        to: String,
    },
    /// A replication factor that the cluster cannot satisfy (zero, or more
    /// replicas than hosts).
    InvalidReplication {
        /// The requested number of replicas per block/document.
        requested: usize,
        /// The number of hosts in the cluster.
        hosts: usize,
    },
    /// A host does not hold the named document.
    UnknownDocument {
        /// The host queried.
        host: String,
        /// The missing document name.
        name: String,
    },
    /// A media-store error on one of the hosts.
    Media(MediaError),
    /// A document-model error.
    Core(CoreError),
    /// A document failed to parse or serialize during transport. The inner
    /// error keeps the lexer/parser source position (line, column, byte
    /// offset).
    Format(FormatError),
}

impl fmt::Display for DistribError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DistribError::UnknownHost { host } => write!(f, "host `{host}` is not in the cluster"),
            DistribError::Unreachable { from, to } => {
                write!(f, "hosts `{from}` and `{to}` are not connected")
            }
            DistribError::InvalidReplication { requested, hosts } => {
                write!(
                    f,
                    "replication factor {requested} cannot be satisfied by a cluster of {hosts} host(s)"
                )
            }
            DistribError::UnknownDocument { host, name } => {
                write!(f, "host `{host}` does not hold document `{name}`")
            }
            DistribError::Media(e) => write!(f, "media store error: {e}"),
            DistribError::Core(e) => write!(f, "document error: {e}"),
            DistribError::Format(e) => write!(f, "interchange format error: {e}"),
        }
    }
}

impl std::error::Error for DistribError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DistribError::Media(e) => Some(e),
            DistribError::Core(e) => Some(e),
            DistribError::Format(e) => Some(e),
            _ => None,
        }
    }
}

impl From<FormatError> for DistribError {
    fn from(e: FormatError) -> Self {
        DistribError::Format(e)
    }
}

impl From<MediaError> for DistribError {
    fn from(e: MediaError) -> Self {
        DistribError::Media(e)
    }
}

impl From<CoreError> for DistribError {
    fn from(e: CoreError) -> Self {
        DistribError::Core(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_hosts_and_documents() {
        let err = DistribError::UnknownHost { host: "vax".into() };
        assert!(err.to_string().contains("vax"));
        let err = DistribError::UnknownDocument {
            host: "a".into(),
            name: "news".into(),
        };
        assert!(err.to_string().contains("news"));
        let err = DistribError::Unreachable {
            from: "a".into(),
            to: "b".into(),
        };
        assert!(err.to_string().contains("not connected"));
        let err = DistribError::InvalidReplication {
            requested: 5,
            hosts: 3,
        };
        assert!(err.to_string().contains("replication factor 5"));
        assert!(err.to_string().contains("3 host"));
    }

    #[test]
    fn wraps_media_and_core_errors() {
        let err: DistribError = MediaError::UnknownBlock { key: "x".into() }.into();
        assert!(matches!(err, DistribError::Media(_)));
        let err: DistribError = CoreError::EmptyDocument.into();
        assert!(matches!(err, DistribError::Core(_)));
    }
}
