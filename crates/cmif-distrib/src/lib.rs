//! # cmif-distrib — the simulated distributed document and media store
//!
//! The paper's research-directions section (§6) plans a distributed
//! multimedia system on top of the Amoeba distributed OS and a distributed
//! DBMS: documents shared freely between hosts, media fetched on demand.
//! This crate simulates that environment so the transportability claims can
//! be measured without a 1991 machine room:
//!
//! * [`network`] — a latency/bandwidth cost model over a set of hosts;
//! * [`placement`] — a consistent-hash ring choosing which hosts hold each
//!   block/document replica;
//! * [`store`] — per-host shards (one lock per host, no global lock) with a
//!   block → holders placement index, configurable replication and
//!   nearest-replica fetching; documents travel as wire bytes (the compact
//!   binary form by default, canonical text on request — see
//!   [`WireEncoding`]), blocks move only when fetched;
//! * [`traffic`] — cluster-wide totals plus per-link `(from, to)` traffic
//!   accounting, delivered and failed transfers kept apart;
//! * [`transport`] — the structure-only vs structure-plus-data comparison
//!   (the `ext_distrib` benchmark);
//! * [`health`] — the per-host `Up → Suspect → Down` state machine driven
//!   by observed transfer failures;
//! * [`fault`] — deterministic, seeded fault injection (host kills,
//!   transfer failures/delays, partitions) layered on the network;
//! * [`retry`] — bounded retries with exponential backoff and jitter for
//!   degraded fetches;
//! * [`repair`] — the self-healing queue re-replicating under-replicated
//!   blocks/documents after a host loss.
//!
//! ```
//! use cmif_distrib::network::{Link, Network};
//! use cmif_distrib::store::DistributedStore;
//!
//! # fn main() -> Result<(), cmif_distrib::DistribError> {
//! let cluster = DistributedStore::new(Network::uniform(&["cwi", "home"], Link::wan()));
//! assert!(cluster.documents_on("home")?.is_empty());
//! # Ok(()) }
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod error;
pub mod fault;
pub mod health;
pub mod network;
pub mod placement;
pub mod repair;
pub mod retry;
pub mod store;
pub mod traffic;
pub mod transport;

pub use cmif_format::{WireDocument, WireEncoding, WireFormat};
pub use error::{DistribError, FetchAttempt, Result};
pub use fault::{FaultPlan, InjectedFault, TransferDecision};
pub use health::{HealthPolicy, HealthState, HealthTransition, HostHealth};
pub use network::{HostId, Link, Network};
pub use placement::PlacementRing;
pub use repair::{RepairAction, RepairItem, RepairQueue, RepairReport, RepairWorker};
pub use retry::RetryPolicy;
pub use store::{DistributedStore, FetchOutcome, FetchReport};
pub use traffic::{LinkStats, TrafficStats};
pub use transport::{compare_transport, referenced_keys, TransportComparison, TransportCost};
