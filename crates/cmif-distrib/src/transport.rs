//! Structure-only vs structure-plus-data transport comparison.
//!
//! The §6 experiment: a reader on another host wants to present a document.
//! Either the whole thing moves (structure plus every referenced media
//! block) or only the structure moves and blocks are fetched lazily — and
//! then only the blocks the local device can actually present.
//! [`compare_transport`] runs both strategies against the same cluster and
//! reports the bytes and simulated time each one costs.

use std::collections::BTreeSet;

use cmif_core::channel::MediaKind;
use cmif_core::node::NodeKind;
use cmif_core::symbol::Symbol;
use cmif_core::tree::Document;

use crate::error::Result;
use crate::store::DistributedStore;
use crate::traffic::TrafficStats;

/// The cost of one transport strategy.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct TransportCost {
    /// Bytes of document structure moved.
    pub structure_bytes: u64,
    /// Bytes of media moved.
    pub media_bytes: u64,
    /// Simulated transfer time in milliseconds.
    pub simulated_ms: u64,
    /// Number of media blocks moved.
    pub blocks_moved: usize,
}

impl TransportCost {
    /// Total bytes moved.
    pub fn total_bytes(&self) -> u64 {
        self.structure_bytes + self.media_bytes
    }
}

/// Side-by-side costs of the two strategies, with the full per-link
/// traffic breakdown of each phase.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct TransportComparison {
    /// Ship structure and every referenced block eagerly.
    pub eager: TransportCost,
    /// Ship structure only, then fetch just the presentable blocks.
    pub lazy: TransportCost,
    /// Per-link traffic recorded during the eager phase.
    pub eager_traffic: TrafficStats,
    /// Per-link traffic recorded during the lazy phase.
    pub lazy_traffic: TrafficStats,
}

impl TransportComparison {
    /// How many times more bytes the eager strategy moves.
    pub fn byte_ratio(&self) -> f64 {
        if self.lazy.total_bytes() == 0 {
            return f64::INFINITY;
        }
        self.eager.total_bytes() as f64 / self.lazy.total_bytes() as f64
    }
}

/// The descriptor keys referenced by a document's external nodes, optionally
/// restricted to media a device can present.
pub fn referenced_keys(doc: &Document, presentable: Option<&[MediaKind]>) -> Vec<Symbol> {
    let mut keys = BTreeSet::new();
    for leaf in doc.leaves() {
        if doc
            .node(leaf)
            .map(|n| n.kind != NodeKind::Ext)
            .unwrap_or(true)
        {
            continue;
        }
        let key = match doc.file_of(leaf) {
            Ok(Some(key)) => key,
            _ => continue,
        };
        if let Some(presentable) = presentable {
            let medium = doc.medium_of(leaf, &doc.catalog).unwrap_or(MediaKind::Text);
            if !presentable.contains(&medium) {
                continue;
            }
        }
        keys.insert(key);
    }
    // Symbol order is intern order; return the keys alphabetically so the
    // listing is deterministic across runs.
    let mut keys: Vec<Symbol> = keys.into_iter().collect();
    keys.sort_by_key(|key| key.as_str());
    keys
}

/// Runs both transport strategies for a published document and reports their
/// costs.
///
/// * `name` must already be published on `from` (see
///   [`DistributedStore::publish_document`]).
/// * `presentable` restricts the lazy strategy to the media the destination
///   device can present (e.g. only audio for a kiosk); `None` fetches every
///   referenced block lazily.
///
/// The function resets the store's traffic counters around each phase, so it
/// is intended for measurement setups rather than production transport.
pub fn compare_transport(
    store: &DistributedStore,
    doc: &Document,
    from: &str,
    to_eager: &str,
    to_lazy: &str,
    name: &str,
    presentable: Option<&[MediaKind]>,
) -> Result<TransportComparison> {
    // Eager: structure plus every referenced block.
    store.reset_traffic();
    store.transport_document(from, to_eager, name)?;
    let all_keys: BTreeSet<Symbol> = referenced_keys(doc, None).into_iter().collect();
    store.fetch_blocks_for(to_eager, &all_keys)?;
    let eager_traffic = store.traffic();
    let eager = TransportCost {
        structure_bytes: eager_traffic.structure_bytes,
        media_bytes: eager_traffic.media_bytes,
        simulated_ms: eager_traffic.simulated_ms,
        blocks_moved: all_keys.len(),
    };

    // Lazy: structure only, then just the presentable blocks.
    store.reset_traffic();
    store.transport_document(from, to_lazy, name)?;
    let wanted: BTreeSet<Symbol> = referenced_keys(doc, presentable).into_iter().collect();
    store.fetch_blocks_for(to_lazy, &wanted)?;
    let lazy_traffic = store.traffic();
    let lazy = TransportCost {
        structure_bytes: lazy_traffic.structure_bytes,
        media_bytes: lazy_traffic.media_bytes,
        simulated_ms: lazy_traffic.simulated_ms,
        blocks_moved: wanted.len(),
    };

    Ok(TransportComparison {
        eager,
        lazy,
        eager_traffic,
        lazy_traffic,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::{Link, Network};
    use cmif_core::prelude::*;
    use cmif_media::MediaGenerator;

    fn fixture() -> (DistributedStore, Document) {
        let store =
            DistributedStore::new(Network::uniform(&["server", "desk", "kiosk"], Link::lan()));
        let mut generator = MediaGenerator::new(3);
        let speech = generator.audio("speech", 5_000, 8_000);
        let descriptor = speech.describe();
        store.put_block("server", speech, descriptor).unwrap();
        let film = generator.video("film", 2_000, 160, 120, 25.0, 24);
        let descriptor = film.describe();
        store.put_block("server", film, descriptor).unwrap();

        let doc = store
            .with_local_store("server", |local| {
                let catalog = local.export_catalog();
                let mut builder = DocumentBuilder::new("news")
                    .channel("audio", MediaKind::Audio)
                    .channel("video", MediaKind::Video);
                for descriptor in catalog.iter() {
                    builder = builder.descriptor(descriptor.clone());
                }
                builder
                    .root_par(|story| {
                        story.ext("voice", "audio", "speech");
                        story.ext("shot", "video", "film");
                    })
                    .build()
                    .unwrap()
            })
            .unwrap();
        store.publish_document("server", "news", &doc).unwrap();
        (store, doc)
    }

    #[test]
    fn referenced_keys_respect_presentable_media() {
        let (_store, doc) = fixture();
        assert_eq!(
            referenced_keys(&doc, None),
            vec![Symbol::intern("film"), Symbol::intern("speech")]
        );
        assert_eq!(
            referenced_keys(&doc, Some(&[MediaKind::Audio])),
            vec![Symbol::intern("speech")]
        );
        assert!(referenced_keys(&doc, Some(&[MediaKind::Label])).is_empty());
    }

    #[test]
    fn lazy_transport_to_an_audio_device_moves_far_fewer_bytes() {
        let (store, doc) = fixture();
        let comparison = compare_transport(
            &store,
            &doc,
            "server",
            "desk",
            "kiosk",
            "news",
            Some(&[MediaKind::Audio]),
        )
        .unwrap();
        assert_eq!(comparison.eager.blocks_moved, 2);
        assert_eq!(comparison.lazy.blocks_moved, 1);
        assert!(comparison.eager.media_bytes > comparison.lazy.media_bytes);
        assert!(comparison.byte_ratio() > 10.0);
        assert!(comparison.eager.simulated_ms > comparison.lazy.simulated_ms);

        // Each phase's traffic rode exactly one directed link, and the
        // per-link counters agree with the phase totals.
        let eager_link = comparison.eager_traffic.link("server", "desk");
        assert_eq!(eager_link.media_bytes, comparison.eager.media_bytes);
        assert_eq!(eager_link.structure_bytes, comparison.eager.structure_bytes);
        assert_eq!(comparison.eager_traffic.links_used(), 1);
        // The eager phase left a replica of the speech on `desk`, so the
        // kiosk is served by the nearest holder (lexical tie-break on a
        // uniform LAN picks `desk` over `server`) — the media rides the
        // desk→kiosk link, only the structure comes from the server.
        let lazy_link = comparison.lazy_traffic.link("desk", "kiosk");
        assert_eq!(lazy_link.media_bytes, comparison.lazy.media_bytes);
        assert_eq!(
            comparison
                .lazy_traffic
                .link("server", "kiosk")
                .structure_bytes,
            comparison.lazy.structure_bytes
        );
        assert_eq!(comparison.lazy_traffic.links_used(), 2);
    }

    #[test]
    fn lazy_without_a_device_filter_still_defers_nothing_extra() {
        let (store, doc) = fixture();
        let comparison =
            compare_transport(&store, &doc, "server", "desk", "kiosk", "news", None).unwrap();
        // Same blocks move either way; the strategies differ only in when.
        assert_eq!(comparison.eager.blocks_moved, comparison.lazy.blocks_moved);
        assert_eq!(comparison.eager.media_bytes, comparison.lazy.media_bytes);
    }
}
