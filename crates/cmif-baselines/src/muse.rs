//! A Muse-style flat timeline format.
//!
//! §3.2 compares CMIF with Muse [Hodges89], "where a time line concept is
//! employed for synchronization". The essential difference: a timeline
//! format pins every event to absolute start/stop times on named tracks,
//! with no structure, no tolerance windows and no controlling/controlled
//! relationships. [`MuseTimeline`] implements that model (populated from a
//! CMIF schedule), so the benches can measure what is lost and what editing
//! costs when a document is retargeted.

use std::collections::BTreeMap;

use cmif_core::node::NodeId;
use cmif_core::time::TimeMs;
use cmif_scheduler::Schedule;

/// One cue on a Muse-style timeline: absolute times on a named track.
#[derive(Debug, Clone, PartialEq)]
pub struct TimelineCue {
    /// The track (channel) the cue plays on.
    pub track: String,
    /// The presented block (leaf node in the originating document).
    pub node: NodeId,
    /// Human-readable label.
    pub label: String,
    /// Absolute start time.
    pub start: TimeMs,
    /// Absolute stop time.
    pub stop: TimeMs,
}

/// A flat timeline document.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct MuseTimeline {
    /// Cues in start-time order.
    pub cues: Vec<TimelineCue>,
}

impl MuseTimeline {
    /// Builds a timeline from a CMIF schedule — the conversion throws away
    /// the tree, the arcs and the tolerance windows and keeps only the
    /// solved absolute times.
    pub fn from_schedule(schedule: &Schedule) -> MuseTimeline {
        let mut cues: Vec<TimelineCue> = schedule
            .entries
            .iter()
            .map(|entry| TimelineCue {
                track: entry.channel.as_str().to_string(),
                node: entry.node,
                label: entry.name.as_str().to_string(),
                start: entry.begin,
                stop: entry.end,
            })
            .collect();
        cues.sort_by_key(|cue| (cue.start, cue.node));
        MuseTimeline { cues }
    }

    /// Number of cues.
    pub fn len(&self) -> usize {
        self.cues.len()
    }

    /// True when the timeline has no cues.
    pub fn is_empty(&self) -> bool {
        self.cues.is_empty()
    }

    /// The cues of one track, in time order.
    pub fn track(&self, name: &str) -> Vec<&TimelineCue> {
        self.cues.iter().filter(|c| c.track == name).collect()
    }

    /// Total duration of the timeline.
    pub fn duration(&self) -> TimeMs {
        self.cues
            .iter()
            .map(|c| c.stop)
            .max()
            .unwrap_or(TimeMs::ZERO)
    }

    /// Simulates the edit a timeline author must perform when one block's
    /// duration changes by `delta_ms`: every cue that starts at or after the
    /// changed cue's stop time must be moved by hand (absolute times know
    /// nothing about *why* they were placed where they are). Returns the
    /// number of cues whose times had to be edited (including the changed
    /// cue itself).
    ///
    /// The CMIF equivalent is zero hand edits: the duration lives in one
    /// data descriptor and the scheduler re-derives every other time.
    pub fn retarget_cost(&self, changed: NodeId, delta_ms: i64) -> usize {
        let changed_cue = match self.cues.iter().find(|c| c.node == changed) {
            Some(cue) => cue.clone(),
            None => return 0,
        };
        let mut edited = 1; // the changed cue itself
        if delta_ms == 0 {
            return edited;
        }
        for cue in &self.cues {
            if cue.node != changed && cue.start >= changed_cue.stop {
                edited += 1;
            }
        }
        edited
    }

    /// Applies the retarget edit, shifting affected cues (what the hand
    /// edits of [`MuseTimeline::retarget_cost`] would produce).
    pub fn retarget(&mut self, changed: NodeId, delta_ms: i64) {
        let changed_stop = match self.cues.iter().find(|c| c.node == changed) {
            Some(cue) => cue.stop,
            None => return,
        };
        for cue in &mut self.cues {
            if cue.node == changed {
                cue.stop = TimeMs::from_millis(cue.stop.as_millis() + delta_ms);
            } else if cue.start >= changed_stop {
                cue.start = TimeMs::from_millis(cue.start.as_millis() + delta_ms);
                cue.stop = TimeMs::from_millis(cue.stop.as_millis() + delta_ms);
            }
        }
        self.cues.sort_by_key(|cue| (cue.start, cue.node));
    }

    /// Renders the timeline as text, one track per block.
    pub fn render(&self) -> String {
        let mut by_track: BTreeMap<&str, Vec<&TimelineCue>> = BTreeMap::new();
        for cue in &self.cues {
            by_track.entry(cue.track.as_str()).or_default().push(cue);
        }
        let mut out = String::new();
        for (track, cues) in by_track {
            out.push_str(&format!("track {track}\n"));
            for cue in cues {
                out.push_str(&format!("  {} .. {}  {}\n", cue.start, cue.stop, cue.label));
            }
        }
        out
    }
}

/// What the conversion from CMIF to a flat timeline loses.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct TimelineLoss {
    /// Interior structure nodes (seq/par grouping) that have no counterpart.
    pub structure_nodes_lost: usize,
    /// Explicit synchronization arcs (and their Must/May + δ/ε windows)
    /// that have no counterpart.
    pub arcs_lost: usize,
    /// Styles that have no counterpart.
    pub styles_lost: usize,
}

/// Measures the information lost converting a document to a flat timeline.
pub fn conversion_loss(doc: &cmif_core::tree::Document) -> TimelineLoss {
    let interior = doc
        .preorder()
        .into_iter()
        .filter(|id| doc.node(*id).map(|n| !n.kind.is_leaf()).unwrap_or(false))
        .count();
    TimelineLoss {
        structure_nodes_lost: interior,
        arcs_lost: doc.arcs().len(),
        styles_lost: doc.styles.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cmif_core::prelude::*;
    use cmif_scheduler::{ConstraintGraph, ScheduleOptions};

    fn doc() -> Document {
        DocumentBuilder::new("news")
            .channel("audio", MediaKind::Audio)
            .channel("caption", MediaKind::Text)
            .descriptor(
                DataDescriptor::new("s1", MediaKind::Audio, "pcm8")
                    .with_duration(TimeMs::from_secs(4)),
            )
            .descriptor(
                DataDescriptor::new("s2", MediaKind::Audio, "pcm8")
                    .with_duration(TimeMs::from_secs(3)),
            )
            .style(StyleDef::new("caption-style"))
            .root_seq(|news| {
                news.par("story-1", |s| {
                    s.ext("voice", "audio", "s1");
                    s.imm_text("line", "caption", "one", 2_000);
                });
                news.par("story-2", |s| {
                    s.ext("voice", "audio", "s2");
                    s.imm_text("line", "caption", "two", 2_000);
                });
            })
            .build()
            .unwrap()
    }

    fn timeline(d: &Document) -> MuseTimeline {
        let solved = ConstraintGraph::derive(d, &d.catalog, &ScheduleOptions::default())
            .unwrap()
            .solve(d, &d.catalog)
            .unwrap();
        MuseTimeline::from_schedule(&solved.schedule)
    }

    #[test]
    fn conversion_produces_absolute_cues_per_track() {
        let d = doc();
        let t = timeline(&d);
        assert_eq!(t.len(), 4);
        assert_eq!(t.track("audio").len(), 2);
        assert_eq!(t.track("caption").len(), 2);
        assert_eq!(t.duration(), TimeMs::from_secs(7));
        let second_voice = t.track("audio")[1];
        assert_eq!(second_voice.start, TimeMs::from_secs(4));
        let text = t.render();
        assert!(text.contains("track audio"));
        assert!(text.contains("4s .. 7s"));
    }

    #[test]
    fn retarget_cost_counts_downstream_cues() {
        let d = doc();
        let t = timeline(&d);
        let first_voice = d.find("/story-1/voice").unwrap();
        // Making story-1's voice longer forces hand edits of every cue that
        // follows it: story-2's voice and caption, plus the changed cue.
        assert_eq!(t.retarget_cost(first_voice, 1_000), 3);
        // Changing the last block touches only itself.
        let second_voice = d.find("/story-2/voice").unwrap();
        assert_eq!(t.retarget_cost(second_voice, 1_000), 1);
        // Unknown nodes cost nothing; zero deltas touch only the cue itself.
        assert_eq!(t.retarget_cost(NodeId::from_index(999), 1_000), 0);
        assert_eq!(t.retarget_cost(first_voice, 0), 1);
    }

    #[test]
    fn retarget_shifts_downstream_cues() {
        let d = doc();
        let mut t = timeline(&d);
        let first_voice = d.find("/story-1/voice").unwrap();
        t.retarget(first_voice, 1_000);
        assert_eq!(t.duration(), TimeMs::from_secs(8));
        let second_voice = d.find("/story-2/voice").unwrap();
        let cue = t.cues.iter().find(|c| c.node == second_voice).unwrap();
        assert_eq!(cue.start, TimeMs::from_secs(5));
        // The CMIF path: change the descriptor duration and re-solve; no cue
        // arithmetic, and the result agrees.
        let mut d2 = doc();
        d2.catalog.upsert(
            DataDescriptor::new("s1", MediaKind::Audio, "pcm8").with_duration(TimeMs::from_secs(5)),
        );
        let solved = ConstraintGraph::derive(&d2, &d2.catalog, &ScheduleOptions::default())
            .unwrap()
            .solve(&d2, &d2.catalog)
            .unwrap();
        assert_eq!(solved.schedule.total_duration, TimeMs::from_secs(8));
    }

    #[test]
    fn conversion_loss_counts_structure_arcs_and_styles() {
        let mut d = doc();
        let line = d.find("/story-2/line").unwrap();
        d.add_arc(line, SyncArc::hard_start("../voice", ""))
            .unwrap();
        let loss = conversion_loss(&d);
        assert_eq!(loss.structure_nodes_lost, 3); // root + two stories
        assert_eq!(loss.arcs_lost, 1);
        assert_eq!(loss.styles_lost, 1);
    }

    #[test]
    fn empty_timeline() {
        let t = MuseTimeline::default();
        assert!(t.is_empty());
        assert_eq!(t.duration(), TimeMs::ZERO);
    }
}
