//! # cmif-baselines — the comparison formats of §3.2
//!
//! The paper positions CMIF against two families of contemporary formats:
//!
//! * timeline systems (Muse) — absolute times on tracks, no structure, no
//!   tolerance windows: [`muse`];
//! * static structured documents (FrameMaker MIF, Diamond messages) —
//!   hierarchy and content but "without explicit time constraints":
//!   [`mif`].
//!
//! Both are implemented here, together with converters *from* CMIF and
//! loss/retargeting metrics, so the `cmp_baselines` benchmark can put
//! numbers on the qualitative comparison the paper makes.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod mif;
pub mod muse;

pub use mif::{convert as to_static, StaticConversion, StaticDocument, StaticElement};
pub use muse::{conversion_loss, MuseTimeline, TimelineCue, TimelineLoss};
