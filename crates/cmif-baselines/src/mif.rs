//! A MIF/Diamond-style static structured document format.
//!
//! §3.2 also compares CMIF with FrameMaker's MIF [Frame89] and the Diamond
//! multimedia message system [Thomas85]: structured documents that carry
//! text and graphics "without explicit time constraints" — pages of frames,
//! no channels, no synchronization. [`StaticDocument`] implements that
//! model. Converting a CMIF document into it keeps the hierarchy and the
//! content references but drops everything temporal, which
//! [`StaticConversion`] quantifies.

use cmif_core::error::Result;
use cmif_core::node::{NodeId, NodeKind};
use cmif_core::tree::Document;

/// One element of the static document.
#[derive(Debug, Clone, PartialEq)]
pub enum StaticElement {
    /// A grouping element (was a seq or par node).
    Group {
        /// The group's name.
        name: String,
        /// Nested elements.
        children: Vec<StaticElement>,
    },
    /// A text paragraph (was an immediate text node).
    Paragraph {
        /// The paragraph text.
        text: String,
    },
    /// An anchored frame referencing external content (was an external
    /// node).
    Frame {
        /// The referenced data descriptor key.
        reference: String,
        /// A caption derived from the node name.
        caption: String,
    },
}

impl StaticElement {
    /// Counts the elements in this subtree (including `self`).
    pub fn count(&self) -> usize {
        match self {
            StaticElement::Group { children, .. } => {
                1 + children.iter().map(StaticElement::count).sum::<usize>()
            }
            _ => 1,
        }
    }
}

/// A static, pageable document: structure and content, no time.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct StaticDocument {
    /// Top-level elements.
    pub elements: Vec<StaticElement>,
}

impl StaticDocument {
    /// Total number of elements.
    pub fn len(&self) -> usize {
        self.elements.iter().map(StaticElement::count).sum()
    }

    /// True when the document is empty.
    pub fn is_empty(&self) -> bool {
        self.elements.is_empty()
    }

    /// Renders the document as indented text (a crude page view).
    pub fn render(&self) -> String {
        fn render_element(element: &StaticElement, depth: usize, out: &mut String) {
            let indent = "  ".repeat(depth);
            match element {
                StaticElement::Group { name, children } => {
                    out.push_str(&format!("{indent}# {name}\n"));
                    for child in children {
                        render_element(child, depth + 1, out);
                    }
                }
                StaticElement::Paragraph { text } => {
                    out.push_str(&format!("{indent}{text}\n"));
                }
                StaticElement::Frame { reference, caption } => {
                    out.push_str(&format!("{indent}[frame: {caption} <{reference}>]\n"));
                }
            }
        }
        let mut out = String::new();
        for element in &self.elements {
            render_element(element, 0, &mut out);
        }
        out
    }
}

/// What converting a CMIF document to the static format keeps and loses.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct StaticConversion {
    /// Elements the static document keeps.
    pub elements_kept: usize,
    /// Synchronization channels dropped (the format has none).
    pub channels_lost: usize,
    /// Explicit arcs dropped.
    pub arcs_lost: usize,
    /// Leaves whose timing (duration attributes, descriptor durations)
    /// became meaningless.
    pub timed_leaves_lost: usize,
    /// Continuous-media leaves (audio/video) the static format cannot
    /// present at all.
    pub continuous_media_lost: usize,
}

/// Converts a CMIF document into a static document plus a loss report.
pub fn convert(doc: &Document) -> Result<(StaticDocument, StaticConversion)> {
    let root = doc.root()?;
    let element = convert_node(doc, root)?;
    let mut report = StaticConversion {
        elements_kept: element.count(),
        channels_lost: doc.channels.len(),
        arcs_lost: doc.arcs().len(),
        ..StaticConversion::default()
    };
    for leaf in doc.leaves() {
        if doc.duration_of(leaf, &doc.catalog)?.is_some() {
            report.timed_leaves_lost += 1;
        }
        let medium = doc.medium_of(leaf, &doc.catalog)?;
        if medium.is_continuous() {
            report.continuous_media_lost += 1;
        }
    }
    Ok((
        StaticDocument {
            elements: vec![element],
        },
        report,
    ))
}

fn convert_node(doc: &Document, id: NodeId) -> Result<StaticElement> {
    let node = doc.node(id)?;
    let name = node.name().unwrap_or("(unnamed)").to_string();
    Ok(match &node.kind {
        NodeKind::Seq | NodeKind::Par => {
            let mut children = Vec::new();
            for child in node.children.clone() {
                children.push(convert_node(doc, child)?);
            }
            StaticElement::Group { name, children }
        }
        NodeKind::Imm(data) => StaticElement::Paragraph {
            text: data
                .as_text()
                .map(str::to_string)
                .unwrap_or_else(|| format!("({} bytes of inline data)", data.len())),
        },
        NodeKind::Ext => StaticElement::Frame {
            reference: doc
                .file_of(id)?
                .map(|key| key.as_str().to_string())
                .unwrap_or_else(|| "?".to_string()),
            caption: name,
        },
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use cmif_core::arc::SyncArc;
    use cmif_core::prelude::*;

    fn doc() -> Document {
        let mut doc = DocumentBuilder::new("news")
            .channel("audio", MediaKind::Audio)
            .channel("video", MediaKind::Video)
            .channel("caption", MediaKind::Text)
            .descriptor(
                DataDescriptor::new("speech", MediaKind::Audio, "pcm8")
                    .with_duration(TimeMs::from_secs(5)),
            )
            .descriptor(
                DataDescriptor::new("film", MediaKind::Video, "rgb24")
                    .with_duration(TimeMs::from_secs(5)),
            )
            .root_seq(|news| {
                news.par("story-1", |s| {
                    s.ext("voice", "audio", "speech");
                    s.ext("shot", "video", "film");
                    s.imm_text("line", "caption", "Paintings stolen", 3_000);
                });
            })
            .build()
            .unwrap();
        let line = doc.find("/story-1/line").unwrap();
        doc.add_arc(line, SyncArc::hard_start("../voice", ""))
            .unwrap();
        doc
    }

    #[test]
    fn conversion_keeps_structure_and_content_references() {
        let (static_doc, report) = convert(&doc()).unwrap();
        assert_eq!(report.elements_kept, 5);
        assert_eq!(static_doc.len(), 5);
        let text = static_doc.render();
        assert!(text.contains("# news"));
        assert!(text.contains("# story-1"));
        assert!(text.contains("[frame: voice <speech>]"));
        assert!(text.contains("Paintings stolen"));
    }

    #[test]
    fn conversion_reports_what_is_lost() {
        let (_, report) = convert(&doc()).unwrap();
        assert_eq!(report.channels_lost, 3);
        assert_eq!(report.arcs_lost, 1);
        assert_eq!(report.timed_leaves_lost, 3);
        assert_eq!(report.continuous_media_lost, 2);
    }

    #[test]
    fn binary_immediate_data_becomes_a_placeholder_paragraph() {
        let mut d = DocumentBuilder::new("x")
            .channel("label", MediaKind::Label)
            .root_par(|root| {
                root.imm_text("t", "label", "text", 100);
            })
            .build()
            .unwrap();
        let root = d.root().unwrap();
        let blob = d.add_imm_binary(root, vec![1, 2, 3]).unwrap();
        d.set_attr(blob, AttrName::Channel, AttrValue::Id("label".into()))
            .unwrap();
        let (static_doc, _) = convert(&d).unwrap();
        assert!(static_doc.render().contains("(3 bytes of inline data)"));
    }

    #[test]
    fn empty_static_document() {
        let d = StaticDocument::default();
        assert!(d.is_empty());
        assert_eq!(d.len(), 0);
        assert_eq!(d.render(), "");
    }
}
