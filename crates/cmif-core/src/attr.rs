//! Attribute names and per-node attribute lists.
//!
//! "Each of the attribute fields in the node contains a pointer to a list of
//! attribute definitions. These definitions generally contain an attribute
//! name, followed by an attribute value. […] One requirement of attribute
//! lists is that each name may occur at most once in each list for each
//! node." (§5.2)
//!
//! This module provides:
//!
//! * [`AttrName`] — the standard attribute vocabulary from Figure 7 plus
//!   arbitrary custom attributes ("a node can have arbitrary attributes");
//! * [`Attr`] — a name/value pair;
//! * [`AttrList`] — an ordered list enforcing the at-most-once rule;
//! * metadata about every standard attribute: whether it is inherited by
//!   descendants and whether it may only appear on the root node.

use std::fmt;

use crate::error::{CoreError, Result};
use crate::node::NodeId;
use crate::symbol::Symbol;
use crate::value::AttrValue;

/// Names of node attributes.
///
/// The unit variants are the standard attributes from Figure 7 of the paper
/// (plus `SyncArc` and `Duration`, which the paper describes in §5.3 without
/// listing in the table). `Custom` covers the "arbitrary attributes" the
/// format explicitly allows and simply passes through to tools.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum AttrName {
    /// Optional node name, unique among the direct children of one parent;
    /// used by synchronization arcs to reference nodes.
    Name,
    /// Root-only dictionary defining named styles (sets of attributes).
    StyleDictionary,
    /// One or more styles to apply to the current node.
    Style,
    /// Root-only dictionary defining synchronization channels and the medium
    /// each carries.
    ChannelDictionary,
    /// The channel the node's data is directed to; inherited by children.
    Channel,
    /// The file / data-descriptor key used by external nodes; inherited.
    File,
    /// Shorthand list of text formatting parameters (font, size, indent,
    /// vspace) for the text formatting channel.
    TFormatting,
    /// Subsection of a file used by an external node with binary data.
    Slice,
    /// Sub-image of an image.
    Crop,
    /// Part of a sound fragment.
    Clip,
    /// Explicit synchronization arc(s) attached to this node (§5.3.2).
    SyncArc,
    /// Intrinsic duration of the node's data on the document clock, in
    /// milliseconds. Usually copied from the data descriptor by authoring
    /// tools so that structure-only processing does not need the data.
    Duration,
    /// Any other attribute, passed through uninterpreted (interned).
    Custom(Symbol),
}

impl AttrName {
    /// The canonical lower-case spelling used in the interchange format.
    pub fn as_str(&self) -> &'static str {
        match self {
            AttrName::Name => "name",
            AttrName::StyleDictionary => "style_dictionary",
            AttrName::Style => "style",
            AttrName::ChannelDictionary => "channel_dictionary",
            AttrName::Channel => "channel",
            AttrName::File => "file",
            AttrName::TFormatting => "t_formatting",
            AttrName::Slice => "slice",
            AttrName::Crop => "crop",
            AttrName::Clip => "clip",
            AttrName::SyncArc => "sync_arc",
            AttrName::Duration => "duration",
            AttrName::Custom(s) => s.as_str(),
        }
    }

    /// Parses a canonical spelling back into an attribute name. Unknown
    /// spellings become [`AttrName::Custom`].
    pub fn parse(name: &str) -> AttrName {
        match name {
            "name" => AttrName::Name,
            "style_dictionary" => AttrName::StyleDictionary,
            "style" => AttrName::Style,
            "channel_dictionary" => AttrName::ChannelDictionary,
            "channel" => AttrName::Channel,
            "file" => AttrName::File,
            "t_formatting" => AttrName::TFormatting,
            "slice" => AttrName::Slice,
            "crop" => AttrName::Crop,
            "clip" => AttrName::Clip,
            "sync_arc" => AttrName::SyncArc,
            "duration" => AttrName::Duration,
            other => AttrName::Custom(Symbol::intern(other)),
        }
    }

    /// Creates a custom attribute name.
    pub fn custom(name: impl Into<Symbol>) -> AttrName {
        AttrName::Custom(name.into())
    }

    /// True for attributes whose value is "inherited by children (and
    /// arbitrary levels of grandchildren) unless explicitly overridden"
    /// (§5.2). Figure 7 marks `Channel` and `File` as inherited; formatting
    /// shorthands inherit so that a style set on a section applies to every
    /// paragraph beneath it.
    pub fn is_inherited(&self) -> bool {
        matches!(
            self,
            AttrName::Channel | AttrName::File | AttrName::TFormatting | AttrName::Style
        )
    }

    /// True for attributes that "should currently only occur on the root
    /// node" (Figure 7): the style dictionary and the channel dictionary.
    pub fn is_root_only(&self) -> bool {
        matches!(
            self,
            AttrName::StyleDictionary | AttrName::ChannelDictionary
        )
    }

    /// True if this is one of the standard attributes of Figure 7 (as
    /// opposed to a pass-through custom attribute).
    pub fn is_standard(&self) -> bool {
        !matches!(self, AttrName::Custom(_))
    }
}

impl fmt::Display for AttrName {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

impl From<&str> for AttrName {
    fn from(s: &str) -> Self {
        AttrName::parse(s)
    }
}

/// A single attribute: a name followed by a value.
#[derive(Debug, Clone, PartialEq)]
pub struct Attr {
    /// The attribute name.
    pub name: AttrName,
    /// The attribute value.
    pub value: AttrValue,
}

impl Attr {
    /// Creates an attribute.
    pub fn new(name: impl Into<AttrName>, value: AttrValue) -> Attr {
        Attr {
            name: name.into(),
            value,
        }
    }
}

impl fmt::Display for Attr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {}", self.name, self.value)
    }
}

impl From<(AttrName, AttrValue)> for Attr {
    fn from((name, value): (AttrName, AttrValue)) -> Self {
        Attr { name, value }
    }
}

/// An ordered attribute list with at-most-once name semantics.
///
/// Order is preserved because the interchange format is human-readable and
/// round-tripping should not shuffle a document's attributes.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct AttrList {
    attrs: Vec<Attr>,
}

impl AttrList {
    /// Creates an empty attribute list.
    pub fn new() -> AttrList {
        AttrList { attrs: Vec::new() }
    }

    /// Number of attributes in the list.
    pub fn len(&self) -> usize {
        self.attrs.len()
    }

    /// True when the list has no attributes.
    pub fn is_empty(&self) -> bool {
        self.attrs.is_empty()
    }

    /// Adds an attribute, rejecting duplicates.
    ///
    /// `node` is only used to produce a useful error; pass
    /// [`NodeId::detached`] when the list is not yet attached to a node.
    pub fn insert(&mut self, node: NodeId, attr: Attr) -> Result<()> {
        if self.contains(&attr.name) {
            return Err(CoreError::DuplicateAttribute {
                node,
                name: attr.name,
            });
        }
        self.attrs.push(attr);
        Ok(())
    }

    /// Adds or replaces an attribute (authoring convenience; replacement is
    /// how an editor overrides an inherited value on a child node).
    pub fn set(&mut self, attr: Attr) {
        if let Some(existing) = self.attrs.iter_mut().find(|a| a.name == attr.name) {
            existing.value = attr.value;
        } else {
            self.attrs.push(attr);
        }
    }

    /// Removes an attribute by name, returning its previous value.
    pub fn remove(&mut self, name: &AttrName) -> Option<AttrValue> {
        let idx = self.attrs.iter().position(|a| &a.name == name)?;
        Some(self.attrs.remove(idx).value)
    }

    /// True if an attribute with this name is present.
    pub fn contains(&self, name: &AttrName) -> bool {
        self.attrs.iter().any(|a| &a.name == name)
    }

    /// Looks up an attribute value by name.
    pub fn get(&self, name: &AttrName) -> Option<&AttrValue> {
        self.attrs
            .iter()
            .find(|a| &a.name == name)
            .map(|a| &a.value)
    }

    /// Looks up a textual (`Id` or `Str`) attribute value by name.
    pub fn get_text(&self, name: &AttrName) -> Option<&str> {
        self.get(name).and_then(AttrValue::as_text)
    }

    /// Looks up a numeric attribute value by name.
    pub fn get_number(&self, name: &AttrName) -> Option<i64> {
        self.get(name).and_then(AttrValue::as_number)
    }

    /// Iterates over the attributes in declaration order.
    pub fn iter(&self) -> impl Iterator<Item = &Attr> {
        self.attrs.iter()
    }

    /// Approximate in-memory footprint in bytes (names + values).
    pub fn approx_size(&self) -> usize {
        self.attrs
            .iter()
            .map(|a| a.name.as_str().len() + a.value.approx_size())
            .sum()
    }

    /// Validates the at-most-once rule (useful after bulk construction).
    pub fn validate_unique(&self, node: NodeId) -> Result<()> {
        for (i, attr) in self.attrs.iter().enumerate() {
            if self.attrs[..i].iter().any(|a| a.name == attr.name) {
                return Err(CoreError::DuplicateAttribute {
                    node,
                    name: attr.name,
                });
            }
        }
        Ok(())
    }
}

impl FromIterator<Attr> for AttrList {
    fn from_iter<T: IntoIterator<Item = Attr>>(iter: T) -> Self {
        let mut list = AttrList::new();
        for attr in iter {
            list.set(attr);
        }
        list
    }
}

impl<'a> IntoIterator for &'a AttrList {
    type Item = &'a Attr;
    type IntoIter = std::slice::Iter<'a, Attr>;
    fn into_iter(self) -> Self::IntoIter {
        self.attrs.iter()
    }
}

/// The `T_Formatting` shorthand (Figure 7): "font, size, indent, and
/// vspace" parameters for the text formatting channel.
///
/// The paper notes it "is wise not to use these attributes directly but to
/// place them in a style definition"; the struct exists so style expansion
/// and the text channel renderer share one typed view.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct TextFormatting {
    /// Font family name.
    pub font: Option<String>,
    /// Point size.
    pub size: Option<i64>,
    /// Left indent in character cells.
    pub indent: Option<i64>,
    /// Vertical space before the block, in lines.
    pub vspace: Option<i64>,
}

impl TextFormatting {
    /// Parses a `t_formatting` attribute value.
    ///
    /// The accepted shape is a list of `(key value)` pairs, e.g.
    /// `((font helvetica) (size 12) (indent 4) (vspace 1))`. Unknown keys
    /// are ignored (they pass through to tools untouched, like any other
    /// attribute the format does not interpret).
    pub fn from_value(value: &AttrValue) -> Result<TextFormatting> {
        let items = value.as_list().ok_or(CoreError::AttributeType {
            name: AttrName::TFormatting,
            expected: "a list of (key value) pairs",
        })?;
        let mut fmt = TextFormatting::default();
        for item in items {
            let pair = item.as_list().ok_or(CoreError::AttributeType {
                name: AttrName::TFormatting,
                expected: "each entry to be a (key value) pair",
            })?;
            if pair.len() != 2 {
                return Err(CoreError::AttributeType {
                    name: AttrName::TFormatting,
                    expected: "each entry to be a (key value) pair",
                });
            }
            let key = pair[0].as_text().ok_or(CoreError::AttributeType {
                name: AttrName::TFormatting,
                expected: "the key of each pair to be an identifier",
            })?;
            match key {
                "font" => fmt.font = pair[1].as_text().map(str::to_string),
                "size" => fmt.size = pair[1].as_number(),
                "indent" => fmt.indent = pair[1].as_number(),
                "vspace" => fmt.vspace = pair[1].as_number(),
                _ => {}
            }
        }
        Ok(fmt)
    }

    /// Serialises the shorthand back into an attribute value.
    pub fn to_value(&self) -> AttrValue {
        let mut items = Vec::new();
        if let Some(font) = &self.font {
            items.push(AttrValue::list([
                AttrValue::Id("font".into()),
                AttrValue::Id(Symbol::intern(font)),
            ]));
        }
        if let Some(size) = self.size {
            items.push(AttrValue::list([
                AttrValue::Id("size".into()),
                AttrValue::Number(size),
            ]));
        }
        if let Some(indent) = self.indent {
            items.push(AttrValue::list([
                AttrValue::Id("indent".into()),
                AttrValue::Number(indent),
            ]));
        }
        if let Some(vspace) = self.vspace {
            items.push(AttrValue::list([
                AttrValue::Id("vspace".into()),
                AttrValue::Number(vspace),
            ]));
        }
        AttrValue::List(items)
    }

    /// Overlays `other` on top of `self`: fields present in `other` win.
    /// Used when a node's own `t_formatting` overrides an inherited one.
    pub fn merged_with(&self, other: &TextFormatting) -> TextFormatting {
        TextFormatting {
            font: other.font.clone().or_else(|| self.font.clone()),
            size: other.size.or(self.size),
            indent: other.indent.or(self.indent),
            vspace: other.vspace.or(self.vspace),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn nid() -> NodeId {
        NodeId::detached()
    }

    #[test]
    fn attr_name_round_trips_through_canonical_spelling() {
        let all = [
            AttrName::Name,
            AttrName::StyleDictionary,
            AttrName::Style,
            AttrName::ChannelDictionary,
            AttrName::Channel,
            AttrName::File,
            AttrName::TFormatting,
            AttrName::Slice,
            AttrName::Crop,
            AttrName::Clip,
            AttrName::SyncArc,
            AttrName::Duration,
            AttrName::Custom("author".into()),
        ];
        for name in all {
            let round = AttrName::parse(name.as_str());
            assert_eq!(round, name);
        }
    }

    #[test]
    fn inheritance_and_root_only_flags() {
        assert!(AttrName::Channel.is_inherited());
        assert!(AttrName::File.is_inherited());
        assert!(!AttrName::Name.is_inherited());
        assert!(!AttrName::Slice.is_inherited());
        assert!(AttrName::StyleDictionary.is_root_only());
        assert!(AttrName::ChannelDictionary.is_root_only());
        assert!(!AttrName::Channel.is_root_only());
        assert!(AttrName::Channel.is_standard());
        assert!(!AttrName::custom("x").is_standard());
    }

    #[test]
    fn attr_list_rejects_duplicates() {
        let mut list = AttrList::new();
        list.insert(nid(), Attr::new(AttrName::Name, AttrValue::Id("a".into())))
            .unwrap();
        let err = list
            .insert(nid(), Attr::new(AttrName::Name, AttrValue::Id("b".into())))
            .unwrap_err();
        assert!(matches!(err, CoreError::DuplicateAttribute { .. }));
        assert_eq!(list.len(), 1);
    }

    #[test]
    fn attr_list_set_replaces_existing() {
        let mut list = AttrList::new();
        list.set(Attr::new(AttrName::Channel, AttrValue::Id("audio".into())));
        list.set(Attr::new(AttrName::Channel, AttrValue::Id("video".into())));
        assert_eq!(list.len(), 1);
        assert_eq!(list.get_text(&AttrName::Channel), Some("video"));
    }

    #[test]
    fn attr_list_remove_and_contains() {
        let mut list = AttrList::new();
        list.set(Attr::new(AttrName::File, AttrValue::Str("clip.au".into())));
        assert!(list.contains(&AttrName::File));
        let removed = list.remove(&AttrName::File).unwrap();
        assert_eq!(removed.as_text(), Some("clip.au"));
        assert!(!list.contains(&AttrName::File));
        assert!(list.remove(&AttrName::File).is_none());
    }

    #[test]
    fn attr_list_preserves_order() {
        let mut list = AttrList::new();
        list.set(Attr::new(AttrName::Name, AttrValue::Id("n".into())));
        list.set(Attr::new(AttrName::Channel, AttrValue::Id("c".into())));
        list.set(Attr::new(AttrName::Duration, AttrValue::Number(10)));
        let names: Vec<_> = list.iter().map(|a| a.name).collect();
        assert_eq!(
            names,
            vec![AttrName::Name, AttrName::Channel, AttrName::Duration]
        );
    }

    #[test]
    fn attr_list_typed_getters() {
        let mut list = AttrList::new();
        list.set(Attr::new(AttrName::Duration, AttrValue::Number(1500)));
        list.set(Attr::new(AttrName::Name, AttrValue::Id("intro".into())));
        assert_eq!(list.get_number(&AttrName::Duration), Some(1500));
        assert_eq!(list.get_text(&AttrName::Name), Some("intro"));
        assert_eq!(list.get_number(&AttrName::Name), None);
    }

    #[test]
    fn validate_unique_detects_bulk_duplicates() {
        // Build through FromIterator which de-duplicates via set().
        let list: AttrList = [
            Attr::new(AttrName::Name, AttrValue::Id("a".into())),
            Attr::new(AttrName::Name, AttrValue::Id("b".into())),
        ]
        .into_iter()
        .collect();
        assert_eq!(list.len(), 1);
        assert!(list.validate_unique(nid()).is_ok());
    }

    #[test]
    fn text_formatting_round_trip() {
        let fmt = TextFormatting {
            font: Some("helvetica".into()),
            size: Some(12),
            indent: Some(4),
            vspace: Some(1),
        };
        let value = fmt.to_value();
        let parsed = TextFormatting::from_value(&value).unwrap();
        assert_eq!(parsed, fmt);
    }

    #[test]
    fn text_formatting_rejects_non_list() {
        let err = TextFormatting::from_value(&AttrValue::Number(3)).unwrap_err();
        assert!(matches!(err, CoreError::AttributeType { .. }));
    }

    #[test]
    fn text_formatting_merge_prefers_override() {
        let base = TextFormatting {
            font: Some("times".into()),
            size: Some(10),
            ..Default::default()
        };
        let over = TextFormatting {
            size: Some(14),
            indent: Some(2),
            ..Default::default()
        };
        let merged = base.merged_with(&over);
        assert_eq!(merged.font.as_deref(), Some("times"));
        assert_eq!(merged.size, Some(14));
        assert_eq!(merged.indent, Some(2));
    }

    #[test]
    fn approx_size_is_positive_for_nonempty_lists() {
        let mut list = AttrList::new();
        list.set(Attr::new(AttrName::Name, AttrValue::Id("abc".into())));
        assert!(list.approx_size() >= 3);
    }
}
