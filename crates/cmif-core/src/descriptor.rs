//! Data descriptors, event descriptors and the descriptor catalog.
//!
//! "Data block descriptors are collections of attributes that describe the
//! nature of the data block. […] Event descriptors provide a collection of
//! attributes that describe how a single instance of a data block is
//! integrated into a multimedia document. […] the event descriptor can be
//! used to define multiple uses of a single data descriptor." (§3.1)
//!
//! A [`DataDescriptor`] never contains media bytes — only attributes about
//! them (format, resolution, length, resource needs, where to find them).
//! That separation is the paper's central "manipulate the description, not
//! the data" idea, and is what the Figure 2 benchmark quantifies.

use std::collections::BTreeMap;
use std::fmt;

use crate::channel::MediaKind;
use crate::error::{CoreError, Result};
use crate::node::NodeId;
use crate::symbol::Symbol;
use crate::time::{RateInfo, TimeMs};
use crate::value::AttrValue;

/// A selection of part of a data block: byte slice, image crop, or sound
/// clip (the `slice`, `crop` and `clip` attributes of Figure 7).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Selection {
    /// A byte range `[start, start + length)` of binary data.
    Slice {
        /// First byte used.
        start: u64,
        /// Number of bytes used.
        length: u64,
    },
    /// A rectangular sub-image in pixels.
    Crop {
        /// Left edge of the sub-image.
        x: u32,
        /// Top edge of the sub-image.
        y: u32,
        /// Width of the sub-image.
        width: u32,
        /// Height of the sub-image.
        height: u32,
    },
    /// A temporal part of a sound (or video) fragment in milliseconds.
    Clip {
        /// Start offset within the fragment.
        start_ms: i64,
        /// Duration of the part used.
        duration_ms: i64,
    },
}

impl Selection {
    /// For temporal selections, the resulting presentation duration.
    pub fn duration(&self) -> Option<TimeMs> {
        match self {
            Selection::Clip { duration_ms, .. } => Some(TimeMs::from_millis(*duration_ms)),
            _ => None,
        }
    }
}

impl fmt::Display for Selection {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Selection::Slice { start, length } => write!(f, "slice({start}+{length})"),
            Selection::Crop {
                x,
                y,
                width,
                height,
            } => {
                write!(f, "crop({x},{y} {width}x{height})")
            }
            Selection::Clip {
                start_ms,
                duration_ms,
            } => {
                write!(f, "clip({start_ms}ms+{duration_ms}ms)")
            }
        }
    }
}

/// Resources a data block needs from the presentation environment.
///
/// Attributes like these let constraint-filtering tools decide whether a
/// target device can support a document without touching the data itself
/// ("the resources required to support it", §3.1).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct ResourceNeeds {
    /// Sustained bandwidth needed to deliver the block, bytes per second.
    pub bandwidth_bps: u64,
    /// Peak decode / render cost in abstract "work units" per second.
    pub decode_cost: u32,
    /// Bytes of buffer memory needed during presentation.
    pub memory_bytes: u64,
}

/// Attributes describing the *nature* of a data block (Figure 2 / §3.1).
#[derive(Debug, Clone, PartialEq)]
pub struct DataDescriptor {
    /// The interned key under which the descriptor is known (the value of
    /// `file` attributes that reference it).
    pub key: Symbol,
    /// The medium of the described block.
    pub medium: MediaKind,
    /// Encoding / format name (e.g. `pcm8`, `rgb24`, `plain-text`).
    pub format: String,
    /// Total size of the underlying data block in bytes.
    pub size_bytes: u64,
    /// Intrinsic duration of the block when played at its natural rate.
    /// `None` for discrete media with no natural duration (e.g. an image).
    pub duration: Option<TimeMs>,
    /// Pixel dimensions for visual media.
    pub resolution: Option<(u32, u32)>,
    /// Colour depth in bits per pixel for visual media.
    pub color_depth: Option<u8>,
    /// Frame rate for video, samples per second for audio, bytes per second
    /// for generic binary data.
    pub rates: RateInfo,
    /// Resources needed to present the block.
    pub resources: ResourceNeeds,
    /// Where the block lives (a storage-server path, DDBMS key or host
    /// reference). Purely descriptive at this layer.
    pub location: Option<String>,
    /// Free-form descriptive attributes (title, language, author, search
    /// keys, content links, …), keyed by interned name.
    pub extra: BTreeMap<Symbol, AttrValue>,
}

impl DataDescriptor {
    /// Creates a minimal descriptor; fill in the rest with the `with_*`
    /// builder methods.
    pub fn new(key: impl Into<Symbol>, medium: MediaKind, format: impl Into<String>) -> Self {
        DataDescriptor {
            key: key.into(),
            medium,
            format: format.into(),
            size_bytes: 0,
            duration: None,
            resolution: None,
            color_depth: None,
            rates: RateInfo::NONE,
            resources: ResourceNeeds::default(),
            location: None,
            extra: BTreeMap::new(),
        }
    }

    /// Sets the block size in bytes.
    pub fn with_size(mut self, bytes: u64) -> Self {
        self.size_bytes = bytes;
        self
    }

    /// Sets the intrinsic duration.
    pub fn with_duration(mut self, duration: TimeMs) -> Self {
        self.duration = Some(duration);
        self
    }

    /// Sets the pixel resolution.
    pub fn with_resolution(mut self, width: u32, height: u32) -> Self {
        self.resolution = Some((width, height));
        self
    }

    /// Sets the colour depth in bits per pixel.
    pub fn with_color_depth(mut self, bits: u8) -> Self {
        self.color_depth = Some(bits);
        self
    }

    /// Sets the rate table used for media-unit conversions.
    pub fn with_rates(mut self, rates: RateInfo) -> Self {
        self.rates = rates;
        self
    }

    /// Sets the resource needs.
    pub fn with_resources(mut self, resources: ResourceNeeds) -> Self {
        self.resources = resources;
        self
    }

    /// Sets the storage location.
    pub fn with_location(mut self, location: impl Into<String>) -> Self {
        self.location = Some(location.into());
        self
    }

    /// Adds a free-form attribute.
    pub fn with_extra(mut self, key: impl Into<Symbol>, value: AttrValue) -> Self {
        self.extra.insert(key.into(), value);
        self
    }

    /// Looks up a free-form attribute. Never interns, so unknown keys miss
    /// without growing the pool.
    pub fn extra_attr(&self, key: &str) -> Option<&AttrValue> {
        self.extra.get(&Symbol::lookup(key)?)
    }

    /// Approximate size of the descriptor itself (attributes only), in
    /// bytes. Contrast with [`DataDescriptor::size_bytes`], the size of the
    /// data it describes; the ratio is the Figure 2 claim.
    pub fn approx_descriptor_size(&self) -> usize {
        let mut size = self.key.len() + self.format.len() + 64;
        if let Some(loc) = &self.location {
            size += loc.len();
        }
        size += self
            .extra
            .iter()
            .map(|(k, v)| k.len() + v.approx_size())
            .sum::<usize>();
        size
    }
}

/// Attributes describing one *use* of a data block inside a document: the
/// event that presents (part of) the block on a channel (Figure 2 / §3.1).
#[derive(Debug, Clone, PartialEq)]
pub struct EventDescriptor {
    /// The leaf node this event belongs to.
    pub node: NodeId,
    /// The channel the event is directed to.
    pub channel: Symbol,
    /// The key of the data descriptor used, or `None` for immediate data.
    pub descriptor: Option<Symbol>,
    /// Optional selection restricting the part of the block used.
    pub selection: Option<Selection>,
    /// The presentation duration of the event on the document clock.
    pub duration: TimeMs,
    /// Medium presented by the event.
    pub medium: MediaKind,
    /// Size in bytes of the data the event needs delivered (after the
    /// selection is applied); used for structure-only resource planning.
    pub data_bytes: u64,
}

impl EventDescriptor {
    /// True when the event carries inline (immediate) data.
    pub fn is_immediate(&self) -> bool {
        self.descriptor.is_none()
    }
}

/// A catalog of data descriptors keyed by descriptor key.
///
/// The catalog is the in-document stand-in for the optional DDBMS of
/// Figure 2; `cmif-media` provides an indexed database implementation of
/// the same [`DescriptorResolver`] interface.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct DescriptorCatalog {
    entries: BTreeMap<Symbol, DataDescriptor>,
}

impl DescriptorCatalog {
    /// Creates an empty catalog.
    pub fn new() -> DescriptorCatalog {
        DescriptorCatalog {
            entries: BTreeMap::new(),
        }
    }

    /// Number of descriptors registered.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when the catalog has no descriptors.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Registers a descriptor, rejecting duplicate keys.
    pub fn register(&mut self, descriptor: DataDescriptor) -> Result<()> {
        if self.entries.contains_key(&descriptor.key) {
            return Err(CoreError::DuplicateDescriptor {
                key: descriptor.key,
            });
        }
        self.entries.insert(descriptor.key, descriptor);
        Ok(())
    }

    /// Registers or replaces a descriptor.
    pub fn upsert(&mut self, descriptor: DataDescriptor) {
        self.entries.insert(descriptor.key, descriptor);
    }

    /// Looks up a descriptor by interned key — an integer-keyed map lookup.
    pub fn get_symbol(&self, key: Symbol) -> Option<&DataDescriptor> {
        self.entries.get(&key)
    }

    /// Looks up a descriptor by textual key. Never interns, so unknown
    /// keys miss without growing the pool.
    pub fn get(&self, key: &str) -> Option<&DataDescriptor> {
        self.get_symbol(Symbol::lookup(key)?)
    }

    /// Looks up a descriptor by key, producing an error when missing. The
    /// missing key is reported as text — never interned — so failing
    /// lookups cannot grow the pool.
    pub fn require(&self, key: &str) -> Result<&DataDescriptor> {
        self.get(key).ok_or_else(|| CoreError::UnknownDescriptor {
            key: key.to_string(),
        })
    }

    /// Iterates over descriptors in pool-id order (the intern order of
    /// their keys; stable within a process). Callers rendering
    /// human-readable listings sort by `key.as_str()` themselves.
    pub fn iter(&self) -> impl Iterator<Item = &DataDescriptor> {
        self.entries.values()
    }

    /// Total size of all described data blocks, in bytes.
    pub fn total_data_bytes(&self) -> u64 {
        self.entries.values().map(|d| d.size_bytes).sum()
    }

    /// Total size of the descriptors themselves, in bytes.
    pub fn total_descriptor_bytes(&self) -> usize {
        self.entries
            .values()
            .map(DataDescriptor::approx_descriptor_size)
            .sum()
    }
}

/// Anything that can resolve a descriptor key to a [`DataDescriptor`].
///
/// Implemented by [`DescriptorCatalog`] (in-document) and by the
/// attribute-indexed DDBMS in `cmif-media`.
pub trait DescriptorResolver {
    /// Resolves a descriptor key.
    fn resolve(&self, key: &str) -> Option<DataDescriptor>;

    /// Resolves an interned descriptor key. The default goes through the
    /// textual path; integer-keyed resolvers override it.
    fn resolve_symbol(&self, key: Symbol) -> Option<DataDescriptor> {
        self.resolve(key.as_str())
    }
}

impl DescriptorResolver for DescriptorCatalog {
    fn resolve(&self, key: &str) -> Option<DataDescriptor> {
        self.get(key).cloned()
    }

    fn resolve_symbol(&self, key: Symbol) -> Option<DataDescriptor> {
        self.get_symbol(key).cloned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> DataDescriptor {
        DataDescriptor::new("news/intro-video", MediaKind::Video, "rgb24")
            .with_size(12_000_000)
            .with_duration(TimeMs::from_secs(8))
            .with_resolution(640, 480)
            .with_color_depth(24)
            .with_rates(RateInfo::video(25.0))
            .with_resources(ResourceNeeds {
                bandwidth_bps: 1_500_000,
                decode_cost: 40,
                memory_bytes: 2_000_000,
            })
            .with_location("store://host-a/news/intro-video")
            .with_extra("title", AttrValue::Str("Opening shot".into()))
    }

    #[test]
    fn builder_fills_all_fields() {
        let d = sample();
        assert_eq!(d.size_bytes, 12_000_000);
        assert_eq!(d.duration, Some(TimeMs::from_secs(8)));
        assert_eq!(d.resolution, Some((640, 480)));
        assert_eq!(d.color_depth, Some(24));
        assert_eq!(d.rates.frames_per_second, Some(25.0));
        assert_eq!(d.resources.decode_cost, 40);
        assert_eq!(
            d.location.as_deref(),
            Some("store://host-a/news/intro-video")
        );
        assert_eq!(
            d.extra_attr("title").unwrap().as_text(),
            Some("Opening shot")
        );
        assert!(d.extra_attr("missing").is_none());
    }

    #[test]
    fn descriptor_is_tiny_compared_to_data() {
        let d = sample();
        assert!(d.approx_descriptor_size() < 1024);
        assert!(d.size_bytes as usize > 1000 * d.approx_descriptor_size());
    }

    #[test]
    fn catalog_register_and_lookup() {
        let mut cat = DescriptorCatalog::new();
        cat.register(sample()).unwrap();
        assert_eq!(cat.len(), 1);
        assert!(cat.get("news/intro-video").is_some());
        assert!(cat.require("news/intro-video").is_ok());
        assert!(matches!(
            cat.require("missing").unwrap_err(),
            CoreError::UnknownDescriptor { .. }
        ));
    }

    #[test]
    fn catalog_rejects_duplicate_keys_but_upsert_replaces() {
        let mut cat = DescriptorCatalog::new();
        cat.register(sample()).unwrap();
        let err = cat.register(sample()).unwrap_err();
        assert!(matches!(err, CoreError::DuplicateDescriptor { .. }));
        let replacement = DataDescriptor::new("news/intro-video", MediaKind::Video, "rgb8");
        cat.upsert(replacement);
        assert_eq!(cat.get("news/intro-video").unwrap().format, "rgb8");
        assert_eq!(cat.len(), 1);
    }

    #[test]
    fn catalog_totals() {
        let mut cat = DescriptorCatalog::new();
        cat.register(sample()).unwrap();
        cat.register(DataDescriptor::new("news/map", MediaKind::Image, "rgb8").with_size(300_000))
            .unwrap();
        assert_eq!(cat.total_data_bytes(), 12_300_000);
        assert!(cat.total_descriptor_bytes() > 0);
        assert_eq!(cat.iter().count(), 2);
    }

    #[test]
    fn selection_display_and_duration() {
        assert_eq!(
            Selection::Slice {
                start: 10,
                length: 20
            }
            .to_string(),
            "slice(10+20)"
        );
        assert_eq!(
            Selection::Crop {
                x: 1,
                y: 2,
                width: 3,
                height: 4
            }
            .to_string(),
            "crop(1,2 3x4)"
        );
        let clip = Selection::Clip {
            start_ms: 500,
            duration_ms: 1500,
        };
        assert_eq!(clip.to_string(), "clip(500ms+1500ms)");
        assert_eq!(clip.duration(), Some(TimeMs::from_millis(1500)));
        assert!(Selection::Slice {
            start: 0,
            length: 1
        }
        .duration()
        .is_none());
    }

    #[test]
    fn resolver_trait_on_catalog() {
        let mut cat = DescriptorCatalog::new();
        cat.register(sample()).unwrap();
        let resolved = DescriptorResolver::resolve(&cat, "news/intro-video");
        assert!(resolved.is_some());
        assert!(DescriptorResolver::resolve(&cat, "nope").is_none());
    }

    #[test]
    fn event_descriptor_immediate_flag() {
        let ev = EventDescriptor {
            node: NodeId::from_index(1),
            channel: "label".into(),
            descriptor: None,
            selection: None,
            duration: TimeMs::from_secs(2),
            medium: MediaKind::Label,
            data_bytes: 16,
        };
        assert!(ev.is_immediate());
    }
}
