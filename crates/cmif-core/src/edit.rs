//! Live structural edits over revisioned documents.
//!
//! CMIFed is an *authoring* environment: the paper's headline workflow is
//! editing a document while it plays. This module provides the document-plane
//! half of that story — a typed [`Edit`] vocabulary and a [`DocRevision`]
//! wrapper that applies edits by copy-on-write, so concurrent readers (the
//! scheduler, a playing session, the lint pipeline) keep the revision they
//! started with while authors advance to new ones.
//!
//! Each successful application also reports an [`EditDelta`]: the dirty
//! region the edit touched, which downstream incremental machinery (the
//! scheduler's `EditSession`) uses to re-derive only the affected constraints
//! instead of re-solving the whole document.

use std::sync::Arc;

use crate::arc::SyncArc;
use crate::attr::AttrName;
use crate::error::{CoreError, Result};
use crate::node::{ImmediateData, NodeId, NodeKind};
use crate::symbol::Symbol;
use crate::time::{DelayMs, MaxDelay, MediaTime};
use crate::tree::Document;
use crate::value::AttrValue;

/// A subtree to insert into a document, described structurally.
///
/// Specs are plain data: they can be built up-front (e.g. decoded from a
/// remote authoring tool) and applied later. Every spawned node is marked
/// synthetic in the document's [`crate::diag::SourceMap`], because no source
/// text describes it.
#[derive(Debug, Clone, PartialEq)]
pub enum NodeSpec {
    /// A sequential composite.
    Seq {
        /// Node name, unique among its future siblings.
        name: String,
        /// Children, presented in sequence order.
        children: Vec<NodeSpec>,
    },
    /// A parallel composite.
    Par {
        /// Node name, unique among its future siblings.
        name: String,
        /// Children, presented together.
        children: Vec<NodeSpec>,
    },
    /// An external data leaf.
    Ext {
        /// Node name, unique among its future siblings.
        name: String,
        /// Channel assignment, when not inherited.
        channel: Option<Symbol>,
        /// Data descriptor key (the `file` attribute).
        file: String,
        /// Explicit duration in milliseconds, when known.
        duration_ms: Option<i64>,
    },
    /// An immediate text leaf.
    ImmText {
        /// Node name, unique among its future siblings.
        name: String,
        /// Channel assignment, when not inherited.
        channel: Option<Symbol>,
        /// The text payload.
        text: String,
        /// Explicit duration in milliseconds, when known.
        duration_ms: Option<i64>,
    },
}

impl NodeSpec {
    /// A sequential composite with the given children.
    pub fn seq(name: impl Into<String>, children: Vec<NodeSpec>) -> NodeSpec {
        NodeSpec::Seq {
            name: name.into(),
            children,
        }
    }

    /// A parallel composite with the given children.
    pub fn par(name: impl Into<String>, children: Vec<NodeSpec>) -> NodeSpec {
        NodeSpec::Par {
            name: name.into(),
            children,
        }
    }

    /// An external data leaf.
    pub fn ext(name: impl Into<String>, file: impl Into<String>) -> NodeSpec {
        NodeSpec::Ext {
            name: name.into(),
            channel: None,
            file: file.into(),
            duration_ms: None,
        }
    }

    /// An immediate text leaf.
    pub fn imm_text(name: impl Into<String>, text: impl Into<String>) -> NodeSpec {
        NodeSpec::ImmText {
            name: name.into(),
            channel: None,
            text: text.into(),
            duration_ms: None,
        }
    }

    /// Returns the spec with a channel assignment (leaves only; ignored on
    /// composites).
    pub fn on_channel(mut self, channel: impl Into<Symbol>) -> NodeSpec {
        match &mut self {
            NodeSpec::Ext { channel: c, .. } | NodeSpec::ImmText { channel: c, .. } => {
                *c = Some(channel.into());
            }
            NodeSpec::Seq { .. } | NodeSpec::Par { .. } => {}
        }
        self
    }

    /// Returns the spec with an explicit duration (leaves only; ignored on
    /// composites).
    pub fn lasting_ms(mut self, duration_ms: i64) -> NodeSpec {
        match &mut self {
            NodeSpec::Ext { duration_ms: d, .. } | NodeSpec::ImmText { duration_ms: d, .. } => {
                *d = Some(duration_ms);
            }
            NodeSpec::Seq { .. } | NodeSpec::Par { .. } => {}
        }
        self
    }

    /// The spec's node name.
    pub fn name(&self) -> &str {
        match self {
            NodeSpec::Seq { name, .. }
            | NodeSpec::Par { name, .. }
            | NodeSpec::Ext { name, .. }
            | NodeSpec::ImmText { name, .. } => name,
        }
    }
}

/// One atomic structural edit of a live document.
///
/// Edits apply through [`DocRevision::apply`], which validates them against
/// the current revision and produces a new revision plus an [`EditDelta`]
/// describing the dirty region.
#[derive(Debug, Clone, PartialEq)]
pub enum Edit {
    /// Append a new subtree under an existing composite node.
    InsertSubtree {
        /// The composite node the subtree is appended under.
        parent: NodeId,
        /// The subtree to build.
        spec: NodeSpec,
    },
    /// Detach a subtree (and prune every sync arc touching it).
    RemoveSubtree {
        /// Root of the subtree to remove; must not be the document root.
        node: NodeId,
    },
    /// Replace the delay window (and optionally the offset) of the
    /// `index`-th explicit sync arc.
    RetimeArc {
        /// Index into [`Document::arcs`].
        index: usize,
        /// New minimum acceptable delay δ in milliseconds (zero or negative).
        min_delay_ms: i64,
        /// New maximum tolerable delay ε in milliseconds; `None` leaves the
        /// window unbounded above.
        max_delay_ms: Option<i64>,
        /// New offset in milliseconds, when the offset changes too.
        offset_ms: Option<i64>,
    },
    /// Point an external leaf at a different data descriptor.
    SwapDescriptor {
        /// The external leaf to repoint.
        node: NodeId,
        /// The new descriptor key (`file` attribute value).
        file: String,
    },
    /// Assign (or reassign) a node's channel.
    AssignChannel {
        /// The node receiving the assignment; descendants inherit it.
        node: NodeId,
        /// The channel to assign.
        channel: Symbol,
    },
    /// Remove a node's own channel assignment, falling back to inheritance.
    ClearChannel {
        /// The node whose own assignment is dropped.
        node: NodeId,
    },
}

impl Edit {
    /// A short keyword naming the edit kind, for reports and logs.
    pub fn keyword(&self) -> &'static str {
        match self {
            Edit::InsertSubtree { .. } => "insert-subtree",
            Edit::RemoveSubtree { .. } => "remove-subtree",
            Edit::RetimeArc { .. } => "retime-arc",
            Edit::SwapDescriptor { .. } => "swap-descriptor",
            Edit::AssignChannel { .. } => "assign-channel",
            Edit::ClearChannel { .. } => "clear-channel",
        }
    }
}

/// The dirty region produced by applying one [`Edit`].
///
/// Downstream incremental machinery uses this to re-derive only the
/// constraints the edit could have changed.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct EditDelta {
    /// Composite nodes whose child list changed: their structural shell
    /// constraints must be re-derived.
    pub dirty_parents: Vec<NodeId>,
    /// Root of a freshly inserted subtree, when the edit inserted one.
    pub inserted: Option<NodeId>,
    /// Every node of a removed subtree (preorder), when the edit removed one.
    pub removed: Vec<NodeId>,
    /// Leaves whose duration constraint must be re-derived.
    pub duration_dirty: Vec<NodeId>,
    /// Leaves whose channel assignment changed.
    pub channel_dirty: Vec<NodeId>,
    /// Whether the explicit arc set (or anything affecting its derivation,
    /// like path resolution or channel rates) changed.
    pub arcs_changed: bool,
    /// When exactly one arc was retimed and nothing else changed, its index:
    /// incremental solvers may replace that single constraint in place.
    pub retimed_arc: Option<usize>,
}

impl EditDelta {
    /// Whether the edit left the constraint system untouched.
    pub fn is_clean(&self) -> bool {
        self.dirty_parents.is_empty()
            && self.inserted.is_none()
            && self.removed.is_empty()
            && self.duration_dirty.is_empty()
            && !self.arcs_changed
    }
}

/// One immutable revision of a document.
///
/// Revisions form a chain: [`DocRevision::apply`] clones the document
/// (copy-on-write — concurrent readers of the old [`Arc`] are unaffected),
/// mutates the clone, and wraps it as the child revision. Node ids are
/// stable across revisions, so dirty regions reported by one revision stay
/// meaningful in the next.
#[derive(Debug, Clone)]
pub struct DocRevision {
    doc: Arc<Document>,
    parent: Option<u64>,
}

impl DocRevision {
    /// Wraps an existing document as the initial revision of a chain.
    pub fn initial(doc: Arc<Document>) -> DocRevision {
        DocRevision { doc, parent: None }
    }

    /// The revision's unique id.
    pub fn id(&self) -> u64 {
        self.doc.revision_id()
    }

    /// The id of the revision this one was derived from, when any.
    pub fn parent_id(&self) -> Option<u64> {
        self.parent
    }

    /// The document at this revision.
    pub fn doc(&self) -> &Arc<Document> {
        &self.doc
    }

    /// Applies one edit, producing the successor revision and its dirty
    /// region. `self` is untouched: readers holding the current [`Arc`]
    /// keep a consistent document.
    pub fn apply(&self, edit: &Edit) -> Result<(DocRevision, EditDelta)> {
        let mut doc = Document::clone(&self.doc);
        let delta = apply_to(&mut doc, edit)?;
        Ok((
            DocRevision {
                doc: Arc::new(doc),
                parent: Some(self.id()),
            },
            delta,
        ))
    }
}

/// Collects `node` and all its descendants in preorder.
fn subtree_preorder(doc: &Document, node: NodeId) -> Result<Vec<NodeId>> {
    let mut out = Vec::new();
    let mut stack = vec![node];
    while let Some(id) = stack.pop() {
        out.push(id);
        let n = doc.node(id)?;
        for child in n.children.iter().rev() {
            stack.push(*child);
        }
    }
    Ok(out)
}

/// Marks a node synthetic in the document's source map, when it has one.
fn mark_node_synthetic(doc: &mut Document, node: NodeId) {
    if let Some(sources) = &mut doc.sources {
        Arc::make_mut(sources).mark_synthetic(node);
    }
}

/// Builds a [`NodeSpec`] subtree under `parent`, returning its root and the
/// leaves spawned.
fn build_spec(
    doc: &mut Document,
    parent: NodeId,
    spec: &NodeSpec,
    leaves: &mut Vec<NodeId>,
) -> Result<NodeId> {
    let (kind, name) = match spec {
        NodeSpec::Seq { name, .. } => (NodeKind::Seq, name),
        NodeSpec::Par { name, .. } => (NodeKind::Par, name),
        NodeSpec::Ext { name, .. } => (NodeKind::Ext, name),
        NodeSpec::ImmText { name, text, .. } => {
            (NodeKind::Imm(ImmediateData::Text(text.clone())), name)
        }
    };
    let id = doc.add_child(parent, kind)?;
    doc.set_attr(id, AttrName::Name, AttrValue::Id(Symbol::intern(name)))?;
    match spec {
        NodeSpec::Seq { children, .. } | NodeSpec::Par { children, .. } => {
            for child in children {
                build_spec(doc, id, child, leaves)?;
            }
        }
        NodeSpec::Ext {
            channel,
            file,
            duration_ms,
            ..
        } => {
            doc.set_attr(id, AttrName::File, AttrValue::Str(file.clone()))?;
            if let Some(channel) = channel {
                doc.set_attr(id, AttrName::Channel, AttrValue::Id(*channel))?;
            }
            if let Some(ms) = duration_ms {
                doc.set_attr(id, AttrName::Duration, AttrValue::Number(*ms))?;
            }
            leaves.push(id);
        }
        NodeSpec::ImmText {
            channel,
            duration_ms,
            ..
        } => {
            if let Some(channel) = channel {
                doc.set_attr(id, AttrName::Channel, AttrValue::Id(*channel))?;
            }
            if let Some(ms) = duration_ms {
                doc.set_attr(id, AttrName::Duration, AttrValue::Number(*ms))?;
            }
            leaves.push(id);
        }
    }
    mark_node_synthetic(doc, id);
    Ok(id)
}

/// Applies one edit to a (cloned) document, in place.
fn apply_to(doc: &mut Document, edit: &Edit) -> Result<EditDelta> {
    let mut delta = EditDelta::default();
    match edit {
        Edit::InsertSubtree { parent, spec } => {
            let parent_node = doc.node(*parent)?;
            if !parent_node.kind.is_composite() {
                return Err(CoreError::InvalidEdit {
                    reason: format!("insertion parent {parent} is a leaf"),
                });
            }
            let mut leaves = Vec::new();
            let inserted = build_spec(doc, *parent, spec, &mut leaves)?;
            mark_node_synthetic(doc, *parent);
            delta.dirty_parents.push(*parent);
            delta.inserted = Some(inserted);
            delta.duration_dirty = leaves.clone();
            delta.channel_dirty = leaves;
            // Inserting a named sibling can change how existing arc paths
            // resolve (e.g. `..`-relative references), so explicit
            // constraints must be re-derived.
            delta.arcs_changed = true;
        }
        Edit::RemoveSubtree { node } => {
            let root = doc.root()?;
            if *node == root {
                return Err(CoreError::InvalidEdit {
                    reason: "the document root cannot be removed".to_string(),
                });
            }
            let parent = doc
                .node(*node)?
                .parent
                .ok_or_else(|| CoreError::InvalidEdit {
                    reason: format!("node {node} is already detached"),
                })?;
            let subtree = subtree_preorder(doc, *node)?;
            let in_subtree: std::collections::HashSet<NodeId> = subtree.iter().copied().collect();
            // Prune arcs touching the subtree *before* detaching, while the
            // endpoint paths still resolve. Unresolvable endpoints are kept:
            // they were dangling before the edit, and lint owns reporting
            // them (L103).
            let mut doomed = Vec::new();
            for (index, (carrier, arc)) in doc.arcs().iter().enumerate() {
                let touches = in_subtree.contains(carrier)
                    || doc
                        .resolve_path(*carrier, &arc.source)
                        .map(|id| in_subtree.contains(&id))
                        .unwrap_or(false)
                    || doc
                        .resolve_path(*carrier, &arc.destination)
                        .map(|id| in_subtree.contains(&id))
                        .unwrap_or(false);
                if touches {
                    doomed.push(index);
                }
            }
            for index in doomed.iter().rev() {
                doc.remove_arc(*index)?;
            }
            doc.detach(*node)?;
            for id in &subtree {
                mark_node_synthetic(doc, *id);
            }
            mark_node_synthetic(doc, parent);
            delta.dirty_parents.push(parent);
            delta.removed = subtree;
            delta.arcs_changed = !doomed.is_empty();
        }
        Edit::RetimeArc {
            index,
            min_delay_ms,
            max_delay_ms,
            offset_ms,
        } => {
            let (_, arc) = doc
                .arcs()
                .get(*index)
                .ok_or(CoreError::UnknownArc { index: *index })?;
            let mut arc: SyncArc = arc.clone();
            arc.min_delay = DelayMs::from_millis(*min_delay_ms);
            arc.max_delay = match max_delay_ms {
                Some(ms) => MaxDelay::Bounded(DelayMs::from_millis(*ms)),
                None => MaxDelay::Unbounded,
            };
            if let Some(ms) = offset_ms {
                arc.offset = MediaTime::millis(*ms);
            }
            doc.replace_arc(*index, arc)?;
            delta.arcs_changed = true;
            delta.retimed_arc = Some(*index);
        }
        Edit::SwapDescriptor { node, file } => {
            let n = doc.node(*node)?;
            if n.kind != NodeKind::Ext {
                return Err(CoreError::InvalidEdit {
                    reason: format!("node {node} is not an external leaf"),
                });
            }
            doc.set_attr(*node, AttrName::File, AttrValue::Str(file.clone()))?;
            mark_node_synthetic(doc, *node);
            delta.duration_dirty.push(*node);
        }
        Edit::AssignChannel { node, channel } => {
            doc.node(*node)?;
            doc.set_attr(*node, AttrName::Channel, AttrValue::Id(*channel))?;
            mark_node_synthetic(doc, *node);
            channel_delta(doc, *node, &mut delta)?;
        }
        Edit::ClearChannel { node } => {
            let n = doc.node_mut(*node)?;
            if n.attrs.remove(&AttrName::Channel).is_none() {
                return Err(CoreError::InvalidEdit {
                    reason: format!("node {node} has no own channel assignment"),
                });
            }
            mark_node_synthetic(doc, *node);
            channel_delta(doc, *node, &mut delta)?;
        }
    }
    Ok(delta)
}

/// Records the fallout of a channel (re)assignment on `node`: every leaf in
/// its subtree may now present on a different channel, and explicit arc
/// offsets expressed in media units may convert at a different rate.
fn channel_delta(doc: &Document, node: NodeId, delta: &mut EditDelta) -> Result<()> {
    for id in subtree_preorder(doc, node)? {
        if doc.node(id)?.kind.is_leaf() {
            delta.channel_dirty.push(id);
        }
    }
    delta.arcs_changed = true;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arc::SyncArc;
    use crate::builder::DocumentBuilder;
    use crate::channel::MediaKind;

    fn story_doc() -> Document {
        DocumentBuilder::new("bulletin")
            .channel("video", MediaKind::Video)
            .channel("captions", MediaKind::Text)
            .channel("alt", MediaKind::Video)
            .channel("b", MediaKind::Video)
            .root_seq(|root| {
                root.ext("lead", "video", "lead.mpg");
                root.ext("follow", "video", "follow.mpg");
            })
            .build()
            .unwrap()
    }

    #[test]
    fn insert_subtree_appends_and_marks_dirty() {
        let rev = DocRevision::initial(Arc::new(story_doc()));
        let root = rev.doc().root().unwrap();
        let edit = Edit::InsertSubtree {
            parent: root,
            spec: NodeSpec::par(
                "breaking",
                vec![
                    NodeSpec::ext("anchor", "anchor.mpg").on_channel("video"),
                    NodeSpec::imm_text("caption", "BREAKING")
                        .on_channel("captions")
                        .lasting_ms(1500),
                ],
            ),
        };
        let (next, delta) = rev.apply(&edit).unwrap();
        assert_eq!(next.parent_id(), Some(rev.id()));
        assert_ne!(next.id(), rev.id());
        // Old revision is untouched.
        assert_eq!(rev.doc().node(root).unwrap().children.len(), 2);
        assert_eq!(next.doc().node(root).unwrap().children.len(), 3);
        assert_eq!(delta.dirty_parents, vec![root]);
        assert!(delta.inserted.is_some());
        assert_eq!(delta.duration_dirty.len(), 2);
        assert!(delta.arcs_changed);
    }

    #[test]
    fn insert_under_leaf_is_rejected() {
        let rev = DocRevision::initial(Arc::new(story_doc()));
        let leaf = rev.doc().leaves()[0];
        let edit = Edit::InsertSubtree {
            parent: leaf,
            spec: NodeSpec::ext("x", "x.mpg"),
        };
        assert!(matches!(
            rev.apply(&edit),
            Err(CoreError::InvalidEdit { .. })
        ));
    }

    #[test]
    fn remove_subtree_prunes_touching_arcs() {
        let mut doc = story_doc();
        let root = doc.root().unwrap();
        doc.add_arc(root, SyncArc::hard_start("lead", "follow"))
            .unwrap();
        let follow = doc.leaves()[1];
        let rev = DocRevision::initial(Arc::new(doc));
        let (next, delta) = rev.apply(&Edit::RemoveSubtree { node: follow }).unwrap();
        assert_eq!(next.doc().arcs().len(), 0, "arc into removed leaf pruned");
        assert_eq!(delta.removed, vec![follow]);
        assert!(delta.arcs_changed);
        // Old revision keeps its arc.
        assert_eq!(rev.doc().arcs().len(), 1);
    }

    #[test]
    fn root_removal_is_rejected() {
        let rev = DocRevision::initial(Arc::new(story_doc()));
        let root = rev.doc().root().unwrap();
        assert!(matches!(
            rev.apply(&Edit::RemoveSubtree { node: root }),
            Err(CoreError::InvalidEdit { .. })
        ));
    }

    #[test]
    fn retime_arc_replaces_window() {
        let mut doc = story_doc();
        let root = doc.root().unwrap();
        doc.add_arc(root, SyncArc::hard_start("lead", "follow"))
            .unwrap();
        let rev = DocRevision::initial(Arc::new(doc));
        let (next, delta) = rev
            .apply(&Edit::RetimeArc {
                index: 0,
                min_delay_ms: -40,
                max_delay_ms: Some(250),
                offset_ms: Some(500),
            })
            .unwrap();
        let (_, arc) = &next.doc().arcs()[0];
        assert_eq!(arc.min_delay, DelayMs::from_millis(-40));
        assert_eq!(arc.max_delay, MaxDelay::Bounded(DelayMs::from_millis(250)));
        assert_eq!(arc.offset, MediaTime::millis(500));
        assert_eq!(delta.retimed_arc, Some(0));
        assert!(delta.dirty_parents.is_empty());
    }

    #[test]
    fn retime_missing_arc_is_rejected() {
        let rev = DocRevision::initial(Arc::new(story_doc()));
        assert!(matches!(
            rev.apply(&Edit::RetimeArc {
                index: 3,
                min_delay_ms: 0,
                max_delay_ms: None,
                offset_ms: None,
            }),
            Err(CoreError::UnknownArc { index: 3 })
        ));
    }

    #[test]
    fn swap_descriptor_requires_external_leaf() {
        let rev = DocRevision::initial(Arc::new(story_doc()));
        let root = rev.doc().root().unwrap();
        assert!(rev
            .apply(&Edit::SwapDescriptor {
                node: root,
                file: "other.mpg".to_string(),
            })
            .is_err());
        let leaf = rev.doc().leaves()[0];
        let (next, delta) = rev
            .apply(&Edit::SwapDescriptor {
                node: leaf,
                file: "other.mpg".to_string(),
            })
            .unwrap();
        assert_eq!(delta.duration_dirty, vec![leaf]);
        let value = next.doc().own_attr(leaf, &AttrName::File).unwrap().cloned();
        assert_eq!(value, Some(AttrValue::Str("other.mpg".to_string())));
    }

    #[test]
    fn channel_edits_mark_subtree_leaves() {
        let rev = DocRevision::initial(Arc::new(story_doc()));
        let root = rev.doc().root().unwrap();
        let (next, delta) = rev
            .apply(&Edit::AssignChannel {
                node: root,
                channel: Symbol::intern("alt"),
            })
            .unwrap();
        assert_eq!(delta.channel_dirty.len(), 2);
        assert!(delta.arcs_changed);
        let (cleared, delta2) = next.apply(&Edit::ClearChannel { node: root }).unwrap();
        assert_eq!(delta2.channel_dirty.len(), 2);
        // Clearing an assignment that is not there is an error.
        assert!(cleared.apply(&Edit::ClearChannel { node: root }).is_err());
    }

    #[test]
    fn revision_ids_advance_monotonically_along_a_chain() {
        let rev = DocRevision::initial(Arc::new(story_doc()));
        let leaf = rev.doc().leaves()[0];
        let (next, _) = rev
            .apply(&Edit::AssignChannel {
                node: leaf,
                channel: Symbol::intern("b"),
            })
            .unwrap();
        assert!(next.id() > rev.id());
        assert_eq!(next.parent_id(), Some(rev.id()));
    }
}
