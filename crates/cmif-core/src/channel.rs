//! Synchronization channels and the channel dictionary.
//!
//! "A CMIF description consists of the mapping of event descriptors onto one
//! of a set of synchronization channels. Each channel describes how data of
//! a single medium is manipulated in the document. It is possible to have
//! several channels of the same medium type; all data of a type may also be
//! placed on a single channel." (§3.1)
//!
//! Channels are declared in the root node's channel dictionary (Figure 7),
//! which "defines one or more synchronization channels […] Each channel
//! definition defines the medium used by that channel."

use std::fmt;

use crate::error::{CoreError, Result};
use crate::symbol::Symbol;
use crate::value::AttrValue;

/// The medium carried by a channel or described by a data descriptor.
///
/// The paper's examples (§3.1, §4): sound clips, video segments, text
/// blocks, graphics images, label text, and generator programs that produce
/// data of a particular type.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum MediaKind {
    /// Sampled sound.
    Audio,
    /// Moving images (frame sequences).
    Video,
    /// Still raster images / graphic illustrations.
    Image,
    /// Flowing text (e.g. captions).
    Text,
    /// Short labelling text (titles, story names).
    Label,
    /// A program that produces data of some medium when executed
    /// (e.g. "a graphics program that produces a rendered 3-D image").
    Generator,
}

impl MediaKind {
    /// All media kinds, in a stable order.
    pub const ALL: [MediaKind; 6] = [
        MediaKind::Audio,
        MediaKind::Video,
        MediaKind::Image,
        MediaKind::Text,
        MediaKind::Label,
        MediaKind::Generator,
    ];

    /// Canonical lower-case spelling used by the interchange format.
    pub fn as_str(&self) -> &'static str {
        match self {
            MediaKind::Audio => "audio",
            MediaKind::Video => "video",
            MediaKind::Image => "image",
            MediaKind::Text => "text",
            MediaKind::Label => "label",
            MediaKind::Generator => "generator",
        }
    }

    /// Parses a canonical spelling; returns `None` for unknown media.
    pub fn parse(s: &str) -> Option<MediaKind> {
        match s {
            "audio" | "sound" => Some(MediaKind::Audio),
            "video" => Some(MediaKind::Video),
            "image" | "graphic" | "graphics" => Some(MediaKind::Image),
            "text" | "caption" => Some(MediaKind::Text),
            "label" => Some(MediaKind::Label),
            "generator" | "program" => Some(MediaKind::Generator),
            _ => None,
        }
    }

    /// True for media that occupy screen real estate in the virtual
    /// presentation environment (as opposed to loudspeaker channels).
    pub fn is_visual(&self) -> bool {
        !matches!(self, MediaKind::Audio)
    }

    /// True for media that are rendered continuously over time (audio and
    /// video), as opposed to discrete media shown for a period.
    pub fn is_continuous(&self) -> bool {
        matches!(self, MediaKind::Audio | MediaKind::Video)
    }
}

impl fmt::Display for MediaKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One channel definition from the root node's channel dictionary.
#[derive(Debug, Clone, PartialEq)]
pub struct ChannelDef {
    /// The channel's interned name, referenced by `channel` attributes on
    /// nodes.
    pub name: Symbol,
    /// The medium the channel carries.
    pub medium: MediaKind,
    /// Free-form channel attributes (e.g. preferred window size, language,
    /// loudspeaker position); passed through to the presentation mapper.
    pub extra: Vec<(Symbol, AttrValue)>,
}

impl ChannelDef {
    /// Creates a channel definition with no extra attributes.
    pub fn new(name: impl Into<Symbol>, medium: MediaKind) -> ChannelDef {
        ChannelDef {
            name: name.into(),
            medium,
            extra: Vec::new(),
        }
    }

    /// Adds an extra attribute (builder style).
    pub fn with_extra(mut self, key: impl Into<Symbol>, value: AttrValue) -> ChannelDef {
        self.extra.push((key.into(), value));
        self
    }

    /// Looks up an extra attribute by key.
    pub fn extra_attr(&self, key: &str) -> Option<&AttrValue> {
        let key = Symbol::lookup(key)?;
        self.extra.iter().find(|(k, _)| *k == key).map(|(_, v)| v)
    }
}

/// The channel dictionary of the root node.
///
/// Declaration order is preserved: the Evening News presents its channels in
/// a meaningful order (audio, video, graphic, caption, label) and views
/// should reproduce it.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ChannelDictionary {
    channels: Vec<ChannelDef>,
}

impl ChannelDictionary {
    /// Creates an empty dictionary.
    pub fn new() -> ChannelDictionary {
        ChannelDictionary {
            channels: Vec::new(),
        }
    }

    /// Number of channels defined.
    pub fn len(&self) -> usize {
        self.channels.len()
    }

    /// True when no channels are defined.
    pub fn is_empty(&self) -> bool {
        self.channels.is_empty()
    }

    /// Defines a channel, rejecting duplicate names.
    pub fn define(&mut self, def: ChannelDef) -> Result<()> {
        if self.get_symbol(def.name).is_some() {
            return Err(CoreError::DuplicateChannel { channel: def.name });
        }
        self.channels.push(def);
        Ok(())
    }

    /// Looks up a channel by its interned name — an integer comparison per
    /// entry, no string walks.
    pub fn get_symbol(&self, name: Symbol) -> Option<&ChannelDef> {
        self.channels.iter().find(|c| c.name == name)
    }

    /// Looks up a channel by textual name. Never interns: unknown names
    /// miss without growing the pool.
    pub fn get(&self, name: &str) -> Option<&ChannelDef> {
        self.get_symbol(Symbol::lookup(name)?)
    }

    /// True when a channel with the given name exists.
    pub fn contains(&self, name: &str) -> bool {
        self.get(name).is_some()
    }

    /// True when a channel with the given interned name exists.
    pub fn contains_symbol(&self, name: Symbol) -> bool {
        self.get_symbol(name).is_some()
    }

    /// Iterates over the channels in declaration order.
    pub fn iter(&self) -> impl Iterator<Item = &ChannelDef> {
        self.channels.iter()
    }

    /// The names of every channel carrying the given medium.
    pub fn channels_of(&self, medium: MediaKind) -> Vec<&'static str> {
        self.channels
            .iter()
            .filter(|c| c.medium == medium)
            .map(|c| c.name.as_str())
            .collect()
    }
}

impl FromIterator<ChannelDef> for ChannelDictionary {
    fn from_iter<T: IntoIterator<Item = ChannelDef>>(iter: T) -> Self {
        let mut dict = ChannelDictionary::new();
        for def in iter {
            // Last definition wins for duplicates in bulk construction.
            if let Some(existing) = dict.channels.iter_mut().find(|c| c.name == def.name) {
                *existing = def;
            } else {
                dict.channels.push(def);
            }
        }
        dict
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn media_kind_round_trip() {
        for kind in MediaKind::ALL {
            assert_eq!(MediaKind::parse(kind.as_str()), Some(kind));
        }
        assert_eq!(MediaKind::parse("graphics"), Some(MediaKind::Image));
        assert_eq!(MediaKind::parse("sound"), Some(MediaKind::Audio));
        assert_eq!(MediaKind::parse("smellovision"), None);
    }

    #[test]
    fn media_kind_classification() {
        assert!(!MediaKind::Audio.is_visual());
        assert!(MediaKind::Video.is_visual());
        assert!(MediaKind::Label.is_visual());
        assert!(MediaKind::Audio.is_continuous());
        assert!(MediaKind::Video.is_continuous());
        assert!(!MediaKind::Image.is_continuous());
        assert!(!MediaKind::Text.is_continuous());
    }

    #[test]
    fn channel_dictionary_defines_and_looks_up() {
        let mut dict = ChannelDictionary::new();
        dict.define(ChannelDef::new("audio", MediaKind::Audio))
            .unwrap();
        dict.define(ChannelDef::new("video", MediaKind::Video))
            .unwrap();
        assert_eq!(dict.len(), 2);
        assert!(dict.contains("audio"));
        assert!(!dict.contains("caption"));
        assert_eq!(dict.get("video").unwrap().medium, MediaKind::Video);
    }

    #[test]
    fn channel_dictionary_rejects_duplicates() {
        let mut dict = ChannelDictionary::new();
        dict.define(ChannelDef::new("audio", MediaKind::Audio))
            .unwrap();
        let err = dict
            .define(ChannelDef::new("audio", MediaKind::Video))
            .unwrap_err();
        assert!(matches!(err, CoreError::DuplicateChannel { .. }));
    }

    #[test]
    fn channel_dictionary_preserves_order_and_filters_by_medium() {
        let dict: ChannelDictionary = [
            ChannelDef::new("audio", MediaKind::Audio),
            ChannelDef::new("video", MediaKind::Video),
            ChannelDef::new("graphic", MediaKind::Image),
            ChannelDef::new("caption", MediaKind::Text),
            ChannelDef::new("label", MediaKind::Label),
        ]
        .into_iter()
        .collect();
        let names: Vec<_> = dict.iter().map(|c| c.name.as_str()).collect();
        assert_eq!(names, vec!["audio", "video", "graphic", "caption", "label"]);
        assert_eq!(dict.channels_of(MediaKind::Image), vec!["graphic"]);
        assert!(dict.channels_of(MediaKind::Generator).is_empty());
    }

    #[test]
    fn channel_extra_attributes() {
        let def = ChannelDef::new("caption", MediaKind::Text)
            .with_extra("language", AttrValue::Id("en".into()))
            .with_extra("lines", AttrValue::Number(2));
        assert_eq!(def.extra_attr("language").unwrap().as_text(), Some("en"));
        assert_eq!(def.extra_attr("lines").unwrap().as_number(), Some(2));
        assert!(def.extra_attr("missing").is_none());
    }

    #[test]
    fn from_iterator_last_duplicate_wins() {
        let dict: ChannelDictionary = [
            ChannelDef::new("a", MediaKind::Audio),
            ChannelDef::new("a", MediaKind::Video),
        ]
        .into_iter()
        .collect();
        assert_eq!(dict.len(), 1);
        assert_eq!(dict.get("a").unwrap().medium, MediaKind::Video);
    }
}
