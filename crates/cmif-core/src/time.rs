//! Time and media-unit arithmetic.
//!
//! CMIF synchronization offsets "may be expressed in terms of media-dependent
//! units (such as seconds, frames, bytes, etc.)" (§5.3.2).  The scheduler,
//! however, works on a single document-wide clock.  This module provides:
//!
//! * [`TimeMs`] — the document clock, an integral number of milliseconds
//!   relative to the root's implied timing reference point;
//! * [`DelayMs`] — a signed delay used for the δ (minimum acceptable) and
//!   ε (maximum tolerable) window of a synchronization arc;
//! * [`MediaUnit`] / [`MediaTime`] — media-dependent quantities together
//!   with the [`RateInfo`] required to convert them onto the document clock.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

use crate::error::{CoreError, Result};

/// A point (or duration) on the document clock, in milliseconds.
///
/// The root node "provides an implied timing reference point for all other
/// nodes in the document" (§5.1); `TimeMs(0)` is that reference point.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct TimeMs(pub i64);

impl TimeMs {
    /// The document origin (the root's implied reference point).
    pub const ZERO: TimeMs = TimeMs(0);

    /// Creates a time value from whole seconds.
    pub const fn from_secs(secs: i64) -> Self {
        TimeMs(secs * 1000)
    }

    /// Creates a time value from milliseconds.
    pub const fn from_millis(ms: i64) -> Self {
        TimeMs(ms)
    }

    /// Returns the raw millisecond count.
    pub const fn as_millis(self) -> i64 {
        self.0
    }

    /// Returns the value in (possibly fractional) seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1000.0
    }

    /// Saturating addition of a signed delay.
    pub fn offset_by(self, delay: DelayMs) -> TimeMs {
        TimeMs(self.0.saturating_add(delay.0))
    }

    /// Returns the larger of two times.
    pub fn max(self, other: TimeMs) -> TimeMs {
        if self.0 >= other.0 {
            self
        } else {
            other
        }
    }

    /// Returns the smaller of two times.
    pub fn min(self, other: TimeMs) -> TimeMs {
        if self.0 <= other.0 {
            self
        } else {
            other
        }
    }
}

impl Add for TimeMs {
    type Output = TimeMs;
    fn add(self, rhs: TimeMs) -> TimeMs {
        TimeMs(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign for TimeMs {
    fn add_assign(&mut self, rhs: TimeMs) {
        self.0 = self.0.saturating_add(rhs.0);
    }
}

impl Sub for TimeMs {
    type Output = DelayMs;
    fn sub(self, rhs: TimeMs) -> DelayMs {
        DelayMs(self.0.saturating_sub(rhs.0))
    }
}

impl fmt::Display for TimeMs {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 % 1000 == 0 {
            write!(f, "{}s", self.0 / 1000)
        } else {
            write!(f, "{}ms", self.0)
        }
    }
}

/// A signed delay on the document clock, in milliseconds.
///
/// Synchronization arcs use a pair of delays (§5.3.1):
///
/// * the **minimum acceptable delay** δ — zero or negative (a negative value
///   allows the target to start *before* the reference time);
/// * the **maximum tolerable delay** ε — zero, positive, or unbounded.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct DelayMs(pub i64);

impl DelayMs {
    /// The zero delay (hard synchronization when used for both δ and ε).
    pub const ZERO: DelayMs = DelayMs(0);

    /// Creates a delay from milliseconds.
    pub const fn from_millis(ms: i64) -> Self {
        DelayMs(ms)
    }

    /// Creates a delay from whole seconds.
    pub const fn from_secs(secs: i64) -> Self {
        DelayMs(secs * 1000)
    }

    /// Returns the raw millisecond count.
    pub const fn as_millis(self) -> i64 {
        self.0
    }

    /// True if the delay is negative (earlier than the reference time).
    pub const fn is_negative(self) -> bool {
        self.0 < 0
    }

    /// True if the delay is exactly zero.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Absolute value of the delay.
    pub const fn abs(self) -> DelayMs {
        DelayMs(self.0.abs())
    }
}

impl Add for DelayMs {
    type Output = DelayMs;
    fn add(self, rhs: DelayMs) -> DelayMs {
        DelayMs(self.0.saturating_add(rhs.0))
    }
}

impl fmt::Display for DelayMs {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}ms", self.0)
    }
}

/// The maximum tolerable delay of an arc: either a bounded number of
/// milliseconds or unbounded ("possibly infinite", §5.3.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum MaxDelay {
    /// No upper bound on the tolerable delay.
    #[default]
    Unbounded,
    /// An upper bound in milliseconds (must be ≥ 0).
    Bounded(DelayMs),
}

impl MaxDelay {
    /// A hard upper bound of zero.
    pub const HARD: MaxDelay = MaxDelay::Bounded(DelayMs::ZERO);

    /// Returns the bound in milliseconds, or `None` when unbounded.
    pub fn bound(self) -> Option<DelayMs> {
        match self {
            MaxDelay::Unbounded => None,
            MaxDelay::Bounded(d) => Some(d),
        }
    }

    /// True when the delay window `[min, self]` is a valid, non-empty
    /// interval according to §5.3.1: the minimum may not be positive, the
    /// maximum may not be negative, and min ≤ max.
    pub fn window_is_valid(self, min: DelayMs) -> bool {
        if min.0 > 0 {
            return false;
        }
        match self {
            MaxDelay::Unbounded => true,
            MaxDelay::Bounded(max) => max.0 >= 0 && min.0 <= max.0,
        }
    }
}

impl fmt::Display for MaxDelay {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MaxDelay::Unbounded => write!(f, "inf"),
            MaxDelay::Bounded(d) => write!(f, "{d}"),
        }
    }
}

/// Media-dependent units an offset may be expressed in (§5.3.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MediaUnit {
    /// Milliseconds on the document clock.
    Milliseconds,
    /// Whole seconds.
    Seconds,
    /// Video or animation frames; conversion requires a frame rate.
    Frames,
    /// Audio samples; conversion requires a sampling rate.
    Samples,
    /// Raw bytes of the underlying encoding; conversion requires a byte rate.
    Bytes,
}

impl fmt::Display for MediaUnit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            MediaUnit::Milliseconds => "ms",
            MediaUnit::Seconds => "s",
            MediaUnit::Frames => "frames",
            MediaUnit::Samples => "samples",
            MediaUnit::Bytes => "bytes",
        };
        f.write_str(s)
    }
}

/// A quantity expressed in a media-dependent unit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MediaTime {
    /// Magnitude in `unit`s. Offsets in CMIF are "integral positive" (§5.3.2)
    /// but the type is signed so intermediate arithmetic cannot wrap.
    pub value: i64,
    /// The unit the magnitude is expressed in.
    pub unit: MediaUnit,
}

impl MediaTime {
    /// Creates a quantity in milliseconds.
    pub const fn millis(value: i64) -> Self {
        MediaTime {
            value,
            unit: MediaUnit::Milliseconds,
        }
    }

    /// Creates a quantity in seconds.
    pub const fn seconds(value: i64) -> Self {
        MediaTime {
            value,
            unit: MediaUnit::Seconds,
        }
    }

    /// Creates a quantity in frames.
    pub const fn frames(value: i64) -> Self {
        MediaTime {
            value,
            unit: MediaUnit::Frames,
        }
    }

    /// Creates a quantity in audio samples.
    pub const fn samples(value: i64) -> Self {
        MediaTime {
            value,
            unit: MediaUnit::Samples,
        }
    }

    /// Creates a quantity in bytes.
    pub const fn bytes(value: i64) -> Self {
        MediaTime {
            value,
            unit: MediaUnit::Bytes,
        }
    }

    /// Converts the quantity to the document clock using `rates`.
    ///
    /// Returns [`CoreError::UnitConversion`] when the unit needs a rate the
    /// caller did not supply (e.g. frames without a frame rate).
    pub fn to_millis(self, rates: &RateInfo) -> Result<TimeMs> {
        let ms = match self.unit {
            MediaUnit::Milliseconds => self.value,
            MediaUnit::Seconds => self.value.saturating_mul(1000),
            MediaUnit::Frames => {
                let fps = rates
                    .frames_per_second
                    .ok_or_else(|| CoreError::UnitConversion {
                        reason: "offset in frames requires a frame rate".to_string(),
                    })?;
                if fps <= 0.0 {
                    return Err(CoreError::UnitConversion {
                        reason: format!("frame rate must be positive, got {fps}"),
                    });
                }
                (self.value as f64 * 1000.0 / fps).round() as i64
            }
            MediaUnit::Samples => {
                let sr = rates
                    .samples_per_second
                    .ok_or_else(|| CoreError::UnitConversion {
                        reason: "offset in samples requires a sampling rate".to_string(),
                    })?;
                if sr == 0 {
                    return Err(CoreError::UnitConversion {
                        reason: "sampling rate must be positive".to_string(),
                    });
                }
                (self.value as f64 * 1000.0 / sr as f64).round() as i64
            }
            MediaUnit::Bytes => {
                let bps = rates
                    .bytes_per_second
                    .ok_or_else(|| CoreError::UnitConversion {
                        reason: "offset in bytes requires a byte rate".to_string(),
                    })?;
                if bps == 0 {
                    return Err(CoreError::UnitConversion {
                        reason: "byte rate must be positive".to_string(),
                    });
                }
                (self.value as f64 * 1000.0 / bps as f64).round() as i64
            }
        };
        Ok(TimeMs(ms))
    }
}

impl fmt::Display for MediaTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {}", self.value, self.unit)
    }
}

/// Rates needed to convert media-dependent units onto the document clock.
///
/// Typically derived from a data descriptor (frame rate of a video block,
/// sampling rate of an audio block) or from a channel definition.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct RateInfo {
    /// Video/animation frame rate in frames per second.
    pub frames_per_second: Option<f64>,
    /// Audio sampling rate in samples per second.
    pub samples_per_second: Option<u32>,
    /// Encoded data rate in bytes per second.
    pub bytes_per_second: Option<u64>,
}

impl RateInfo {
    /// A rate table with no conversions available (only ms and s convert).
    pub const NONE: RateInfo = RateInfo {
        frames_per_second: None,
        samples_per_second: None,
        bytes_per_second: None,
    };

    /// Convenience constructor for a video-style rate table.
    pub fn video(fps: f64) -> Self {
        RateInfo {
            frames_per_second: Some(fps),
            ..RateInfo::NONE
        }
    }

    /// Convenience constructor for an audio-style rate table.
    pub fn audio(samples_per_second: u32, bytes_per_second: u64) -> Self {
        RateInfo {
            samples_per_second: Some(samples_per_second),
            bytes_per_second: Some(bytes_per_second),
            ..RateInfo::NONE
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_arithmetic_and_display() {
        let t = TimeMs::from_secs(2) + TimeMs::from_millis(500);
        assert_eq!(t.as_millis(), 2500);
        assert_eq!(t.to_string(), "2500ms");
        assert_eq!(TimeMs::from_secs(3).to_string(), "3s");
        assert_eq!((t - TimeMs::from_millis(500)).as_millis(), 2000);
    }

    #[test]
    fn offset_by_negative_delay_moves_earlier() {
        let t = TimeMs::from_millis(1000).offset_by(DelayMs::from_millis(-250));
        assert_eq!(t.as_millis(), 750);
    }

    #[test]
    fn max_and_min() {
        let a = TimeMs::from_millis(10);
        let b = TimeMs::from_millis(20);
        assert_eq!(a.max(b), b);
        assert_eq!(a.min(b), a);
    }

    #[test]
    fn delay_window_validity_rules() {
        // Hard synchronization: both zero.
        assert!(MaxDelay::HARD.window_is_valid(DelayMs::ZERO));
        // Negative minimum (start earlier) with bounded positive maximum.
        assert!(
            MaxDelay::Bounded(DelayMs::from_millis(100)).window_is_valid(DelayMs::from_millis(-50))
        );
        // Positive minimum delay has no meaning.
        assert!(!MaxDelay::Unbounded.window_is_valid(DelayMs::from_millis(1)));
        // Negative maximum delay has no meaning.
        assert!(!MaxDelay::Bounded(DelayMs::from_millis(-1)).window_is_valid(DelayMs::ZERO));
        // Unbounded maximum always valid with non-positive minimum.
        assert!(MaxDelay::Unbounded.window_is_valid(DelayMs::from_millis(-1000)));
    }

    #[test]
    fn media_time_conversion_seconds_and_millis() {
        assert_eq!(
            MediaTime::seconds(3)
                .to_millis(&RateInfo::NONE)
                .unwrap()
                .as_millis(),
            3000
        );
        assert_eq!(
            MediaTime::millis(42)
                .to_millis(&RateInfo::NONE)
                .unwrap()
                .as_millis(),
            42
        );
    }

    #[test]
    fn media_time_conversion_frames() {
        let rates = RateInfo::video(25.0);
        assert_eq!(
            MediaTime::frames(50).to_millis(&rates).unwrap().as_millis(),
            2000
        );
        // 30 fps, 15 frames -> 500ms.
        let rates = RateInfo::video(30.0);
        assert_eq!(
            MediaTime::frames(15).to_millis(&rates).unwrap().as_millis(),
            500
        );
    }

    #[test]
    fn media_time_conversion_samples_and_bytes() {
        let rates = RateInfo::audio(8000, 16_000);
        assert_eq!(
            MediaTime::samples(4000)
                .to_millis(&rates)
                .unwrap()
                .as_millis(),
            500
        );
        assert_eq!(
            MediaTime::bytes(16_000)
                .to_millis(&rates)
                .unwrap()
                .as_millis(),
            1000
        );
    }

    #[test]
    fn media_time_conversion_missing_rate_is_error() {
        let err = MediaTime::frames(10)
            .to_millis(&RateInfo::NONE)
            .unwrap_err();
        assert!(matches!(err, CoreError::UnitConversion { .. }));
        let err = MediaTime::samples(10)
            .to_millis(&RateInfo::NONE)
            .unwrap_err();
        assert!(matches!(err, CoreError::UnitConversion { .. }));
        let err = MediaTime::bytes(10).to_millis(&RateInfo::NONE).unwrap_err();
        assert!(matches!(err, CoreError::UnitConversion { .. }));
    }

    #[test]
    fn media_time_conversion_zero_rate_is_error() {
        let rates = RateInfo {
            frames_per_second: Some(0.0),
            ..RateInfo::NONE
        };
        assert!(MediaTime::frames(10).to_millis(&rates).is_err());
    }

    #[test]
    fn media_time_display() {
        assert_eq!(MediaTime::frames(12).to_string(), "12 frames");
        assert_eq!(MediaTime::seconds(3).to_string(), "3 s");
    }

    #[test]
    fn max_delay_display() {
        assert_eq!(MaxDelay::Unbounded.to_string(), "inf");
        assert_eq!(
            MaxDelay::Bounded(DelayMs::from_millis(5)).to_string(),
            "5ms"
        );
    }
}
