//! The diagnostics framework: coded, severity-graded, span-carrying
//! findings about a document.
//!
//! The paper spreads its consistency rules over §5.1–§5.3 and expects the
//! authoring environment to show the author *every* violation, not just the
//! first one. A [`Diagnostic`] is one such finding: an error [`Code`] from
//! the registered namespace (L0xx structure, L1xx timing/synchronization,
//! L2xx channels/resources), a [`Severity`] after configuration, a message,
//! and — when the document was parsed from text and a [`SourceMap`] was
//! recorded — the span of the offending source bytes.
//!
//! The analyses that *produce* diagnostics live in `cmif-lint`; this module
//! only defines the vocabulary, so that lower layers (the scheduler's
//! admission gate, the pipeline) can carry diagnostics without depending on
//! the linter.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

use crate::node::NodeId;
use crate::span::Span;

// ---------------------------------------------------------------------------
// Codes
// ---------------------------------------------------------------------------

/// A registered lint code, e.g. `L101`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Code(&'static str);

impl Code {
    /// The code's text, e.g. `"L101"`.
    pub fn as_str(&self) -> &'static str {
        self.0
    }

    /// Looks a code up by its text in the registry.
    pub fn parse(text: &str) -> Option<Code> {
        REGISTRY
            .iter()
            .find(|info| info.code.0 == text)
            .map(|info| info.code)
    }

    /// The registry entry for this code.
    pub fn info(&self) -> &'static CodeInfo {
        REGISTRY
            .iter()
            .find(|info| info.code == *self)
            .unwrap_or(&UNREGISTERED)
    }
}

impl fmt::Display for Code {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.0)
    }
}

/// One entry of the code registry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CodeInfo {
    /// The code itself.
    pub code: Code,
    /// One-line summary of what the code reports.
    pub summary: &'static str,
    /// Severity applied when no [`SeverityConfig`] overrides it.
    pub default_severity: Severity,
}

const fn info(code: &'static str, summary: &'static str, severity: Severity) -> CodeInfo {
    CodeInfo {
        code: Code(code),
        summary,
        default_severity: severity,
    }
}

static UNREGISTERED: CodeInfo = info("L000", "unregistered code", Severity::Deny);

/// The registered code namespace: L0xx structure, L1xx timing and
/// synchronization, L2xx channels and resources.
pub static REGISTRY: &[CodeInfo] = &[
    info("L001", "the document has no root node", Severity::Deny),
    info(
        "L002",
        "two direct children of one parent share a name",
        Severity::Deny,
    ),
    info(
        "L003",
        "a root-only attribute appears below the root",
        Severity::Deny,
    ),
    info(
        "L004",
        "an attribute occurs more than once on one node",
        Severity::Deny,
    ),
    info("L005", "a style reference does not resolve", Severity::Deny),
    info(
        "L006",
        "the style dictionary contains a definition cycle",
        Severity::Deny,
    ),
    info(
        "L007",
        "an external node has no file attribute",
        Severity::Deny,
    ),
    info("L008", "a leaf node has no channel", Severity::Deny),
    info(
        "L009",
        "a node is not reachable from the root",
        Severity::Warn,
    ),
    info(
        "L101",
        "synchronization arcs form a positive cycle",
        Severity::Deny,
    ),
    info(
        "L102",
        "a synchronization arc has an invalid delay window",
        Severity::Deny,
    ),
    info(
        "L103",
        "a synchronization arc endpoint does not resolve",
        Severity::Deny,
    ),
    info(
        "L104",
        "constraints on one event pair have no common window",
        Severity::Deny,
    ),
    info(
        "L201",
        "a channel reference does not resolve",
        Severity::Deny,
    ),
    info(
        "L202",
        "a file attribute names no descriptor in the catalog",
        Severity::Deny,
    ),
    info("L203", "two events overlap on one channel", Severity::Warn),
    info("L204", "the tree exceeds the depth limit", Severity::Deny),
    info(
        "L205",
        "the document exceeds the node-count limit",
        Severity::Deny,
    ),
];

/// Convenient constants for every registered code.
pub mod codes {
    use super::Code;

    /// L001: the document has no root node.
    pub const EMPTY_DOCUMENT: Code = Code("L001");
    /// L002: two direct children of one parent share a name.
    pub const DUPLICATE_SIBLING_NAME: Code = Code("L002");
    /// L003: a root-only attribute appears below the root.
    pub const ROOT_ONLY_ATTRIBUTE: Code = Code("L003");
    /// L004: an attribute occurs more than once on one node.
    pub const DUPLICATE_ATTRIBUTE: Code = Code("L004");
    /// L005: a style reference does not resolve.
    pub const UNKNOWN_STYLE: Code = Code("L005");
    /// L006: the style dictionary contains a definition cycle.
    pub const STYLE_CYCLE: Code = Code("L006");
    /// L007: an external node has no file attribute.
    pub const MISSING_FILE: Code = Code("L007");
    /// L008: a leaf node has no channel.
    pub const MISSING_CHANNEL: Code = Code("L008");
    /// L009: a node is not reachable from the root.
    pub const UNREACHABLE_NODE: Code = Code("L009");
    /// L101: synchronization arcs form a positive cycle.
    pub const ARC_CYCLE: Code = Code("L101");
    /// L102: a synchronization arc has an invalid delay window.
    pub const INVALID_DELAY_WINDOW: Code = Code("L102");
    /// L103: a synchronization arc endpoint does not resolve.
    pub const UNRESOLVED_ARC_ENDPOINT: Code = Code("L103");
    /// L104: constraints on one event pair have no common window.
    pub const CONFLICTING_WINDOWS: Code = Code("L104");
    /// L201: a channel reference does not resolve.
    pub const UNKNOWN_CHANNEL: Code = Code("L201");
    /// L202: a file attribute names no descriptor in the catalog.
    pub const DANGLING_DESCRIPTOR: Code = Code("L202");
    /// L203: two events overlap on one channel.
    pub const CHANNEL_DOUBLE_BOOKING: Code = Code("L203");
    /// L204: the tree exceeds the depth limit.
    pub const DEPTH_LIMIT: Code = Code("L204");
    /// L205: the document exceeds the node-count limit.
    pub const NODE_LIMIT: Code = Code("L205");
}

// ---------------------------------------------------------------------------
// Severity
// ---------------------------------------------------------------------------

/// How a diagnostic is acted on. Ordered: `Allow < Warn < Deny`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// The finding is suppressed entirely.
    Allow,
    /// The finding is reported but does not gate anything.
    Warn,
    /// The finding rejects the document (at pipeline stage 2 or at engine
    /// admission, wherever the check runs).
    Deny,
}

impl Severity {
    /// The renderer's headline word for this severity.
    pub fn headline(&self) -> &'static str {
        match self {
            Severity::Allow => "allowed",
            Severity::Warn => "warning",
            Severity::Deny => "error",
        }
    }
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Severity::Allow => f.write_str("allow"),
            Severity::Warn => f.write_str("warn"),
            Severity::Deny => f.write_str("deny"),
        }
    }
}

/// Per-code severity overrides over the registry defaults.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct SeverityConfig {
    /// When set, replaces the registry default for codes with no explicit
    /// override.
    default: Option<Severity>,
    overrides: BTreeMap<Code, Severity>,
}

impl SeverityConfig {
    /// Registry defaults, no overrides.
    pub fn new() -> SeverityConfig {
        SeverityConfig::default()
    }

    /// Replaces the registry default for every code without an explicit
    /// override.
    pub fn default_severity(mut self, severity: Severity) -> SeverityConfig {
        self.default = Some(severity);
        self
    }

    /// Sets one code's severity.
    pub fn set(mut self, code: Code, severity: Severity) -> SeverityConfig {
        self.overrides.insert(code, severity);
        self
    }

    /// Shorthand for [`SeverityConfig::set`] with [`Severity::Allow`].
    pub fn allow(self, code: Code) -> SeverityConfig {
        self.set(code, Severity::Allow)
    }

    /// Shorthand for [`SeverityConfig::set`] with [`Severity::Warn`].
    pub fn warn(self, code: Code) -> SeverityConfig {
        self.set(code, Severity::Warn)
    }

    /// Shorthand for [`SeverityConfig::set`] with [`Severity::Deny`].
    pub fn deny(self, code: Code) -> SeverityConfig {
        self.set(code, Severity::Deny)
    }

    /// The effective severity of a code under this configuration.
    pub fn severity_of(&self, code: Code) -> Severity {
        if let Some(severity) = self.overrides.get(&code) {
            return *severity;
        }
        self.default.unwrap_or(code.info().default_severity)
    }
}

// ---------------------------------------------------------------------------
// Diagnostics
// ---------------------------------------------------------------------------

/// A secondary location or note attached to a [`Diagnostic`] — for cycles,
/// every participating arc becomes one related entry.
#[derive(Debug, Clone, PartialEq)]
pub struct Related {
    /// What this location contributes to the finding.
    pub message: String,
    /// The source bytes, when provenance is available.
    pub span: Option<Span>,
    /// The document path of the node involved, when one exists.
    pub node_path: Option<String>,
}

impl Related {
    /// Creates a related note with neither span nor path.
    pub fn new(message: impl Into<String>) -> Related {
        Related {
            message: message.into(),
            span: None,
            node_path: None,
        }
    }

    /// Attaches the source span.
    pub fn with_span(mut self, span: Span) -> Related {
        self.span = Some(span);
        self
    }

    /// Attaches the document path.
    pub fn at_path(mut self, path: impl Into<String>) -> Related {
        self.node_path = Some(path.into());
        self
    }
}

/// One coded finding about a document.
#[derive(Debug, Clone, PartialEq)]
pub struct Diagnostic {
    /// The registered code.
    pub code: Code,
    /// The effective severity (after configuration).
    pub severity: Severity,
    /// Human-readable description of the finding.
    pub message: String,
    /// The offending source bytes, when the document carries a
    /// [`SourceMap`].
    pub span: Option<Span>,
    /// The document path of the offending node, when one exists.
    pub node_path: Option<String>,
    /// Secondary locations (e.g. every arc of a cycle).
    pub related: Vec<Related>,
    /// A suggestion for fixing the finding.
    pub help: Option<String>,
}

impl Diagnostic {
    /// Creates a diagnostic with the code's registry-default severity.
    pub fn new(code: Code, message: impl Into<String>) -> Diagnostic {
        Diagnostic {
            code,
            severity: code.info().default_severity,
            message: message.into(),
            span: None,
            node_path: None,
            related: Vec::new(),
            help: None,
        }
    }

    /// Replaces the severity (the linter applies its [`SeverityConfig`]
    /// this way).
    pub fn with_severity(mut self, severity: Severity) -> Diagnostic {
        self.severity = severity;
        self
    }

    /// Attaches the offending source span.
    pub fn with_span(mut self, span: Span) -> Diagnostic {
        self.span = Some(span);
        self
    }

    /// Attaches the offending node's document path.
    pub fn at_path(mut self, path: impl Into<String>) -> Diagnostic {
        self.node_path = Some(path.into());
        self
    }

    /// Attaches a secondary location.
    pub fn with_related(mut self, related: Related) -> Diagnostic {
        self.related.push(related);
        self
    }

    /// Attaches a fix suggestion.
    pub fn with_help(mut self, help: impl Into<String>) -> Diagnostic {
        self.help = Some(help.into());
        self
    }

    /// True when this diagnostic rejects the document.
    pub fn is_deny(&self) -> bool {
        self.severity == Severity::Deny
    }

    /// Renders the diagnostic in the compiler style: headline, location
    /// arrow, the offending source line underlined (when `sources` holds
    /// the text the document was parsed from), related notes, help.
    pub fn render(&self, sources: Option<&SourceMap>) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{}[{}]: {}\n",
            self.severity.headline(),
            self.code,
            self.message
        ));
        let location = match (&self.node_path, self.span) {
            (Some(path), Some(span)) => format!("{path} ({})", span.start),
            (Some(path), None) => path.clone(),
            (None, Some(span)) => span.start.to_string(),
            (None, None) => String::new(),
        };
        if !location.is_empty() {
            out.push_str(&format!("  --> {location}\n"));
        }
        if let (Some(span), Some(sources)) = (self.span, sources) {
            render_snippet(&mut out, span, sources);
        }
        for related in &self.related {
            let suffix = match (&related.node_path, related.span) {
                (Some(path), Some(span)) => format!(" [{path} ({})]", span.start),
                (Some(path), None) => format!(" [{path}]"),
                (None, Some(span)) => format!(" [{}]", span.start),
                (None, None) => String::new(),
            };
            out.push_str(&format!("  = note: {}{suffix}\n", related.message));
        }
        if let Some(help) = &self.help {
            out.push_str(&format!("  = help: {help}\n"));
        }
        out
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}[{}]: {}",
            self.severity.headline(),
            self.code,
            self.message
        )
    }
}

/// Writes the underlined source excerpt for `span` into `out`.
fn render_snippet(out: &mut String, span: Span, sources: &SourceMap) {
    let Some(line_text) = sources.line(span.start.line) else {
        return;
    };
    let number = span.start.line.to_string();
    let gutter = " ".repeat(number.len());
    // Underline from the start column to the end column on single-line
    // spans, to the end of the line on multi-line ones.
    let start_col = (span.start.column.max(1) as usize) - 1;
    let end_col = if span.is_multiline() {
        line_text.chars().count()
    } else {
        ((span.end.column.max(1) as usize) - 1).min(line_text.chars().count())
    };
    let width = end_col.saturating_sub(start_col).max(1);
    out.push_str(&format!(" {gutter} |\n"));
    out.push_str(&format!(" {number} | {line_text}\n"));
    out.push_str(&format!(
        " {gutter} | {}{}\n",
        " ".repeat(start_col),
        "^".repeat(width)
    ));
    if span.is_multiline() {
        out.push_str(&format!(
            " {gutter} | ...continues through line {}\n",
            span.end.line
        ));
    }
}

/// Renders a batch of diagnostics, separated by blank lines, followed by a
/// one-line tally.
pub fn render_all(diagnostics: &[Diagnostic], sources: Option<&SourceMap>) -> String {
    let mut out = String::new();
    for diagnostic in diagnostics {
        out.push_str(&diagnostic.render(sources));
        out.push('\n');
    }
    let denies = diagnostics.iter().filter(|d| d.is_deny()).count();
    let warns = diagnostics.len() - denies;
    out.push_str(&format!(
        "{} diagnostic(s): {denies} deny, {warns} warn\n",
        diagnostics.len()
    ));
    out
}

// ---------------------------------------------------------------------------
// SourceMap
// ---------------------------------------------------------------------------

/// Provenance of a parsed document: the original source text plus the span
/// of every node expression and every explicit synchronization arc.
///
/// The parser records one of these and hangs it on
/// [`crate::tree::Document::sources`]; documents built programmatically
/// have none, and their diagnostics fall back to node paths.
///
/// Structural edits of a playing document mutate the tree *without*
/// rewriting the source text, so an edited or inserted node's "span" would
/// point at bytes that no longer describe it. Such nodes (and retimed arcs)
/// are marked **synthetic** instead: [`SourceMap::node_span`] /
/// [`SourceMap::arc_span`] return `None` for them, and the diagnostic
/// renderer falls back to the node path — it never caret-underlines the
/// wrong source line.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct SourceMap {
    text: String,
    nodes: BTreeMap<u32, Span>,
    /// Arc spans, aligned with `Document::arcs()` order.
    arcs: Vec<Span>,
    /// Nodes whose recorded span (if any) no longer describes them.
    synthetic_nodes: BTreeSet<u32>,
    /// Arc indices whose recorded span no longer describes them.
    synthetic_arcs: BTreeSet<u32>,
}

impl SourceMap {
    /// Creates a source map over the given text.
    pub fn new(text: impl Into<String>) -> SourceMap {
        SourceMap {
            text: text.into(),
            nodes: BTreeMap::new(),
            arcs: Vec::new(),
            synthetic_nodes: BTreeSet::new(),
            synthetic_arcs: BTreeSet::new(),
        }
    }

    /// The source text the document was parsed from.
    pub fn text(&self) -> &str {
        &self.text
    }

    /// Records the span of one node's expression.
    pub fn set_node(&mut self, node: NodeId, span: Span) {
        self.nodes.insert(node.index() as u32, span);
    }

    /// Records the span of the next explicit arc, in `Document::arcs()`
    /// order.
    pub fn push_arc(&mut self, span: Span) {
        self.arcs.push(span);
    }

    /// The span of a node's expression, when recorded and still accurate.
    ///
    /// Returns `None` for nodes marked synthetic by a structural edit.
    pub fn node_span(&self, node: NodeId) -> Option<Span> {
        if self.synthetic_nodes.contains(&(node.index() as u32)) {
            return None;
        }
        self.nodes.get(&(node.index() as u32)).copied()
    }

    /// The span of the `index`-th explicit arc (in `Document::arcs()`
    /// order), when recorded and still accurate.
    ///
    /// Returns `None` for arcs marked synthetic by a retime edit.
    pub fn arc_span(&self, index: usize) -> Option<Span> {
        if self.synthetic_arcs.contains(&(index as u32)) {
            return None;
        }
        self.arcs.get(index).copied()
    }

    /// Marks a node's span as synthetic: the node was inserted or rewritten
    /// by a live edit, so whatever span was recorded no longer describes it.
    pub fn mark_synthetic(&mut self, node: NodeId) {
        let index = node.index() as u32;
        self.nodes.remove(&index);
        self.synthetic_nodes.insert(index);
    }

    /// Whether a node's span was invalidated by a live edit.
    pub fn is_synthetic(&self, node: NodeId) -> bool {
        self.synthetic_nodes.contains(&(node.index() as u32))
    }

    /// Marks the `index`-th explicit arc's span as synthetic: the arc was
    /// retimed by a live edit, so its recorded span no longer describes it.
    pub fn mark_arc_synthetic(&mut self, index: usize) {
        self.synthetic_arcs.insert(index as u32);
    }

    /// Whether an arc's span was invalidated by a live edit.
    pub fn is_arc_synthetic(&self, index: usize) -> bool {
        self.synthetic_arcs.contains(&(index as u32))
    }

    /// Drops the span slot of a removed arc, keeping the remaining spans
    /// aligned with `Document::arcs()` after the removal shifts indices
    /// above `index` down by one.
    pub fn remove_arc_span(&mut self, index: usize) {
        if index < self.arcs.len() {
            self.arcs.remove(index);
        }
        let index = index as u32;
        self.synthetic_arcs = self
            .synthetic_arcs
            .iter()
            .filter(|&&i| i != index)
            .map(|&i| if i > index { i - 1 } else { i })
            .collect();
    }

    /// The 1-based `number`-th line of the source, without its terminator.
    pub fn line(&self, number: u32) -> Option<&str> {
        self.text.lines().nth((number.max(1) as usize) - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::Position;

    #[test]
    fn registry_codes_parse_back() {
        for entry in REGISTRY {
            assert_eq!(Code::parse(entry.code.as_str()), Some(entry.code));
            assert_eq!(entry.code.info().summary, entry.summary);
        }
        assert_eq!(Code::parse("L999"), None);
    }

    #[test]
    fn registry_is_sorted_and_unique() {
        for pair in REGISTRY.windows(2) {
            assert!(pair[0].code < pair[1].code, "{} repeats", pair[1].code);
        }
    }

    #[test]
    fn severity_config_layers_overrides_over_defaults() {
        let config = SeverityConfig::new();
        assert_eq!(config.severity_of(codes::ARC_CYCLE), Severity::Deny);
        assert_eq!(
            config.severity_of(codes::CHANNEL_DOUBLE_BOOKING),
            Severity::Warn
        );

        let config = SeverityConfig::new()
            .allow(codes::ARC_CYCLE)
            .deny(codes::CHANNEL_DOUBLE_BOOKING);
        assert_eq!(config.severity_of(codes::ARC_CYCLE), Severity::Allow);
        assert_eq!(
            config.severity_of(codes::CHANNEL_DOUBLE_BOOKING),
            Severity::Deny
        );

        let config = SeverityConfig::new()
            .default_severity(Severity::Warn)
            .deny(codes::ARC_CYCLE);
        assert_eq!(config.severity_of(codes::MISSING_FILE), Severity::Warn);
        assert_eq!(config.severity_of(codes::ARC_CYCLE), Severity::Deny);
    }

    #[test]
    fn severities_order_allow_warn_deny() {
        assert!(Severity::Allow < Severity::Warn);
        assert!(Severity::Warn < Severity::Deny);
    }

    #[test]
    fn render_underlines_the_span() {
        let source = "(seq (name news)\n  (sync_arc begin))";
        let mut sources = SourceMap::new(source);
        let span = Span::new(Position::new(2, 3, 19), Position::new(2, 19, 35));
        sources.set_node(NodeId::from_index(0), span);
        let diagnostic = Diagnostic::new(codes::ARC_CYCLE, "arcs form a cycle")
            .with_span(span)
            .at_path("/news")
            .with_related(Related::new("arc #0").at_path("/news"))
            .with_help("remove one arc");
        let rendered = diagnostic.render(Some(&sources));
        assert!(rendered.contains("error[L101]: arcs form a cycle"));
        assert!(rendered.contains("--> /news (2:3)"));
        assert!(rendered.contains("(sync_arc begin)"));
        assert!(rendered.contains("^^^^^^^^^^^^^^^^"));
        assert!(rendered.contains("= note: arc #0"));
        assert!(rendered.contains("= help: remove one arc"));
    }

    #[test]
    fn render_without_sources_still_names_the_path() {
        let diagnostic = Diagnostic::new(codes::MISSING_FILE, "no file").at_path("/a/b");
        let rendered = diagnostic.render(None);
        assert!(rendered.contains("--> /a/b"));
        assert!(!rendered.contains('^'));
    }

    #[test]
    fn source_map_round_trips_spans() {
        let mut sources = SourceMap::new("(a)\n(b)");
        let a = Span::new(Position::new(1, 1, 0), Position::new(1, 4, 3));
        let b = Span::new(Position::new(2, 1, 4), Position::new(2, 4, 7));
        sources.set_node(NodeId::from_index(0), a);
        sources.push_arc(b);
        assert_eq!(sources.node_span(NodeId::from_index(0)), Some(a));
        assert_eq!(sources.node_span(NodeId::from_index(1)), None);
        assert_eq!(sources.arc_span(0), Some(b));
        assert_eq!(sources.arc_span(1), None);
        assert_eq!(sources.line(2), Some("(b)"));
        assert_eq!(sources.line(9), None);
    }
}
