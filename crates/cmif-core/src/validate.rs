//! Structural validation of CMIF documents.
//!
//! The paper spreads its consistency rules over §5.1–§5.3: sibling name
//! uniqueness, root-only dictionaries, style acyclicity, channel references,
//! the `file` requirement on external nodes, and the sign rules of
//! synchronization delay windows. [`validate`] checks all of them and
//! returns the first violation; [`validate_all`] collects every violation,
//! which is what an authoring tool wants to show its user.

use crate::attr::AttrName;
use crate::error::{CoreError, Result};
use crate::node::NodeKind;
use crate::style::style_names;
use crate::tree::Document;
use crate::value::AttrValue;

/// Validates a document, returning the first violation found.
pub fn validate(doc: &Document) -> Result<()> {
    match validate_all(doc) {
        problems if problems.is_empty() => Ok(()),
        mut problems => Err(problems.remove(0)),
    }
}

/// Validates a document, returning every violation found.
pub fn validate_all(doc: &Document) -> Vec<CoreError> {
    let mut problems = Vec::new();
    let root = match doc.root() {
        Ok(root) => root,
        Err(e) => return vec![e],
    };

    // Style dictionary consistency (dangling references, cycles).
    if let Err(e) = doc.styles.validate() {
        problems.push(e);
    }

    for id in doc.preorder() {
        let node = match doc.node(id) {
            Ok(node) => node,
            Err(e) => {
                problems.push(e);
                continue;
            }
        };

        // Attribute list uniqueness (cheap to re-check after bulk edits).
        if let Err(e) = node.attrs.validate_unique(id) {
            problems.push(e);
        }

        // Root-only attributes.
        for attr in node.attrs.iter() {
            if attr.name.is_root_only() && id != root {
                problems.push(CoreError::RootOnlyAttribute {
                    node: id,
                    name: attr.name,
                });
            }
        }

        // Sibling name uniqueness.
        if node.kind.is_composite() {
            let children = node.children.clone();
            for (i, child) in children.iter().enumerate() {
                let name = match doc.node(*child) {
                    Ok(n) => n.name_symbol(),
                    Err(e) => {
                        problems.push(e);
                        continue;
                    }
                };
                if let Some(name) = name {
                    let duplicate = children[..i].iter().any(|other| {
                        doc.node(*other).ok().and_then(|n| n.name_symbol()) == Some(name)
                    });
                    if duplicate {
                        problems.push(CoreError::DuplicateSiblingName { parent: id, name });
                    }
                }
            }
        }

        // Style references must resolve.
        if let Some(style_value) = node.attrs.get(&AttrName::Style) {
            match style_names(style_value) {
                Ok(names) => {
                    for name in names {
                        if !doc.styles.contains(name.as_str()) {
                            problems.push(CoreError::UnknownStyle {
                                style: name.as_str().to_string(),
                            });
                        }
                    }
                }
                Err(e) => problems.push(e),
            }
        }

        // Channel references must resolve (checked on the node that sets the
        // attribute; inheritance then cannot introduce dangling references).
        if let Some(channel) = node
            .attrs
            .get(&AttrName::Channel)
            .and_then(AttrValue::as_symbol)
        {
            if !doc.channels.contains_symbol(channel) {
                problems.push(CoreError::UnknownChannel { channel });
            }
        }

        // Leaf-specific rules.
        match &node.kind {
            NodeKind::Ext => match doc.file_of(id) {
                Ok(Some(_)) => {}
                Ok(None) => problems.push(CoreError::MissingFile { node: id }),
                Err(e) => problems.push(e),
            },
            NodeKind::Imm(_) | NodeKind::Seq | NodeKind::Par => {}
        }
        if node.kind.is_leaf() {
            match doc.channel_of(id) {
                Ok(Some(_)) => {}
                Ok(None) => problems.push(CoreError::MissingChannel { node: id }),
                Err(e) => problems.push(e),
            }
        }
    }

    // Synchronization arcs: window validity and endpoint resolution.
    for (carrier, arc) in doc.arcs() {
        if let Err(e) = arc.validate() {
            problems.push(e);
        }
        if doc.resolve_path(*carrier, &arc.source).is_err() {
            problems.push(CoreError::UnresolvedArcEndpoint {
                path: arc.source.to_string(),
            });
        }
        if doc.resolve_path(*carrier, &arc.destination).is_err() {
            problems.push(CoreError::UnresolvedArcEndpoint {
                path: arc.destination.to_string(),
            });
        }
    }

    problems
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arc::SyncArc;
    use crate::attr::AttrName;
    use crate::channel::{ChannelDef, MediaKind};
    use crate::descriptor::DataDescriptor;
    use crate::node::NodeKind;
    use crate::style::StyleDef;
    use crate::time::TimeMs;
    use crate::value::AttrValue;

    fn valid_doc() -> Document {
        let mut doc = Document::with_root(NodeKind::Seq);
        let root = doc.root().unwrap();
        doc.channels
            .define(ChannelDef::new("audio", MediaKind::Audio))
            .unwrap();
        doc.catalog
            .register(
                DataDescriptor::new("clip", MediaKind::Audio, "pcm8")
                    .with_duration(TimeMs::from_secs(4)),
            )
            .unwrap();
        let leaf = doc.add_ext(root).unwrap();
        doc.set_attr(leaf, AttrName::Name, AttrValue::Id("voice".into()))
            .unwrap();
        doc.set_attr(leaf, AttrName::Channel, AttrValue::Id("audio".into()))
            .unwrap();
        doc.set_attr(leaf, AttrName::File, AttrValue::Str("clip".into()))
            .unwrap();
        doc
    }

    #[test]
    fn a_valid_document_passes() {
        assert!(validate(&valid_doc()).is_ok());
        assert!(validate_all(&valid_doc()).is_empty());
    }

    #[test]
    fn empty_document_fails() {
        let doc = Document::new();
        assert!(matches!(
            validate(&doc).unwrap_err(),
            CoreError::EmptyDocument
        ));
    }

    #[test]
    fn duplicate_sibling_names_are_reported() {
        let mut doc = valid_doc();
        let root = doc.root().unwrap();
        let second = doc.add_imm_text(root, "x").unwrap();
        doc.set_attr(second, AttrName::Name, AttrValue::Id("voice".into()))
            .unwrap();
        doc.set_attr(second, AttrName::Channel, AttrValue::Id("audio".into()))
            .unwrap();
        let problems = validate_all(&doc);
        assert!(problems
            .iter()
            .any(|p| matches!(p, CoreError::DuplicateSiblingName { .. })));
    }

    #[test]
    fn same_name_under_different_parents_is_fine() {
        // "otherwise a name may occur more than once in the tree" (Fig. 7).
        let mut doc = valid_doc();
        let root = doc.root().unwrap();
        let group_a = doc.add_par(root).unwrap();
        doc.set_attr(group_a, AttrName::Name, AttrValue::Id("block".into()))
            .unwrap();
        let group_b = doc.add_par(root).unwrap();
        doc.set_attr(group_b, AttrName::Name, AttrValue::Id("other".into()))
            .unwrap();
        for group in [group_a, group_b] {
            let leaf = doc.add_imm_text(group, "t").unwrap();
            doc.set_attr(leaf, AttrName::Name, AttrValue::Id("shared-name".into()))
                .unwrap();
            doc.set_attr(leaf, AttrName::Channel, AttrValue::Id("audio".into()))
                .unwrap();
        }
        assert!(validate(&doc).is_ok());
    }

    #[test]
    fn missing_file_on_external_node_is_reported() {
        let mut doc = valid_doc();
        let root = doc.root().unwrap();
        let bad = doc.add_ext(root).unwrap();
        doc.set_attr(bad, AttrName::Channel, AttrValue::Id("audio".into()))
            .unwrap();
        let problems = validate_all(&doc);
        assert!(problems
            .iter()
            .any(|p| matches!(p, CoreError::MissingFile { .. })));
    }

    #[test]
    fn inherited_file_satisfies_external_node() {
        let mut doc = valid_doc();
        let root = doc.root().unwrap();
        doc.set_attr(root, AttrName::File, AttrValue::Str("clip".into()))
            .unwrap();
        let leaf = doc.add_ext(root).unwrap();
        doc.set_attr(leaf, AttrName::Channel, AttrValue::Id("audio".into()))
            .unwrap();
        assert!(validate(&doc).is_ok());
    }

    #[test]
    fn unknown_channel_and_style_references_are_reported() {
        let mut doc = valid_doc();
        let root = doc.root().unwrap();
        let leaf = doc.add_imm_text(root, "x").unwrap();
        doc.set_attr(leaf, AttrName::Channel, AttrValue::Id("video".into()))
            .unwrap();
        doc.set_attr(leaf, AttrName::Style, AttrValue::Id("missing-style".into()))
            .unwrap();
        let problems = validate_all(&doc);
        assert!(problems
            .iter()
            .any(|p| matches!(p, CoreError::UnknownChannel { .. })));
        assert!(problems
            .iter()
            .any(|p| matches!(p, CoreError::UnknownStyle { .. })));
    }

    #[test]
    fn style_cycles_are_reported() {
        let mut doc = valid_doc();
        doc.styles
            .define(StyleDef::new("a").with_parent("b"))
            .unwrap();
        doc.styles
            .define(StyleDef::new("b").with_parent("a"))
            .unwrap();
        let problems = validate_all(&doc);
        assert!(problems
            .iter()
            .any(|p| matches!(p, CoreError::StyleCycle { .. })));
    }

    #[test]
    fn dangling_arc_endpoints_are_reported() {
        let mut doc = valid_doc();
        let leaf = doc.find("/voice").unwrap();
        doc.add_arc(leaf, SyncArc::hard_start("/no-such", ""))
            .unwrap();
        let problems = validate_all(&doc);
        assert!(problems
            .iter()
            .any(|p| matches!(p, CoreError::UnresolvedArcEndpoint { .. })));
    }

    #[test]
    fn leaf_without_channel_is_reported() {
        let mut doc = valid_doc();
        let root = doc.root().unwrap();
        doc.add_imm_text(root, "orphan").unwrap();
        let problems = validate_all(&doc);
        assert!(problems
            .iter()
            .any(|p| matches!(p, CoreError::MissingChannel { .. })));
    }
}
