//! Interned strings for the names the CMIF pipeline threads everywhere.
//!
//! Channel names, node names, descriptor keys and attribute identifiers are
//! *identical* across every layer of the system — the scheduler's timeline
//! entries, the pipeline's storyboard lines and the distributed store's
//! placement keys all repeat the handful of names a document declares. The
//! paper's own economics (cheap local computation, scarce interconnect)
//! argue against paying an allocation and a copy every time such a name
//! crosses a layer boundary; [`Symbol`] makes the name a `Copy` `u32`
//! instead.
//!
//! # Design
//!
//! * One **global pool**, sharded into [`SHARD_COUNT`] locks keyed by the
//!   string's hash, so concurrent interning from worker threads contends
//!   only when two threads intern into the same shard at the same moment.
//! * Interned strings are **leaked** (`Box::leak`): `Symbol::as_str`
//!   returns `&'static str` with no lifetime plumbing — resolution takes a
//!   brief shard *read* lock, released before the text is handed out.
//!   The pool only ever grows — see the "lifetime/leak policy" note in the
//!   README. Documents contribute a bounded vocabulary (names, not
//!   content), so the leak is proportional to the number of *distinct*
//!   names ever seen, not to the number of documents processed.
//! * `Eq`/`Hash`/`Ord` compare the **id**, not the text: map lookups keyed
//!   by `Symbol` are integer comparisons. Ordering is therefore the intern
//!   order, not the lexicographic one — code that renders human-readable
//!   listings sorts by [`Symbol::as_str`] explicitly.
//! * Ids encode their shard in the low bits, so resolving id → text needs
//!   no global table: `shard = id % SHARD_COUNT`, `index = id / SHARD_COUNT`.

use std::borrow::Cow;
use std::collections::HashMap;
use std::fmt;
use std::sync::{OnceLock, PoisonError, RwLock};

/// Number of lock shards in the global pool. A power of two so the shard of
/// an id is a mask away.
const SHARD_COUNT: usize = 16;

/// One shard of the global pool: text → id for interning, id → text for
/// resolution. Strings are leaked on first intern so resolution can hand
/// out `&'static str` without holding the lock.
#[derive(Default)]
struct Shard {
    by_text: HashMap<&'static str, u32>,
    by_index: Vec<&'static str>,
}

fn pool() -> &'static [RwLock<Shard>; SHARD_COUNT] {
    static POOL: OnceLock<[RwLock<Shard>; SHARD_COUNT]> = OnceLock::new();
    POOL.get_or_init(|| std::array::from_fn(|_| RwLock::new(Shard::default())))
}

/// The single intern body shared by [`Symbol::intern`] and
/// [`Symbol::from_owned`]: probe under the shard's write lock, leak only on
/// a genuine first sighting. `Cow::Owned` input moves its buffer into the
/// leak instead of copying.
fn intern_cow(text: Cow<'_, str>) -> Symbol {
    let shard_index = shard_of(&text);
    let mut shard = pool()[shard_index]
        .write()
        .unwrap_or_else(PoisonError::into_inner);
    if let Some(&id) = shard.by_text.get(text.as_ref()) {
        return Symbol(id);
    }
    let leaked: &'static str = Box::leak(text.into_owned().into_boxed_str());
    let index = shard.by_index.len() as u32;
    let id = index * SHARD_COUNT as u32 + shard_index as u32;
    shard.by_index.push(leaked);
    shard.by_text.insert(leaked, id);
    Symbol(id)
}

/// FNV-1a over the string bytes; only used to pick a shard, so it needs to
/// be fast and stable, not cryptographic.
fn shard_of(text: &str) -> usize {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &byte in text.as_bytes() {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    (hash as usize) & (SHARD_COUNT - 1)
}

/// An interned string: a `Copy` handle into the global pool.
///
/// Two `Symbol`s are equal exactly when they intern the same text, so
/// equality, hashing and map lookups are integer operations. The text is
/// recovered with [`Symbol::as_str`] (a `&'static str`, valid forever).
///
/// ```
/// use cmif_core::symbol::Symbol;
///
/// let a = Symbol::intern("audio");
/// let b = Symbol::intern("audio");
/// assert_eq!(a, b);
/// assert_eq!(a.as_str(), "audio");
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Symbol(u32);

impl Symbol {
    /// Interns a string, returning its canonical symbol. The first intern
    /// of a given text leaks one copy of it; later interns of equal text
    /// are a hash lookup.
    pub fn intern(text: &str) -> Symbol {
        intern_cow(Cow::Borrowed(text))
    }

    /// Interns an owned string without copying it when it is new to the
    /// pool (the `String`'s own buffer is leaked).
    pub fn from_owned(text: String) -> Symbol {
        intern_cow(Cow::Owned(text))
    }

    /// Looks a string up **without** interning it: `Some` when the text is
    /// already pooled, `None` otherwise. Use this on query paths (map
    /// lookups keyed by caller-supplied text) so misses cannot grow the
    /// pool. Takes only a shard read lock — concurrent lookups never
    /// serialize against each other.
    pub fn lookup(text: &str) -> Option<Symbol> {
        let shard = pool()[shard_of(text)]
            .read()
            .unwrap_or_else(PoisonError::into_inner);
        shard.by_text.get(text).map(|&id| Symbol(id))
    }

    /// The interned text. Resolution is two integer ops under a brief shard
    /// *read* lock (readers never block each other; only a first-sighting
    /// intern takes the write side); the returned reference is `'static`
    /// (the pool never frees), so no lock outlives the call.
    pub fn as_str(self) -> &'static str {
        let shard_index = self.0 as usize & (SHARD_COUNT - 1);
        let index = self.0 as usize / SHARD_COUNT;
        let shard = pool()[shard_index]
            .read()
            .unwrap_or_else(PoisonError::into_inner);
        shard.by_index[index]
    }

    /// The raw pool id (stable within a process, meaningless across runs).
    pub fn id(self) -> u32 {
        self.0
    }

    /// Length of the interned text in bytes.
    pub fn len(self) -> usize {
        self.as_str().len()
    }

    /// True when the interned text is empty.
    pub fn is_empty(self) -> bool {
        self.as_str().is_empty()
    }
}

impl fmt::Debug for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Symbol({:?})", self.as_str())
    }
}

impl fmt::Display for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // `pad`, not `write_str`: width/alignment specs must work on
        // symbols exactly as they do on the text they intern.
        f.pad(self.as_str())
    }
}

impl From<&str> for Symbol {
    fn from(text: &str) -> Symbol {
        Symbol::intern(text)
    }
}

impl From<&String> for Symbol {
    fn from(text: &String) -> Symbol {
        Symbol::intern(text)
    }
}

impl From<String> for Symbol {
    fn from(text: String) -> Symbol {
        Symbol::from_owned(text)
    }
}

impl From<Cow<'_, str>> for Symbol {
    fn from(text: Cow<'_, str>) -> Symbol {
        match text {
            Cow::Borrowed(s) => Symbol::intern(s),
            Cow::Owned(s) => Symbol::from_owned(s),
        }
    }
}

impl From<Symbol> for String {
    fn from(symbol: Symbol) -> String {
        symbol.as_str().to_string()
    }
}

impl PartialEq<str> for Symbol {
    fn eq(&self, other: &str) -> bool {
        self.as_str() == other
    }
}

impl PartialEq<&str> for Symbol {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == *other
    }
}

impl PartialEq<Symbol> for str {
    fn eq(&self, other: &Symbol) -> bool {
        self == other.as_str()
    }
}

impl PartialEq<Symbol> for &str {
    fn eq(&self, other: &Symbol) -> bool {
        *self == other.as_str()
    }
}

impl AsRef<str> for Symbol {
    fn as_ref(&self) -> &str {
        self.as_str()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;
    use std::sync::Barrier;
    use std::thread;

    #[test]
    fn interning_is_idempotent() {
        let a = Symbol::intern("news");
        let b = Symbol::intern("news");
        let c = Symbol::from_owned("news".to_string());
        assert_eq!(a, b);
        assert_eq!(a, c);
        assert_eq!(a.as_str(), "news");
        assert_eq!(a.id(), b.id());
    }

    #[test]
    fn distinct_texts_get_distinct_ids() {
        let a = Symbol::intern("symbol-test-left");
        let b = Symbol::intern("symbol-test-right");
        assert_ne!(a, b);
        assert_ne!(a.id(), b.id());
        assert_eq!(a.as_str(), "symbol-test-left");
        assert_eq!(b.as_str(), "symbol-test-right");
    }

    #[test]
    fn lookup_does_not_intern() {
        assert!(Symbol::lookup("symbol-test-never-interned-xyzzy").is_none());
        let s = Symbol::intern("symbol-test-looked-up");
        assert_eq!(Symbol::lookup("symbol-test-looked-up"), Some(s));
    }

    #[test]
    fn empty_and_unicode_round_trip() {
        for text in ["", "über-channel", "видео", "📺", "(unassigned)"] {
            let s = Symbol::intern(text);
            assert_eq!(s.as_str(), text);
            assert_eq!(s.len(), text.len());
            assert_eq!(s.is_empty(), text.is_empty());
        }
    }

    #[test]
    fn comparisons_against_str_work_both_ways() {
        let s = Symbol::intern("caption");
        assert_eq!(s, "caption");
        assert_eq!("caption", s);
        assert_ne!(s, "label");
        assert_eq!(s.to_string(), "caption");
        assert_eq!(format!("{s:?}"), "Symbol(\"caption\")");
    }

    #[test]
    fn concurrent_intern_of_one_text_yields_one_id() {
        const THREADS: usize = 8;
        const ROUNDS: usize = 50;
        for round in 0..ROUNDS {
            let text = format!("symbol-race-{round}");
            let barrier = Barrier::new(THREADS);
            let ids: BTreeSet<u32> = thread::scope(|scope| {
                let handles: Vec<_> = (0..THREADS)
                    .map(|_| {
                        scope.spawn(|| {
                            barrier.wait();
                            Symbol::intern(&text).id()
                        })
                    })
                    .collect();
                handles.into_iter().map(|h| h.join().unwrap()).collect()
            });
            assert_eq!(ids.len(), 1, "racing interns of {text:?} split the id");
            // The winning id resolves back to the text, and nothing was lost.
            assert_eq!(Symbol::lookup(&text).map(|s| s.id()), ids.first().copied());
        }
    }

    #[test]
    fn concurrent_distinct_interns_lose_nothing() {
        const THREADS: usize = 8;
        let texts: Vec<Vec<String>> = (0..THREADS)
            .map(|t| (0..64).map(|i| format!("symbol-bulk-{t}-{i}")).collect())
            .collect();
        thread::scope(|scope| {
            for batch in &texts {
                scope.spawn(move || {
                    for text in batch {
                        Symbol::intern(text);
                    }
                });
            }
        });
        let mut ids = BTreeSet::new();
        for batch in &texts {
            for text in batch {
                let s = Symbol::lookup(text).expect("symbol was lost");
                assert_eq!(s.as_str(), text);
                ids.insert(s.id());
            }
        }
        assert_eq!(ids.len(), THREADS * 64, "duplicate ids were handed out");
    }
}
