//! Relative node paths.
//!
//! Synchronization arcs reference their source and destination by "a
//! relative path name in the tree (by using named nodes)"; "the empty name
//! specifies the current node itself" (§5.3.2).
//!
//! A [`NodePath`] is a parsed path; resolution against a document happens in
//! [`crate::tree::Document::resolve_path`].

use std::fmt;

/// One step of a node path.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum PathSegment {
    /// `..` — move to the parent node.
    Parent,
    /// A named child (the child's `name` attribute).
    Child(String),
}

/// A parsed node path.
///
/// Syntax (used by the interchange format and the builder API):
///
/// * the empty string — the current node itself;
/// * `/a/b` — absolute: resolve `a`, then `b`, starting from the root;
/// * `a/b` — relative: resolve starting from the current node;
/// * `..` segments move to the parent; `.` segments are ignored.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct NodePath {
    /// True when resolution starts at the document root.
    pub absolute: bool,
    /// The steps to take after choosing the starting node.
    pub segments: Vec<PathSegment>,
}

impl NodePath {
    /// The empty path, which designates the current node itself.
    pub fn current() -> NodePath {
        NodePath::default()
    }

    /// Parses a path from its textual form.
    pub fn parse(text: &str) -> NodePath {
        let trimmed = text.trim();
        if trimmed.is_empty() {
            return NodePath::current();
        }
        let absolute = trimmed.starts_with('/');
        let body = trimmed.trim_start_matches('/');
        let segments = body
            .split('/')
            .filter(|s| !s.is_empty() && *s != ".")
            .map(|s| {
                if s == ".." {
                    PathSegment::Parent
                } else {
                    PathSegment::Child(s.to_string())
                }
            })
            .collect();
        NodePath { absolute, segments }
    }

    /// Builds an absolute path from named components.
    pub fn absolute<I, S>(names: I) -> NodePath
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        NodePath {
            absolute: true,
            segments: names
                .into_iter()
                .map(|n| PathSegment::Child(n.into()))
                .collect(),
        }
    }

    /// Builds a relative path from named components.
    pub fn relative<I, S>(names: I) -> NodePath
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        NodePath {
            absolute: false,
            segments: names
                .into_iter()
                .map(|n| PathSegment::Child(n.into()))
                .collect(),
        }
    }

    /// True when the path designates the current node itself.
    pub fn is_current(&self) -> bool {
        !self.absolute && self.segments.is_empty()
    }

    /// Number of steps in the path.
    pub fn len(&self) -> usize {
        self.segments.len()
    }

    /// True when the path has no steps.
    pub fn is_empty(&self) -> bool {
        self.segments.is_empty()
    }
}

impl fmt::Display for NodePath {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.absolute {
            f.write_str("/")?;
        }
        for (i, segment) in self.segments.iter().enumerate() {
            if i > 0 {
                f.write_str("/")?;
            }
            match segment {
                PathSegment::Parent => f.write_str("..")?,
                PathSegment::Child(name) => f.write_str(name)?,
            }
        }
        Ok(())
    }
}

impl From<&str> for NodePath {
    fn from(text: &str) -> Self {
        NodePath::parse(text)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_path_is_current_node() {
        let p = NodePath::parse("");
        assert!(p.is_current());
        assert!(p.is_empty());
        assert_eq!(p.to_string(), "");
        assert!(NodePath::parse("   ").is_current());
    }

    #[test]
    fn absolute_and_relative_parsing() {
        let abs = NodePath::parse("/news/story-3/video");
        assert!(abs.absolute);
        assert_eq!(abs.len(), 3);
        let rel = NodePath::parse("story-3/video");
        assert!(!rel.absolute);
        assert_eq!(rel.len(), 2);
    }

    #[test]
    fn parent_and_dot_segments() {
        let p = NodePath::parse("../graphic/./painting-two");
        assert_eq!(
            p.segments,
            vec![
                PathSegment::Parent,
                PathSegment::Child("graphic".into()),
                PathSegment::Child("painting-two".into()),
            ]
        );
    }

    #[test]
    fn display_round_trips() {
        for text in ["", "/a/b", "a/b", "../b", "/x"] {
            let p = NodePath::parse(text);
            let again = NodePath::parse(&p.to_string());
            assert_eq!(p, again, "path text `{text}` did not round-trip");
        }
    }

    #[test]
    fn constructors() {
        let abs = NodePath::absolute(["news", "story-1"]);
        assert!(abs.absolute);
        assert_eq!(abs.to_string(), "/news/story-1");
        let rel = NodePath::relative(["video"]);
        assert!(!rel.absolute);
        assert_eq!(rel.to_string(), "video");
        assert_eq!(NodePath::from("/a"), NodePath::absolute(["a"]));
    }

    #[test]
    fn repeated_slashes_are_collapsed() {
        let p = NodePath::parse("/a//b");
        assert_eq!(p.len(), 2);
    }
}
