//! A fluent builder for CMIF documents.
//!
//! The builder plays the role of the paper's *document structure mapping
//! tool* API surface (§2): authoring code describes the hierarchy of
//! sequential and parallel nodes, the channels they use and the explicit
//! synchronization arcs among them, and gets back a validated
//! [`Document`].
//!
//! ```
//! use cmif_core::builder::DocumentBuilder;
//! use cmif_core::channel::MediaKind;
//! use cmif_core::arc::SyncArc;
//!
//! let doc = DocumentBuilder::new("demo")
//!     .channel("audio", MediaKind::Audio)
//!     .channel("caption", MediaKind::Text)
//!     .root_seq(|story| {
//!         story.par("scene-1", |scene| {
//!             scene.ext("voice", "audio", "voice-block");
//!             scene.imm_text("line", "caption", "Hello, world", 2_000);
//!         });
//!     })
//!     .build()
//!     .expect("a valid document");
//! assert_eq!(doc.leaves().len(), 2);
//! ```

use crate::arc::SyncArc;
use crate::attr::AttrName;
use crate::channel::{ChannelDef, MediaKind};
use crate::descriptor::DataDescriptor;
use crate::error::Result;
use crate::node::{NodeId, NodeKind};
use crate::style::StyleDef;
use crate::tree::Document;
use crate::validate;
use crate::value::AttrValue;

/// Fluent builder for a whole document.
#[derive(Debug)]
pub struct DocumentBuilder {
    doc: Document,
    title: String,
    pending_arcs: Vec<(String, SyncArc)>,
    errors: Vec<crate::error::CoreError>,
}

impl DocumentBuilder {
    /// Starts a new document with the given title.
    pub fn new(title: impl Into<String>) -> DocumentBuilder {
        DocumentBuilder {
            doc: Document::new(),
            title: title.into(),
            pending_arcs: Vec::new(),
            errors: Vec::new(),
        }
    }

    /// Declares a synchronization channel.
    pub fn channel(mut self, name: impl Into<crate::symbol::Symbol>, medium: MediaKind) -> Self {
        if let Err(e) = self.doc.channels.define(ChannelDef::new(name, medium)) {
            self.errors.push(e);
        }
        self
    }

    /// Declares a synchronization channel with extra presentation hints.
    pub fn channel_def(mut self, def: ChannelDef) -> Self {
        if let Err(e) = self.doc.channels.define(def) {
            self.errors.push(e);
        }
        self
    }

    /// Declares a style in the root style dictionary.
    pub fn style(mut self, def: StyleDef) -> Self {
        if let Err(e) = self.doc.styles.define(def) {
            self.errors.push(e);
        }
        self
    }

    /// Registers a data descriptor in the embedded catalog.
    pub fn descriptor(mut self, descriptor: DataDescriptor) -> Self {
        if let Err(e) = self.doc.catalog.register(descriptor) {
            self.errors.push(e);
        }
        self
    }

    /// Adds a document-level metadata entry.
    pub fn meta(mut self, key: impl Into<String>, value: AttrValue) -> Self {
        self.doc.meta.insert(key.into(), value);
        self
    }

    /// Creates the root as a sequential node and populates it via `f`.
    pub fn root_seq(self, f: impl FnOnce(&mut NodeBuilder<'_>)) -> Self {
        self.root(NodeKind::Seq, f)
    }

    /// Creates the root as a parallel node and populates it via `f`.
    pub fn root_par(self, f: impl FnOnce(&mut NodeBuilder<'_>)) -> Self {
        self.root(NodeKind::Par, f)
    }

    fn root(mut self, kind: NodeKind, f: impl FnOnce(&mut NodeBuilder<'_>)) -> Self {
        let root = self.doc.set_root(kind);
        let title = self.title.clone();
        if let Err(e) = self
            .doc
            .set_attr(root, AttrName::Name, AttrValue::Str(title))
        {
            self.errors.push(e);
        }
        {
            let mut builder = NodeBuilder {
                doc: &mut self.doc,
                node: root,
                pending_arcs: &mut self.pending_arcs,
                errors: &mut self.errors,
            };
            f(&mut builder);
        }
        self
    }

    /// Finishes the document: resolves pending arcs, runs the structural
    /// validator, and returns the document.
    pub fn build(mut self) -> Result<Document> {
        if let Some(err) = self.errors.into_iter().next() {
            return Err(err);
        }
        for (carrier_path, arc) in self.pending_arcs.drain(..) {
            let carrier = self.doc.find(&carrier_path)?;
            self.doc.add_arc(carrier, arc)?;
        }
        validate::validate(&self.doc)?;
        Ok(self.doc)
    }

    /// Finishes the document without running the validator (useful when a
    /// test deliberately builds an inconsistent document).
    pub fn build_unchecked(mut self) -> Result<Document> {
        if let Some(err) = self.errors.into_iter().next() {
            return Err(err);
        }
        for (carrier_path, arc) in self.pending_arcs.drain(..) {
            let carrier = self.doc.find(&carrier_path)?;
            self.doc.add_arc(carrier, arc)?;
        }
        Ok(self.doc)
    }
}

/// Builder scoped to one interior node; created by [`DocumentBuilder`] and
/// by the `seq`/`par` methods.
#[derive(Debug)]
pub struct NodeBuilder<'a> {
    doc: &'a mut Document,
    node: NodeId,
    pending_arcs: &'a mut Vec<(String, SyncArc)>,
    errors: &'a mut Vec<crate::error::CoreError>,
}

impl<'a> NodeBuilder<'a> {
    /// The id of the node being built (for direct [`Document`] calls after
    /// building).
    pub fn id(&self) -> NodeId {
        self.node
    }

    /// Sets an attribute on this node.
    pub fn attr(&mut self, name: impl Into<AttrName>, value: AttrValue) -> &mut Self {
        if let Err(e) = self.doc.set_attr(self.node, name, value) {
            self.errors.push(e);
        }
        self
    }

    /// Applies a style to this node.
    pub fn style(&mut self, style: impl Into<crate::symbol::Symbol>) -> &mut Self {
        self.attr(AttrName::Style, AttrValue::Id(style.into()))
    }

    /// Sets the channel for this node (inherited by its descendants).
    pub fn on_channel(&mut self, channel: impl Into<crate::symbol::Symbol>) -> &mut Self {
        self.attr(AttrName::Channel, AttrValue::Id(channel.into()))
    }

    /// Adds a named sequential child and populates it via `f`.
    pub fn seq(&mut self, name: &str, f: impl FnOnce(&mut NodeBuilder<'_>)) -> &mut Self {
        self.child(NodeKind::Seq, name, f)
    }

    /// Adds a named parallel child and populates it via `f`.
    pub fn par(&mut self, name: &str, f: impl FnOnce(&mut NodeBuilder<'_>)) -> &mut Self {
        self.child(NodeKind::Par, name, f)
    }

    fn child(
        &mut self,
        kind: NodeKind,
        name: &str,
        f: impl FnOnce(&mut NodeBuilder<'_>),
    ) -> &mut Self {
        match self.doc.add_child(self.node, kind) {
            Ok(child) => {
                if let Err(e) = self
                    .doc
                    .set_attr(child, AttrName::Name, AttrValue::Id(name.into()))
                {
                    self.errors.push(e);
                }
                let mut builder = NodeBuilder {
                    doc: self.doc,
                    node: child,
                    pending_arcs: self.pending_arcs,
                    errors: self.errors,
                };
                f(&mut builder);
            }
            Err(e) => self.errors.push(e),
        }
        self
    }

    /// Adds an external leaf: `name`, directed to `channel`, referencing the
    /// data descriptor `file`.
    pub fn ext(&mut self, name: &str, channel: &str, file: &str) -> &mut Self {
        self.ext_with(name, channel, file, |_| {})
    }

    /// Adds an external leaf and further configures it via `f`.
    pub fn ext_with(
        &mut self,
        name: &str,
        channel: &str,
        file: &str,
        f: impl FnOnce(&mut NodeBuilder<'_>),
    ) -> &mut Self {
        match self.doc.add_ext(self.node) {
            Ok(child) => {
                let set = [
                    (AttrName::Name, AttrValue::Id(name.into())),
                    (AttrName::Channel, AttrValue::Id(channel.into())),
                    (AttrName::File, AttrValue::Str(file.to_string())),
                ];
                for (attr_name, value) in set {
                    if let Err(e) = self.doc.set_attr(child, attr_name, value) {
                        self.errors.push(e);
                    }
                }
                let mut builder = NodeBuilder {
                    doc: self.doc,
                    node: child,
                    pending_arcs: self.pending_arcs,
                    errors: self.errors,
                };
                f(&mut builder);
            }
            Err(e) => self.errors.push(e),
        }
        self
    }

    /// Adds an immediate text leaf with an explicit presentation duration in
    /// milliseconds.
    pub fn imm_text(
        &mut self,
        name: &str,
        channel: &str,
        text: impl Into<String>,
        duration_ms: i64,
    ) -> &mut Self {
        match self.doc.add_imm_text(self.node, text) {
            Ok(child) => {
                let set = [
                    (AttrName::Name, AttrValue::Id(name.into())),
                    (AttrName::Channel, AttrValue::Id(channel.into())),
                    (AttrName::Duration, AttrValue::Number(duration_ms)),
                ];
                for (attr_name, value) in set {
                    if let Err(e) = self.doc.set_attr(child, attr_name, value) {
                        self.errors.push(e);
                    }
                }
            }
            Err(e) => self.errors.push(e),
        }
        self
    }

    /// Sets the explicit duration of this node in milliseconds.
    pub fn duration_ms(&mut self, ms: i64) -> &mut Self {
        self.attr(AttrName::Duration, AttrValue::Number(ms))
    }

    /// Attaches an explicit synchronization arc carried by this node.
    ///
    /// The arc's source and destination paths are resolved relative to this
    /// node when the document is built.
    pub fn arc(&mut self, arc: SyncArc) -> &mut Self {
        match self.doc.path_of(self.node) {
            Ok(path) => self.pending_arcs.push((path.to_string(), arc)),
            Err(e) => self.errors.push(e),
        }
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arc::SyncArc;
    use crate::time::TimeMs;

    fn two_channel_builder() -> DocumentBuilder {
        DocumentBuilder::new("demo")
            .channel("audio", MediaKind::Audio)
            .channel("caption", MediaKind::Text)
            .descriptor(
                DataDescriptor::new("voice-block", MediaKind::Audio, "pcm8")
                    .with_size(64_000)
                    .with_duration(TimeMs::from_secs(8)),
            )
    }

    #[test]
    fn builds_a_small_document() {
        let doc = two_channel_builder()
            .root_seq(|story| {
                story.par("scene-1", |scene| {
                    scene.ext("voice", "audio", "voice-block");
                    scene.imm_text("line", "caption", "Hello", 2_000);
                });
            })
            .build()
            .unwrap();
        assert_eq!(doc.leaves().len(), 2);
        assert_eq!(doc.depth(), 3);
        assert!(doc.find("/scene-1/voice").is_ok());
        assert_eq!(
            doc.channel_of(doc.find("/scene-1/line").unwrap())
                .unwrap()
                .map(|s| s.as_str()),
            Some("caption")
        );
    }

    #[test]
    fn arcs_are_resolved_relative_to_their_carrier() {
        let doc = two_channel_builder()
            .root_seq(|story| {
                story.par("scene-1", |scene| {
                    scene.ext("voice", "audio", "voice-block");
                    scene.ext_with("caption-1", "caption", "voice-block", |n| {
                        n.duration_ms(3000);
                        n.arc(SyncArc::hard_start("../voice", ""));
                    });
                });
            })
            .build()
            .unwrap();
        let arcs = doc.resolved_arcs().unwrap();
        assert_eq!(arcs.len(), 1);
        let (carrier, _, source, dest) = arcs[0];
        assert_eq!(carrier, doc.find("/scene-1/caption-1").unwrap());
        assert_eq!(source, doc.find("/scene-1/voice").unwrap());
        assert_eq!(dest, carrier);
    }

    #[test]
    fn duplicate_channel_definition_fails_at_build() {
        let result = DocumentBuilder::new("dup")
            .channel("audio", MediaKind::Audio)
            .channel("audio", MediaKind::Audio)
            .root_seq(|_| {})
            .build();
        assert!(result.is_err());
    }

    #[test]
    fn unknown_channel_reference_fails_validation() {
        let result = DocumentBuilder::new("bad-channel")
            .channel("audio", MediaKind::Audio)
            .root_seq(|story| {
                story.imm_text("line", "no-such-channel", "x", 1000);
            })
            .build();
        assert!(result.is_err());
        // The unchecked build succeeds, showing it is validation that fails.
        let result = DocumentBuilder::new("bad-channel")
            .channel("audio", MediaKind::Audio)
            .root_seq(|story| {
                story.imm_text("line", "no-such-channel", "x", 1000);
            })
            .build_unchecked();
        assert!(result.is_ok());
    }

    #[test]
    fn builder_sets_meta_and_styles() {
        let doc = two_channel_builder()
            .meta("author", AttrValue::Str("cwi".into()))
            .style(StyleDef::new("caption-style"))
            .root_seq(|story| {
                story.imm_text("line", "caption", "x", 500);
            })
            .build()
            .unwrap();
        assert_eq!(doc.meta["author"].as_text(), Some("cwi"));
        assert!(doc.styles.contains("caption-style"));
    }

    #[test]
    fn nested_structure_matches_paths() {
        let doc = two_channel_builder()
            .root_seq(|news| {
                news.seq("story-1", |story| {
                    story.par("intro", |p| {
                        p.imm_text("title", "caption", "Story 1", 1000);
                    });
                    story.par("body", |p| {
                        p.ext("voice", "audio", "voice-block");
                    });
                });
            })
            .build()
            .unwrap();
        assert!(doc.find("/story-1/intro/title").is_ok());
        assert!(doc.find("/story-1/body/voice").is_ok());
        assert_eq!(doc.depth(), 4);
    }
}
