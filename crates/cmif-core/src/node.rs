//! Document tree nodes.
//!
//! "Each node in the tree can be one of four types" (§5.1): sequential,
//! parallel, external (a leaf pointing at a data descriptor) and immediate
//! (a leaf carrying its data inline). Nodes are stored in an arena owned by
//! [`crate::tree::Document`] and referenced by [`NodeId`].

use std::fmt;

use crate::attr::{Attr, AttrList, AttrName};
use crate::symbol::Symbol;
use crate::value::AttrValue;

/// Index of a node inside a document's arena.
///
/// `NodeId`s are only meaningful relative to the document that produced
/// them; they are stable for the lifetime of the document (nodes are never
/// physically removed from the arena, only detached).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(u32);

impl NodeId {
    /// A sentinel id used for attribute lists that are not yet attached to a
    /// document (error reporting only).
    pub const fn detached() -> NodeId {
        NodeId(u32::MAX)
    }

    /// Creates a node id from a raw arena index.
    pub const fn from_index(index: u32) -> NodeId {
        NodeId(index)
    }

    /// Returns the raw arena index.
    pub const fn index(self) -> usize {
        self.0 as usize
    }

    /// True if this is the detached sentinel.
    pub const fn is_detached(self) -> bool {
        self.0 == u32::MAX
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_detached() {
            write!(f, "#detached")
        } else {
            write!(f, "#{}", self.0)
        }
    }
}

/// Media data carried inline by an immediate node.
///
/// "The data is either text (the default) or another medium, as indicated by
/// attributes associated with the node." (§5.1)
#[derive(Debug, Clone, PartialEq)]
pub enum ImmediateData {
    /// Inline text, the default medium for immediate nodes.
    Text(String),
    /// Inline binary data of another medium; the node's attributes say how
    /// to interpret it. Useful "for transporting (large amounts of) data
    /// across environments that have no common storage server".
    Binary(Vec<u8>),
}

impl ImmediateData {
    /// Size of the inline payload in bytes.
    pub fn len(&self) -> usize {
        match self {
            ImmediateData::Text(s) => s.len(),
            ImmediateData::Binary(b) => b.len(),
        }
    }

    /// True when the payload is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Returns the payload as text when it is the text medium.
    pub fn as_text(&self) -> Option<&str> {
        match self {
            ImmediateData::Text(s) => Some(s),
            ImmediateData::Binary(_) => None,
        }
    }
}

/// The four node types of §5.1.
#[derive(Debug, Clone, PartialEq)]
pub enum NodeKind {
    /// Children execute sequentially, left-to-right.
    Seq,
    /// Children execute in parallel.
    Par,
    /// Leaf pointing at a data descriptor (via the `file` attribute) and
    /// thus at an external data block.
    Ext,
    /// Leaf carrying its data inline.
    Imm(ImmediateData),
}

impl NodeKind {
    /// True for the two leaf kinds (external and immediate).
    pub fn is_leaf(&self) -> bool {
        matches!(self, NodeKind::Ext | NodeKind::Imm(_))
    }

    /// True for the two interior kinds (sequential and parallel).
    pub fn is_composite(&self) -> bool {
        !self.is_leaf()
    }

    /// The keyword used for this node kind in the interchange format
    /// (Figure 6: `seqnode`, `parnode`, `extnode`, `immnode`).
    pub fn keyword(&self) -> &'static str {
        match self {
            NodeKind::Seq => "seq",
            NodeKind::Par => "par",
            NodeKind::Ext => "ext",
            NodeKind::Imm(_) => "imm",
        }
    }
}

impl fmt::Display for NodeKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.keyword())
    }
}

/// One node of the CMIF document tree.
#[derive(Debug, Clone, PartialEq)]
pub struct Node {
    /// The node's own id (its position in the document arena).
    pub id: NodeId,
    /// Sequential, parallel, external or immediate.
    pub kind: NodeKind,
    /// The node's attribute list.
    pub attrs: AttrList,
    /// Parent node; `None` only for the root and for detached nodes.
    pub parent: Option<NodeId>,
    /// Children in document order. Always empty for leaf nodes.
    pub children: Vec<NodeId>,
}

impl Node {
    /// Creates a node with the given id and kind and an empty attribute
    /// list. Intended for use by the document arena.
    pub(crate) fn new(id: NodeId, kind: NodeKind) -> Node {
        Node {
            id,
            kind,
            attrs: AttrList::new(),
            parent: None,
            children: Vec::new(),
        }
    }

    /// The node's `name` attribute, if present.
    pub fn name(&self) -> Option<&str> {
        self.attrs.get_text(&AttrName::Name)
    }

    /// The node's `name` attribute as an interned symbol, if present.
    pub fn name_symbol(&self) -> Option<Symbol> {
        self.attrs
            .get(&AttrName::Name)
            .and_then(AttrValue::as_symbol)
    }

    /// The node's own (non-inherited) `channel` attribute, if present.
    pub fn own_channel(&self) -> Option<&str> {
        self.attrs.get_text(&AttrName::Channel)
    }

    /// The node's own (non-inherited) `file` attribute, if present.
    pub fn own_file(&self) -> Option<&str> {
        self.attrs.get_text(&AttrName::File)
    }

    /// The node's own `duration` attribute in milliseconds, if present.
    pub fn own_duration_ms(&self) -> Option<i64> {
        self.attrs.get_number(&AttrName::Duration)
    }

    /// True for leaf nodes (external or immediate).
    pub fn is_leaf(&self) -> bool {
        self.kind.is_leaf()
    }

    /// Sets (or replaces) an attribute on the node.
    pub fn set_attr(&mut self, name: impl Into<AttrName>, value: AttrValue) {
        self.attrs.set(Attr::new(name, value));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_id_display_and_index() {
        let id = NodeId::from_index(5);
        assert_eq!(id.index(), 5);
        assert_eq!(id.to_string(), "#5");
        assert!(NodeId::detached().is_detached());
        assert_eq!(NodeId::detached().to_string(), "#detached");
    }

    #[test]
    fn node_kind_classification() {
        assert!(NodeKind::Seq.is_composite());
        assert!(NodeKind::Par.is_composite());
        assert!(NodeKind::Ext.is_leaf());
        assert!(NodeKind::Imm(ImmediateData::Text("x".into())).is_leaf());
        assert_eq!(NodeKind::Seq.keyword(), "seq");
        assert_eq!(NodeKind::Par.keyword(), "par");
        assert_eq!(NodeKind::Ext.keyword(), "ext");
        assert_eq!(
            NodeKind::Imm(ImmediateData::Text(String::new())).keyword(),
            "imm"
        );
    }

    #[test]
    fn immediate_data_accessors() {
        let text = ImmediateData::Text("hello".into());
        assert_eq!(text.len(), 5);
        assert_eq!(text.as_text(), Some("hello"));
        let bin = ImmediateData::Binary(vec![1, 2, 3]);
        assert_eq!(bin.len(), 3);
        assert!(bin.as_text().is_none());
        assert!(ImmediateData::Text(String::new()).is_empty());
    }

    #[test]
    fn node_attribute_helpers() {
        let mut node = Node::new(NodeId::from_index(0), NodeKind::Ext);
        assert!(node.name().is_none());
        node.set_attr(AttrName::Name, AttrValue::Id("intro".into()));
        node.set_attr(AttrName::Channel, AttrValue::Id("video".into()));
        node.set_attr(AttrName::File, AttrValue::Str("intro.mpg".into()));
        node.set_attr(AttrName::Duration, AttrValue::Number(4000));
        assert_eq!(node.name(), Some("intro"));
        assert_eq!(node.own_channel(), Some("video"));
        assert_eq!(node.own_file(), Some("intro.mpg"));
        assert_eq!(node.own_duration_ms(), Some(4000));
        assert!(node.is_leaf());
    }

    #[test]
    fn set_attr_overrides_previous_value() {
        let mut node = Node::new(NodeId::from_index(1), NodeKind::Seq);
        node.set_attr(AttrName::Name, AttrValue::Id("a".into()));
        node.set_attr(AttrName::Name, AttrValue::Id("b".into()));
        assert_eq!(node.name(), Some("b"));
        assert_eq!(node.attrs.len(), 1);
    }
}
