//! Document statistics.
//!
//! The §3.1 building-block table and the Figure 2 "structure vs data" claim
//! both boil down to counting and sizing the five CMIF building blocks. The
//! [`DocumentStats`] summary is what the benches print when they regenerate
//! those artifacts, and it is also the "summary information" the paper says
//! virtual-presentation and constraint tools should be able to get without
//! touching the data (§2).

use std::collections::BTreeMap;
use std::fmt;

use crate::descriptor::DescriptorResolver;
use crate::error::Result;
use crate::node::NodeKind;
use crate::time::TimeMs;
use crate::tree::Document;

/// Counts and sizes of the CMIF building blocks present in one document.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct DocumentStats {
    /// Total nodes reachable from the root.
    pub nodes: usize,
    /// Sequential interior nodes.
    pub seq_nodes: usize,
    /// Parallel interior nodes.
    pub par_nodes: usize,
    /// External leaf nodes (events referencing data descriptors).
    pub ext_nodes: usize,
    /// Immediate leaf nodes (events carrying inline data).
    pub imm_nodes: usize,
    /// Depth of the document tree.
    pub depth: usize,
    /// Synchronization channels declared in the root dictionary.
    pub channels: usize,
    /// Styles declared in the root dictionary.
    pub styles: usize,
    /// Explicit synchronization arcs.
    pub sync_arcs: usize,
    /// Data descriptors in the embedded catalog.
    pub data_descriptors: usize,
    /// Events (leaves) per channel name.
    pub events_per_channel: BTreeMap<crate::symbol::Symbol, usize>,
    /// Approximate size of the document structure itself in bytes
    /// (attributes + inline data), i.e. what has to move when the structure
    /// is transported *without* the data.
    pub structure_bytes: usize,
    /// Total size of the media data referenced by external nodes in bytes,
    /// i.e. what would additionally move if the data went along.
    pub referenced_data_bytes: u64,
    /// Sum of known leaf durations (an upper bound on sequential length).
    pub total_leaf_duration: TimeMs,
}

impl DocumentStats {
    /// Total leaf (event) count.
    pub fn events(&self) -> usize {
        self.ext_nodes + self.imm_nodes
    }

    /// The ratio of referenced data size to structure size; the Figure 2
    /// claim is that this is large (structure is cheap to ship and query).
    pub fn data_to_structure_ratio(&self) -> f64 {
        if self.structure_bytes == 0 {
            return 0.0;
        }
        self.referenced_data_bytes as f64 / self.structure_bytes as f64
    }
}

impl fmt::Display for DocumentStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "nodes: {} (depth {})", self.nodes, self.depth)?;
        writeln!(
            f,
            "  seq: {}  par: {}  ext: {}  imm: {}",
            self.seq_nodes, self.par_nodes, self.ext_nodes, self.imm_nodes
        )?;
        writeln!(
            f,
            "channels: {}  styles: {}  sync arcs: {}  data descriptors: {}",
            self.channels, self.styles, self.sync_arcs, self.data_descriptors
        )?;
        // Symbol order is intern order; list channels alphabetically so the
        // report is stable across processes.
        let mut per_channel: Vec<_> = self.events_per_channel.iter().collect();
        per_channel.sort_by_key(|(channel, _)| channel.as_str());
        for (channel, count) in per_channel {
            writeln!(f, "  channel {channel}: {count} events")?;
        }
        writeln!(
            f,
            "structure: {} bytes, referenced data: {} bytes (ratio {:.1}x)",
            self.structure_bytes,
            self.referenced_data_bytes,
            self.data_to_structure_ratio()
        )?;
        write!(f, "total leaf duration: {}", self.total_leaf_duration)
    }
}

/// Computes the statistics of a document.
///
/// `resolver` is used to size and time external events; pass the document's
/// own catalog for self-contained documents.
pub fn stats(doc: &Document, resolver: &dyn DescriptorResolver) -> Result<DocumentStats> {
    let mut out = DocumentStats {
        depth: doc.depth(),
        channels: doc.channels.len(),
        styles: doc.styles.len(),
        sync_arcs: doc.arcs().len(),
        data_descriptors: doc.catalog.len(),
        ..DocumentStats::default()
    };

    for id in doc.preorder() {
        let node = doc.node(id)?;
        out.nodes += 1;
        out.structure_bytes += node.attrs.approx_size() + 16;
        match &node.kind {
            NodeKind::Seq => out.seq_nodes += 1,
            NodeKind::Par => out.par_nodes += 1,
            NodeKind::Ext => out.ext_nodes += 1,
            NodeKind::Imm(data) => {
                out.imm_nodes += 1;
                out.structure_bytes += data.len();
            }
        }
        if node.kind.is_leaf() {
            let channel = doc
                .channel_of(id)?
                .unwrap_or_else(crate::tree::unassigned_channel);
            *out.events_per_channel.entry(channel).or_default() += 1;
            if let Some(duration) = doc.duration_of(id, resolver)? {
                out.total_leaf_duration += duration;
            }
            if node.kind == NodeKind::Ext {
                if let Some(key) = doc.file_of(id)? {
                    if let Some(descriptor) = resolver.resolve_symbol(key) {
                        out.referenced_data_bytes += descriptor.size_bytes;
                    }
                }
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attr::AttrName;
    use crate::channel::{ChannelDef, MediaKind};
    use crate::descriptor::DataDescriptor;
    use crate::node::NodeKind;
    use crate::value::AttrValue;

    fn sample_doc() -> Document {
        let mut doc = Document::with_root(NodeKind::Seq);
        let root = doc.root().unwrap();
        doc.channels
            .define(ChannelDef::new("audio", MediaKind::Audio))
            .unwrap();
        doc.channels
            .define(ChannelDef::new("label", MediaKind::Label))
            .unwrap();
        doc.catalog
            .register(
                DataDescriptor::new("clip", MediaKind::Audio, "pcm8")
                    .with_size(400_000)
                    .with_duration(TimeMs::from_secs(5)),
            )
            .unwrap();
        let par = doc.add_par(root).unwrap();
        doc.set_attr(par, AttrName::Name, AttrValue::Id("scene".into()))
            .unwrap();
        let voice = doc.add_ext(par).unwrap();
        doc.set_attr(voice, AttrName::Name, AttrValue::Id("voice".into()))
            .unwrap();
        doc.set_attr(voice, AttrName::Channel, AttrValue::Id("audio".into()))
            .unwrap();
        doc.set_attr(voice, AttrName::File, AttrValue::Str("clip".into()))
            .unwrap();
        let label = doc.add_imm_text(par, "Story").unwrap();
        doc.set_attr(label, AttrName::Name, AttrValue::Id("title".into()))
            .unwrap();
        doc.set_attr(label, AttrName::Channel, AttrValue::Id("label".into()))
            .unwrap();
        doc.set_attr(label, AttrName::Duration, AttrValue::Number(2_000))
            .unwrap();
        doc
    }

    #[test]
    fn counts_building_blocks() {
        let doc = sample_doc();
        let s = stats(&doc, &doc.catalog).unwrap();
        assert_eq!(s.nodes, 4);
        assert_eq!(s.seq_nodes, 1);
        assert_eq!(s.par_nodes, 1);
        assert_eq!(s.ext_nodes, 1);
        assert_eq!(s.imm_nodes, 1);
        assert_eq!(s.events(), 2);
        assert_eq!(s.channels, 2);
        assert_eq!(s.data_descriptors, 1);
        assert_eq!(s.depth, 3);
        assert_eq!(
            s.events_per_channel[&crate::symbol::Symbol::intern("audio")],
            1
        );
        assert_eq!(
            s.events_per_channel[&crate::symbol::Symbol::intern("label")],
            1
        );
    }

    #[test]
    fn structure_is_much_smaller_than_data() {
        let doc = sample_doc();
        let s = stats(&doc, &doc.catalog).unwrap();
        assert!(s.structure_bytes < 4096);
        assert_eq!(s.referenced_data_bytes, 400_000);
        assert!(s.data_to_structure_ratio() > 10.0);
    }

    #[test]
    fn durations_are_summed() {
        let doc = sample_doc();
        let s = stats(&doc, &doc.catalog).unwrap();
        assert_eq!(s.total_leaf_duration, TimeMs::from_millis(7_000));
    }

    #[test]
    fn display_mentions_key_numbers() {
        let doc = sample_doc();
        let s = stats(&doc, &doc.catalog).unwrap();
        let text = s.to_string();
        assert!(text.contains("nodes: 4"));
        assert!(text.contains("channel audio: 1 events"));
    }

    #[test]
    fn empty_ratio_is_zero() {
        let s = DocumentStats::default();
        assert_eq!(s.data_to_structure_ratio(), 0.0);
    }
}
