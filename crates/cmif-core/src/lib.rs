//! # cmif-core — the CMIF document model
//!
//! This crate implements the primary contribution of *"A Structure for
//! Transportable, Dynamic Multimedia Documents"* (Bulterman, van Rossum,
//! van Liere — USENIX 1991): the **CWI Multimedia Interchange Format**
//! document structure.
//!
//! A CMIF document separates three things that contemporaneous systems
//! entangled:
//!
//! * **content** — media data blocks, referenced through [`descriptor`]s
//!   rather than embedded;
//! * **structure** — a [`tree::Document`] of sequential, parallel, external
//!   and immediate [`node`]s carrying [`attr`]ibutes;
//! * **synchronization** — [`channel`]s that serialize events of one medium
//!   and [`arc`]s that constrain events across channels with Must/May
//!   strictness and `[δ, ε]` tolerance windows.
//!
//! The crate is deliberately free of I/O, scheduling and rendering: those
//! live in `cmif-format`, `cmif-scheduler` and `cmif-pipeline`. Everything
//! here is pure data modelling plus the structural queries (inheritance,
//! path resolution, validation, statistics) the rest of the system needs.
//!
//! ## Quick start
//!
//! ```
//! use cmif_core::prelude::*;
//!
//! # fn main() -> Result<()> {
//! let doc = DocumentBuilder::new("hello")
//!     .channel("audio", MediaKind::Audio)
//!     .channel("caption", MediaKind::Text)
//!     .descriptor(
//!         DataDescriptor::new("greeting", MediaKind::Audio, "pcm8")
//!             .with_duration(TimeMs::from_secs(3))
//!             .with_size(24_000),
//!     )
//!     .root_par(|scene| {
//!         scene.ext("voice", "audio", "greeting");
//!         scene.imm_text("subtitle", "caption", "Hello, world", 3_000);
//!     })
//!     .build()?;
//!
//! let stats = cmif_core::stats::stats(&doc, &doc.catalog)?;
//! assert_eq!(stats.events(), 2);
//! # Ok(()) }
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod arc;
pub mod attr;
pub mod builder;
pub mod channel;
pub mod descriptor;
pub mod diag;
pub mod edit;
pub mod error;
pub mod node;
pub mod path;
pub mod span;
pub mod stats;
pub mod style;
pub mod symbol;
pub mod time;
pub mod tree;
pub mod validate;
pub mod value;

/// The most commonly used types, re-exported for glob import.
pub mod prelude {
    pub use crate::arc::{Anchor, Strictness, SyncArc};
    pub use crate::attr::{Attr, AttrList, AttrName, TextFormatting};
    pub use crate::builder::{DocumentBuilder, NodeBuilder};
    pub use crate::channel::{ChannelDef, ChannelDictionary, MediaKind};
    pub use crate::descriptor::{
        DataDescriptor, DescriptorCatalog, DescriptorResolver, EventDescriptor, ResourceNeeds,
        Selection,
    };
    pub use crate::diag::{Code, Diagnostic, Related, Severity, SeverityConfig, SourceMap};
    pub use crate::edit::{DocRevision, Edit, EditDelta, NodeSpec};
    pub use crate::error::{CoreError, Result};
    pub use crate::node::{ImmediateData, Node, NodeId, NodeKind};
    pub use crate::path::NodePath;
    pub use crate::span::{Position, Span};
    pub use crate::stats::{stats, DocumentStats};
    pub use crate::style::{StyleDef, StyleDictionary};
    pub use crate::symbol::Symbol;
    pub use crate::time::{DelayMs, MaxDelay, MediaTime, MediaUnit, RateInfo, TimeMs};
    pub use crate::tree::{Document, RevisionToken};
    pub use crate::validate::{validate, validate_all};
    pub use crate::value::AttrValue;
}

pub use prelude::*;
