//! Source positions and spans.
//!
//! These types used to live in `cmif-format`, but diagnostics produced by
//! every layer (the linter, the scheduler's admission gate, the pipeline)
//! need to point back into source text, so the vocabulary lives here at the
//! bottom of the stack. `cmif-format` re-exports them unchanged.

use std::fmt;

/// A position in the source text: 1-based line and column plus the 0-based
/// byte offset from the start of the input.
///
/// The byte offset survives every conversion up the error chain
/// (`FormatError` → `DistribError` → `cmif::Error`), so a tool holding the
/// original text can always slice out the offending region.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Position {
    /// 1-based line number.
    pub line: u32,
    /// 1-based column number.
    pub column: u32,
    /// 0-based byte offset from the start of the source text.
    pub offset: usize,
}

impl Position {
    /// Creates a position.
    pub fn new(line: u32, column: u32, offset: usize) -> Position {
        Position {
            line,
            column,
            offset,
        }
    }
}

impl fmt::Display for Position {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.line, self.column)
    }
}

/// A half-open byte range of the source text, with full line/column
/// positions at both ends so a renderer can underline multi-line regions.
/// Produced by the lexer for every token; errors anchored on a token carry
/// its span start as their [`Position`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Span {
    /// Where the spanned text starts.
    pub start: Position,
    /// One past the end of the spanned text.
    pub end: Position,
}

impl Span {
    /// Creates a span from a start position and an exclusive end position.
    pub fn new(start: Position, end: Position) -> Span {
        Span { start, end }
    }

    /// The spanned byte length.
    pub fn len(&self) -> usize {
        self.end.offset.saturating_sub(self.start.offset)
    }

    /// True when the span covers no bytes.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// True when the span crosses at least one line break.
    pub fn is_multiline(&self) -> bool {
        self.end.line > self.start.line
    }

    /// The smallest span covering both `self` and `other`.
    pub fn to(self, other: Span) -> Span {
        let start = if other.start.offset < self.start.offset {
            other.start
        } else {
            self.start
        };
        let end = if other.end.offset > self.end.offset {
            other.end
        } else {
            self.end
        };
        Span { start, end }
    }

    /// Slices the spanned text out of the original source.
    pub fn text<'a>(&self, source: &'a str) -> Option<&'a str> {
        source.get(self.start.offset..self.end.offset)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn position_display() {
        assert_eq!(Position::new(3, 14, 120).to_string(), "3:14");
    }

    #[test]
    fn spans_slice_the_source() {
        let source = "(seq news)";
        let span = Span::new(Position::new(1, 2, 1), Position::new(1, 5, 4));
        assert_eq!(span.len(), 3);
        assert_eq!(span.text(source), Some("seq"));
        assert!(!span.is_empty());
        assert!(!span.is_multiline());
    }

    #[test]
    fn multiline_spans_know_both_ends() {
        let source = "(a\n  b)";
        let span = Span::new(Position::new(1, 1, 0), Position::new(2, 5, 7));
        assert_eq!(span.text(source), Some(source));
        assert!(span.is_multiline());
        assert_eq!(span.end.line, 2);
        assert_eq!(span.end.column, 5);
    }

    #[test]
    fn join_covers_both_spans() {
        let a = Span::new(Position::new(1, 1, 0), Position::new(1, 3, 2));
        let b = Span::new(Position::new(2, 1, 5), Position::new(2, 4, 8));
        let joined = a.to(b);
        assert_eq!(joined.start.offset, 0);
        assert_eq!(joined.end.offset, 8);
        assert_eq!(b.to(a), joined);
    }
}
