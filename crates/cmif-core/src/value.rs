//! Attribute value types.
//!
//! The paper (§5.2) defines four example attribute value shapes:
//!
//! * **ID** — "a character value (without embedded spaces)";
//! * **NUMBER** — a numeric value;
//! * **STRING** — "a character-string (in quotes, possibly with embedded
//!   spaces)";
//! * **value\*** — "a (set of) pointer(s) to other attributes".
//!
//! [`AttrValue`] models these, plus a list form used by compound standard
//! attributes (style dictionaries, channel dictionaries, `T_Formatting`
//! shorthand lists and synchronization arc tuples).

use std::fmt;

use crate::symbol::Symbol;

/// A single attribute value.
#[derive(Debug, Clone, PartialEq)]
pub enum AttrValue {
    /// An identifier: a character value without embedded spaces, interned.
    Id(Symbol),
    /// An integral numeric value.
    Number(i64),
    /// A real (floating point) numeric value.
    Real(f64),
    /// A quoted character string, possibly with embedded spaces.
    Str(String),
    /// A reference ("pointer") to another attribute, by interned name.
    Ref(Symbol),
    /// An ordered list of values (the `value*` form generalised).
    List(Vec<AttrValue>),
}

impl AttrValue {
    /// Creates an identifier value, validating that it has no embedded
    /// whitespace. Returns `None` if the candidate is empty or contains
    /// whitespace (the paper requires IDs to be space-free).
    pub fn id(candidate: impl AsRef<str>) -> Option<AttrValue> {
        let s = candidate.as_ref();
        if s.is_empty() || s.chars().any(char::is_whitespace) {
            None
        } else {
            Some(AttrValue::Id(Symbol::intern(s)))
        }
    }

    /// Creates a string value.
    pub fn string(s: impl Into<String>) -> AttrValue {
        AttrValue::Str(s.into())
    }

    /// Creates an integral number value.
    pub fn number(n: i64) -> AttrValue {
        AttrValue::Number(n)
    }

    /// Creates a real-number value.
    pub fn real(x: f64) -> AttrValue {
        AttrValue::Real(x)
    }

    /// Creates a list value.
    pub fn list(values: impl IntoIterator<Item = AttrValue>) -> AttrValue {
        AttrValue::List(values.into_iter().collect())
    }

    /// Returns the value as an identifier string if it is an `Id`.
    pub fn as_id(&self) -> Option<&str> {
        match self {
            AttrValue::Id(s) => Some(s.as_str()),
            _ => None,
        }
    }

    /// Returns the value as an interned symbol when it is an `Id`.
    pub fn as_id_symbol(&self) -> Option<Symbol> {
        match self {
            AttrValue::Id(s) => Some(*s),
            _ => None,
        }
    }

    /// Returns the value as text if it is an `Id` or a `Str`.
    ///
    /// Several standard attributes (channel names, file keys, style names)
    /// accept either shape; this accessor papers over the difference.
    pub fn as_text(&self) -> Option<&str> {
        match self {
            AttrValue::Id(s) => Some(s.as_str()),
            AttrValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Returns the value as an interned symbol when it is an `Id` or,
    /// interning on the fly, a `Str`. Names flow through the system as
    /// `Copy` symbols; this is the boundary where textual shapes join.
    pub fn as_symbol(&self) -> Option<Symbol> {
        match self {
            AttrValue::Id(s) => Some(*s),
            AttrValue::Str(s) => Some(Symbol::intern(s)),
            _ => None,
        }
    }

    /// Returns the value as an integer if it is a `Number` (or an integral
    /// `Real`).
    pub fn as_number(&self) -> Option<i64> {
        match self {
            AttrValue::Number(n) => Some(*n),
            AttrValue::Real(x) if x.fract() == 0.0 => Some(*x as i64),
            _ => None,
        }
    }

    /// Returns the value as a float if it is numeric.
    pub fn as_real(&self) -> Option<f64> {
        match self {
            AttrValue::Number(n) => Some(*n as f64),
            AttrValue::Real(x) => Some(*x),
            _ => None,
        }
    }

    /// Returns the value as a slice of values if it is a `List`.
    pub fn as_list(&self) -> Option<&[AttrValue]> {
        match self {
            AttrValue::List(v) => Some(v),
            _ => None,
        }
    }

    /// Returns the referenced attribute name if it is a `Ref`.
    pub fn as_ref_name(&self) -> Option<&str> {
        match self {
            AttrValue::Ref(s) => Some(s.as_str()),
            _ => None,
        }
    }

    /// A short tag naming the value's shape, used in error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            AttrValue::Id(_) => "id",
            AttrValue::Number(_) => "number",
            AttrValue::Real(_) => "real",
            AttrValue::Str(_) => "string",
            AttrValue::Ref(_) => "ref",
            AttrValue::List(_) => "list",
        }
    }

    /// Approximate in-memory footprint of the value in bytes, used by the
    /// "structure vs data" benchmarks to quantify how small descriptors are
    /// compared to the media blocks they describe.
    pub fn approx_size(&self) -> usize {
        match self {
            AttrValue::Id(s) | AttrValue::Ref(s) => s.len(),
            AttrValue::Str(s) => s.len(),
            AttrValue::Number(_) | AttrValue::Real(_) => 8,
            AttrValue::List(v) => v.iter().map(AttrValue::approx_size).sum::<usize>() + 8,
        }
    }
}

impl fmt::Display for AttrValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AttrValue::Id(s) => f.write_str(s.as_str()),
            AttrValue::Number(n) => write!(f, "{n}"),
            AttrValue::Real(x) => write!(f, "{x}"),
            AttrValue::Str(s) => write!(f, "\"{}\"", s.replace('\\', "\\\\").replace('"', "\\\"")),
            AttrValue::Ref(s) => write!(f, "&{s}"),
            AttrValue::List(v) => {
                f.write_str("(")?;
                for (i, item) in v.iter().enumerate() {
                    if i > 0 {
                        f.write_str(" ")?;
                    }
                    write!(f, "{item}")?;
                }
                f.write_str(")")
            }
        }
    }
}

impl From<i64> for AttrValue {
    fn from(n: i64) -> Self {
        AttrValue::Number(n)
    }
}

impl From<f64> for AttrValue {
    fn from(x: f64) -> Self {
        AttrValue::Real(x)
    }
}

impl From<&str> for AttrValue {
    fn from(s: &str) -> Self {
        AttrValue::Str(s.to_string())
    }
}

impl From<String> for AttrValue {
    fn from(s: String) -> Self {
        AttrValue::Str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn id_rejects_whitespace_and_empty() {
        assert!(AttrValue::id("audio-1").is_some());
        assert!(AttrValue::id("has space").is_none());
        assert!(AttrValue::id("").is_none());
        assert!(AttrValue::id("tab\tbed").is_none());
    }

    #[test]
    fn accessors_return_expected_shapes() {
        assert_eq!(AttrValue::id("x").unwrap().as_id(), Some("x"));
        assert_eq!(
            AttrValue::string("hello world").as_text(),
            Some("hello world")
        );
        assert_eq!(AttrValue::id("x").unwrap().as_text(), Some("x"));
        assert_eq!(AttrValue::number(5).as_number(), Some(5));
        assert_eq!(AttrValue::real(2.0).as_number(), Some(2));
        assert_eq!(AttrValue::real(2.5).as_number(), None);
        assert_eq!(AttrValue::number(5).as_real(), Some(5.0));
        assert_eq!(AttrValue::Ref("other".into()).as_ref_name(), Some("other"));
        assert!(AttrValue::number(5).as_text().is_none());
    }

    #[test]
    fn list_roundtrip() {
        let l = AttrValue::list([AttrValue::number(1), AttrValue::string("two")]);
        assert_eq!(l.as_list().unwrap().len(), 2);
        assert!(AttrValue::number(1).as_list().is_none());
    }

    #[test]
    fn display_forms() {
        assert_eq!(AttrValue::id("vid").unwrap().to_string(), "vid");
        assert_eq!(AttrValue::number(-3).to_string(), "-3");
        assert_eq!(AttrValue::string("a \"b\"").to_string(), "\"a \\\"b\\\"\"");
        assert_eq!(AttrValue::Ref("n".into()).to_string(), "&n");
        assert_eq!(
            AttrValue::list([AttrValue::number(1), AttrValue::number(2)]).to_string(),
            "(1 2)"
        );
    }

    #[test]
    fn kinds_are_stable() {
        assert_eq!(AttrValue::id("a").unwrap().kind(), "id");
        assert_eq!(AttrValue::number(1).kind(), "number");
        assert_eq!(AttrValue::real(1.5).kind(), "real");
        assert_eq!(AttrValue::string("s").kind(), "string");
        assert_eq!(AttrValue::Ref("r".into()).kind(), "ref");
        assert_eq!(AttrValue::list([]).kind(), "list");
    }

    #[test]
    fn approx_size_counts_nested_content() {
        let v = AttrValue::list([AttrValue::string("abcd"), AttrValue::number(1)]);
        assert_eq!(v.approx_size(), 4 + 8 + 8);
    }

    #[test]
    fn from_impls() {
        assert_eq!(AttrValue::from(7i64), AttrValue::Number(7));
        assert_eq!(AttrValue::from("x"), AttrValue::Str("x".into()));
        assert_eq!(
            AttrValue::from(String::from("y")),
            AttrValue::Str("y".into())
        );
        assert_eq!(AttrValue::from(1.5f64), AttrValue::Real(1.5));
    }
}
