//! Styles and the style dictionary.
//!
//! "There is one attribute, 'style', which is a shorthand for placing a set
//! of attributes on a node." (§5.2)  The root node's style dictionary
//! "defines one or more new styles […] Style definitions may refer to other
//! style definitions as long as no style refers to itself, directly or
//! indirectly." (Figure 7)
//!
//! [`StyleDictionary::expand`] flattens a style (following nested style
//! references) into the set of attributes it stands for, detecting cycles
//! and unknown references.

use std::collections::BTreeMap;

use crate::attr::{Attr, AttrList, AttrName};
use crate::error::{CoreError, Result};

/// One style definition: a name bound to a set of attributes, possibly
/// including references to other styles.
#[derive(Debug, Clone, PartialEq)]
pub struct StyleDef {
    /// The style's name, referenced by `style` attributes.
    pub name: String,
    /// Names of other styles this style builds on (applied first, in order,
    /// so that this style's own attributes override theirs).
    pub parents: Vec<String>,
    /// The attributes the style places on a node.
    pub attrs: Vec<Attr>,
}

impl StyleDef {
    /// Creates a style with no parents and no attributes.
    pub fn new(name: impl Into<String>) -> StyleDef {
        StyleDef {
            name: name.into(),
            parents: Vec::new(),
            attrs: Vec::new(),
        }
    }

    /// Adds a parent style reference (builder style).
    pub fn with_parent(mut self, parent: impl Into<String>) -> StyleDef {
        self.parents.push(parent.into());
        self
    }

    /// Adds an attribute the style sets (builder style).
    pub fn with_attr(mut self, attr: Attr) -> StyleDef {
        self.attrs.push(attr);
        self
    }
}

/// The style dictionary of the root node.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct StyleDictionary {
    styles: BTreeMap<String, StyleDef>,
    /// Declaration order, preserved for round-tripping.
    order: Vec<String>,
}

impl StyleDictionary {
    /// Creates an empty dictionary.
    pub fn new() -> StyleDictionary {
        StyleDictionary::default()
    }

    /// Number of styles defined.
    pub fn len(&self) -> usize {
        self.styles.len()
    }

    /// True when no styles are defined.
    pub fn is_empty(&self) -> bool {
        self.styles.is_empty()
    }

    /// Defines a style, rejecting duplicate names.
    pub fn define(&mut self, def: StyleDef) -> Result<()> {
        if self.styles.contains_key(&def.name) {
            return Err(CoreError::DuplicateStyle { style: def.name });
        }
        self.order.push(def.name.clone());
        self.styles.insert(def.name.clone(), def);
        Ok(())
    }

    /// Looks up a style definition by name.
    pub fn get(&self, name: &str) -> Option<&StyleDef> {
        self.styles.get(name)
    }

    /// True when a style with the given name exists.
    pub fn contains(&self, name: &str) -> bool {
        self.styles.contains_key(name)
    }

    /// Iterates over the style definitions in declaration order.
    pub fn iter(&self) -> impl Iterator<Item = &StyleDef> {
        self.order.iter().filter_map(|name| self.styles.get(name))
    }

    /// Expands a style name into the flat attribute list it stands for.
    ///
    /// Parent styles are applied first (in declaration order of the
    /// references), then the style's own attributes, so that the most
    /// specific definition wins — the same override rule the paper gives for
    /// inherited attributes.
    ///
    /// Returns [`CoreError::UnknownStyle`] for dangling references and
    /// [`CoreError::StyleCycle`] when a style refers to itself directly or
    /// indirectly.
    pub fn expand(&self, name: &str) -> Result<AttrList> {
        let mut out = AttrList::new();
        let mut visiting = Vec::new();
        self.expand_into(name, &mut out, &mut visiting)?;
        Ok(out)
    }

    /// Expands every style referenced by a `style` attribute value (one name
    /// or a list of names, applied in order).
    pub fn expand_all<'a>(&self, names: impl IntoIterator<Item = &'a str>) -> Result<AttrList> {
        let mut out = AttrList::new();
        for name in names {
            let mut visiting = Vec::new();
            self.expand_into(name, &mut out, &mut visiting)?;
        }
        Ok(out)
    }

    fn expand_into(
        &self,
        name: &str,
        out: &mut AttrList,
        visiting: &mut Vec<String>,
    ) -> Result<()> {
        if visiting.iter().any(|n| n == name) {
            return Err(CoreError::StyleCycle {
                style: name.to_string(),
            });
        }
        let def = self
            .styles
            .get(name)
            .ok_or_else(|| CoreError::UnknownStyle {
                style: name.to_string(),
            })?;
        visiting.push(name.to_string());
        for parent in &def.parents {
            self.expand_into(parent, out, visiting)?;
        }
        for attr in &def.attrs {
            out.set(attr.clone());
        }
        visiting.pop();
        Ok(())
    }

    /// Checks every definition for dangling references and cycles.
    pub fn validate(&self) -> Result<()> {
        for name in &self.order {
            self.expand(name)?;
        }
        Ok(())
    }

    /// The maximum depth of style nesting (1 for a style with no parents).
    /// Used by the Figure 7 benchmark to sweep expansion depth.
    pub fn nesting_depth(&self, name: &str) -> Result<usize> {
        fn depth(dict: &StyleDictionary, name: &str, visiting: &mut Vec<String>) -> Result<usize> {
            if visiting.iter().any(|n| n == name) {
                return Err(CoreError::StyleCycle {
                    style: name.to_string(),
                });
            }
            let def = dict
                .styles
                .get(name)
                .ok_or_else(|| CoreError::UnknownStyle {
                    style: name.to_string(),
                })?;
            visiting.push(name.to_string());
            let mut max_parent = 0;
            for parent in &def.parents {
                max_parent = max_parent.max(depth(dict, parent, visiting)?);
            }
            visiting.pop();
            Ok(max_parent + 1)
        }
        depth(self, name, &mut Vec::new())
    }
}

impl FromIterator<StyleDef> for StyleDictionary {
    fn from_iter<T: IntoIterator<Item = StyleDef>>(iter: T) -> Self {
        let mut dict = StyleDictionary::new();
        for def in iter {
            if dict.styles.contains_key(&def.name) {
                dict.styles.insert(def.name.clone(), def);
            } else {
                // `define` cannot fail here because of the contains check.
                let _ = dict.define(def);
            }
        }
        dict
    }
}

/// Extracts the style names referenced by a `style` attribute value.
///
/// Accepts a single identifier/string or a list of them. Names come back as
/// interned symbols — no allocation when the value is already an `Id`.
pub fn style_names(value: &crate::value::AttrValue) -> Result<Vec<crate::symbol::Symbol>> {
    use crate::value::AttrValue;
    match value {
        // repo_lint: allow(both arms are textual, as_symbol cannot miss)
        AttrValue::Id(_) | AttrValue::Str(_) => Ok(vec![value.as_symbol().expect("textual value")]),
        AttrValue::List(items) => {
            let mut names = Vec::with_capacity(items.len());
            for item in items {
                let name = item.as_symbol().ok_or(CoreError::AttributeType {
                    name: AttrName::Style,
                    expected: "a style name or a list of style names",
                })?;
                names.push(name);
            }
            Ok(names)
        }
        _ => Err(CoreError::AttributeType {
            name: AttrName::Style,
            expected: "a style name or a list of style names",
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::AttrValue;

    fn caption_style() -> StyleDef {
        StyleDef::new("caption-text")
            .with_attr(Attr::new(
                AttrName::Channel,
                AttrValue::Id("caption".into()),
            ))
            .with_attr(Attr::new(
                AttrName::TFormatting,
                AttrValue::list([AttrValue::list([
                    AttrValue::Id("font".into()),
                    AttrValue::Id("helvetica".into()),
                ])]),
            ))
    }

    #[test]
    fn define_and_lookup() {
        let mut dict = StyleDictionary::new();
        dict.define(caption_style()).unwrap();
        assert_eq!(dict.len(), 1);
        assert!(dict.contains("caption-text"));
        assert!(dict.get("caption-text").is_some());
        assert!(!dict.is_empty());
    }

    #[test]
    fn duplicate_definition_is_rejected() {
        let mut dict = StyleDictionary::new();
        dict.define(caption_style()).unwrap();
        let err = dict.define(caption_style()).unwrap_err();
        assert!(matches!(err, CoreError::DuplicateStyle { .. }));
    }

    #[test]
    fn expand_flat_style() {
        let mut dict = StyleDictionary::new();
        dict.define(caption_style()).unwrap();
        let attrs = dict.expand("caption-text").unwrap();
        assert_eq!(attrs.get_text(&AttrName::Channel), Some("caption"));
        assert!(attrs.contains(&AttrName::TFormatting));
    }

    #[test]
    fn expand_nested_style_child_overrides_parent() {
        let mut dict = StyleDictionary::new();
        dict.define(
            StyleDef::new("base")
                .with_attr(Attr::new(
                    AttrName::Channel,
                    AttrValue::Id("caption".into()),
                ))
                .with_attr(Attr::new(AttrName::Duration, AttrValue::Number(1000))),
        )
        .unwrap();
        dict.define(
            StyleDef::new("highlight")
                .with_parent("base")
                .with_attr(Attr::new(AttrName::Duration, AttrValue::Number(2000))),
        )
        .unwrap();
        let attrs = dict.expand("highlight").unwrap();
        assert_eq!(attrs.get_text(&AttrName::Channel), Some("caption"));
        assert_eq!(attrs.get_number(&AttrName::Duration), Some(2000));
    }

    #[test]
    fn expand_unknown_style_is_error() {
        let dict = StyleDictionary::new();
        assert!(matches!(
            dict.expand("nope").unwrap_err(),
            CoreError::UnknownStyle { .. }
        ));
    }

    #[test]
    fn direct_cycle_is_detected() {
        let mut dict = StyleDictionary::new();
        dict.define(StyleDef::new("a").with_parent("a")).unwrap();
        assert!(matches!(
            dict.expand("a").unwrap_err(),
            CoreError::StyleCycle { .. }
        ));
        assert!(dict.validate().is_err());
    }

    #[test]
    fn indirect_cycle_is_detected() {
        let mut dict = StyleDictionary::new();
        dict.define(StyleDef::new("a").with_parent("b")).unwrap();
        dict.define(StyleDef::new("b").with_parent("c")).unwrap();
        dict.define(StyleDef::new("c").with_parent("a")).unwrap();
        assert!(matches!(
            dict.expand("a").unwrap_err(),
            CoreError::StyleCycle { .. }
        ));
    }

    #[test]
    fn diamond_reference_is_not_a_cycle() {
        // a -> b, a -> c, b -> d, c -> d: d is reached twice but no cycle.
        let mut dict = StyleDictionary::new();
        dict.define(
            StyleDef::new("d").with_attr(Attr::new(AttrName::Duration, AttrValue::Number(5))),
        )
        .unwrap();
        dict.define(StyleDef::new("b").with_parent("d")).unwrap();
        dict.define(StyleDef::new("c").with_parent("d")).unwrap();
        dict.define(StyleDef::new("a").with_parent("b").with_parent("c"))
            .unwrap();
        let attrs = dict.expand("a").unwrap();
        assert_eq!(attrs.get_number(&AttrName::Duration), Some(5));
        assert!(dict.validate().is_ok());
    }

    #[test]
    fn nesting_depth_counts_levels() {
        let mut dict = StyleDictionary::new();
        dict.define(StyleDef::new("l1")).unwrap();
        dict.define(StyleDef::new("l2").with_parent("l1")).unwrap();
        dict.define(StyleDef::new("l3").with_parent("l2")).unwrap();
        assert_eq!(dict.nesting_depth("l1").unwrap(), 1);
        assert_eq!(dict.nesting_depth("l3").unwrap(), 3);
    }

    #[test]
    fn expand_all_applies_styles_in_order() {
        let mut dict = StyleDictionary::new();
        dict.define(
            StyleDef::new("first").with_attr(Attr::new(AttrName::Duration, AttrValue::Number(1))),
        )
        .unwrap();
        dict.define(
            StyleDef::new("second").with_attr(Attr::new(AttrName::Duration, AttrValue::Number(2))),
        )
        .unwrap();
        let attrs = dict.expand_all(["first", "second"]).unwrap();
        assert_eq!(attrs.get_number(&AttrName::Duration), Some(2));
        let attrs = dict.expand_all(["second", "first"]).unwrap();
        assert_eq!(attrs.get_number(&AttrName::Duration), Some(1));
    }

    #[test]
    fn style_names_accepts_single_and_list() {
        assert_eq!(style_names(&AttrValue::Id("a".into())).unwrap(), vec!["a"]);
        assert_eq!(
            style_names(&AttrValue::list([
                AttrValue::Id("a".into()),
                AttrValue::Id("b".into())
            ]))
            .unwrap(),
            vec!["a", "b"]
        );
        assert!(style_names(&AttrValue::Number(3)).is_err());
        assert!(style_names(&AttrValue::list([AttrValue::Number(3)])).is_err());
    }

    #[test]
    fn iteration_preserves_declaration_order() {
        let mut dict = StyleDictionary::new();
        dict.define(StyleDef::new("z")).unwrap();
        dict.define(StyleDef::new("a")).unwrap();
        let names: Vec<_> = dict.iter().map(|d| d.name.as_str()).collect();
        assert_eq!(names, vec!["z", "a"]);
    }
}
