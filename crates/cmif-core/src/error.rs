//! Error types for the core CMIF document model.
//!
//! Every fallible operation in `cmif-core` returns [`CoreError`] so that
//! callers (authoring tools, parsers, schedulers) can react to structural
//! problems programmatically instead of parsing error strings.

use std::fmt;

use crate::attr::AttrName;
use crate::node::NodeId;
use crate::symbol::Symbol;

/// Result alias used throughout `cmif-core`.
pub type Result<T> = std::result::Result<T, CoreError>;

/// Errors raised by the CMIF core document model.
///
/// The variants mirror the global consistency rules of the paper (§5.2):
/// attribute uniqueness per node, sibling name uniqueness, root-only
/// dictionaries, style acyclicity, channel references, and the sign rules of
/// the synchronization delay window (§5.3.1).
#[derive(Debug, Clone, PartialEq)]
pub enum CoreError {
    /// An attribute name occurred more than once in a single node's list.
    DuplicateAttribute {
        /// Node carrying the duplicate.
        node: NodeId,
        /// The offending attribute name.
        name: AttrName,
    },
    /// Two direct children of the same parent share a `Name` attribute.
    DuplicateSiblingName {
        /// The parent node.
        parent: NodeId,
        /// The duplicated child name.
        name: Symbol,
    },
    /// An attribute that may only appear on the root node (style dictionary,
    /// channel dictionary) was found elsewhere.
    RootOnlyAttribute {
        /// Node carrying the misplaced attribute.
        node: NodeId,
        /// The misplaced attribute name.
        name: AttrName,
    },
    /// An attribute value had the wrong type for its standard meaning.
    AttributeType {
        /// The attribute whose value is malformed.
        name: AttrName,
        /// Human-readable description of the expected shape.
        expected: &'static str,
    },
    /// A `Style` attribute referenced a style that is not defined in the
    /// root node's style dictionary.
    UnknownStyle {
        /// The unresolved style name.
        style: String,
    },
    /// The style dictionary contains a definition cycle (a style refers to
    /// itself directly or indirectly), which the paper forbids.
    StyleCycle {
        /// A style participating in the cycle.
        style: String,
    },
    /// A `Channel` attribute referenced a channel that is not defined in the
    /// root node's channel dictionary.
    UnknownChannel {
        /// The unresolved channel name.
        channel: Symbol,
    },
    /// A channel was defined twice in the channel dictionary.
    DuplicateChannel {
        /// The duplicated channel name.
        channel: Symbol,
    },
    /// A style was defined twice in the style dictionary.
    DuplicateStyle {
        /// The duplicated style name.
        style: String,
    },
    /// A node id did not refer to a node of the document.
    UnknownNode {
        /// The dangling id.
        node: NodeId,
    },
    /// A node path could not be resolved against the document tree.
    UnresolvedPath {
        /// The path as written.
        path: String,
        /// The node the resolution started from.
        base: NodeId,
    },
    /// A leaf node was given children, or an interior node was used where a
    /// leaf is required.
    InvalidChild {
        /// The parent that cannot accept children.
        parent: NodeId,
    },
    /// An external node has no `File` attribute (own or inherited).
    MissingFile {
        /// The offending external node.
        node: NodeId,
    },
    /// A leaf node has no channel assignment (own or inherited) although one
    /// is required for presentation.
    MissingChannel {
        /// The offending leaf node.
        node: NodeId,
    },
    /// A synchronization arc violates the delay sign rules of §5.3.1:
    /// positive minimum delays and negative maximum delays have no meaning,
    /// and the window must be non-empty.
    InvalidDelayWindow {
        /// Explanation of the violated rule.
        reason: &'static str,
    },
    /// A synchronization arc endpoint could not be resolved.
    UnresolvedArcEndpoint {
        /// The path of the endpoint that failed to resolve.
        path: String,
    },
    /// An explicit arc index did not refer to an arc of the document.
    UnknownArc {
        /// The out-of-range index into `Document::arcs()`.
        index: usize,
    },
    /// A structural edit was rejected (removing the root, inserting under a
    /// leaf, retiming a missing arc, swapping the descriptor of a
    /// non-external node, …).
    InvalidEdit {
        /// Explanation of why the edit cannot apply.
        reason: String,
    },
    /// An offset was expressed in a media unit that cannot be converted for
    /// the channel or descriptor it applies to.
    UnitConversion {
        /// Description of the failed conversion.
        reason: String,
    },
    /// The document has no root node yet.
    EmptyDocument,
    /// Attempt to attach a node that would create a cycle in the tree.
    TreeCycle {
        /// The node whose reattachment would create the cycle.
        node: NodeId,
    },
    /// A data descriptor referenced by name does not exist in the catalog.
    /// Carries the key as text: unknown keys are exactly the ones that must
    /// not be interned into the global pool.
    UnknownDescriptor {
        /// The unresolved descriptor key.
        key: String,
    },
    /// A descriptor was registered twice under the same key.
    DuplicateDescriptor {
        /// The duplicated descriptor key.
        key: Symbol,
    },
    /// Generic structural invariant violation with a description.
    Invariant {
        /// Description of the violated invariant.
        message: String,
    },
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::DuplicateAttribute { node, name } => {
                write!(f, "attribute `{name}` occurs more than once on node {node}")
            }
            CoreError::DuplicateSiblingName { parent, name } => write!(
                f,
                "two direct children of node {parent} share the name `{name}`"
            ),
            CoreError::RootOnlyAttribute { node, name } => write!(
                f,
                "attribute `{name}` may only occur on the root node, found on node {node}"
            ),
            CoreError::AttributeType { name, expected } => {
                write!(
                    f,
                    "attribute `{name}` has the wrong value type, expected {expected}"
                )
            }
            CoreError::UnknownStyle { style } => {
                write!(
                    f,
                    "style `{style}` is not defined in the root style dictionary"
                )
            }
            CoreError::StyleCycle { style } => {
                write!(f, "style `{style}` participates in a definition cycle")
            }
            CoreError::UnknownChannel { channel } => {
                write!(
                    f,
                    "channel `{channel}` is not defined in the root channel dictionary"
                )
            }
            CoreError::DuplicateChannel { channel } => {
                write!(f, "channel `{channel}` is defined more than once")
            }
            CoreError::DuplicateStyle { style } => {
                write!(f, "style `{style}` is defined more than once")
            }
            CoreError::UnknownNode { node } => write!(f, "node {node} does not exist"),
            CoreError::UnresolvedPath { path, base } => {
                write!(
                    f,
                    "path `{path}` could not be resolved starting from node {base}"
                )
            }
            CoreError::InvalidChild { parent } => {
                write!(f, "node {parent} is a leaf and cannot have children")
            }
            CoreError::MissingFile { node } => {
                write!(
                    f,
                    "external node {node} has no `file` attribute (own or inherited)"
                )
            }
            CoreError::MissingChannel { node } => {
                write!(
                    f,
                    "leaf node {node} has no `channel` attribute (own or inherited)"
                )
            }
            CoreError::InvalidDelayWindow { reason } => {
                write!(f, "invalid synchronization delay window: {reason}")
            }
            CoreError::UnresolvedArcEndpoint { path } => {
                write!(
                    f,
                    "synchronization arc endpoint `{path}` could not be resolved"
                )
            }
            CoreError::UnknownArc { index } => {
                write!(f, "explicit arc #{index} does not exist in this document")
            }
            CoreError::InvalidEdit { reason } => {
                write!(f, "the edit cannot be applied: {reason}")
            }
            CoreError::UnitConversion { reason } => {
                write!(f, "media unit conversion failed: {reason}")
            }
            CoreError::EmptyDocument => write!(f, "the document has no root node"),
            CoreError::TreeCycle { node } => {
                write!(
                    f,
                    "attaching node {node} would create a cycle in the document tree"
                )
            }
            CoreError::UnknownDescriptor { key } => {
                write!(f, "data descriptor `{key}` is not present in the catalog")
            }
            CoreError::DuplicateDescriptor { key } => {
                write!(f, "data descriptor `{key}` is already registered")
            }
            CoreError::Invariant { message } => write!(f, "invariant violation: {message}"),
        }
    }
}

impl std::error::Error for CoreError {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attr::AttrName;
    use crate::node::NodeId;

    #[test]
    fn display_is_human_readable() {
        let err = CoreError::DuplicateAttribute {
            node: NodeId::from_index(3),
            name: AttrName::Name,
        };
        let text = err.to_string();
        assert!(text.contains("name"));
        assert!(text.contains("node"));
    }

    #[test]
    fn errors_are_comparable() {
        let a = CoreError::EmptyDocument;
        let b = CoreError::EmptyDocument;
        assert_eq!(a, b);
    }

    #[test]
    fn error_implements_std_error() {
        fn assert_error<E: std::error::Error>(_: &E) {}
        assert_error(&CoreError::EmptyDocument);
    }

    #[test]
    fn unknown_channel_message_names_channel() {
        let err = CoreError::UnknownChannel {
            channel: "audio-left".into(),
        };
        assert!(err.to_string().contains("audio-left"));
    }

    #[test]
    fn unit_conversion_message_includes_reason() {
        let err = CoreError::UnitConversion {
            reason: "frames without frame rate".into(),
        };
        assert!(err.to_string().contains("frames without frame rate"));
    }
}
