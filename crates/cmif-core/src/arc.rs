//! Synchronization arcs.
//!
//! "Synchronization information is encoded in terms of synchronization arcs.
//! Each arc is a directed connection between two event descriptors, under
//! the convention that the arc is drawn from the controlling event to the
//! controlled event." (§3.1)
//!
//! An explicit arc (Figure 9) is a tuple
//! `type source offset destination min_delay max_delay` where *type* has a
//! begin/end anchor component and a Must/May strictness component, *offset*
//! is a positive amount in media-dependent units measured from the start of
//! the controlling node, and `[min_delay, max_delay]` is the δ/ε tolerance
//! window of §5.3.1 giving the scheduling rule
//! `t_ref + δ ≤ t_actual ≤ t_ref + ε`.

use std::fmt;

use crate::error::{CoreError, Result};
use crate::path::NodePath;
use crate::time::{DelayMs, MaxDelay, MediaTime, RateInfo, TimeMs};

/// Which edge of an event an arc endpoint refers to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Anchor {
    /// The beginning of the event.
    Begin,
    /// The end of the event.
    End,
}

impl Anchor {
    /// Canonical spelling used by the interchange format.
    pub fn as_str(&self) -> &'static str {
        match self {
            Anchor::Begin => "begin",
            Anchor::End => "end",
        }
    }

    /// Parses the canonical spelling.
    pub fn parse(s: &str) -> Option<Anchor> {
        match s {
            "begin" | "start" => Some(Anchor::Begin),
            "end" | "finish" => Some(Anchor::End),
            _ => None,
        }
    }
}

impl fmt::Display for Anchor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Must/May strictness of an arc (§5.3.2).
///
/// * `May` — "the requested type of synchronization is desirable but not
///   essential"; the implementation environment may relax it.
/// * `Must` — the environment "should do all it can to implement the
///   requested type of synchronization, even at the expense of overall
///   system performance".
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Strictness {
    /// Desirable but not essential.
    May,
    /// Required; violating it is a presentation failure.
    Must,
}

impl Strictness {
    /// Canonical spelling used by the interchange format.
    pub fn as_str(&self) -> &'static str {
        match self {
            Strictness::May => "may",
            Strictness::Must => "must",
        }
    }

    /// Parses the canonical spelling.
    pub fn parse(s: &str) -> Option<Strictness> {
        match s {
            "may" => Some(Strictness::May),
            "must" => Some(Strictness::Must),
            _ => None,
        }
    }
}

impl fmt::Display for Strictness {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// An explicit synchronization arc as written in a document (paths not yet
/// resolved to node ids).
#[derive(Debug, Clone, PartialEq)]
pub struct SyncArc {
    /// Which edge of the *controlled* (destination) event the constraint
    /// applies to: its beginning or its end.
    pub anchor: Anchor,
    /// Whether the constraint is essential (`Must`) or advisory (`May`).
    pub strictness: Strictness,
    /// Edge of the controlling (source) event the reference time is measured
    /// from. Figure 10's examples use both "from the start of" and "from the
    /// end of" a controlling block.
    pub source_anchor: Anchor,
    /// Path to the controlling node, relative to the node carrying the arc.
    /// The empty path designates the carrying node itself; an absolute empty
    /// path (`/`) designates the document root, giving absolute references.
    pub source: NodePath,
    /// Positive offset from the source anchor, in media-dependent units.
    pub offset: MediaTime,
    /// Path to the controlled node, relative to the node carrying the arc.
    pub destination: NodePath,
    /// Minimum acceptable delay δ (zero or negative).
    pub min_delay: DelayMs,
    /// Maximum tolerable delay ε (zero, positive or unbounded).
    pub max_delay: MaxDelay,
}

impl SyncArc {
    /// Creates a hard (δ = ε = 0) `Must` arc controlling the beginning of
    /// `destination` from the beginning of `source`.
    pub fn hard_start(source: impl Into<NodePath>, destination: impl Into<NodePath>) -> SyncArc {
        SyncArc {
            anchor: Anchor::Begin,
            strictness: Strictness::Must,
            source_anchor: Anchor::Begin,
            source: source.into(),
            offset: MediaTime::millis(0),
            destination: destination.into(),
            min_delay: DelayMs::ZERO,
            max_delay: MaxDelay::HARD,
        }
    }

    /// Creates an advisory (`May`) arc with an unbounded tolerance window.
    pub fn relaxed_start(source: impl Into<NodePath>, destination: impl Into<NodePath>) -> SyncArc {
        SyncArc {
            anchor: Anchor::Begin,
            strictness: Strictness::May,
            source_anchor: Anchor::Begin,
            source: source.into(),
            offset: MediaTime::millis(0),
            destination: destination.into(),
            min_delay: DelayMs::ZERO,
            max_delay: MaxDelay::Unbounded,
        }
    }

    /// Sets the destination anchor (builder style).
    pub fn anchored_at(mut self, anchor: Anchor) -> SyncArc {
        self.anchor = anchor;
        self
    }

    /// Sets the source anchor (builder style).
    pub fn from_source_anchor(mut self, anchor: Anchor) -> SyncArc {
        self.source_anchor = anchor;
        self
    }

    /// Sets the offset (builder style).
    pub fn with_offset(mut self, offset: MediaTime) -> SyncArc {
        self.offset = offset;
        self
    }

    /// Sets the strictness (builder style).
    pub fn with_strictness(mut self, strictness: Strictness) -> SyncArc {
        self.strictness = strictness;
        self
    }

    /// Sets the tolerance window (builder style).
    pub fn with_window(mut self, min_delay: DelayMs, max_delay: MaxDelay) -> SyncArc {
        self.min_delay = min_delay;
        self.max_delay = max_delay;
        self
    }

    /// Validates the delay sign rules of §5.3.1 and the offset sign rule of
    /// §5.3.2 ("an integral positive offset").
    pub fn validate(&self) -> Result<()> {
        if self.min_delay.as_millis() > 0 {
            return Err(CoreError::InvalidDelayWindow {
                reason: "a positive minimum delay has no meaning",
            });
        }
        if let MaxDelay::Bounded(max) = self.max_delay {
            if max.is_negative() {
                return Err(CoreError::InvalidDelayWindow {
                    reason: "a negative maximum delay has no meaning",
                });
            }
            if self.min_delay.as_millis() > max.as_millis() {
                return Err(CoreError::InvalidDelayWindow {
                    reason: "the minimum delay exceeds the maximum delay",
                });
            }
        }
        if self.offset.value < 0 {
            return Err(CoreError::InvalidDelayWindow {
                reason: "offsets must be integral positive amounts",
            });
        }
        Ok(())
    }

    /// True when the window forces exact coincidence with the reference time
    /// (δ = ε = 0, the "hard synchronization relationship" of §5.3.1).
    pub fn is_hard(&self) -> bool {
        self.min_delay.is_zero() && self.max_delay == MaxDelay::HARD
    }

    /// Computes the reference time for the controlled event given the actual
    /// begin/end times of the controlling event, converting the offset using
    /// `rates` (the controlling node's rate table).
    pub fn reference_time(
        &self,
        source_begin: TimeMs,
        source_end: TimeMs,
        rates: &RateInfo,
    ) -> Result<TimeMs> {
        let base = match self.source_anchor {
            Anchor::Begin => source_begin,
            Anchor::End => source_end,
        };
        let offset = self.offset.to_millis(rates)?;
        Ok(base + offset)
    }

    /// The earliest admissible activation time given a reference time
    /// (`t_ref + δ`).
    pub fn earliest(&self, reference: TimeMs) -> TimeMs {
        reference.offset_by(self.min_delay)
    }

    /// The latest admissible activation time given a reference time
    /// (`t_ref + ε`), or `None` when unbounded.
    pub fn latest(&self, reference: TimeMs) -> Option<TimeMs> {
        self.max_delay.bound().map(|max| reference.offset_by(max))
    }

    /// Checks the general synchronization equation of §5.3.1 for an actual
    /// activation time.
    pub fn admits(&self, reference: TimeMs, actual: TimeMs) -> bool {
        if actual < self.earliest(reference) {
            return false;
        }
        match self.latest(reference) {
            Some(latest) => actual <= latest,
            None => true,
        }
    }
}

impl fmt::Display for SyncArc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // The tabular form of Figure 9: type source offset destination min max.
        write!(
            f,
            "{}-{}/{} {} {} {} {} {}",
            self.anchor,
            self.strictness,
            self.source_anchor,
            if self.source.is_current() && !self.source.absolute {
                ".".to_string()
            } else {
                self.source.to_string()
            },
            self.offset,
            if self.destination.is_current() && !self.destination.absolute {
                ".".to_string()
            } else {
                self.destination.to_string()
            },
            self.min_delay,
            self.max_delay
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn anchor_and_strictness_parse() {
        assert_eq!(Anchor::parse("begin"), Some(Anchor::Begin));
        assert_eq!(Anchor::parse("start"), Some(Anchor::Begin));
        assert_eq!(Anchor::parse("end"), Some(Anchor::End));
        assert_eq!(Anchor::parse("middle"), None);
        assert_eq!(Strictness::parse("must"), Some(Strictness::Must));
        assert_eq!(Strictness::parse("may"), Some(Strictness::May));
        assert_eq!(Strictness::parse("should"), None);
    }

    #[test]
    fn hard_start_arc_is_hard() {
        let arc = SyncArc::hard_start("/news/audio", "/news/graphic");
        assert!(arc.is_hard());
        assert!(arc.validate().is_ok());
        assert_eq!(arc.strictness, Strictness::Must);
    }

    #[test]
    fn relaxed_arc_is_not_hard() {
        let arc = SyncArc::relaxed_start("", "label-1");
        assert!(!arc.is_hard());
        assert!(arc.validate().is_ok());
        assert_eq!(arc.strictness, Strictness::May);
    }

    #[test]
    fn validation_rejects_positive_min_delay() {
        let arc = SyncArc::hard_start("a", "b")
            .with_window(DelayMs::from_millis(10), MaxDelay::Unbounded);
        assert!(matches!(
            arc.validate().unwrap_err(),
            CoreError::InvalidDelayWindow { .. }
        ));
    }

    #[test]
    fn validation_rejects_negative_max_delay() {
        let arc = SyncArc::hard_start("a", "b")
            .with_window(DelayMs::ZERO, MaxDelay::Bounded(DelayMs::from_millis(-5)));
        assert!(arc.validate().is_err());
    }

    #[test]
    fn validation_rejects_negative_offset() {
        let arc = SyncArc::hard_start("a", "b").with_offset(MediaTime::millis(-1));
        assert!(arc.validate().is_err());
    }

    #[test]
    fn validation_accepts_negative_min_with_bounded_max() {
        let arc = SyncArc::hard_start("a", "b").with_window(
            DelayMs::from_millis(-200),
            MaxDelay::Bounded(DelayMs::from_millis(300)),
        );
        assert!(arc.validate().is_ok());
        assert!(!arc.is_hard());
    }

    #[test]
    fn reference_time_uses_source_anchor_and_offset() {
        let begin = TimeMs::from_secs(10);
        let end = TimeMs::from_secs(18);
        let arc = SyncArc::hard_start("a", "b").with_offset(MediaTime::seconds(2));
        assert_eq!(
            arc.reference_time(begin, end, &RateInfo::NONE)
                .unwrap()
                .as_millis(),
            12_000
        );
        let arc = arc.from_source_anchor(Anchor::End);
        assert_eq!(
            arc.reference_time(begin, end, &RateInfo::NONE)
                .unwrap()
                .as_millis(),
            20_000
        );
    }

    #[test]
    fn reference_time_converts_frame_offsets() {
        let arc = SyncArc::hard_start("a", "b").with_offset(MediaTime::frames(50));
        let rates = RateInfo::video(25.0);
        let t = arc
            .reference_time(TimeMs::ZERO, TimeMs::ZERO, &rates)
            .unwrap();
        assert_eq!(t.as_millis(), 2000);
        assert!(arc
            .reference_time(TimeMs::ZERO, TimeMs::ZERO, &RateInfo::NONE)
            .is_err());
    }

    #[test]
    fn admits_respects_window() {
        let arc = SyncArc::hard_start("a", "b").with_window(
            DelayMs::from_millis(-100),
            MaxDelay::Bounded(DelayMs::from_millis(250)),
        );
        let reference = TimeMs::from_millis(1000);
        assert!(arc.admits(reference, TimeMs::from_millis(900)));
        assert!(arc.admits(reference, TimeMs::from_millis(1000)));
        assert!(arc.admits(reference, TimeMs::from_millis(1250)));
        assert!(!arc.admits(reference, TimeMs::from_millis(899)));
        assert!(!arc.admits(reference, TimeMs::from_millis(1251)));
    }

    #[test]
    fn admits_with_unbounded_window() {
        let arc = SyncArc::relaxed_start("a", "b");
        let reference = TimeMs::from_millis(500);
        assert!(arc.admits(reference, TimeMs::from_millis(500)));
        assert!(arc.admits(reference, TimeMs::from_millis(1_000_000)));
        assert!(!arc.admits(reference, TimeMs::from_millis(499)));
    }

    #[test]
    fn earliest_and_latest() {
        let arc = SyncArc::hard_start("a", "b").with_window(
            DelayMs::from_millis(-50),
            MaxDelay::Bounded(DelayMs::from_millis(100)),
        );
        let reference = TimeMs::from_millis(1000);
        assert_eq!(arc.earliest(reference).as_millis(), 950);
        assert_eq!(arc.latest(reference).unwrap().as_millis(), 1100);
        let unbounded = SyncArc::relaxed_start("a", "b");
        assert!(unbounded.latest(reference).is_none());
    }

    #[test]
    fn display_is_tabular() {
        let arc = SyncArc::hard_start("/news/audio", "graphic/painting-two")
            .with_offset(MediaTime::seconds(2));
        let text = arc.to_string();
        assert!(text.contains("begin-must"));
        assert!(text.contains("/news/audio"));
        assert!(text.contains("graphic/painting-two"));
        assert!(text.contains("2 s"));
    }
}
