//! The CMIF document tree.
//!
//! "CMIF defines a document tree that is used to encode the hierarchical and
//! peer relationships among document events. The tree is a human-readable
//! document that can be passed from one location to another with or without
//! the underlying data." (§5)
//!
//! [`Document`] owns the node arena, the root node, the channel and style
//! dictionaries, the (optional) embedded descriptor catalog, and the
//! explicit synchronization arcs. All structural queries that the rest of
//! the system needs — inherited attribute resolution, path resolution,
//! per-leaf event descriptors, traversals — live here.

use std::collections::BTreeMap;

use crate::arc::SyncArc;
use crate::attr::{Attr, AttrName};
use crate::channel::{ChannelDictionary, MediaKind};
use crate::descriptor::{DescriptorCatalog, DescriptorResolver, EventDescriptor, Selection};
use crate::error::{CoreError, Result};
use crate::node::{ImmediateData, Node, NodeId, NodeKind};
use crate::path::{NodePath, PathSegment};
use crate::style::{style_names, StyleDictionary};
use crate::symbol::Symbol;
use crate::time::TimeMs;
use crate::value::AttrValue;

/// Identity of one mutable state of a [`Document`].
///
/// Every mutation of a document (adding nodes, setting attributes, touching
/// arcs) replaces its token with a fresh one drawn from a process-global
/// counter, so two documents share a token id only when one is an unmutated
/// clone of the other — in which case their contents are identical and any
/// cache keyed by the id (the linter's constraint-fixpoint cache, an edit
/// session's derived state) may serve both.
///
/// The token deliberately compares equal to every other token: it is an
/// identity, not content, and must not disturb the document's structural
/// `PartialEq` (wire round-trips produce equal documents with distinct
/// tokens).
#[derive(Debug, Clone)]
pub struct RevisionToken {
    id: u64,
}

impl RevisionToken {
    fn fresh() -> RevisionToken {
        use std::sync::atomic::{AtomicU64, Ordering};
        static NEXT: AtomicU64 = AtomicU64::new(1);
        RevisionToken {
            id: NEXT.fetch_add(1, Ordering::Relaxed),
        }
    }

    /// The token's process-unique id.
    pub fn id(&self) -> u64 {
        self.id
    }
}

impl PartialEq for RevisionToken {
    fn eq(&self, _: &RevisionToken) -> bool {
        true
    }
}

impl Default for RevisionToken {
    fn default() -> RevisionToken {
        RevisionToken::fresh()
    }
}

/// A complete CMIF document.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Document {
    nodes: Vec<Node>,
    root: Option<NodeId>,
    /// The root node's channel dictionary.
    pub channels: ChannelDictionary,
    /// The root node's style dictionary.
    pub styles: StyleDictionary,
    /// Descriptor catalog embedded in the document (the in-document stand-in
    /// for the optional DDBMS of Figure 2).
    pub catalog: DescriptorCatalog,
    /// Explicit synchronization arcs, keyed by the node that carries them.
    arcs: Vec<(NodeId, SyncArc)>,
    /// Free-form document-level attributes (title, author, version, …).
    pub meta: BTreeMap<String, AttrValue>,
    /// Source provenance, present when the document was parsed from text:
    /// the original source plus per-node and per-arc spans, so diagnostics
    /// can underline the offending bytes. Shared by `Arc` — cloning the
    /// document never copies the source text.
    pub sources: Option<std::sync::Arc<crate::diag::SourceMap>>,
    /// Identity of this mutable state; replaced on every mutation. Always
    /// compares equal, so structural document equality is unaffected.
    revision: RevisionToken,
}

impl Document {
    /// Creates an empty document with no root node.
    pub fn new() -> Document {
        Document::default()
    }

    /// Creates a document whose root is a node of the given kind.
    pub fn with_root(kind: NodeKind) -> Document {
        let mut doc = Document::new();
        let root = doc.alloc(kind);
        doc.root = Some(root);
        doc
    }

    // ------------------------------------------------------------------
    // Node management
    // ------------------------------------------------------------------

    fn alloc(&mut self, kind: NodeKind) -> NodeId {
        let id = NodeId::from_index(self.nodes.len() as u32);
        self.nodes.push(Node::new(id, kind));
        id
    }

    /// Replaces the revision token: called by every mutation path.
    fn touch(&mut self) {
        self.revision = RevisionToken::fresh();
    }

    /// The id of this document's current revision token.
    ///
    /// Two documents report the same id only when one is an unmutated clone
    /// of the other, so the id is a safe cache key for anything derived
    /// purely from document content (constraint sets, relaxation fixpoints).
    pub fn revision_id(&self) -> u64 {
        self.revision.id()
    }

    /// The root node id.
    pub fn root(&self) -> Result<NodeId> {
        self.root.ok_or(CoreError::EmptyDocument)
    }

    /// Sets the root node when the document was created empty.
    pub fn set_root(&mut self, kind: NodeKind) -> NodeId {
        let root = self.alloc(kind);
        self.root = Some(root);
        self.touch();
        root
    }

    /// Total number of nodes in the document (including detached ones).
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Immutable access to a node.
    pub fn node(&self, id: NodeId) -> Result<&Node> {
        self.nodes
            .get(id.index())
            .ok_or(CoreError::UnknownNode { node: id })
    }

    /// Mutable access to a node. Conservatively counts as a mutation: the
    /// revision token is replaced even if the caller changes nothing.
    pub fn node_mut(&mut self, id: NodeId) -> Result<&mut Node> {
        self.touch();
        self.nodes
            .get_mut(id.index())
            .ok_or(CoreError::UnknownNode { node: id })
    }

    /// Adds a child node of the given kind under `parent`.
    ///
    /// Fails when the parent is a leaf node ("each data block can not be
    /// further decomposed or sub-scheduled", §3.1 — leaves have no
    /// children).
    pub fn add_child(&mut self, parent: NodeId, kind: NodeKind) -> Result<NodeId> {
        let parent_node = self.node(parent)?;
        if parent_node.kind.is_leaf() {
            return Err(CoreError::InvalidChild { parent });
        }
        let id = self.alloc(kind);
        self.nodes[id.index()].parent = Some(parent);
        self.nodes[parent.index()].children.push(id);
        self.touch();
        Ok(id)
    }

    /// Adds a sequential child node.
    pub fn add_seq(&mut self, parent: NodeId) -> Result<NodeId> {
        self.add_child(parent, NodeKind::Seq)
    }

    /// Adds a parallel child node.
    pub fn add_par(&mut self, parent: NodeId) -> Result<NodeId> {
        self.add_child(parent, NodeKind::Par)
    }

    /// Adds an external leaf node.
    pub fn add_ext(&mut self, parent: NodeId) -> Result<NodeId> {
        self.add_child(parent, NodeKind::Ext)
    }

    /// Adds an immediate leaf node carrying inline text.
    pub fn add_imm_text(&mut self, parent: NodeId, text: impl Into<String>) -> Result<NodeId> {
        self.add_child(parent, NodeKind::Imm(ImmediateData::Text(text.into())))
    }

    /// Adds an immediate leaf node carrying inline binary data.
    pub fn add_imm_binary(&mut self, parent: NodeId, data: Vec<u8>) -> Result<NodeId> {
        self.add_child(parent, NodeKind::Imm(ImmediateData::Binary(data)))
    }

    /// Detaches a node (and its subtree) from its parent. The nodes remain
    /// in the arena but are no longer reachable from the root.
    pub fn detach(&mut self, id: NodeId) -> Result<()> {
        let parent = self.node(id)?.parent;
        if let Some(parent) = parent {
            let siblings = &mut self.nodes[parent.index()].children;
            siblings.retain(|c| *c != id);
        }
        self.nodes[id.index()].parent = None;
        self.touch();
        Ok(())
    }

    /// Re-attaches a detached node under a new parent, refusing cycles and
    /// leaf parents.
    pub fn attach(&mut self, id: NodeId, new_parent: NodeId) -> Result<()> {
        self.node(id)?;
        let parent_node = self.node(new_parent)?;
        if parent_node.kind.is_leaf() {
            return Err(CoreError::InvalidChild { parent: new_parent });
        }
        // Refuse to attach a node beneath itself.
        let mut cursor = Some(new_parent);
        while let Some(c) = cursor {
            if c == id {
                return Err(CoreError::TreeCycle { node: id });
            }
            cursor = self.nodes[c.index()].parent;
        }
        if self.nodes[id.index()].parent.is_some() {
            self.detach(id)?;
        }
        self.nodes[id.index()].parent = Some(new_parent);
        self.nodes[new_parent.index()].children.push(id);
        self.touch();
        Ok(())
    }

    // ------------------------------------------------------------------
    // Attributes
    // ------------------------------------------------------------------

    /// Sets (or replaces) an attribute on a node.
    pub fn set_attr(
        &mut self,
        id: NodeId,
        name: impl Into<AttrName>,
        value: AttrValue,
    ) -> Result<()> {
        let name = name.into();
        if name.is_root_only() && Some(id) != self.root {
            return Err(CoreError::RootOnlyAttribute { node: id, name });
        }
        // `node_mut` replaces the revision token.
        self.node_mut(id)?.attrs.set(Attr::new(name, value));
        Ok(())
    }

    /// The node's own attribute value, without inheritance or styles.
    pub fn own_attr(&self, id: NodeId, name: &AttrName) -> Result<Option<&AttrValue>> {
        Ok(self.node(id)?.attrs.get(name))
    }

    /// Resolves the *effective* value of an attribute on a node.
    ///
    /// Resolution order (most specific wins):
    /// 1. the node's own attribute;
    /// 2. the node's own `style` expansion;
    /// 3. the nearest ancestor's own attribute or style expansion — but only
    ///    for attributes that are inherited (§5.2, Figure 7).
    pub fn effective_attr(&self, id: NodeId, name: &AttrName) -> Result<Option<AttrValue>> {
        let mut current = Some(id);
        let mut first = true;
        while let Some(node_id) = current {
            let node = self.node(node_id)?;
            if first || name.is_inherited() {
                if let Some(value) = node.attrs.get(name) {
                    return Ok(Some(value.clone()));
                }
                if name != &AttrName::Style {
                    if let Some(style_value) = node.attrs.get(&AttrName::Style) {
                        let names = style_names(style_value)?;
                        let expanded = self.styles.expand_all(names.iter().map(|n| n.as_str()))?;
                        if let Some(value) = expanded.get(name) {
                            return Ok(Some(value.clone()));
                        }
                    }
                }
            }
            first = false;
            current = node.parent;
        }
        Ok(None)
    }

    /// The effective channel name of a node, if any, as a `Copy` symbol.
    pub fn channel_of(&self, id: NodeId) -> Result<Option<Symbol>> {
        Ok(self
            .effective_attr(id, &AttrName::Channel)?
            .and_then(|v| v.as_symbol()))
    }

    /// The effective file / descriptor key of a node, if any, as a `Copy`
    /// symbol.
    pub fn file_of(&self, id: NodeId) -> Result<Option<Symbol>> {
        Ok(self
            .effective_attr(id, &AttrName::File)?
            .and_then(|v| v.as_symbol()))
    }

    /// The node's selection (slice, crop or clip attribute), if any.
    ///
    /// When several are present the temporal clip wins for scheduling
    /// purposes (it is the only one that affects duration).
    pub fn selection_of(&self, id: NodeId) -> Result<Option<Selection>> {
        let node = self.node(id)?;
        if let Some(value) = node.attrs.get(&AttrName::Clip) {
            let items = Self::numbers(value, &AttrName::Clip, 2)?;
            return Ok(Some(Selection::Clip {
                start_ms: items[0],
                duration_ms: items[1],
            }));
        }
        if let Some(value) = node.attrs.get(&AttrName::Crop) {
            let items = Self::numbers(value, &AttrName::Crop, 4)?;
            return Ok(Some(Selection::Crop {
                x: items[0] as u32,
                y: items[1] as u32,
                width: items[2] as u32,
                height: items[3] as u32,
            }));
        }
        if let Some(value) = node.attrs.get(&AttrName::Slice) {
            let items = Self::numbers(value, &AttrName::Slice, 2)?;
            return Ok(Some(Selection::Slice {
                start: items[0] as u64,
                length: items[1] as u64,
            }));
        }
        Ok(None)
    }

    fn numbers(value: &AttrValue, name: &AttrName, expected: usize) -> Result<Vec<i64>> {
        let items = value.as_list().ok_or(CoreError::AttributeType {
            name: *name,
            expected: "a list of numbers",
        })?;
        if items.len() != expected {
            return Err(CoreError::AttributeType {
                name: *name,
                expected: "a list with the documented number of elements",
            });
        }
        items
            .iter()
            .map(|v| {
                v.as_number().ok_or(CoreError::AttributeType {
                    name: *name,
                    expected: "numeric list elements",
                })
            })
            .collect()
    }

    /// The intrinsic duration of a leaf node's event on the document clock.
    ///
    /// Resolution order: a temporal clip selection, the node's own (or
    /// styled/inherited) `duration` attribute, then the data descriptor's
    /// duration. Returns `Ok(None)` when none of these is known — discrete
    /// media such as a still image have no natural duration and the
    /// scheduler applies its own policy.
    pub fn duration_of(
        &self,
        id: NodeId,
        resolver: &dyn DescriptorResolver,
    ) -> Result<Option<TimeMs>> {
        if let Some(Selection::Clip { duration_ms, .. }) = self.selection_of(id)? {
            return Ok(Some(TimeMs::from_millis(duration_ms)));
        }
        if let Some(value) = self.effective_attr(id, &AttrName::Duration)? {
            let ms = value.as_number().ok_or(CoreError::AttributeType {
                name: AttrName::Duration,
                expected: "a duration in milliseconds",
            })?;
            return Ok(Some(TimeMs::from_millis(ms)));
        }
        if self.node(id)?.kind == NodeKind::Ext {
            if let Some(key) = self.file_of(id)? {
                if let Some(descriptor) = resolver.resolve_symbol(key) {
                    return Ok(descriptor.duration);
                }
            }
        }
        Ok(None)
    }

    /// The medium presented by a leaf node: from its effective channel's
    /// definition when available, otherwise from the referenced descriptor,
    /// defaulting to text for immediate nodes.
    pub fn medium_of(&self, id: NodeId, resolver: &dyn DescriptorResolver) -> Result<MediaKind> {
        if let Some(channel) = self.channel_of(id)? {
            if let Some(def) = self.channels.get_symbol(channel) {
                return Ok(def.medium);
            }
        }
        if self.node(id)?.kind == NodeKind::Ext {
            if let Some(key) = self.file_of(id)? {
                if let Some(descriptor) = resolver.resolve_symbol(key) {
                    return Ok(descriptor.medium);
                }
            }
        }
        Ok(MediaKind::Text)
    }

    // ------------------------------------------------------------------
    // Traversal
    // ------------------------------------------------------------------

    /// The children of a node, in document order.
    pub fn children(&self, id: NodeId) -> Result<&[NodeId]> {
        Ok(&self.node(id)?.children)
    }

    /// The parent of a node.
    pub fn parent(&self, id: NodeId) -> Result<Option<NodeId>> {
        Ok(self.node(id)?.parent)
    }

    /// The ancestors of a node, nearest first, ending with the root.
    pub fn ancestors(&self, id: NodeId) -> Result<Vec<NodeId>> {
        let mut out = Vec::new();
        let mut cursor = self.node(id)?.parent;
        while let Some(c) = cursor {
            out.push(c);
            cursor = self.node(c)?.parent;
        }
        Ok(out)
    }

    /// The nearest common ancestor of two nodes (used by §5.3.3 case 3:
    /// "the parents of a synchronization node can be traced until the common
    /// ancestor containing the source and destination of the arc is found").
    pub fn common_ancestor(&self, a: NodeId, b: NodeId) -> Result<Option<NodeId>> {
        let mut a_chain = vec![a];
        a_chain.extend(self.ancestors(a)?);
        let mut b_chain = vec![b];
        b_chain.extend(self.ancestors(b)?);
        for candidate in &a_chain {
            if b_chain.contains(candidate) {
                return Ok(Some(*candidate));
            }
        }
        Ok(None)
    }

    /// Pre-order traversal of the tree reachable from the root.
    pub fn preorder(&self) -> Vec<NodeId> {
        let mut out = Vec::new();
        if let Some(root) = self.root {
            self.preorder_from(root, &mut out);
        }
        out
    }

    fn preorder_from(&self, id: NodeId, out: &mut Vec<NodeId>) {
        out.push(id);
        for child in &self.nodes[id.index()].children {
            self.preorder_from(*child, out);
        }
    }

    /// All leaf nodes reachable from the root, in document order.
    pub fn leaves(&self) -> Vec<NodeId> {
        self.preorder()
            .into_iter()
            .filter(|id| self.nodes[id.index()].kind.is_leaf())
            .collect()
    }

    /// Depth of the tree (root alone = 1; empty document = 0).
    pub fn depth(&self) -> usize {
        fn depth_of(doc: &Document, id: NodeId) -> usize {
            1 + doc.nodes[id.index()]
                .children
                .iter()
                .map(|c| depth_of(doc, *c))
                .max()
                .unwrap_or(0)
        }
        match self.root {
            Some(root) => depth_of(self, root),
            None => 0,
        }
    }

    /// Finds the direct child of `parent` with the given `name` attribute.
    pub fn named_child(&self, parent: NodeId, name: &str) -> Result<Option<NodeId>> {
        for child in self.children(parent)? {
            if self.node(*child)?.name() == Some(name) {
                return Ok(Some(*child));
            }
        }
        Ok(None)
    }

    /// Finds a node by absolute path from the root.
    pub fn find(&self, path: &str) -> Result<NodeId> {
        let root = self.root()?;
        self.resolve_path(root, &NodePath::parse(path))
    }

    /// Resolves a [`NodePath`] starting from `base` (the node carrying the
    /// arc or reference). The empty relative path designates `base` itself.
    pub fn resolve_path(&self, base: NodeId, path: &NodePath) -> Result<NodeId> {
        let mut current = if path.absolute { self.root()? } else { base };
        for segment in &path.segments {
            match segment {
                PathSegment::Parent => {
                    current = self
                        .parent(current)?
                        .ok_or_else(|| CoreError::UnresolvedPath {
                            path: path.to_string(),
                            base,
                        })?;
                }
                PathSegment::Child(name) => {
                    current = self.named_child(current, name)?.ok_or_else(|| {
                        CoreError::UnresolvedPath {
                            path: path.to_string(),
                            base,
                        }
                    })?;
                }
            }
        }
        Ok(current)
    }

    /// The absolute path of a node, built from `name` attributes. Unnamed
    /// nodes contribute a positional segment `@<index>` so the result is
    /// still unique and printable (used in diagnostics and views).
    pub fn path_of(&self, id: NodeId) -> Result<NodePath> {
        let mut segments = Vec::new();
        let mut cursor = id;
        loop {
            let node = self.node(cursor)?;
            let parent = match node.parent {
                Some(p) => p,
                None => break,
            };
            let segment = match node.name() {
                Some(name) => name.to_string(),
                None => {
                    let position = self
                        .children(parent)?
                        .iter()
                        .position(|c| *c == cursor)
                        .unwrap_or(0);
                    format!("@{position}")
                }
            };
            segments.push(PathSegment::Child(segment));
            cursor = parent;
        }
        segments.reverse();
        Ok(NodePath {
            absolute: true,
            segments,
        })
    }

    // ------------------------------------------------------------------
    // Synchronization arcs
    // ------------------------------------------------------------------

    /// Attaches an explicit synchronization arc to `carrier` (the node whose
    /// attribute list contains it). The arc is validated first.
    pub fn add_arc(&mut self, carrier: NodeId, arc: SyncArc) -> Result<()> {
        self.node(carrier)?;
        arc.validate()?;
        self.arcs.push((carrier, arc));
        self.touch();
        Ok(())
    }

    /// Replaces the `index`-th explicit arc (in [`Document::arcs`] order)
    /// with a new, validated arc on the same carrier. The arc's recorded
    /// source span — if any — is marked synthetic: the source text no longer
    /// describes the arc, so diagnostics fall back to paths instead of
    /// underlining a stale line.
    pub fn replace_arc(&mut self, index: usize, arc: SyncArc) -> Result<()> {
        if index >= self.arcs.len() {
            return Err(CoreError::UnknownArc { index });
        }
        arc.validate()?;
        self.arcs[index].1 = arc;
        if let Some(sources) = &mut self.sources {
            std::sync::Arc::make_mut(sources).mark_arc_synthetic(index);
        }
        self.touch();
        Ok(())
    }

    /// Removes the `index`-th explicit arc, returning its carrier and body.
    /// The [`crate::diag::SourceMap`] arc spans are kept index-aligned: the
    /// matching span entry is removed along with the arc.
    pub fn remove_arc(&mut self, index: usize) -> Result<(NodeId, SyncArc)> {
        if index >= self.arcs.len() {
            return Err(CoreError::UnknownArc { index });
        }
        let removed = self.arcs.remove(index);
        if let Some(sources) = &mut self.sources {
            std::sync::Arc::make_mut(sources).remove_arc_span(index);
        }
        self.touch();
        Ok(removed)
    }

    /// All explicit arcs with their carrying node.
    pub fn arcs(&self) -> &[(NodeId, SyncArc)] {
        &self.arcs
    }

    /// The explicit arcs carried by one node.
    pub fn arcs_of(&self, carrier: NodeId) -> Vec<&SyncArc> {
        self.arcs
            .iter()
            .filter(|(c, _)| *c == carrier)
            .map(|(_, a)| a)
            .collect()
    }

    /// Resolves the source and destination endpoints of every explicit arc.
    ///
    /// Returns `(carrier, arc, source, destination)` tuples or the first
    /// resolution error encountered.
    pub fn resolved_arcs(&self) -> Result<Vec<(NodeId, &SyncArc, NodeId, NodeId)>> {
        let mut out = Vec::with_capacity(self.arcs.len());
        for (carrier, arc) in &self.arcs {
            let source = self.resolve_path(*carrier, &arc.source).map_err(|_| {
                CoreError::UnresolvedArcEndpoint {
                    path: arc.source.to_string(),
                }
            })?;
            let destination = self.resolve_path(*carrier, &arc.destination).map_err(|_| {
                CoreError::UnresolvedArcEndpoint {
                    path: arc.destination.to_string(),
                }
            })?;
            out.push((*carrier, arc, source, destination));
        }
        Ok(out)
    }

    // ------------------------------------------------------------------
    // Events
    // ------------------------------------------------------------------

    /// Builds the event descriptor for one leaf node.
    pub fn event_of(
        &self,
        id: NodeId,
        resolver: &dyn DescriptorResolver,
    ) -> Result<EventDescriptor> {
        let node = self.node(id)?;
        if !node.kind.is_leaf() {
            return Err(CoreError::Invariant {
                message: format!("node {id} is not a leaf and has no event descriptor"),
            });
        }
        let channel = self
            .channel_of(id)?
            .ok_or(CoreError::MissingChannel { node: id })?;
        let selection = self.selection_of(id)?;
        let medium = self.medium_of(id, resolver)?;
        let duration = self.duration_of(id, resolver)?.unwrap_or(TimeMs::ZERO);
        let (descriptor, data_bytes) = match &node.kind {
            NodeKind::Ext => {
                let key = self
                    .file_of(id)?
                    .ok_or(CoreError::MissingFile { node: id })?;
                let bytes = match (&selection, resolver.resolve_symbol(key)) {
                    (Some(Selection::Slice { length, .. }), _) => *length,
                    (_, Some(d)) => d.size_bytes,
                    (_, None) => 0,
                };
                (Some(key), bytes)
            }
            NodeKind::Imm(data) => (None, data.len() as u64),
            _ => unreachable!("leaf check above"),
        };
        Ok(EventDescriptor {
            node: id,
            channel,
            descriptor,
            selection,
            duration,
            medium,
            data_bytes,
        })
    }

    /// Builds event descriptors for every leaf, in document order.
    pub fn events(&self, resolver: &dyn DescriptorResolver) -> Result<Vec<EventDescriptor>> {
        self.leaves()
            .into_iter()
            .map(|leaf| self.event_of(leaf, resolver))
            .collect()
    }

    /// Groups leaves by their effective channel, preserving document order
    /// inside each channel ("events that are placed on a single channel are
    /// synchronized in linear time order", §3.1).
    pub fn leaves_by_channel(&self) -> Result<BTreeMap<Symbol, Vec<NodeId>>> {
        let mut out: BTreeMap<Symbol, Vec<NodeId>> = BTreeMap::new();
        for leaf in self.leaves() {
            let channel = self.channel_of(leaf)?.unwrap_or_else(unassigned_channel);
            out.entry(channel).or_default().push(leaf);
        }
        Ok(out)
    }
}

/// The symbol leaves with no channel assignment are grouped under —
/// interned once, copied everywhere (the old code allocated the string per
/// leaf per pass).
pub fn unassigned_channel() -> Symbol {
    use std::sync::OnceLock;
    static UNASSIGNED: OnceLock<Symbol> = OnceLock::new();
    *UNASSIGNED.get_or_init(|| Symbol::intern("(unassigned)"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::channel::ChannelDef;
    use crate::descriptor::DataDescriptor;
    use crate::style::StyleDef;
    use crate::time::{DelayMs, MaxDelay};

    /// Builds a miniature two-channel document used by most tests:
    ///
    /// ```text
    /// root(seq, name=news)
    ///   story(par, name=story-1)
    ///     video(ext, name=video, channel=video, file=clip-v)
    ///     caption(imm "Gestolen van Goghs", name=caption, channel=caption)
    /// ```
    fn mini_doc() -> (Document, NodeId, NodeId, NodeId) {
        let mut doc = Document::with_root(NodeKind::Seq);
        let root = doc.root().unwrap();
        doc.set_attr(root, AttrName::Name, AttrValue::Id("news".into()))
            .unwrap();
        doc.channels
            .define(ChannelDef::new("video", MediaKind::Video))
            .unwrap();
        doc.channels
            .define(ChannelDef::new("caption", MediaKind::Text))
            .unwrap();
        doc.catalog
            .register(
                DataDescriptor::new("clip-v", MediaKind::Video, "rgb24")
                    .with_size(1_000_000)
                    .with_duration(TimeMs::from_secs(8)),
            )
            .unwrap();

        let story = doc.add_par(root).unwrap();
        doc.set_attr(story, AttrName::Name, AttrValue::Id("story-1".into()))
            .unwrap();

        let video = doc.add_ext(story).unwrap();
        doc.set_attr(video, AttrName::Name, AttrValue::Id("video".into()))
            .unwrap();
        doc.set_attr(video, AttrName::Channel, AttrValue::Id("video".into()))
            .unwrap();
        doc.set_attr(video, AttrName::File, AttrValue::Str("clip-v".into()))
            .unwrap();

        let caption = doc.add_imm_text(story, "Gestolen van Goghs").unwrap();
        doc.set_attr(caption, AttrName::Name, AttrValue::Id("caption".into()))
            .unwrap();
        doc.set_attr(caption, AttrName::Channel, AttrValue::Id("caption".into()))
            .unwrap();
        doc.set_attr(caption, AttrName::Duration, AttrValue::Number(4000))
            .unwrap();

        (doc, story, video, caption)
    }

    #[test]
    fn empty_document_has_no_root() {
        let doc = Document::new();
        assert!(matches!(doc.root().unwrap_err(), CoreError::EmptyDocument));
        assert_eq!(doc.depth(), 0);
        assert!(doc.preorder().is_empty());
    }

    #[test]
    fn with_root_and_children() {
        let (doc, story, video, caption) = mini_doc();
        let root = doc.root().unwrap();
        assert_eq!(doc.children(root).unwrap(), &[story]);
        assert_eq!(doc.children(story).unwrap(), &[video, caption]);
        assert_eq!(doc.parent(video).unwrap(), Some(story));
        assert_eq!(doc.depth(), 3);
        assert_eq!(doc.node_count(), 4);
        assert_eq!(doc.leaves(), vec![video, caption]);
    }

    #[test]
    fn leaves_cannot_have_children() {
        let (mut doc, _, video, _) = mini_doc();
        let err = doc.add_seq(video).unwrap_err();
        assert!(matches!(err, CoreError::InvalidChild { .. }));
    }

    #[test]
    fn root_only_attributes_are_rejected_elsewhere() {
        let (mut doc, story, _, _) = mini_doc();
        let err = doc
            .set_attr(story, AttrName::ChannelDictionary, AttrValue::list([]))
            .unwrap_err();
        assert!(matches!(err, CoreError::RootOnlyAttribute { .. }));
        let root = doc.root().unwrap();
        assert!(doc
            .set_attr(root, AttrName::ChannelDictionary, AttrValue::list([]))
            .is_ok());
    }

    #[test]
    fn effective_attr_inherits_channel_but_not_name() {
        let (mut doc, story, video, _) = mini_doc();
        // Remove the leaf's own channel: it should now inherit the parent's.
        doc.node_mut(video)
            .unwrap()
            .attrs
            .remove(&AttrName::Channel);
        doc.set_attr(story, AttrName::Channel, AttrValue::Id("video".into()))
            .unwrap();
        assert_eq!(
            doc.channel_of(video).unwrap(),
            Some(Symbol::intern("video"))
        );
        // Name is not inherited.
        assert_eq!(
            doc.effective_attr(video, &AttrName::Name)
                .unwrap()
                .unwrap()
                .as_text(),
            Some("video")
        );
        let unnamed = doc.add_ext(story).unwrap();
        assert!(doc
            .effective_attr(unnamed, &AttrName::Name)
            .unwrap()
            .is_none());
    }

    #[test]
    fn effective_attr_consults_styles() {
        let (mut doc, _, video, _) = mini_doc();
        doc.styles
            .define(
                StyleDef::new("fullscreen")
                    .with_attr(Attr::new(AttrName::Duration, AttrValue::Number(9000))),
            )
            .unwrap();
        doc.node_mut(video)
            .unwrap()
            .attrs
            .remove(&AttrName::Duration);
        doc.set_attr(video, AttrName::Style, AttrValue::Id("fullscreen".into()))
            .unwrap();
        assert_eq!(
            doc.effective_attr(video, &AttrName::Duration)
                .unwrap()
                .unwrap()
                .as_number(),
            Some(9000)
        );
        // The node's own attribute would still win over its style.
        doc.set_attr(video, AttrName::Duration, AttrValue::Number(100))
            .unwrap();
        assert_eq!(
            doc.effective_attr(video, &AttrName::Duration)
                .unwrap()
                .unwrap()
                .as_number(),
            Some(100)
        );
    }

    #[test]
    fn duration_resolution_order() {
        let (mut doc, _, video, caption) = mini_doc();
        // caption: explicit duration attribute.
        assert_eq!(
            doc.duration_of(caption, &doc.catalog).unwrap(),
            Some(TimeMs::from_millis(4000))
        );
        // video: falls back to the descriptor's duration.
        assert_eq!(
            doc.duration_of(video, &doc.catalog).unwrap(),
            Some(TimeMs::from_secs(8))
        );
        // A clip selection wins over everything.
        doc.set_attr(
            video,
            AttrName::Clip,
            AttrValue::list([AttrValue::Number(0), AttrValue::Number(1500)]),
        )
        .unwrap();
        assert_eq!(
            doc.duration_of(video, &doc.catalog).unwrap(),
            Some(TimeMs::from_millis(1500))
        );
    }

    #[test]
    fn selection_parsing() {
        let (mut doc, _, video, _) = mini_doc();
        doc.set_attr(
            video,
            AttrName::Crop,
            AttrValue::list([
                AttrValue::Number(10),
                AttrValue::Number(20),
                AttrValue::Number(320),
                AttrValue::Number(240),
            ]),
        )
        .unwrap();
        assert_eq!(
            doc.selection_of(video).unwrap(),
            Some(Selection::Crop {
                x: 10,
                y: 20,
                width: 320,
                height: 240
            })
        );
        doc.set_attr(
            video,
            AttrName::Slice,
            AttrValue::list([AttrValue::Number(0), AttrValue::Number(4096)]),
        )
        .unwrap();
        // Crop still wins over slice in the resolution order used here.
        assert!(matches!(
            doc.selection_of(video).unwrap(),
            Some(Selection::Crop { .. })
        ));
        // Malformed selection values are type errors.
        doc.set_attr(video, AttrName::Clip, AttrValue::Number(3))
            .unwrap();
        assert!(doc.selection_of(video).is_err());
    }

    #[test]
    fn medium_resolution() {
        let (doc, _, video, caption) = mini_doc();
        assert_eq!(
            doc.medium_of(video, &doc.catalog).unwrap(),
            MediaKind::Video
        );
        assert_eq!(
            doc.medium_of(caption, &doc.catalog).unwrap(),
            MediaKind::Text
        );
    }

    #[test]
    fn path_resolution_absolute_relative_and_parent() {
        let (doc, story, video, caption) = mini_doc();
        let root = doc.root().unwrap();
        assert_eq!(doc.find("/story-1/video").unwrap(), video);
        assert_eq!(
            doc.resolve_path(video, &NodePath::parse("../caption"))
                .unwrap(),
            caption
        );
        assert_eq!(
            doc.resolve_path(video, &NodePath::parse("")).unwrap(),
            video
        );
        assert_eq!(
            doc.resolve_path(caption, &NodePath::parse("/")).unwrap(),
            root
        );
        assert_eq!(
            doc.resolve_path(root, &NodePath::parse("story-1")).unwrap(),
            story
        );
        assert!(doc.resolve_path(root, &NodePath::parse("missing")).is_err());
        assert!(doc.resolve_path(root, &NodePath::parse("..")).is_err());
    }

    #[test]
    fn path_of_uses_names_and_positions() {
        let (mut doc, story, video, _) = mini_doc();
        assert_eq!(doc.path_of(video).unwrap().to_string(), "/story-1/video");
        let unnamed = doc.add_ext(story).unwrap();
        assert_eq!(doc.path_of(unnamed).unwrap().to_string(), "/story-1/@2");
        assert_eq!(doc.path_of(doc.root().unwrap()).unwrap().to_string(), "/");
    }

    #[test]
    fn named_child_lookup() {
        let (doc, story, video, _) = mini_doc();
        assert_eq!(doc.named_child(story, "video").unwrap(), Some(video));
        assert_eq!(doc.named_child(story, "nope").unwrap(), None);
    }

    #[test]
    fn ancestors_and_common_ancestor() {
        let (doc, story, video, caption) = mini_doc();
        let root = doc.root().unwrap();
        assert_eq!(doc.ancestors(video).unwrap(), vec![story, root]);
        assert_eq!(doc.common_ancestor(video, caption).unwrap(), Some(story));
        assert_eq!(doc.common_ancestor(video, root).unwrap(), Some(root));
        assert_eq!(doc.common_ancestor(video, video).unwrap(), Some(video));
    }

    #[test]
    fn detach_and_attach() {
        let (mut doc, story, video, caption) = mini_doc();
        let root = doc.root().unwrap();
        doc.detach(caption).unwrap();
        assert_eq!(doc.children(story).unwrap(), &[video]);
        assert_eq!(doc.leaves(), vec![video]);
        doc.attach(caption, root).unwrap();
        assert_eq!(doc.children(root).unwrap(), &[story, caption]);
        // Cannot attach a node beneath itself or under a leaf.
        assert!(matches!(
            doc.attach(story, video).unwrap_err(),
            CoreError::InvalidChild { .. }
        ));
        assert!(matches!(
            doc.attach(root, story).unwrap_err(),
            CoreError::TreeCycle { .. }
        ));
    }

    #[test]
    fn arcs_are_validated_and_resolved() {
        let (mut doc, _, video, caption) = mini_doc();
        doc.add_arc(caption, SyncArc::hard_start("../video", ""))
            .unwrap();
        let resolved = doc.resolved_arcs().unwrap();
        assert_eq!(resolved.len(), 1);
        let (carrier, _, source, destination) = resolved[0];
        assert_eq!(carrier, caption);
        assert_eq!(source, video);
        assert_eq!(destination, caption);
        assert_eq!(doc.arcs_of(caption).len(), 1);
        assert!(doc.arcs_of(video).is_empty());

        // Invalid windows are rejected at insertion time.
        let bad = SyncArc::hard_start("../video", "")
            .with_window(DelayMs::from_millis(5), MaxDelay::HARD);
        assert!(doc.add_arc(caption, bad).is_err());

        // Dangling endpoints are caught at resolution time.
        doc.add_arc(caption, SyncArc::hard_start("../no-such-node", ""))
            .unwrap();
        assert!(matches!(
            doc.resolved_arcs().unwrap_err(),
            CoreError::UnresolvedArcEndpoint { .. }
        ));
    }

    #[test]
    fn events_are_built_for_leaves() {
        let (doc, _, video, caption) = mini_doc();
        let events = doc.events(&doc.catalog).unwrap();
        assert_eq!(events.len(), 2);
        let video_event = events.iter().find(|e| e.node == video).unwrap();
        assert_eq!(video_event.channel, "video");
        assert_eq!(video_event.descriptor, Some(Symbol::intern("clip-v")));
        assert_eq!(video_event.data_bytes, 1_000_000);
        assert_eq!(video_event.duration, TimeMs::from_secs(8));
        let caption_event = events.iter().find(|e| e.node == caption).unwrap();
        assert!(caption_event.is_immediate());
        assert_eq!(caption_event.data_bytes, "Gestolen van Goghs".len() as u64);
    }

    #[test]
    fn event_of_interior_node_is_error() {
        let (doc, story, _, _) = mini_doc();
        assert!(doc.event_of(story, &doc.catalog).is_err());
    }

    #[test]
    fn missing_channel_is_reported() {
        let (mut doc, story, _, _) = mini_doc();
        let orphan = doc.add_imm_text(story, "no channel").unwrap();
        assert!(matches!(
            doc.event_of(orphan, &doc.catalog).unwrap_err(),
            CoreError::MissingChannel { .. }
        ));
    }

    #[test]
    fn leaves_by_channel_groups_in_document_order() {
        let (doc, _, video, caption) = mini_doc();
        let groups = doc.leaves_by_channel().unwrap();
        assert_eq!(groups[&Symbol::intern("video")], vec![video]);
        assert_eq!(groups[&Symbol::intern("caption")], vec![caption]);
    }

    #[test]
    fn unknown_node_errors() {
        let doc = Document::new();
        let bogus = NodeId::from_index(42);
        assert!(matches!(
            doc.node(bogus).unwrap_err(),
            CoreError::UnknownNode { .. }
        ));
    }
}
