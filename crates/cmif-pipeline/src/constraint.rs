//! Constraint filtering tools (pipeline stage 4).
//!
//! "these tools allows the end-user presentation system to filter components
//! of the document to meet local processing constraints. (This corresponds
//! to a mapping of the document from the virtual presentation environment to
//! a physical presentation environment.) Typical filterings may include
//! 24-bit color to 8-bit color, color to monochrome, high-resolution to low
//! resolution, full-frame-rate video to sub-sampled rate video, etc. As with
//! all components, the assumption is that this tool manages a constraint
//! mapping; the actual constraint implementation will be supported by user
//! level, operating system, or hardware level modules." (§2)
//!
//! [`plan_filters`] inspects only data descriptors (never media bytes) and
//! produces a [`FilterPlan`]: per-block actions plus channels that must be
//! dropped entirely. [`apply_plan`] is the "hardware level module" stand-in
//! that materialises the degraded blocks in a [`BlockStore`] using the
//! `cmif-media` operations.

use std::collections::BTreeMap;
use std::fmt;

use crate::error::Result;
use cmif_core::channel::MediaKind;
use cmif_core::descriptor::DescriptorResolver;
use cmif_core::symbol::Symbol;
use cmif_core::tree::Document;
use cmif_media::ops;
use cmif_media::store::BlockStore;

use cmif_scheduler::EnvironmentLimits;

/// A physical presentation device.
#[derive(Debug, Clone, PartialEq)]
pub struct DeviceProfile {
    /// Device name for reports.
    pub name: String,
    /// Physical display size in pixels, `None` for display-less devices.
    pub display: Option<(u32, u32)>,
    /// Colour depth in bits per pixel, `None` for display-less devices.
    pub color_depth: Option<u8>,
    /// Maximum video frame rate the device can sustain.
    pub max_frame_rate: f64,
    /// Number of loudspeaker channels.
    pub audio_channels: u32,
    /// Sustained delivery bandwidth in bytes per second.
    pub bandwidth_bps: u64,
    /// Decode capacity in abstract work units per second.
    pub decode_capacity: u32,
    /// How many events the device can present at once.
    pub max_concurrent_events: usize,
}

impl DeviceProfile {
    /// A 1991-vintage colour workstation.
    pub fn workstation() -> DeviceProfile {
        DeviceProfile {
            name: "workstation".to_string(),
            display: Some((1280, 1024)),
            color_depth: Some(24),
            max_frame_rate: 30.0,
            audio_channels: 2,
            bandwidth_bps: 20_000_000,
            decode_capacity: 1_000,
            max_concurrent_events: 16,
        }
    }

    /// A low-end personal computer with an 8-bit display.
    pub fn low_end_pc() -> DeviceProfile {
        DeviceProfile {
            name: "low-end-pc".to_string(),
            display: Some((640, 480)),
            color_depth: Some(8),
            max_frame_rate: 12.0,
            audio_channels: 1,
            bandwidth_bps: 2_500_000,
            decode_capacity: 100,
            max_concurrent_events: 4,
        }
    }

    /// An audio-only kiosk.
    pub fn audio_kiosk() -> DeviceProfile {
        DeviceProfile {
            name: "audio-kiosk".to_string(),
            display: None,
            color_depth: None,
            max_frame_rate: 0.0,
            audio_channels: 1,
            bandwidth_bps: 256_000,
            decode_capacity: 20,
            max_concurrent_events: 2,
        }
    }

    /// The media this device can present at all.
    pub fn supported_media(&self) -> Vec<MediaKind> {
        if self.display.is_some() {
            MediaKind::ALL.to_vec()
        } else {
            vec![MediaKind::Audio]
        }
    }

    /// Maps the device onto the scheduler's [`EnvironmentLimits`] so that
    /// conflict detection and the playback simulator can reason about it.
    pub fn limits(&self) -> EnvironmentLimits {
        EnvironmentLimits {
            name: Symbol::intern(&self.name),
            supported_media: self.supported_media(),
            max_concurrent_events: self.max_concurrent_events,
            bandwidth_bps: self.bandwidth_bps,
            decode_capacity: self.decode_capacity,
            max_resolution: self.display,
            max_color_depth: self.color_depth,
        }
    }
}

/// One degradation applied to one data block.
#[derive(Debug, Clone, PartialEq)]
pub enum FilterAction {
    /// The block fits the device as-is.
    PassThrough,
    /// Reduce colour depth to the given number of bits.
    ReduceColorDepth {
        /// Target colour depth in bits.
        to_bits: u8,
    },
    /// Downscale the raster by an integer factor.
    Downscale {
        /// The integer reduction factor (2 halves each dimension).
        factor: u32,
    },
    /// Keep one frame in `keep_one_in` (frame-rate sub-sampling).
    SubsampleFrames {
        /// Keep one frame out of this many.
        keep_one_in: u32,
    },
    /// Reduce the audio sampling rate by an integer factor.
    DownsampleAudio {
        /// The integer reduction factor.
        factor: u32,
    },
    /// The device cannot present this medium at all; the block (and its
    /// channel) must be dropped from the local presentation.
    Drop,
}

impl fmt::Display for FilterAction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FilterAction::PassThrough => write!(f, "pass through"),
            FilterAction::ReduceColorDepth { to_bits } => {
                write!(f, "reduce colour to {to_bits}-bit")
            }
            FilterAction::Downscale { factor } => write!(f, "downscale by {factor}x"),
            FilterAction::SubsampleFrames { keep_one_in } => {
                write!(f, "keep 1 frame in {keep_one_in}")
            }
            FilterAction::DownsampleAudio { factor } => {
                write!(f, "downsample audio by {factor}x")
            }
            FilterAction::Drop => write!(f, "drop"),
        }
    }
}

/// The constraint mapping for one document on one device.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FilterPlan {
    /// Per-descriptor-key actions (several degradations may apply to one
    /// block), keyed by interned descriptor key.
    pub actions: BTreeMap<Symbol, Vec<FilterAction>>,
    /// Channels none of whose media the device can present.
    pub dropped_channels: Vec<Symbol>,
}

impl FilterPlan {
    /// True when every block passes through unchanged and nothing is
    /// dropped.
    pub fn is_identity(&self) -> bool {
        self.dropped_channels.is_empty()
            && self
                .actions
                .values()
                .all(|actions| actions.iter().all(|a| *a == FilterAction::PassThrough))
    }

    /// Number of blocks that need any degradation.
    pub fn degraded_blocks(&self) -> usize {
        self.actions
            .values()
            .filter(|actions| actions.iter().any(|a| *a != FilterAction::PassThrough))
            .count()
    }
}

impl fmt::Display for FilterPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut entries: Vec<(&Symbol, &Vec<FilterAction>)> = self.actions.iter().collect();
        entries.sort_by_key(|(key, _)| key.as_str());
        for (key, actions) in entries {
            let rendered: Vec<String> = actions.iter().map(FilterAction::to_string).collect();
            writeln!(f, "{key}: {}", rendered.join(", "))?;
        }
        for channel in &self.dropped_channels {
            writeln!(f, "channel `{channel}` dropped")?;
        }
        Ok(())
    }
}

/// Plans the constraint mapping for a document on a device, using only the
/// data descriptors reachable through `resolver`.
pub fn plan_filters(
    doc: &Document,
    resolver: &dyn DescriptorResolver,
    device: &DeviceProfile,
) -> Result<FilterPlan> {
    let mut plan = FilterPlan::default();
    let supported = device.supported_media();

    // Channels whose medium the device cannot present are dropped outright.
    for channel in doc.channels.iter() {
        if !supported.contains(&channel.medium) {
            plan.dropped_channels.push(channel.name);
        }
    }

    // Per-block actions, derived from descriptor attributes only.
    for leaf in doc.leaves() {
        let key = match doc.file_of(leaf)? {
            Some(key) => key,
            None => continue, // immediate data needs no filtering plan
        };
        if plan.actions.contains_key(&key) {
            continue;
        }
        let descriptor = match resolver.resolve_symbol(key) {
            Some(descriptor) => descriptor,
            None => continue,
        };
        let mut actions = Vec::new();
        if !supported.contains(&descriptor.medium) && descriptor.medium != MediaKind::Generator {
            plan.actions.insert(key, vec![FilterAction::Drop]);
            continue;
        }
        if let (Some((block_w, block_h)), Some((dev_w, dev_h))) =
            (descriptor.resolution, device.display)
        {
            if block_w > dev_w || block_h > dev_h {
                let factor_w = block_w.div_ceil(dev_w);
                let factor_h = block_h.div_ceil(dev_h);
                actions.push(FilterAction::Downscale {
                    factor: factor_w.max(factor_h).max(2),
                });
            }
        }
        if let (Some(block_bits), Some(device_bits)) = (descriptor.color_depth, device.color_depth)
        {
            if block_bits > device_bits {
                actions.push(FilterAction::ReduceColorDepth {
                    to_bits: device_bits,
                });
            }
        }
        if let Some(fps) = descriptor.rates.frames_per_second {
            if device.max_frame_rate > 0.0 && fps > device.max_frame_rate {
                let keep_one_in = (fps / device.max_frame_rate).ceil() as u32;
                actions.push(FilterAction::SubsampleFrames {
                    keep_one_in: keep_one_in.max(2),
                });
            }
        }
        if descriptor.medium == MediaKind::Audio {
            if let Some(sample_rate) = descriptor.rates.samples_per_second {
                // Crude rule: a device with little bandwidth takes half-rate
                // audio.
                if device.bandwidth_bps < sample_rate as u64 * 4 {
                    actions.push(FilterAction::DownsampleAudio { factor: 2 });
                }
            }
        }
        if actions.is_empty() {
            actions.push(FilterAction::PassThrough);
        }
        plan.actions.insert(key, actions);
    }
    Ok(plan)
}

/// Applies a filter plan to the blocks in a store, materialising degraded
/// payloads in place (and refreshing their descriptors).
///
/// Returns the number of blocks that were modified.
pub fn apply_plan(plan: &FilterPlan, store: &BlockStore) -> Result<usize> {
    let mut modified = 0;
    for (key, actions) in &plan.actions {
        if actions
            .iter()
            .all(|a| matches!(a, FilterAction::PassThrough | FilterAction::Drop))
        {
            continue;
        }
        let mut payload = store.payload(key.as_str())?;
        for action in actions {
            payload = match action {
                FilterAction::PassThrough | FilterAction::Drop => payload,
                FilterAction::ReduceColorDepth { to_bits } => {
                    ops::reduce_color_depth(&payload, *to_bits)?
                }
                FilterAction::Downscale { factor } => ops::downscale(&payload, *factor)?,
                FilterAction::SubsampleFrames { keep_one_in } => {
                    ops::subsample_frame_rate(&payload, *keep_one_in)?
                }
                FilterAction::DownsampleAudio { factor } => {
                    ops::downsample_audio(&payload, *factor)?
                }
            };
        }
        store.replace_payload(key.as_str(), payload)?;
        modified += 1;
    }
    Ok(modified)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::capture::{CaptureRequest, CaptureTool};
    use cmif_core::prelude::*;

    /// A document whose media are too rich for a low-end PC: 24-bit
    /// 1024x768 video at 25 fps, 24-bit graphics, 8 kHz audio.
    fn rich_doc_and_store() -> (Document, BlockStore) {
        let store = BlockStore::new();
        let mut tool = CaptureTool::new(&store, 17);
        tool.capture(&CaptureRequest::video("film", 1_000, (1024, 768), 24))
            .unwrap();
        tool.capture(&CaptureRequest::image("painting", (800, 600), 24))
            .unwrap();
        tool.capture(&CaptureRequest::audio("speech", 2_000))
            .unwrap();
        let catalog = store.export_catalog();

        let mut builder = DocumentBuilder::new("news")
            .channel("video", MediaKind::Video)
            .channel("graphic", MediaKind::Image)
            .channel("audio", MediaKind::Audio)
            .channel("caption", MediaKind::Text);
        for descriptor in catalog.iter() {
            builder = builder.descriptor(descriptor.clone());
        }
        let doc = builder
            .root_par(|story| {
                story.ext("film", "video", "film");
                story.ext("painting", "graphic", "painting");
                story.ext("speech", "audio", "speech");
                story.imm_text("line", "caption", "caption text", 2_000);
            })
            .build()
            .unwrap();
        (doc, store)
    }

    #[test]
    fn workstation_plan_is_identity() {
        let (doc, store) = rich_doc_and_store();
        let plan = plan_filters(&doc, &store, &DeviceProfile::workstation()).unwrap();
        assert!(plan.is_identity(), "unexpected plan:\n{plan}");
        assert_eq!(plan.degraded_blocks(), 0);
    }

    #[test]
    fn low_end_pc_plan_degrades_video_and_graphics() {
        let (doc, store) = rich_doc_and_store();
        let device = DeviceProfile::low_end_pc();
        let plan = plan_filters(&doc, &store, &device).unwrap();
        assert!(!plan.is_identity());
        let film_actions = &plan.actions[&Symbol::intern("film")];
        assert!(film_actions
            .iter()
            .any(|a| matches!(a, FilterAction::Downscale { .. })));
        assert!(film_actions
            .iter()
            .any(|a| matches!(a, FilterAction::ReduceColorDepth { to_bits: 8 })));
        assert!(film_actions
            .iter()
            .any(|a| matches!(a, FilterAction::SubsampleFrames { .. })));
        let painting_actions = &plan.actions[&Symbol::intern("painting")];
        assert!(painting_actions
            .iter()
            .any(|a| matches!(a, FilterAction::ReduceColorDepth { .. })));
        assert!(plan.dropped_channels.is_empty());
    }

    #[test]
    fn audio_kiosk_drops_visual_channels() {
        let (doc, store) = rich_doc_and_store();
        let plan = plan_filters(&doc, &store, &DeviceProfile::audio_kiosk()).unwrap();
        assert!(plan.dropped_channels.contains(&Symbol::intern("video")));
        assert!(plan.dropped_channels.contains(&Symbol::intern("graphic")));
        assert!(plan.dropped_channels.contains(&Symbol::intern("caption")));
        assert!(!plan.dropped_channels.contains(&Symbol::intern("audio")));
        assert_eq!(
            plan.actions[&Symbol::intern("film")],
            vec![FilterAction::Drop]
        );
        assert_eq!(
            plan.actions[&Symbol::intern("painting")],
            vec![FilterAction::Drop]
        );
    }

    #[test]
    fn applying_the_plan_shrinks_the_store() {
        let (doc, store) = rich_doc_and_store();
        let before = store.total_bytes();
        let plan = plan_filters(&doc, &store, &DeviceProfile::low_end_pc()).unwrap();
        let modified = apply_plan(&plan, &store).unwrap();
        assert!(modified >= 2);
        let after = store.total_bytes();
        assert!(
            after < before / 4,
            "filtering should shrink the media substantially: {before} -> {after}"
        );
        // Descriptors now reflect the degraded media.
        let film = store.descriptor("film").unwrap();
        assert_eq!(film.color_depth, Some(8));
        assert!(film.resolution.unwrap().0 <= 640);
    }

    #[test]
    fn filtered_document_fits_the_device_limits() {
        use cmif_scheduler::{device_conflicts, ConstraintGraph, ScheduleOptions};
        let (doc, store) = rich_doc_and_store();
        let device = DeviceProfile::low_end_pc();
        // Before filtering: the schedule needs more than the device has.
        let result = ConstraintGraph::derive(&doc, &store, &ScheduleOptions::default())
            .unwrap()
            .solve(&doc, &store)
            .unwrap();
        let before = device_conflicts(&doc, &result.schedule, &store, &device.limits()).unwrap();
        assert!(!before.is_empty());
        // After filtering: the degraded media fit.
        let plan = plan_filters(&doc, &store, &device).unwrap();
        apply_plan(&plan, &store).unwrap();
        let result = ConstraintGraph::derive(&doc, &store, &ScheduleOptions::default())
            .unwrap()
            .solve(&doc, &store)
            .unwrap();
        let after = device_conflicts(&doc, &result.schedule, &store, &device.limits()).unwrap();
        assert!(
            after.is_empty(),
            "conflicts remain after filtering: {after:?}"
        );
    }

    #[test]
    fn device_limits_mapping() {
        let kiosk = DeviceProfile::audio_kiosk();
        let limits = kiosk.limits();
        assert_eq!(limits.supported_media, vec![MediaKind::Audio]);
        assert_eq!(limits.max_resolution, None);
        let ws = DeviceProfile::workstation().limits();
        assert!(ws.supported_media.contains(&MediaKind::Video));
        assert_eq!(ws.max_color_depth, Some(24));
    }

    #[test]
    fn plan_display_mentions_actions_and_drops() {
        let (doc, store) = rich_doc_and_store();
        let plan = plan_filters(&doc, &store, &DeviceProfile::audio_kiosk()).unwrap();
        let text = plan.to_string();
        assert!(text.contains("drop"));
        assert!(text.contains("channel `video` dropped"));
    }
}
