//! Media block capture tools (pipeline stage 1).
//!
//! "a set of tools that will allow the user to iteratively capture (and
//! edit) the atomic pieces of information that will be included in a
//! composite document. […] our focus is on providing descriptive tools that
//! allow higher-level processing of various bits of collected information."
//! (§2)
//!
//! The capture stage takes a *shot list* of [`CaptureRequest`]s, synthesizes
//! the media (standing in for cameras, microphones and scanners), stores the
//! blocks in a [`BlockStore`], and returns the data descriptors — which is
//! all later pipeline stages ever see.

use crate::error::Result;
use cmif_core::channel::MediaKind;
use cmif_core::descriptor::{DataDescriptor, DescriptorCatalog};
use cmif_core::value::AttrValue;
use cmif_media::generate::MediaGenerator;
use cmif_media::store::BlockStore;

/// One item on the capture shot list.
#[derive(Debug, Clone, PartialEq)]
pub struct CaptureRequest {
    /// Key under which the captured block will be stored.
    pub key: String,
    /// The medium to capture.
    pub medium: MediaKind,
    /// Duration for continuous media, in milliseconds.
    pub duration_ms: i64,
    /// Raster geometry for visual media.
    pub resolution: (u32, u32),
    /// Colour depth for visual media.
    pub color_depth: u8,
    /// Word count for text.
    pub words: usize,
    /// Free-form descriptive attributes attached to the resulting data
    /// descriptor (title, story, language, search keys, …).
    pub attributes: Vec<(String, String)>,
}

impl CaptureRequest {
    /// A speech/audio capture request.
    pub fn audio(key: impl Into<String>, duration_ms: i64) -> CaptureRequest {
        CaptureRequest {
            key: key.into(),
            medium: MediaKind::Audio,
            duration_ms,
            resolution: (0, 0),
            color_depth: 8,
            words: 0,
            attributes: Vec::new(),
        }
    }

    /// A video capture request.
    pub fn video(
        key: impl Into<String>,
        duration_ms: i64,
        resolution: (u32, u32),
        color_depth: u8,
    ) -> CaptureRequest {
        CaptureRequest {
            key: key.into(),
            medium: MediaKind::Video,
            duration_ms,
            resolution,
            color_depth,
            words: 0,
            attributes: Vec::new(),
        }
    }

    /// A still image capture request.
    pub fn image(
        key: impl Into<String>,
        resolution: (u32, u32),
        color_depth: u8,
    ) -> CaptureRequest {
        CaptureRequest {
            key: key.into(),
            medium: MediaKind::Image,
            duration_ms: 0,
            resolution,
            color_depth,
            words: 0,
            attributes: Vec::new(),
        }
    }

    /// A text capture request.
    pub fn text(key: impl Into<String>, words: usize) -> CaptureRequest {
        CaptureRequest {
            key: key.into(),
            medium: MediaKind::Text,
            duration_ms: 0,
            resolution: (0, 0),
            color_depth: 8,
            words,
            attributes: Vec::new(),
        }
    }

    /// Attaches a descriptive attribute (builder style).
    pub fn with_attribute(mut self, key: impl Into<String>, value: impl Into<String>) -> Self {
        self.attributes.push((key.into(), value.into()));
        self
    }
}

/// The media capture tool: a deterministic generator plus the store it
/// fills.
#[derive(Debug)]
pub struct CaptureTool<'a> {
    store: &'a BlockStore,
    generator: MediaGenerator,
    audio_sample_rate: u32,
    video_fps: f64,
}

impl<'a> CaptureTool<'a> {
    /// Creates a capture tool writing into `store`, seeded for
    /// reproducibility.
    pub fn new(store: &'a BlockStore, seed: u64) -> CaptureTool<'a> {
        CaptureTool {
            store,
            generator: MediaGenerator::new(seed),
            audio_sample_rate: 8_000,
            video_fps: 25.0,
        }
    }

    /// Overrides the audio sampling rate used for captures.
    pub fn with_audio_sample_rate(mut self, rate: u32) -> Self {
        self.audio_sample_rate = rate;
        self
    }

    /// Overrides the video frame rate used for captures.
    pub fn with_video_fps(mut self, fps: f64) -> Self {
        self.video_fps = fps;
        self
    }

    /// Captures one request: synthesizes the media, stores the block, and
    /// returns the descriptor.
    pub fn capture(&mut self, request: &CaptureRequest) -> Result<DataDescriptor> {
        let block = match request.medium {
            MediaKind::Audio => {
                self.generator
                    .audio(&request.key, request.duration_ms, self.audio_sample_rate)
            }
            MediaKind::Video => self.generator.video(
                &request.key,
                request.duration_ms,
                request.resolution.0,
                request.resolution.1,
                self.video_fps,
                request.color_depth,
            ),
            MediaKind::Image => self.generator.image(
                &request.key,
                request.resolution.0,
                request.resolution.1,
                request.color_depth,
            ),
            MediaKind::Text | MediaKind::Label => {
                self.generator.text(&request.key, request.words.max(1))
            }
            MediaKind::Generator => self.generator.generator(&request.key, MediaKind::Image),
        };
        let mut descriptor = block.describe();
        for (key, value) in &request.attributes {
            descriptor = descriptor.with_extra(key.clone(), AttrValue::Str(value.clone()));
        }
        descriptor = descriptor.with_location(format!("store://local/{}", request.key));
        self.store
            .put_with_descriptor(block, descriptor.clone())
            .map_err(|e| crate::error::PipelineError::from(e).in_stage("capture"))?;
        Ok(descriptor)
    }

    /// Captures a whole shot list and returns the resulting descriptor
    /// catalog (ready to embed in a document).
    pub fn capture_all(&mut self, requests: &[CaptureRequest]) -> Result<DescriptorCatalog> {
        let mut catalog = DescriptorCatalog::new();
        for request in requests {
            let descriptor = self.capture(request)?;
            catalog.upsert(descriptor);
        }
        Ok(catalog)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cmif_core::time::TimeMs;

    #[test]
    fn capture_audio_produces_block_and_descriptor() {
        let store = BlockStore::new();
        let mut tool = CaptureTool::new(&store, 1);
        let descriptor = tool
            .capture(
                &CaptureRequest::audio("story-1/speech", 5_000).with_attribute("language", "nl"),
            )
            .unwrap();
        assert_eq!(descriptor.duration, Some(TimeMs::from_secs(5)));
        assert_eq!(
            descriptor.extra_attr("language").unwrap().as_text(),
            Some("nl")
        );
        assert!(descriptor
            .location
            .as_deref()
            .unwrap()
            .contains("story-1/speech"));
        assert_eq!(store.len(), 1);
        assert_eq!(
            store.payload("story-1/speech").unwrap().size_bytes(),
            40_000
        );
    }

    #[test]
    fn capture_video_uses_requested_geometry() {
        let store = BlockStore::new();
        let mut tool = CaptureTool::new(&store, 2).with_video_fps(30.0);
        let descriptor = tool
            .capture(&CaptureRequest::video("clip", 2_000, (320, 240), 24))
            .unwrap();
        assert_eq!(descriptor.resolution, Some((320, 240)));
        assert_eq!(descriptor.rates.frames_per_second, Some(30.0));
        assert_eq!(descriptor.color_depth, Some(24));
    }

    #[test]
    fn capture_all_builds_a_catalog() {
        let store = BlockStore::new();
        let mut tool = CaptureTool::new(&store, 3);
        let requests = vec![
            CaptureRequest::audio("a", 1_000),
            CaptureRequest::image("b", (64, 64), 8),
            CaptureRequest::text("c", 12),
        ];
        let catalog = tool.capture_all(&requests).unwrap();
        assert_eq!(catalog.len(), 3);
        assert_eq!(store.len(), 3);
        assert!(catalog.get("b").unwrap().resolution.is_some());
    }

    #[test]
    fn duplicate_capture_keys_are_rejected() {
        let store = BlockStore::new();
        let mut tool = CaptureTool::new(&store, 4);
        tool.capture(&CaptureRequest::text("same", 3)).unwrap();
        assert!(tool.capture(&CaptureRequest::text("same", 3)).is_err());
    }

    #[test]
    fn capture_is_deterministic_per_seed() {
        let store_a = BlockStore::new();
        let store_b = BlockStore::new();
        CaptureTool::new(&store_a, 7)
            .capture(&CaptureRequest::image("pic", (16, 16), 8))
            .unwrap();
        CaptureTool::new(&store_b, 7)
            .capture(&CaptureRequest::image("pic", (16, 16), 8))
            .unwrap();
        assert_eq!(
            store_a.payload("pic").unwrap(),
            store_b.payload("pic").unwrap()
        );
    }

    #[test]
    fn label_and_generator_requests_are_supported() {
        let store = BlockStore::new();
        let mut tool = CaptureTool::new(&store, 5);
        let mut label_request = CaptureRequest::text("label", 2);
        label_request.medium = MediaKind::Label;
        assert!(tool.capture(&label_request).is_ok());
        let mut generator_request = CaptureRequest::text("render", 0);
        generator_request.medium = MediaKind::Generator;
        let descriptor = tool.capture(&generator_request).unwrap();
        assert_eq!(descriptor.medium, MediaKind::Generator);
    }
}
