//! End-to-end orchestration of the CWI/Multimedia Pipeline (Figure 1).
//!
//! [`PipelineBuilder`] wires the five stages together for one document and
//! one target device:
//!
//! 1. **capture** (done by the caller — blocks already sit in the store);
//! 2. **document structure mapping** — the document itself, statically
//!    analysed: deny-severity lint findings refuse the run with every
//!    diagnostic attached, warnings ride along on the [`PipelineRun`];
//! 3. **presentation mapping** — the virtual layout of every channel;
//! 4. **constraint filtering** — plan and (optionally) apply the device
//!    mapping;
//! 5. **viewing** — schedule, conflict report, table of contents and
//!    storyboard, with playback driven through a bounded
//!    [`cmif_scheduler::Engine`] (one per builder, kept across runs).
//!
//! Each stage is timed so the Figure 1 benchmark can report where pipeline
//! time goes as documents grow. The dividing line the paper draws —
//! target-system *independent* (stages 2–3) vs target-system *dependent*
//! (stages 4–5) — is visible in the [`PipelineRun`] type: everything up to
//! the presentation map is reusable across devices, everything after is
//! per-device.

use std::collections::BTreeSet;
use std::fmt;
use std::sync::{Arc, OnceLock};
use std::time::{Duration, Instant};

use crate::error::{PipelineError, Result};
use cmif_core::descriptor::DescriptorResolver;
use cmif_core::diag::Diagnostic;
use cmif_core::edit::Edit;
use cmif_core::tree::Document;
use cmif_lint::Linter;
use cmif_media::store::BlockStore;
use cmif_scheduler::{
    full_report, ConflictReport, ConstraintGraph, DocId, DocOutcome, Engine, EngineConfig,
    JitterModel, PlaybackReport, ScheduleOptions, SchedulerError, SolveResult, Submission,
    TenantId,
};

use crate::constraint::{apply_plan, plan_filters, DeviceProfile, FilterPlan};
use crate::presentation::{map_presentation, PresentationMap};
use crate::viewer::{storyboard, table_of_contents, StoryboardFrame};

/// Options controlling a pipeline run.
#[derive(Debug, Clone)]
pub struct PipelineOptions {
    /// Scheduling policy.
    pub schedule: ScheduleOptions,
    /// When true, the filter plan is applied to the block store
    /// (materialising degraded media); when false the plan is only computed.
    pub materialize_filters: bool,
    /// Step between storyboard frames, in milliseconds.
    pub storyboard_step_ms: i64,
    /// Device jitter used for the playback simulation.
    pub jitter: JitterModel,
    /// Number of playback simulation runs (0 disables playback).
    pub playback_runs: u32,
    /// Worker threads of the stage-5c playback engine. Reports are
    /// deterministic per seed, so this only changes wall-clock time.
    pub playback_workers: usize,
    /// Admission budget for the stage-5c playback engine. `None` (the
    /// default) admits every run; `Some(k)` bounds the engine's queue to
    /// `k` and makes stage 5c admit *without blocking* — a document whose
    /// `playback_runs` outpace the bounded engine surfaces
    /// [`cmif_scheduler::SchedulerError::Backpressure`] as a
    /// stage-tagged [`PipelineError`] instead of stalling the pipeline.
    ///
    /// Like any non-blocking admission, whether runs in the window
    /// `k < playback_runs ≤ k + in-flight` squeeze through depends on how
    /// fast the workers drain — choose `k ≥ playback_runs` for a bound
    /// that never rejects this document, or `None` to opt out of
    /// admission control entirely.
    pub playback_backlog: Option<usize>,
    /// Tenant the stage-5c playback submissions run under. The engine is
    /// shared across every run (and clone) of a builder, so attributing
    /// each document's runs to its client keeps one busy document from
    /// starving another's playback (weighted fair queuing) and lets
    /// per-tenant stats and quotas apply — see
    /// [`cmif_scheduler::Engine::set_tenant_policy`]. Defaults to
    /// [`TenantId::DEFAULT`].
    pub playback_tenant: TenantId,
    /// The stage-2 linter. Its severity config decides which findings
    /// refuse the run (deny) and which merely ride along on the
    /// [`PipelineRun`] (warn); the registry defaults match what the old
    /// fail-fast validator rejected. The linter's schedule options are
    /// overridden with [`PipelineOptions::schedule`] at run time so the
    /// timing passes analyse the same constraint set stage 5a solves.
    pub lint: Linter,
}

impl Default for PipelineOptions {
    fn default() -> Self {
        PipelineOptions {
            schedule: ScheduleOptions::default(),
            materialize_filters: false,
            storyboard_step_ms: 1_000,
            jitter: JitterModel::ideal(),
            playback_runs: 1,
            playback_workers: 1,
            playback_backlog: None,
            playback_tenant: TenantId::DEFAULT,
            lint: Linter::new(),
        }
    }
}

/// Wall-clock time spent in each pipeline stage.
#[derive(Debug, Clone, Default)]
pub struct StageTimings {
    /// Structural validation of the document.
    pub validate: Duration,
    /// Presentation mapping.
    pub presentation: Duration,
    /// Constraint-filter planning (and application when requested).
    pub filtering: Duration,
    /// Scheduling and conflict detection.
    pub scheduling: Duration,
    /// Viewing-tool rendering (table of contents + storyboard).
    pub viewing: Duration,
    /// Playback simulation.
    pub playback: Duration,
}

impl StageTimings {
    /// Total time across all stages.
    pub fn total(&self) -> Duration {
        self.validate
            + self.presentation
            + self.filtering
            + self.scheduling
            + self.viewing
            + self.playback
    }
}

/// Everything one pipeline run produces.
#[derive(Debug, Clone)]
pub struct PipelineRun {
    /// The device the run targeted.
    pub device: DeviceProfile,
    /// The presentation map (target-system independent).
    pub presentation: PresentationMap,
    /// The constraint mapping for this device.
    pub filter_plan: FilterPlan,
    /// The solved schedule and its constraints.
    pub solve: SolveResult,
    /// The conflict report against this device.
    pub conflicts: ConflictReport,
    /// The reading view.
    pub table_of_contents: String,
    /// The viewing view.
    pub storyboard: Vec<StoryboardFrame>,
    /// Playback simulation of the last run, when requested.
    pub playback: Option<PlaybackReport>,
    /// How the document's media arrived when the run came through
    /// [`PipelineBuilder::run_distributed`]: local hits, clean transfers,
    /// degraded fetches and the retries they recovered from. `None` for
    /// runs against a plain local store.
    pub fetch: Option<cmif_distrib::FetchReport>,
    /// Non-refusing lint findings from stage 2 (warn severity): the run
    /// went ahead, but these are worth surfacing to an author. Render
    /// them with [`cmif_core::diag::render_all`] against the document's
    /// `SourceMap`.
    pub diagnostics: Vec<Diagnostic>,
    /// Wall-clock cost of each stage.
    pub timings: StageTimings,
}

impl PipelineRun {
    /// True when the document can be presented on the device as planned
    /// (no Must violations and no unresolved device conflicts).
    pub fn is_presentable(&self) -> bool {
        self.solve.is_consistent() && self.conflicts.of_class(2).is_empty()
    }
}

/// Configures and runs pipeline passes for one target device.
///
/// The builder is reusable: configure it once, then [`PipelineBuilder::run`]
/// as many documents through it as needed. Each run derives a
/// [`ConstraintGraph`] (so callers holding the run can keep injecting
/// constraints without re-deriving) and drives playback through a
/// stage-5c [`cmif_scheduler::Engine`] — bounded admission included: set
/// [`PipelineOptions::playback_backlog`] and an overloaded engine surfaces
/// `Backpressure` as a `"playback"`-tagged error instead of stalling.
///
/// The engine is created lazily on the first run that plays anything and
/// then *kept*, so repeat runs (and clones of this builder, which share
/// it) pay no per-run thread spawn; it is shut down when the last sharing
/// builder drops. Outcomes are collected per admission ticket, so
/// concurrent `run` calls through one shared engine cannot steal each
/// other's reports.
#[derive(Clone)]
pub struct PipelineBuilder {
    device: DeviceProfile,
    options: PipelineOptions,
    /// Lazily initialised, shared by clones. Reset by any setter that
    /// changes the engine's configuration.
    engine: Arc<OnceLock<Engine>>,
    /// Test-only fault injection threaded into the engine's jobs.
    job_hook: Option<cmif_scheduler::JobHook>,
}

impl fmt::Debug for PipelineBuilder {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("PipelineBuilder")
            .field("device", &self.device)
            .field("options", &self.options)
            .field("engine_started", &self.engine.get().is_some())
            .finish()
    }
}

impl PipelineBuilder {
    /// A builder targeting the given device with default options.
    pub fn new(device: DeviceProfile) -> PipelineBuilder {
        PipelineBuilder {
            device,
            options: PipelineOptions::default(),
            engine: Arc::new(OnceLock::new()),
            job_hook: None,
        }
    }

    /// The shared stage-5c engine, started on first use from the current
    /// options and kept across runs and clones.
    fn stage5_engine(&self) -> &Engine {
        self.engine.get_or_init(|| {
            Engine::new(EngineConfig {
                workers: self.options.playback_workers,
                options: self.options.schedule,
                max_backlog: self.options.playback_backlog,
                job_hook: self.job_hook.clone(),
                ..EngineConfig::default()
            })
        })
    }

    /// Forget any already-started engine: the next run starts a fresh one
    /// from the current options. Called by every setter that feeds
    /// [`EngineConfig`], so configuration changes cannot be shadowed by a
    /// previously spawned pool.
    fn reset_engine(&mut self) {
        self.engine = Arc::new(OnceLock::new());
    }

    /// Replaces the whole option set.
    pub fn options(mut self, options: PipelineOptions) -> PipelineBuilder {
        self.options = options;
        self.reset_engine();
        self
    }

    /// Sets the scheduling policy.
    pub fn schedule(mut self, schedule: ScheduleOptions) -> PipelineBuilder {
        self.options.schedule = schedule;
        self.reset_engine();
        self
    }

    /// Whether the filter plan is applied to the block store.
    pub fn materialize_filters(mut self, materialize: bool) -> PipelineBuilder {
        self.options.materialize_filters = materialize;
        self
    }

    /// Step between storyboard frames, in milliseconds.
    pub fn storyboard_step_ms(mut self, step_ms: i64) -> PipelineBuilder {
        self.options.storyboard_step_ms = step_ms;
        self
    }

    /// Device jitter used for the playback sessions.
    pub fn jitter(mut self, jitter: JitterModel) -> PipelineBuilder {
        self.options.jitter = jitter;
        self
    }

    /// Number of playback sessions to run (0 disables playback).
    pub fn playback_runs(mut self, runs: u32) -> PipelineBuilder {
        self.options.playback_runs = runs;
        self
    }

    /// Worker threads of the stage-5c playback engine.
    pub fn playback_workers(mut self, workers: usize) -> PipelineBuilder {
        self.options.playback_workers = workers;
        self.reset_engine();
        self
    }

    /// Admission budget of the stage-5c playback engine (see
    /// [`PipelineOptions::playback_backlog`]).
    pub fn playback_backlog(mut self, backlog: Option<usize>) -> PipelineBuilder {
        self.options.playback_backlog = backlog;
        self.reset_engine();
        self
    }

    /// The stage-2 linter (see [`PipelineOptions::lint`]): its severity
    /// config decides which findings refuse a run and which merely warn.
    pub fn lint(mut self, linter: Linter) -> PipelineBuilder {
        self.options.lint = linter;
        self
    }

    /// Test-only fault injection for the stage-5c engine's jobs (see
    /// [`cmif_scheduler::JobHook`]). Leave unset.
    #[doc(hidden)]
    pub fn playback_hook(mut self, hook: cmif_scheduler::JobHook) -> PipelineBuilder {
        self.job_hook = Some(hook);
        self.reset_engine();
        self
    }

    /// Starts a *live* playback of `doc` on the shared stage-5c engine and
    /// returns its admission ticket without waiting for it to finish — the
    /// entry point of the paper's edit-while-playing authoring loop.
    ///
    /// The document passes stage-2 static analysis first (deny findings
    /// refuse it exactly like [`PipelineBuilder::run`]); descriptors then
    /// resolve against a snapshot of the store's catalog. While the
    /// presentation plays, feed revisions in with
    /// [`PipelineBuilder::edit_running`] and collect the final report —
    /// including one [`cmif_scheduler::EditOutcome`] per routed edit —
    /// with [`PipelineBuilder::wait_running`].
    pub fn play_running(&self, doc: impl Into<Arc<Document>>, store: &BlockStore) -> Result<DocId> {
        let shared = doc.into();
        let report = self
            .options
            .lint
            .clone()
            .with_options(self.options.schedule)
            .check_resolved(&shared, store);
        if report.has_deny() {
            return Err(PipelineError::Lint {
                stage: "structure",
                diagnostics: report.into_diagnostics(),
            });
        }
        let catalog: Arc<dyn DescriptorResolver + Send + Sync> = Arc::new(store.export_catalog());
        let submission = Submission::new(shared, self.options.jitter.clone())
            .tenant(self.options.playback_tenant)
            .resolver(catalog);
        let engine = self.stage5_engine();
        let admitted = match self.options.playback_backlog {
            None => engine.admit(submission),
            // A bounded stage never blocks the caller: overload surfaces
            // as stage-tagged backpressure, like `run`'s stage 5c.
            Some(_) => engine.try_admit(submission),
        };
        admitted.map_err(|e| PipelineError::from(e).in_stage("playback"))
    }

    /// Routes a live edit to a document playing under this builder's
    /// engine ([`PipelineBuilder::play_running`]). The edit is validated
    /// and applied at the presentation's next tick boundary —
    /// already-fired events are never rewritten, the unplayed suffix is
    /// re-scheduled incrementally — and its outcome lands in the
    /// document's [`cmif_scheduler::DocOutcome::edits`].
    ///
    /// Fails with an `"edit"`-stage error when the ticket is unknown or
    /// the presentation already completed (the edit then went nowhere).
    pub fn edit_running(&self, doc: DocId, edit: Edit) -> Result<()> {
        let Some(engine) = self.engine.get() else {
            return Err(PipelineError::from(SchedulerError::EditRejected {
                doc,
                reason: "no playback engine is running",
            })
            .in_stage("edit"));
        };
        engine
            .apply_edit(doc, edit)
            .map_err(|e| PipelineError::from(e).in_stage("edit"))
    }

    /// Collects the outcome of a live playback started with
    /// [`PipelineBuilder::play_running`], blocking until it finishes. The
    /// outcome carries the playback report (or the error that ended the
    /// run) plus one entry per live edit routed to the document, in
    /// processing order.
    pub fn wait_running(&self, doc: DocId) -> Result<DocOutcome> {
        let Some(engine) = self.engine.get() else {
            return Err(PipelineError::from(SchedulerError::EditRejected {
                doc,
                reason: "no playback engine is running",
            })
            .in_stage("playback"));
        };
        Ok(engine.wait(doc))
    }

    /// Runs pipeline stages 2–5 for a document whose media already sit in
    /// `store`.
    ///
    /// Stage 5c's engine jobs need shared ownership of the document, so a
    /// run that plays anything clones the tree once — only then, and only
    /// after validation; a caller that already holds (or re-runs) the
    /// document should use [`PipelineBuilder::run_shared`] and pay a
    /// pointer clone instead.
    pub fn run(&self, doc: &Document, store: &BlockStore) -> Result<PipelineRun> {
        self.run_inner(doc, None, store)
    }

    /// Runs the pipeline for a document arriving as interchange bytes —
    /// the compact binary wire form or canonical text, auto-detected by
    /// leading magic (see [`cmif_format::WireEncoding::detect`]).
    ///
    /// This is the receiving end of a document transport: bytes come off
    /// the wire, decode (validated, hardened against truncation and depth
    /// bombs), and run stages 2–5 directly. A decoding failure surfaces as
    /// an `"ingest"`-stage [`PipelineError::Format`] carrying the byte
    /// span of the fault.
    pub fn run_wire(&self, bytes: &[u8], store: &BlockStore) -> Result<PipelineRun> {
        let (doc, _encoding) =
            cmif_format::read_document_bytes(bytes).map_err(PipelineError::from)?;
        self.run_shared(doc, store)
    }

    /// [`PipelineBuilder::run`] for a shared document: N runs of one
    /// `Arc<Document>` clone N pointers, never the tree (the same contract
    /// as [`cmif_scheduler::Engine::submit`]).
    pub fn run_shared(
        &self,
        doc: impl Into<Arc<Document>>,
        store: &BlockStore,
    ) -> Result<PipelineRun> {
        let shared = doc.into();
        self.run_inner(&shared, Some(&shared), store)
    }

    /// The stages themselves. `shared` is the document's `Arc` when the
    /// caller already has one; stage 5c otherwise clones the tree into a
    /// fresh `Arc` — the one place shared ownership is actually needed.
    fn run_inner(
        &self,
        doc: &Document,
        shared: Option<&Arc<Document>>,
        store: &BlockStore,
    ) -> Result<PipelineRun> {
        let device = &self.device;
        let options = &self.options;
        let mut timings = StageTimings::default();

        // Stage 2: the document structure map — static analysis. Unlike
        // the old fail-fast validator this collects *every* finding: a
        // deny-severity diagnostic refuses the run with the whole report
        // attached, warn-severity findings ride along on the `PipelineRun`.
        let started = Instant::now();
        let report = options
            .lint
            .clone()
            .with_options(options.schedule)
            .check_resolved(doc, store);
        if report.has_deny() {
            return Err(PipelineError::Lint {
                stage: "structure",
                diagnostics: report.into_diagnostics(),
            });
        }
        let diagnostics = report.into_diagnostics();
        timings.validate = started.elapsed();

        // Stage 3: presentation mapping (target-system independent).
        let started = Instant::now();
        let presentation = map_presentation(doc).map_err(|e| e.in_stage("presentation"))?;
        timings.presentation = started.elapsed();

        // Stage 4: constraint filtering (target-system dependent).
        let started = Instant::now();
        let filter_plan = plan_filters(doc, store, device).map_err(|e| e.in_stage("filtering"))?;
        if options.materialize_filters {
            apply_plan(&filter_plan, store).map_err(|e| e.in_stage("filtering"))?;
        }
        timings.filtering = started.elapsed();

        // Stage 5a: scheduling + conflict detection. Derivation is split
        // from relaxation so the graph could be re-relaxed with injected
        // constraints without another pipeline pass.
        let started = Instant::now();
        let mut graph = ConstraintGraph::derive(doc, store, &options.schedule)
            .map_err(|e| PipelineError::from(e).in_stage("scheduling"))?;
        // Behind an `Arc` so stage 5c's engine jobs can share it; unwrapped
        // (clone-free) below once the jobs are done with their references.
        let solve_result = Arc::new(
            graph
                .solve(doc, store)
                .map_err(|e| PipelineError::from(e).in_stage("scheduling"))?,
        );
        let conflicts = full_report(doc, &solve_result, store, Some(&device.limits()))
            .map_err(|e| PipelineError::from(e).in_stage("scheduling"))?;
        timings.scheduling = started.elapsed();

        // Stage 5b: viewing tools.
        let started = Instant::now();
        let toc =
            table_of_contents(doc, &solve_result.schedule).map_err(|e| e.in_stage("viewing"))?;
        let frames = storyboard(
            doc,
            &solve_result.schedule,
            &presentation,
            Some(&filter_plan),
            options.storyboard_step_ms,
            store,
        )
        .map_err(|e| e.in_stage("viewing"))?;
        timings.viewing = started.elapsed();

        // Stage 5c: playback sessions, driven through the same bounded
        // `Engine` the server side uses (started once per builder, shared
        // across runs and clones — no per-run thread spawn). Each
        // submission shares the stage-5a solve (no per-run re-derivation)
        // and resolves descriptors against a snapshot of the store
        // exported *after* filtering, so materialised degradations are
        // exactly what the sessions see; reports are deterministic per
        // seed, so the engine's concurrency only changes wall-clock time,
        // never a report.
        let started = Instant::now();
        let playback = if options.playback_runs > 0 {
            let catalog: Arc<dyn DescriptorResolver + Send + Sync> =
                Arc::new(store.export_catalog());
            let shared_doc = match shared {
                Some(arc) => Arc::clone(arc),
                None => Arc::new(doc.clone()),
            };
            let engine = self.stage5_engine();
            let submissions = (0..options.playback_runs).map(|run| {
                let jitter = JitterModel {
                    seed: options.jitter.seed.wrapping_add(run as u64),
                    ..options.jitter.clone()
                };
                Submission::new(Arc::clone(&shared_doc), jitter)
                    .tenant(options.playback_tenant)
                    .resolver(Arc::clone(&catalog))
                    .solved(Arc::clone(&solve_result))
            });
            let mut ids = Vec::with_capacity(options.playback_runs as usize);
            let mut admission_error = None;
            match options.playback_backlog {
                // Unbounded: all runs admitted under one queue transaction
                // (all-or-nothing, one lock acquisition for the batch).
                None => match engine.submit_batch(submissions) {
                    Ok(batch) => ids = batch,
                    Err(e) => admission_error = Some(e),
                },
                // A bounded stage never blocks the pipeline on a full
                // queue: each run is offered non-blockingly, the ones that
                // fit still play, and overload surfaces as a stage-tagged
                // error.
                Some(_) => {
                    for submission in submissions {
                        match engine.try_admit(submission) {
                            Ok(id) => ids.push(id),
                            Err(e) => {
                                admission_error = Some(e);
                                break;
                            }
                        }
                    }
                }
            }
            // Collect every admitted outcome by its own ticket — even on
            // the error paths, so nothing is left undelivered in the
            // long-lived engine — then report the first failure.
            let mut last = None;
            let mut job_error = None;
            for id in ids {
                match engine.wait(id).result {
                    Ok(report) => last = Some(report),
                    Err(e) => {
                        if job_error.is_none() {
                            job_error = Some(e);
                        }
                    }
                }
            }
            // A job failure (above all a `JobPanicked` with its message)
            // is the actionable signal; an admission refusal is only the
            // configured overload response, so it reports second.
            if let Some(e) = job_error.or(admission_error) {
                return Err(PipelineError::from(e).in_stage("playback"));
            }
            last
        } else {
            None
        };
        timings.playback = started.elapsed();

        Ok(PipelineRun {
            device: device.clone(),
            presentation,
            filter_plan,
            // Every engine job has finished and dropped its reference by
            // now, so this unwraps without cloning; the fallback clone can
            // only run if a caller-side clone of the Arc survives.
            solve: Arc::try_unwrap(solve_result).unwrap_or_else(|shared| (*shared).clone()),
            conflicts,
            table_of_contents: toc,
            storyboard: frames,
            playback,
            fetch: None,
            diagnostics,
            timings,
        })
    }

    /// Runs the pipeline for a document published on a distributed store,
    /// as `host` would present it: the document structure comes from the
    /// nearest surviving holder (free when `host` already holds a
    /// replica), every referenced media block is fetched
    /// nearest-replica-first — retrying past down hosts and cut links
    /// under the store's [`cmif_distrib::RetryPolicy`] — and the stages
    /// then run against the host's local shard. (Stages 2 and 4 resolve
    /// every external reference against the local store, so even blocks
    /// the device will drop must be present; a device-filtered *transport*
    /// comparison is [`cmif_distrib::compare_transport`]'s job.)
    ///
    /// Distribution failures surface as `"fetch"`-stage
    /// [`PipelineError::Distrib`] errors carrying the per-replica attempt
    /// trace; a successful run reports how its media arrived in
    /// [`PipelineRun::fetch`], so a caller can tell a clean run from one
    /// that survived cluster weather.
    pub fn run_distributed(
        &self,
        cluster: &cmif_distrib::DistributedStore,
        host: &str,
        name: &str,
    ) -> Result<PipelineRun> {
        let doc = cluster
            .fetch_document(host, name)
            .map_err(PipelineError::from)?;
        let keys: BTreeSet<cmif_core::Symbol> = cmif_distrib::referenced_keys(&doc, None)
            .into_iter()
            .collect();
        let fetch = cluster
            .fetch_blocks_for_traced(host, &keys)
            .map_err(PipelineError::from)?;
        let store = cluster.local_store(host).map_err(PipelineError::from)?;
        let mut run = self.run(&doc, store)?;
        run.fetch = Some(fetch);
        Ok(run)
    }
}

/// Convenience for self-contained documents (descriptors embedded in the
/// document's catalog, no block store): runs stages 2, 3 and 5a only.
pub fn run_structure_only(
    doc: &Document,
    resolver: &dyn DescriptorResolver,
    options: &ScheduleOptions,
) -> Result<(PresentationMap, SolveResult)> {
    let report = Linter::new()
        .with_options(*options)
        .check_resolved(doc, resolver);
    if report.has_deny() {
        return Err(PipelineError::Lint {
            stage: "structure",
            diagnostics: report.into_diagnostics(),
        });
    }
    let presentation = map_presentation(doc)?;
    let solve_result = ConstraintGraph::derive(doc, resolver, options)?.solve(doc, resolver)?;
    Ok((presentation, solve_result))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::capture::{CaptureRequest, CaptureTool};
    use cmif_core::prelude::*;

    fn build_fixture() -> (Document, BlockStore) {
        let store = BlockStore::new();
        let mut tool = CaptureTool::new(&store, 31);
        tool.capture(&CaptureRequest::audio("speech", 4_000))
            .unwrap();
        tool.capture(&CaptureRequest::video("film", 4_000, (320, 240), 24))
            .unwrap();
        tool.capture(&CaptureRequest::image("map", (256, 192), 24))
            .unwrap();
        let catalog = store.export_catalog();
        let mut builder = DocumentBuilder::new("news")
            .channel("audio", MediaKind::Audio)
            .channel("video", MediaKind::Video)
            .channel("graphic", MediaKind::Image)
            .channel("caption", MediaKind::Text);
        for descriptor in catalog.iter() {
            builder = builder.descriptor(descriptor.clone());
        }
        let doc = builder
            .root_par(|story| {
                story.ext("voice", "audio", "speech");
                story.ext("film", "video", "film");
                story.ext_with("map", "graphic", "map", |n| {
                    n.duration_ms(4_000);
                });
                story.imm_text("line", "caption", "Paintings worth ten million", 4_000);
            })
            .build()
            .unwrap();
        (doc, store)
    }

    #[test]
    fn full_pipeline_on_a_workstation_is_presentable() {
        let (doc, store) = build_fixture();
        let run = PipelineBuilder::new(DeviceProfile::workstation())
            .run(&doc, &store)
            .unwrap();
        assert!(run.is_presentable(), "conflicts: {}", run.conflicts);
        assert!(run.filter_plan.is_identity());
        assert_eq!(run.presentation.len(), 4);
        assert!(run.table_of_contents.contains("par news"));
        assert!(!run.storyboard.is_empty());
        let playback = run.playback.as_ref().unwrap();
        assert_eq!(playback.must_violations, 0);
        assert_eq!(run.solve.schedule.total_duration, TimeMs::from_secs(4));
        assert!(run.timings.total() > Duration::ZERO);
    }

    #[test]
    fn audio_kiosk_run_reports_device_conflicts_but_still_plans() {
        let (doc, store) = build_fixture();
        let run = PipelineBuilder::new(DeviceProfile::audio_kiosk())
            .run(&doc, &store)
            .unwrap();
        assert!(!run.is_presentable());
        assert!(!run.conflicts.of_class(2).is_empty());
        assert!(run
            .filter_plan
            .dropped_channels
            .contains(&cmif_core::Symbol::intern("video")));
        // The storyboard still renders, marking dropped channels.
        let text = crate::viewer::render_storyboard(&run.storyboard);
        assert!(text.contains("[dropped on this device]"));
    }

    #[test]
    fn materializing_filters_makes_the_low_end_pc_presentable() {
        let (doc, store) = build_fixture();
        let run = PipelineBuilder::new(DeviceProfile::low_end_pc())
            .materialize_filters(true)
            .run(&doc, &store)
            .unwrap();
        assert!(
            run.conflicts.of_class(2).is_empty(),
            "device conflicts remain: {}",
            run.conflicts
        );
        // The store now holds the degraded media.
        assert_eq!(store.descriptor("film").unwrap().color_depth, Some(8));
    }

    #[test]
    fn playback_can_be_disabled() {
        let (doc, store) = build_fixture();
        let run = PipelineBuilder::new(DeviceProfile::workstation())
            .playback_runs(0)
            .run(&doc, &store)
            .unwrap();
        assert!(run.playback.is_none());
    }

    #[test]
    fn run_shared_matches_run() {
        let (doc, store) = build_fixture();
        let builder =
            PipelineBuilder::new(DeviceProfile::workstation()).jitter(JitterModel::uniform(70, 5));
        let borrowed = builder.run(&doc, &store).unwrap();
        // Same builder (shared engine), shared tree: identical results.
        let shared = builder.run_shared(Arc::new(doc), &store).unwrap();
        assert_eq!(borrowed.playback, shared.playback);
        assert_eq!(borrowed.solve, shared.solve);
        assert_eq!(borrowed.table_of_contents, shared.table_of_contents);
    }

    #[test]
    fn bounded_playback_with_enough_budget_succeeds() {
        let (doc, store) = build_fixture();
        let run = PipelineBuilder::new(DeviceProfile::workstation())
            .playback_runs(3)
            .playback_workers(2)
            .playback_backlog(Some(16))
            .run(&doc, &store)
            .unwrap();
        assert!(run.playback.is_some());
        assert_eq!(run.playback.unwrap().must_violations, 0);
    }

    #[test]
    fn saturated_playback_backlog_surfaces_stage_tagged_backpressure() {
        // One worker, a single queue slot, 64 runs: each job plays a full
        // session (submissions carry the stage-5a solve, so no derive —
        // but sampling, ticking and report assembly are still microseconds
        // of work) while an admission is a queue push (nanoseconds). The
        // producer laps the worker long before 64 admissions, so the
        // non-blocking stage hits the bound.
        let (doc, store) = build_fixture();
        let err = PipelineBuilder::new(DeviceProfile::workstation())
            .playback_runs(64)
            .playback_workers(1)
            .playback_backlog(Some(1))
            .run(&doc, &store)
            .unwrap_err();
        assert_eq!(err.stage(), "playback");
        assert!(matches!(
            err,
            crate::error::PipelineError::Scheduler {
                source: cmif_scheduler::SchedulerError::Backpressure { .. },
                ..
            }
        ));
    }

    #[test]
    fn bounded_playback_report_matches_the_unbounded_one() {
        // Admission control must not change what plays: same seed, same
        // report, whether stage 5c ran unbounded or squeezed through a
        // bounded single-worker engine.
        let (doc, store) = build_fixture();
        let unbounded = PipelineBuilder::new(DeviceProfile::workstation())
            .jitter(JitterModel::uniform(120, 9))
            .playback_runs(2)
            .run(&doc, &store)
            .unwrap();
        let bounded = PipelineBuilder::new(DeviceProfile::workstation())
            .jitter(JitterModel::uniform(120, 9))
            .playback_runs(2)
            .playback_backlog(Some(64))
            .run(&doc, &store)
            .unwrap();
        assert_eq!(unbounded.playback, bounded.playback);
    }

    #[test]
    fn live_playback_accepts_edits_and_reports_their_outcomes() {
        use cmif_core::edit::NodeSpec;
        use cmif_scheduler::JobHook;
        use std::sync::Barrier;

        let (doc, store) = build_fixture();
        let root = doc.root().unwrap();
        // Park the job at its start behind a barrier: the edit below is
        // guaranteed to arrive while the presentation is still live.
        let gate = Arc::new(Barrier::new(2));
        let parked = Arc::clone(&gate);
        let builder = PipelineBuilder::new(DeviceProfile::workstation()).playback_hook(
            JobHook::new(move |_| {
                parked.wait();
            }),
        );
        let id = builder.play_running(doc, &store).unwrap();
        builder
            .edit_running(
                id,
                Edit::InsertSubtree {
                    parent: root,
                    spec: NodeSpec::imm_text("coda", "breaking update")
                        .on_channel("caption")
                        .lasting_ms(6_000),
                },
            )
            .unwrap();
        gate.wait(); // release the job: the edit folds in before playback

        let outcome = builder.wait_running(id).unwrap();
        let report = outcome.result.expect("edited run still plays");
        assert_eq!(report.total_duration, TimeMs::from_secs(6));
        assert!(report
            .events
            .iter()
            .any(|e| e.name == cmif_core::Symbol::intern("coda")));
        assert_eq!(outcome.edits.len(), 1);
        assert!(outcome.edits[0].result.is_ok(), "{:?}", outcome.edits[0]);

        // A completed presentation no longer accepts edits…
        let err = builder
            .edit_running(id, Edit::RemoveSubtree { node: root })
            .unwrap_err();
        assert_eq!(err.stage(), "edit");
        // …and a builder that never played anything refuses outright.
        let idle = PipelineBuilder::new(DeviceProfile::workstation());
        let err = idle
            .edit_running(id, Edit::RemoveSubtree { node: root })
            .unwrap_err();
        assert_eq!(err.stage(), "edit");
        assert!(matches!(
            err,
            PipelineError::Scheduler {
                source: SchedulerError::EditRejected { .. },
                ..
            }
        ));
    }

    #[test]
    fn play_running_lints_before_admitting() {
        let (mut doc, store) = build_fixture();
        let root = doc.root().unwrap();
        let orphan = doc.add_ext(root).unwrap();
        doc.set_attr(orphan, AttrName::Channel, AttrValue::Id("audio".into()))
            .unwrap();
        let err = PipelineBuilder::new(DeviceProfile::workstation())
            .play_running(doc, &store)
            .unwrap_err();
        assert_eq!(err.stage(), "structure");
        assert!(matches!(err, PipelineError::Lint { .. }));
    }

    #[test]
    fn invalid_documents_are_rejected_at_stage_two() {
        let (mut doc, store) = build_fixture();
        let root = doc.root().unwrap();
        let orphan = doc.add_ext(root).unwrap();
        doc.set_attr(orphan, AttrName::Channel, AttrValue::Id("audio".into()))
            .unwrap();
        // No file attribute: stage 2 static analysis must refuse the run,
        // reporting the missing file as a deny-severity L007 diagnostic.
        let err = PipelineBuilder::new(DeviceProfile::workstation())
            .run(&doc, &store)
            .unwrap_err();
        assert_eq!(err.stage(), "structure");
        match err {
            crate::error::PipelineError::Lint { diagnostics, .. } => {
                assert!(diagnostics
                    .iter()
                    .any(|d| d.code == cmif_core::diag::codes::MISSING_FILE && d.is_deny()));
            }
            other => panic!("expected a lint refusal, got {other:?}"),
        }
    }

    #[test]
    fn stage_two_warnings_ride_along_without_refusing_the_run() {
        // Double-book the caption channel: the registry grades L203 as a
        // warning, so the run goes ahead and carries the finding.
        let (mut doc, store) = build_fixture();
        let root = doc.root().unwrap();
        let extra = doc.add_imm_text(root, "worth even more").unwrap();
        doc.set_attr(extra, AttrName::Name, AttrValue::Id("subtitle".into()))
            .unwrap();
        doc.set_attr(extra, AttrName::Channel, AttrValue::Id("caption".into()))
            .unwrap();
        doc.set_attr(extra, AttrName::Duration, AttrValue::Number(4_000))
            .unwrap();
        let run = PipelineBuilder::new(DeviceProfile::workstation())
            .run(&doc, &store)
            .unwrap();
        assert!(run
            .diagnostics
            .iter()
            .any(|d| d.code == cmif_core::diag::codes::CHANNEL_DOUBLE_BOOKING && !d.is_deny()));
    }

    #[test]
    fn a_configured_linter_can_wave_a_refusal_through() {
        // Allowing L007 at the pipeline level lets the same document run:
        // downstream stages tolerate a file-less ext (the scheduler gives
        // it a default duration), so the lint gate really is the only
        // thing standing between this document and a schedule.
        let (mut doc, store) = build_fixture();
        let root = doc.root().unwrap();
        let orphan = doc.add_ext(root).unwrap();
        doc.set_attr(orphan, AttrName::Channel, AttrValue::Id("audio".into()))
            .unwrap();
        let waved = Linter::new().with_config(
            cmif_core::diag::SeverityConfig::new().allow(cmif_core::diag::codes::MISSING_FILE),
        );
        let run = PipelineBuilder::new(DeviceProfile::workstation())
            .lint(waved)
            .run(&doc, &store)
            .unwrap();
        // The allowed code is dropped from the report entirely; what
        // remains is the warn-severity double-booking the orphan causes.
        assert!(run
            .diagnostics
            .iter()
            .all(|d| d.code != cmif_core::diag::codes::MISSING_FILE));
        assert!(run
            .diagnostics
            .iter()
            .any(|d| d.code == cmif_core::diag::codes::CHANNEL_DOUBLE_BOOKING));
    }

    #[test]
    fn wire_bytes_run_the_pipeline_in_either_encoding() {
        let (doc, store) = build_fixture();
        let builder = PipelineBuilder::new(DeviceProfile::workstation());
        let direct = builder.run(&doc, &store).unwrap();
        for encoding in [
            cmif_format::WireEncoding::Binary,
            cmif_format::WireEncoding::Text,
        ] {
            let bytes = cmif_format::document_to_bytes(&doc, encoding).unwrap();
            let run = builder.run_wire(&bytes, &store).unwrap();
            assert!(run.is_presentable(), "conflicts: {}", run.conflicts);
            assert_eq!(run.solve.schedule, direct.solve.schedule);
            assert_eq!(run.table_of_contents, direct.table_of_contents);
        }
    }

    #[test]
    fn undecodable_wire_bytes_fail_in_the_ingest_stage() {
        let (doc, store) = build_fixture();
        let builder = PipelineBuilder::new(DeviceProfile::workstation());
        let mut bytes =
            cmif_format::document_to_bytes(&doc, cmif_format::WireEncoding::Binary).unwrap();
        bytes.truncate(bytes.len() / 2);
        let err = builder.run_wire(&bytes, &store).unwrap_err();
        assert_eq!(err.stage(), "ingest");
        assert!(matches!(err, PipelineError::Format { .. }));
        assert!(builder.run_wire(b"not a document", &store).is_err());
    }

    fn build_cluster() -> (cmif_distrib::DistributedStore, Document) {
        use cmif_distrib::network::{Link, Network};
        let cluster = cmif_distrib::DistributedStore::with_replication(
            Network::uniform(&["server", "desk", "mirror"], Link::lan()),
            2,
        )
        .unwrap();
        let mut generator = cmif_media::MediaGenerator::new(17);
        for block in [
            generator.audio("speech", 4_000, 8_000),
            generator.video("film", 4_000, 160, 120, 24.0, 24),
        ] {
            let descriptor = block.describe();
            cluster.put_block("server", block, descriptor).unwrap();
        }
        let doc = cluster
            .with_local_store("server", |local| {
                let catalog = local.export_catalog();
                let mut builder = DocumentBuilder::new("news")
                    .channel("audio", MediaKind::Audio)
                    .channel("video", MediaKind::Video);
                for descriptor in catalog.iter() {
                    builder = builder.descriptor(descriptor.clone());
                }
                builder
                    .root_par(|story| {
                        story.ext("voice", "audio", "speech");
                        story.ext("shot", "video", "film");
                    })
                    .build()
                    .unwrap()
            })
            .unwrap();
        cluster.publish_document("server", "news", &doc).unwrap();
        (cluster, doc)
    }

    #[test]
    fn run_distributed_fetches_media_and_reports_how_it_arrived() {
        let (cluster, _doc) = build_cluster();
        let builder = PipelineBuilder::new(DeviceProfile::workstation());
        let run = builder.run_distributed(&cluster, "desk", "news").unwrap();
        assert!(run.is_presentable(), "conflicts: {}", run.conflicts);
        let fetch = run.fetch.as_ref().unwrap();
        assert_eq!(fetch.requested, 2);
        assert!(fetch.fetched + fetch.local_hits == 2);
        assert_eq!(fetch.degraded, 0, "healthy cluster, no degraded fetches");
        // Second run on the same host: everything is local now.
        let again = builder.run_distributed(&cluster, "desk", "news").unwrap();
        let fetch = again.fetch.as_ref().unwrap();
        assert_eq!(fetch.local_hits, 2);
        assert_eq!(fetch.fetched, 0);
        assert_eq!(fetch.simulated_ms, 0);
    }

    #[test]
    fn run_distributed_survives_a_down_holder_and_reports_degradation() {
        let (cluster, _doc) = build_cluster();
        // Kill the publisher; RF 2 means a replica of every block and of
        // the document structure survives elsewhere.
        cluster.mark_down("server").unwrap();
        let run = PipelineBuilder::new(DeviceProfile::workstation())
            .run_distributed(&cluster, "desk", "news")
            .unwrap();
        assert!(run.is_presentable(), "conflicts: {}", run.conflicts);
        let fetch = run.fetch.as_ref().unwrap();
        assert_eq!(fetch.fetched + fetch.local_hits, 2, "nothing lost");
    }

    #[test]
    fn distributed_failures_surface_in_the_fetch_stage() {
        let (cluster, _doc) = build_cluster();
        let builder = PipelineBuilder::new(DeviceProfile::workstation());
        let err = builder
            .run_distributed(&cluster, "desk", "no-such-doc")
            .unwrap_err();
        assert_eq!(err.stage(), "fetch");
        assert!(matches!(err, PipelineError::Distrib { .. }));
        let err = builder
            .run_distributed(&cluster, "no-such-host", "news")
            .unwrap_err();
        assert_eq!(err.stage(), "fetch");
    }

    #[test]
    fn structure_only_run_needs_no_store() {
        let (doc, _store) = build_fixture();
        let (presentation, solve_result) =
            run_structure_only(&doc, &doc.catalog, &ScheduleOptions::default()).unwrap();
        assert_eq!(presentation.len(), 4);
        assert_eq!(solve_result.schedule.total_duration, TimeMs::from_secs(4));
    }
}
