//! The presentation mapping tool (pipeline stage 3).
//!
//! "this tool allows portions of a document to be allocated to a virtual
//! presentation environment. This tool is used to allocate virtual
//! presentation 'real estate' (such as areas on a display or channels of a
//! loudspeaker) to a given multimedia document. […] this tool manipulates
//! the definitions provided in the CMIF document and creates a presentation
//! map that can be manipulated separately from the document itself." (§2)
//!
//! The virtual presentation environment is a fixed 1000×1000 coordinate
//! space plus a set of loudspeaker slots. [`map_presentation`] assigns every
//! channel of a document a [`Placement`] in that space, using channel
//! preference hints when present and sensible defaults (main video area,
//! graphics sidebar, caption strip, label banner) otherwise. The result is a
//! [`PresentationMap`] that later stages (constraint filters, viewers) can
//! edit without touching the document.

use std::collections::BTreeMap;
use std::fmt;

use crate::error::Result;
use cmif_core::channel::MediaKind;
use cmif_core::symbol::Symbol;
use cmif_core::tree::Document;

/// Width and height of the virtual display, in virtual units.
pub const VIRTUAL_EXTENT: u32 = 1000;

/// A rectangle in the virtual coordinate space.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VirtualRegion {
    /// Left edge.
    pub x: u32,
    /// Top edge.
    pub y: u32,
    /// Width.
    pub width: u32,
    /// Height.
    pub height: u32,
}

impl VirtualRegion {
    /// The whole virtual display.
    pub const FULL: VirtualRegion = VirtualRegion {
        x: 0,
        y: 0,
        width: VIRTUAL_EXTENT,
        height: VIRTUAL_EXTENT,
    };

    /// Area of the region in virtual units squared.
    pub fn area(&self) -> u64 {
        self.width as u64 * self.height as u64
    }

    /// True when two regions overlap.
    pub fn overlaps(&self, other: &VirtualRegion) -> bool {
        self.x < other.x + other.width
            && other.x < self.x + self.width
            && self.y < other.y + other.height
            && other.y < self.y + self.height
    }

    /// Scales the region onto a physical display of the given size.
    pub fn scaled_to(&self, display_width: u32, display_height: u32) -> (u32, u32, u32, u32) {
        let sx = |v: u32| (v as u64 * display_width as u64 / VIRTUAL_EXTENT as u64) as u32;
        let sy = |v: u32| (v as u64 * display_height as u64 / VIRTUAL_EXTENT as u64) as u32;
        (
            sx(self.x),
            sy(self.y),
            sx(self.width).max(1),
            sy(self.height).max(1),
        )
    }
}

impl fmt::Display for VirtualRegion {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({},{}) {}x{}", self.x, self.y, self.width, self.height)
    }
}

/// Where one channel is presented in the virtual environment.
#[derive(Debug, Clone, PartialEq)]
pub enum Placement {
    /// A rectangular region of the virtual display.
    Screen(VirtualRegion),
    /// A loudspeaker slot (0 = left, 1 = right, …).
    Speaker {
        /// The speaker index.
        slot: u32,
    },
}

impl Placement {
    /// The screen region, when this is a screen placement.
    pub fn region(&self) -> Option<VirtualRegion> {
        match self {
            Placement::Screen(region) => Some(*region),
            Placement::Speaker { .. } => None,
        }
    }
}

/// The presentation map: interned channel name → placement, plus
/// bookkeeping.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct PresentationMap {
    placements: BTreeMap<Symbol, Placement>,
}

impl PresentationMap {
    /// Creates an empty map.
    pub fn new() -> PresentationMap {
        PresentationMap::default()
    }

    /// Number of mapped channels.
    pub fn len(&self) -> usize {
        self.placements.len()
    }

    /// True when no channel is mapped.
    pub fn is_empty(&self) -> bool {
        self.placements.is_empty()
    }

    /// Assigns (or reassigns) a channel's placement — the "manipulated
    /// separately from the document" part.
    pub fn assign(&mut self, channel: impl Into<Symbol>, placement: Placement) {
        self.placements.insert(channel.into(), placement);
    }

    /// The placement of a channel by textual name. Never interns, so
    /// unknown channels miss without growing the pool.
    pub fn placement(&self, channel: &str) -> Option<&Placement> {
        self.placements.get(&Symbol::lookup(channel)?)
    }

    /// The placement of a channel by interned name.
    pub fn placement_symbol(&self, channel: Symbol) -> Option<&Placement> {
        self.placements.get(&channel)
    }

    /// Iterates over `(channel, placement)` pairs in intern order (stable
    /// within a process; sort by `Symbol::as_str` for listings).
    pub fn iter(&self) -> impl Iterator<Item = (Symbol, &Placement)> {
        self.placements.iter().map(|(name, p)| (*name, p))
    }

    /// Screen regions that overlap each other (a layout problem a
    /// presentation editor would flag).
    pub fn overlapping_regions(&self) -> Vec<(Symbol, Symbol)> {
        let mut screens: Vec<(Symbol, VirtualRegion)> = self
            .placements
            .iter()
            .filter_map(|(name, p)| p.region().map(|r| (*name, r)))
            .collect();
        // Pair channels in name order so reports are deterministic
        // regardless of intern order.
        screens.sort_by_key(|(name, _)| name.as_str());
        let mut out = Vec::new();
        for (i, (name_a, region_a)) in screens.iter().enumerate() {
            for (name_b, region_b) in screens.iter().skip(i + 1) {
                if region_a.overlaps(region_b) {
                    out.push((*name_a, *name_b));
                }
            }
        }
        out
    }

    /// Fraction of the virtual display covered by screen placements
    /// (ignoring overlap).
    pub fn coverage(&self) -> f64 {
        let covered: u64 = self
            .placements
            .values()
            .filter_map(Placement::region)
            .map(|r| r.area())
            .sum();
        covered as f64 / (VIRTUAL_EXTENT as u64 * VIRTUAL_EXTENT as u64) as f64
    }
}

/// Builds a presentation map for every channel of a document.
///
/// Channel definitions may carry preference hints (`region` = `main`,
/// `side`, `bottom`, `top`, or an explicit `(x y w h)` list; `speaker` =
/// slot number). Channels without hints get defaults by medium:
///
/// * video → the main area (left ~70%, upper ~75%);
/// * image/graphic → the right sidebar;
/// * text/caption → the bottom strip;
/// * label → the top banner;
/// * audio → successive loudspeaker slots.
pub fn map_presentation(doc: &Document) -> Result<PresentationMap> {
    let mut map = PresentationMap::new();
    let mut next_speaker = 0u32;
    for channel in doc.channels.iter() {
        // Explicit speaker hint.
        if let Some(slot) = channel.extra_attr("speaker").and_then(|v| v.as_number()) {
            map.assign(channel.name, Placement::Speaker { slot: slot as u32 });
            continue;
        }
        // Explicit region hint.
        if let Some(region) = channel.extra_attr("region") {
            if let Some(list) = region.as_list() {
                if list.len() == 4 {
                    let coordinates: Vec<u32> = list
                        .iter()
                        .filter_map(|v| v.as_number())
                        .map(|n| n.clamp(0, VIRTUAL_EXTENT as i64) as u32)
                        .collect();
                    if coordinates.len() == 4 {
                        map.assign(
                            channel.name,
                            Placement::Screen(VirtualRegion {
                                x: coordinates[0],
                                y: coordinates[1],
                                width: coordinates[2],
                                height: coordinates[3],
                            }),
                        );
                        continue;
                    }
                }
            }
            if let Some(name) = region.as_text() {
                map.assign(channel.name, Placement::Screen(named_region(name)));
                continue;
            }
        }
        // Defaults by medium.
        let placement = match channel.medium {
            MediaKind::Audio => {
                let slot = next_speaker;
                next_speaker += 1;
                Placement::Speaker { slot }
            }
            MediaKind::Video => Placement::Screen(named_region("main")),
            MediaKind::Image | MediaKind::Generator => Placement::Screen(named_region("side")),
            MediaKind::Text => Placement::Screen(named_region("bottom")),
            MediaKind::Label => Placement::Screen(named_region("top")),
        };
        map.assign(channel.name, placement);
    }
    Ok(map)
}

/// The named standard regions of the default layout.
fn named_region(name: &str) -> VirtualRegion {
    match name {
        "main" => VirtualRegion {
            x: 0,
            y: 100,
            width: 700,
            height: 650,
        },
        "side" => VirtualRegion {
            x: 700,
            y: 100,
            width: 300,
            height: 650,
        },
        "bottom" => VirtualRegion {
            x: 0,
            y: 750,
            width: 1000,
            height: 250,
        },
        "top" => VirtualRegion {
            x: 0,
            y: 0,
            width: 1000,
            height: 100,
        },
        _ => VirtualRegion::FULL,
    }
}

/// Renders the presentation map as text (for viewers and EXPERIMENTS.md).
pub fn render_map(map: &PresentationMap) -> String {
    let mut out = String::new();
    let mut entries: Vec<(Symbol, &Placement)> = map.iter().collect();
    entries.sort_by_key(|(channel, _)| channel.as_str());
    for (channel, placement) in entries {
        match placement {
            Placement::Screen(region) => {
                out.push_str(&format!("{channel:<12} screen {region}\n"));
            }
            Placement::Speaker { slot } => {
                out.push_str(&format!("{channel:<12} speaker slot {slot}\n"));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use cmif_core::prelude::*;

    fn news_doc() -> Document {
        DocumentBuilder::new("news")
            .channel("audio", MediaKind::Audio)
            .channel("video", MediaKind::Video)
            .channel("graphic", MediaKind::Image)
            .channel("caption", MediaKind::Text)
            .channel("label", MediaKind::Label)
            .root_par(|root| {
                root.imm_text("placeholder", "caption", "x", 1000);
            })
            .build()
            .unwrap()
    }

    #[test]
    fn default_layout_covers_the_standard_regions() {
        let doc = news_doc();
        let map = map_presentation(&doc).unwrap();
        assert_eq!(map.len(), 5);
        assert!(matches!(
            map.placement("audio"),
            Some(Placement::Speaker { slot: 0 })
        ));
        let video = map.placement("video").unwrap().region().unwrap();
        let graphic = map.placement("graphic").unwrap().region().unwrap();
        let caption = map.placement("caption").unwrap().region().unwrap();
        let label = map.placement("label").unwrap().region().unwrap();
        assert!(video.area() > graphic.area());
        assert!(!video.overlaps(&graphic));
        assert!(!video.overlaps(&caption));
        assert!(!caption.overlaps(&label));
        assert!(map.overlapping_regions().is_empty());
        assert!(map.coverage() > 0.9);
    }

    #[test]
    fn explicit_region_hints_win() {
        let doc = DocumentBuilder::new("hints")
            .channel_def(ChannelDef::new("video", MediaKind::Video).with_extra(
                "region",
                AttrValue::list([
                    AttrValue::Number(10),
                    AttrValue::Number(20),
                    AttrValue::Number(300),
                    AttrValue::Number(200),
                ]),
            ))
            .channel_def(
                ChannelDef::new("narration", MediaKind::Audio)
                    .with_extra("speaker", AttrValue::Number(3)),
            )
            .channel_def(
                ChannelDef::new("titles", MediaKind::Label)
                    .with_extra("region", AttrValue::Id("bottom".into())),
            )
            .root_par(|root| {
                root.imm_text("x", "titles", "t", 500);
            })
            .build()
            .unwrap();
        let map = map_presentation(&doc).unwrap();
        assert_eq!(
            map.placement("video").unwrap().region().unwrap(),
            VirtualRegion {
                x: 10,
                y: 20,
                width: 300,
                height: 200
            }
        );
        assert!(matches!(
            map.placement("narration"),
            Some(Placement::Speaker { slot: 3 })
        ));
        assert_eq!(
            map.placement("titles").unwrap().region().unwrap(),
            named_region("bottom")
        );
    }

    #[test]
    fn two_audio_channels_get_distinct_speakers() {
        let doc = DocumentBuilder::new("stereo")
            .channel("audio-left", MediaKind::Audio)
            .channel("audio-right", MediaKind::Audio)
            .root_par(|root| {
                root.imm_text("x", "audio-left", "x", 100);
            })
            .build_unchecked()
            .unwrap();
        let map = map_presentation(&doc).unwrap();
        let left = match map.placement("audio-left").unwrap() {
            Placement::Speaker { slot } => *slot,
            other => panic!("unexpected placement {other:?}"),
        };
        let right = match map.placement("audio-right").unwrap() {
            Placement::Speaker { slot } => *slot,
            other => panic!("unexpected placement {other:?}"),
        };
        assert_ne!(left, right);
    }

    #[test]
    fn map_is_editable_independently_of_the_document() {
        let doc = news_doc();
        let mut map = map_presentation(&doc).unwrap();
        map.assign(
            "graphic",
            Placement::Screen(VirtualRegion {
                x: 0,
                y: 0,
                width: 100,
                height: 100,
            }),
        );
        assert_eq!(
            map.placement("graphic").unwrap().region().unwrap().width,
            100
        );
        // The document itself is untouched.
        assert_eq!(doc.channels.get("graphic").unwrap().extra.len(), 0);
    }

    #[test]
    fn overlap_detection_reports_pairs() {
        let mut map = PresentationMap::new();
        map.assign(
            "a",
            Placement::Screen(VirtualRegion {
                x: 0,
                y: 0,
                width: 500,
                height: 500,
            }),
        );
        map.assign(
            "b",
            Placement::Screen(VirtualRegion {
                x: 250,
                y: 250,
                width: 500,
                height: 500,
            }),
        );
        map.assign("c", Placement::Speaker { slot: 0 });
        let overlaps = map.overlapping_regions();
        assert_eq!(overlaps.len(), 1);
        assert_eq!(overlaps[0], (Symbol::intern("a"), Symbol::intern("b")));
    }

    #[test]
    fn regions_scale_to_physical_displays() {
        let region = VirtualRegion {
            x: 0,
            y: 750,
            width: 1000,
            height: 250,
        };
        assert_eq!(region.scaled_to(640, 480), (0, 360, 640, 120));
        let tiny = VirtualRegion {
            x: 0,
            y: 0,
            width: 1,
            height: 1,
        };
        let scaled = tiny.scaled_to(320, 200);
        assert!(scaled.2 >= 1 && scaled.3 >= 1);
    }

    #[test]
    fn render_map_lists_every_channel() {
        let doc = news_doc();
        let map = map_presentation(&doc).unwrap();
        let text = render_map(&map);
        assert_eq!(text.lines().count(), 5);
        assert!(text.contains("speaker slot"));
        assert!(text.contains("screen"));
    }
}
