//! # cmif-pipeline — the CWI/Multimedia Pipeline
//!
//! The stages of Figure 1 of the paper, built around the CMIF document
//! format:
//!
//! * [`capture`] — media block capture tools (stage 1), synthesizing media
//!   into a block store and compiling data descriptors;
//! * the document structure mapping tool (stage 2) is the `cmif-core`
//!   builder plus validation — the pipeline consumes its output;
//! * [`presentation`] — the presentation mapping tool (stage 3): allocate
//!   virtual presentation real estate (screen regions, loudspeaker slots)
//!   per channel, editable separately from the document;
//! * [`constraint`] — constraint filtering tools (stage 4): device profiles,
//!   per-block degradation plans, and their application to stored media;
//! * [`viewer`] — viewing and reading tools (stage 5): table of contents and
//!   storyboard renderings;
//! * [`pipeline`] — end-to-end orchestration with per-stage timings, the
//!   artifact the Figure 1 benchmark measures.
//!
//! ```
//! use cmif_core::prelude::*;
//! use cmif_media::store::BlockStore;
//! use cmif_pipeline::capture::{CaptureRequest, CaptureTool};
//! use cmif_pipeline::constraint::DeviceProfile;
//! use cmif_pipeline::pipeline::PipelineBuilder;
//!
//! # fn main() -> std::result::Result<(), cmif_pipeline::PipelineError> {
//! let store = BlockStore::new();
//! let mut capture = CaptureTool::new(&store, 1);
//! capture.capture(&CaptureRequest::audio("speech", 3_000))?;
//!
//! let doc = DocumentBuilder::new("demo")
//!     .channel("audio", MediaKind::Audio)
//!     .root_seq(|root| {
//!         root.ext("voice", "audio", "speech");
//!     })
//!     .build()?;
//!
//! let run = PipelineBuilder::new(DeviceProfile::workstation()).run(&doc, &store)?;
//! assert!(run.is_presentable());
//! # Ok(()) }
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod capture;
pub mod constraint;
pub mod error;
pub mod pipeline;
pub mod presentation;
pub mod viewer;

pub use error::{PipelineError, Result};

pub use capture::{CaptureRequest, CaptureTool};
pub use constraint::{apply_plan, plan_filters, DeviceProfile, FilterAction, FilterPlan};
pub use pipeline::{
    run_structure_only, PipelineBuilder, PipelineOptions, PipelineRun, StageTimings,
};

pub use presentation::{map_presentation, render_map, Placement, PresentationMap, VirtualRegion};
pub use viewer::{render_storyboard, storyboard, table_of_contents, StoryboardFrame};
