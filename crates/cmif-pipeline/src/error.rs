//! Error types for the CWI/Multimedia Pipeline.
//!
//! A pipeline failure always happens inside a named stage (Figure 1:
//! capture, structure, presentation, filtering, scheduling, viewing,
//! playback). Every variant therefore carries the stage it surfaced in plus
//! the lower-layer error as a typed source, so a caller can both route on
//! the failing layer and report *where in the pipeline* the document broke.

use std::fmt;

use cmif_core::diag::Diagnostic;
use cmif_core::error::CoreError;
use cmif_distrib::DistribError;
use cmif_format::FormatError;
use cmif_media::MediaError;
use cmif_scheduler::SchedulerError;

/// Result alias used throughout `cmif-pipeline`.
pub type Result<T> = std::result::Result<T, PipelineError>;

/// Errors raised while running pipeline stages.
#[derive(Debug, Clone, PartialEq)]
pub enum PipelineError {
    /// A document-model error surfaced by a pipeline stage.
    Core {
        /// The pipeline stage that was running.
        stage: &'static str,
        /// The underlying document error.
        source: CoreError,
    },
    /// A media-store error surfaced by a pipeline stage.
    Media {
        /// The pipeline stage that was running.
        stage: &'static str,
        /// The underlying media error.
        source: MediaError,
    },
    /// A scheduling error surfaced by a pipeline stage.
    Scheduler {
        /// The pipeline stage that was running.
        stage: &'static str,
        /// The underlying scheduler error.
        source: SchedulerError,
    },
    /// A wire-decoding error surfaced by a pipeline stage (a document fed
    /// in as interchange bytes failed to decode). The inner error keeps
    /// the byte span / source position of the failure.
    Format {
        /// The pipeline stage that was running.
        stage: &'static str,
        /// The underlying interchange-format error.
        source: FormatError,
    },
    /// A distributed-store error surfaced by a pipeline stage (a document
    /// or media fetch over the cluster failed — host down, partition,
    /// retries exhausted). The inner error keeps the per-replica attempt
    /// trace when the fetch walked multiple replicas.
    Distrib {
        /// The pipeline stage that was running.
        stage: &'static str,
        /// The underlying distributed-store error.
        source: DistribError,
    },
    /// Static analysis refused the document: at least one deny-severity
    /// finding. Unlike the single [`CoreError`] the old stage-2 validator
    /// raised, this carries *every* collected diagnostic (warnings
    /// included), ready to render against the document's `SourceMap`.
    Lint {
        /// The pipeline stage that was running.
        stage: &'static str,
        /// Every diagnostic the lint run collected; at least one is deny.
        diagnostics: Vec<Diagnostic>,
    },
}

impl PipelineError {
    /// The pipeline stage the error surfaced in.
    pub fn stage(&self) -> &'static str {
        match self {
            PipelineError::Core { stage, .. }
            | PipelineError::Media { stage, .. }
            | PipelineError::Scheduler { stage, .. }
            | PipelineError::Format { stage, .. }
            | PipelineError::Distrib { stage, .. }
            | PipelineError::Lint { stage, .. } => stage,
        }
    }

    /// Re-attributes the error to `stage` (used by `run_pipeline` to tag
    /// errors with the stage that was executing when they surfaced).
    pub fn in_stage(self, stage: &'static str) -> PipelineError {
        match self {
            PipelineError::Core { source, .. } => PipelineError::Core { stage, source },
            PipelineError::Media { source, .. } => PipelineError::Media { stage, source },
            PipelineError::Scheduler { source, .. } => PipelineError::Scheduler { stage, source },
            PipelineError::Format { source, .. } => PipelineError::Format { stage, source },
            PipelineError::Distrib { source, .. } => PipelineError::Distrib { stage, source },
            PipelineError::Lint { diagnostics, .. } => PipelineError::Lint { stage, diagnostics },
        }
    }
}

impl fmt::Display for PipelineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PipelineError::Core { stage, source } => {
                write!(f, "pipeline stage `{stage}`: document error: {source}")
            }
            PipelineError::Media { stage, source } => {
                write!(f, "pipeline stage `{stage}`: media error: {source}")
            }
            PipelineError::Scheduler { stage, source } => {
                write!(f, "pipeline stage `{stage}`: scheduling error: {source}")
            }
            PipelineError::Format { stage, source } => {
                write!(f, "pipeline stage `{stage}`: wire format error: {source}")
            }
            PipelineError::Distrib { stage, source } => {
                write!(
                    f,
                    "pipeline stage `{stage}`: distributed store error: {source}"
                )
            }
            PipelineError::Lint { stage, diagnostics } => {
                let denies = diagnostics.iter().filter(|d| d.is_deny()).count();
                write!(
                    f,
                    "pipeline stage `{stage}`: static analysis refused the document: \
                     {denies} deny-severity finding(s) out of {} diagnostic(s)",
                    diagnostics.len()
                )?;
                if let Some(first) = diagnostics.iter().find(|d| d.is_deny()) {
                    write!(f, "; first: {first}")?;
                }
                Ok(())
            }
        }
    }
}

impl std::error::Error for PipelineError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PipelineError::Core { source, .. } => Some(source),
            PipelineError::Media { source, .. } => Some(source),
            PipelineError::Scheduler { source, .. } => Some(source),
            PipelineError::Format { source, .. } => Some(source),
            PipelineError::Distrib { source, .. } => Some(source),
            PipelineError::Lint { .. } => None,
        }
    }
}

impl From<CoreError> for PipelineError {
    fn from(source: CoreError) -> Self {
        PipelineError::Core {
            stage: "structure",
            source,
        }
    }
}

impl From<MediaError> for PipelineError {
    fn from(source: MediaError) -> Self {
        PipelineError::Media {
            stage: "media",
            source,
        }
    }
}

impl From<FormatError> for PipelineError {
    fn from(source: FormatError) -> Self {
        PipelineError::Format {
            stage: "ingest",
            source,
        }
    }
}

impl From<DistribError> for PipelineError {
    fn from(source: DistribError) -> Self {
        PipelineError::Distrib {
            stage: "fetch",
            source,
        }
    }
}

impl From<SchedulerError> for PipelineError {
    fn from(source: SchedulerError) -> Self {
        PipelineError::Scheduler {
            stage: "scheduling",
            source,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_tag_a_default_stage() {
        let err: PipelineError = CoreError::EmptyDocument.into();
        assert_eq!(err.stage(), "structure");
        let err = err.in_stage("viewing");
        assert_eq!(err.stage(), "viewing");
        assert!(err.to_string().contains("viewing"));
    }

    #[test]
    fn distrib_errors_default_to_the_fetch_stage() {
        let err: PipelineError = PipelineError::from(DistribError::HostDown { host: "d2".into() });
        assert_eq!(err.stage(), "fetch");
        assert!(err.to_string().contains("distributed store error"));
        assert!(err.to_string().contains("d2"));
        let err = err.in_stage("viewing");
        assert_eq!(err.stage(), "viewing");
    }

    #[test]
    fn sources_chain_to_the_originating_layer() {
        use std::error::Error;
        let err = PipelineError::from(MediaError::UnknownBlock { key: "film".into() })
            .in_stage("filtering");
        let source = err.source().expect("media source");
        assert!(source.to_string().contains("film"));
    }
}
