//! Document viewing and reading tools (pipeline stage 5).
//!
//! "These tools present a document (based on the document structure map, the
//! presentation map, and the local filter map) and provide a means for a
//! reader to 'view' or (possibly) edit a document. Note that the document
//! structure map provides a data-independent, position-independent and
//! system-independent view of the multimedia document being read, acting as
//! an internal table-of-contents function." (§2)
//!
//! Two textual renderings live here:
//!
//! * [`table_of_contents`] — the reading view: the document structure with
//!   per-node timing, exactly the "internal table-of-contents function";
//! * [`storyboard`] — the viewing view: what each channel shows at each
//!   moment, combining the schedule, the presentation map and the filter
//!   plan (dropped channels are marked rather than silently omitted).

use std::fmt::Write as _;

use crate::error::Result;
use cmif_core::descriptor::DescriptorResolver;
use cmif_core::node::NodeId;
use cmif_core::symbol::Symbol;
use cmif_core::time::TimeMs;
use cmif_core::tree::Document;
use cmif_scheduler::Schedule;

use crate::constraint::FilterPlan;
use crate::presentation::{Placement, PresentationMap};

/// Renders the reading view: an indented table of contents with node kinds,
/// names and scheduled times.
pub fn table_of_contents(doc: &Document, schedule: &Schedule) -> Result<String> {
    let mut out = String::new();
    let root = doc.root()?;
    render_toc(doc, schedule, root, 0, &mut out)?;
    Ok(out)
}

fn render_toc(
    doc: &Document,
    schedule: &Schedule,
    node: NodeId,
    depth: usize,
    out: &mut String,
) -> Result<()> {
    let indent = "  ".repeat(depth);
    let n = doc.node(node)?;
    let name = n.name().unwrap_or("(unnamed)");
    let timing = schedule
        .node_times
        .get(&node)
        .map(|(begin, end)| format!("{begin} .. {end}"))
        .unwrap_or_else(|| "unscheduled".to_string());
    let _ = writeln!(out, "{indent}{} {:<24} [{timing}]", n.kind.keyword(), name);
    for child in n.children.clone() {
        render_toc(doc, schedule, child, depth + 1, out)?;
    }
    Ok(())
}

/// One moment of the storyboard: what every channel is doing at `at`.
#[derive(Debug, Clone, PartialEq)]
pub struct StoryboardFrame {
    /// The instant described.
    pub at: TimeMs,
    /// `(channel, description)` pairs, one per channel with activity.
    pub lines: Vec<(Symbol, String)>,
}

/// Renders the viewing view: samples the schedule every `step_ms`
/// milliseconds and describes, for each channel, what is playing and where
/// it appears in the virtual presentation space.
pub fn storyboard(
    doc: &Document,
    schedule: &Schedule,
    presentation: &PresentationMap,
    filter: Option<&FilterPlan>,
    step_ms: i64,
    resolver: &dyn DescriptorResolver,
) -> Result<Vec<StoryboardFrame>> {
    let mut frames = Vec::new();
    let step = step_ms.max(1);
    let total = schedule.total_duration.as_millis();
    let mut at = 0i64;
    while at < total || (at == 0 && total == 0) {
        let instant = TimeMs::from_millis(at);
        let mut lines = Vec::new();
        for entry in schedule.active_at(instant) {
            let dropped = filter
                .map(|plan| plan.dropped_channels.contains(&entry.channel))
                .unwrap_or(false);
            let place = match presentation.placement_symbol(entry.channel) {
                Some(Placement::Screen(region)) => format!("screen {region}"),
                Some(Placement::Speaker { slot }) => format!("speaker {slot}"),
                None => "unplaced".to_string(),
            };
            let content = describe_content(doc, entry.node, resolver)?;
            let description = if dropped {
                format!("[dropped on this device] {content}")
            } else {
                format!("{place}: {content}")
            };
            lines.push((entry.channel, description));
        }
        lines.sort_by(|a, b| (a.0.as_str(), &a.1).cmp(&(b.0.as_str(), &b.1)));
        frames.push(StoryboardFrame { at: instant, lines });
        at += step;
        if total == 0 {
            break;
        }
    }
    Ok(frames)
}

/// Renders a storyboard as plain text.
pub fn render_storyboard(frames: &[StoryboardFrame]) -> String {
    let mut out = String::new();
    for frame in frames {
        let _ = writeln!(out, "t = {}", frame.at);
        if frame.lines.is_empty() {
            let _ = writeln!(out, "  (silence / empty screen)");
        }
        for (channel, description) in &frame.lines {
            let _ = writeln!(out, "  {channel:<10} {description}");
        }
    }
    out
}

fn describe_content(
    doc: &Document,
    node: NodeId,
    resolver: &dyn DescriptorResolver,
) -> Result<String> {
    let n = doc.node(node)?;
    let name = n.name().unwrap_or("(unnamed)");
    match &n.kind {
        cmif_core::node::NodeKind::Imm(data) => match data.as_text() {
            Some(text) => {
                let preview: String = text.chars().take(32).collect();
                Ok(format!("{name} \u{201c}{preview}\u{201d}"))
            }
            None => Ok(format!("{name} ({} inline bytes)", data.len())),
        },
        cmif_core::node::NodeKind::Ext => {
            let key = doc.file_of(node)?.unwrap_or_else(|| Symbol::intern("?"));
            match resolver.resolve_symbol(key) {
                Some(descriptor) => Ok(format!(
                    "{name} <{key}: {} {}>",
                    descriptor.format,
                    human_size(descriptor.size_bytes)
                )),
                None => Ok(format!("{name} <{key}>")),
            }
        }
        _ => Ok(name.to_string()),
    }
}

fn human_size(bytes: u64) -> String {
    if bytes >= 1_000_000 {
        format!("{:.1} MB", bytes as f64 / 1_000_000.0)
    } else if bytes >= 1_000 {
        format!("{:.1} kB", bytes as f64 / 1_000.0)
    } else {
        format!("{bytes} B")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::presentation::map_presentation;
    use cmif_core::prelude::*;
    use cmif_scheduler::{ConstraintGraph, ScheduleOptions};

    fn doc() -> Document {
        DocumentBuilder::new("news")
            .channel("audio", MediaKind::Audio)
            .channel("caption", MediaKind::Text)
            .descriptor(
                DataDescriptor::new("speech", MediaKind::Audio, "pcm8")
                    .with_size(48_000)
                    .with_duration(TimeMs::from_secs(6)),
            )
            .root_seq(|news| {
                news.par("story-1", |story| {
                    story.ext("voice", "audio", "speech");
                    story.imm_text("line-1", "caption", "Paintings stolen from museum", 3_000);
                });
            })
            .build()
            .unwrap()
    }

    #[test]
    fn table_of_contents_lists_structure_with_times() {
        let d = doc();
        let result = ConstraintGraph::derive(&d, &d.catalog, &ScheduleOptions::default())
            .unwrap()
            .solve(&d, &d.catalog)
            .unwrap();
        let toc = table_of_contents(&d, &result.schedule).unwrap();
        assert!(toc.contains("seq news"));
        assert!(toc.contains("par story-1"));
        assert!(toc.contains("ext voice"));
        assert!(toc.contains("imm line-1"));
        assert!(toc.contains("0s .. 6s"));
        assert_eq!(toc.lines().count(), 4);
    }

    #[test]
    fn storyboard_shows_active_events_and_placements() {
        let d = doc();
        let result = ConstraintGraph::derive(&d, &d.catalog, &ScheduleOptions::default())
            .unwrap()
            .solve(&d, &d.catalog)
            .unwrap();
        let map = map_presentation(&d).unwrap();
        let frames = storyboard(&d, &result.schedule, &map, None, 2_000, &d.catalog).unwrap();
        assert_eq!(frames.len(), 3); // t = 0, 2s, 4s over a 6 s document
                                     // At t=0 both the voice and the caption are active.
        assert_eq!(frames[0].lines.len(), 2);
        let text = render_storyboard(&frames);
        assert!(text.contains("speaker 0"));
        assert!(text.contains("Paintings stolen"));
        assert!(text.contains("48.0 kB"));
        // At t=4s only the voice remains.
        assert_eq!(frames[2].lines.len(), 1);
    }

    #[test]
    fn storyboard_marks_dropped_channels() {
        let d = doc();
        let result = ConstraintGraph::derive(&d, &d.catalog, &ScheduleOptions::default())
            .unwrap()
            .solve(&d, &d.catalog)
            .unwrap();
        let map = map_presentation(&d).unwrap();
        let plan = FilterPlan {
            dropped_channels: vec![Symbol::intern("caption")],
            ..FilterPlan::default()
        };
        let frames =
            storyboard(&d, &result.schedule, &map, Some(&plan), 3_000, &d.catalog).unwrap();
        let text = render_storyboard(&frames);
        assert!(text.contains("[dropped on this device]"));
    }

    #[test]
    fn empty_schedule_produces_a_single_silent_frame() {
        let d = DocumentBuilder::new("empty")
            .channel("caption", MediaKind::Text)
            .root_par(|root| {
                root.imm_text("x", "caption", "t", 0);
            })
            .build()
            .unwrap();
        let result = ConstraintGraph::derive(&d, &d.catalog, &ScheduleOptions::default())
            .unwrap()
            .solve(&d, &d.catalog)
            .unwrap();
        let map = map_presentation(&d).unwrap();
        let frames = storyboard(&d, &result.schedule, &map, None, 1_000, &d.catalog).unwrap();
        assert!(!frames.is_empty());
        let text = render_storyboard(&frames);
        assert!(text.contains("t = 0s"));
    }

    #[test]
    fn human_size_formats() {
        assert_eq!(human_size(12), "12 B");
        assert_eq!(human_size(2_300), "2.3 kB");
        assert_eq!(human_size(5_500_000), "5.5 MB");
    }
}
