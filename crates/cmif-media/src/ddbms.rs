//! The attribute-indexed descriptor database (the optional DDBMS of
//! Figure 2).
//!
//! "Note that a database management system may be used to locate and access
//! various data blocks based on the attributes in the data descriptors."
//! (§3.1) and "if the attributes contain search key information, then many
//! time consuming activities relating to finding detailed information in
//! large multimedia database may be simplified" (§6).
//!
//! [`DescriptorDb`] stores data descriptors and maintains inverted indexes
//! over their attributes so that queries touch descriptors only — never the
//! (simulated) media bytes. [`DescriptorDb::scan_blocks`] is the deliberately
//! naive alternative that pulls payloads from a [`BlockStore`] to answer the
//! same question; the Figure 2 benchmark compares the two.

use std::collections::{BTreeMap, BTreeSet};

use cmif_core::channel::MediaKind;
use cmif_core::descriptor::{DataDescriptor, DescriptorResolver};
use cmif_core::symbol::Symbol;
use cmif_core::time::TimeMs;

use crate::error::{MediaError, Result};
use crate::store::BlockStore;

/// A conjunctive query over descriptor attributes.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Query {
    /// Restrict to this medium.
    pub medium: Option<MediaKind>,
    /// Restrict to descriptors whose `extra` attributes contain all of these
    /// `(key, value-as-text)` pairs.
    pub attribute_equals: Vec<(String, String)>,
    /// Restrict to durations of at least this many milliseconds.
    pub min_duration_ms: Option<i64>,
    /// Restrict to durations of at most this many milliseconds.
    pub max_duration_ms: Option<i64>,
}

impl Query {
    /// An unconstrained query (matches everything).
    pub fn any() -> Query {
        Query::default()
    }

    /// Restricts the query to one medium.
    pub fn with_medium(mut self, medium: MediaKind) -> Query {
        self.medium = Some(medium);
        self
    }

    /// Adds an attribute-equality condition.
    pub fn with_attribute(mut self, key: impl Into<String>, value: impl Into<String>) -> Query {
        self.attribute_equals.push((key.into(), value.into()));
        self
    }

    /// Restricts to a duration range in milliseconds.
    pub fn with_duration_range(mut self, min_ms: Option<i64>, max_ms: Option<i64>) -> Query {
        self.min_duration_ms = min_ms;
        self.max_duration_ms = max_ms;
        self
    }

    /// Checks the query against one descriptor.
    pub fn matches(&self, descriptor: &DataDescriptor) -> bool {
        if let Some(medium) = self.medium {
            if descriptor.medium != medium {
                return false;
            }
        }
        for (key, value) in &self.attribute_equals {
            let matched = descriptor
                .extra_attr(key)
                .and_then(|v| v.as_text().map(|t| t == value))
                .unwrap_or(false);
            if !matched {
                return false;
            }
        }
        let duration_ms = descriptor.duration.map(TimeMs::as_millis);
        if let Some(min) = self.min_duration_ms {
            if duration_ms.map(|d| d < min).unwrap_or(true) {
                return false;
            }
        }
        if let Some(max) = self.max_duration_ms {
            if duration_ms.map(|d| d > max).unwrap_or(true) {
                return false;
            }
        }
        true
    }
}

/// The attribute-indexed descriptor database.
#[derive(Debug, Default)]
pub struct DescriptorDb {
    descriptors: BTreeMap<Symbol, DataDescriptor>,
    by_medium: BTreeMap<MediaKind, BTreeSet<Symbol>>,
    by_attribute: BTreeMap<(Symbol, String), BTreeSet<Symbol>>,
}

impl DescriptorDb {
    /// Creates an empty database.
    pub fn new() -> DescriptorDb {
        DescriptorDb::default()
    }

    /// Number of descriptors stored.
    pub fn len(&self) -> usize {
        self.descriptors.len()
    }

    /// True when the database is empty.
    pub fn is_empty(&self) -> bool {
        self.descriptors.is_empty()
    }

    /// Inserts a descriptor, indexing its medium and textual extra
    /// attributes. Replaces any previous descriptor with the same key.
    pub fn insert(&mut self, descriptor: DataDescriptor) {
        self.remove_symbol(descriptor.key);
        self.by_medium
            .entry(descriptor.medium)
            .or_default()
            .insert(descriptor.key);
        for (attr_key, value) in &descriptor.extra {
            if let Some(text) = value.as_text() {
                self.by_attribute
                    .entry((*attr_key, text.to_string()))
                    .or_default()
                    .insert(descriptor.key);
            }
        }
        self.descriptors.insert(descriptor.key, descriptor);
    }

    /// Removes a descriptor and its index entries.
    pub fn remove(&mut self, key: &str) -> Option<DataDescriptor> {
        self.remove_symbol(Symbol::lookup(key)?)
    }

    /// Removes a descriptor by interned key.
    pub fn remove_symbol(&mut self, key: Symbol) -> Option<DataDescriptor> {
        let descriptor = self.descriptors.remove(&key)?;
        if let Some(set) = self.by_medium.get_mut(&descriptor.medium) {
            set.remove(&key);
        }
        for (attr_key, value) in &descriptor.extra {
            if let Some(text) = value.as_text() {
                if let Some(set) = self.by_attribute.get_mut(&(*attr_key, text.to_string())) {
                    set.remove(&key);
                }
            }
        }
        Some(descriptor)
    }

    /// Looks up a descriptor by key. Never interns, so unknown keys miss
    /// without growing the pool.
    pub fn get(&self, key: &str) -> Option<&DataDescriptor> {
        self.descriptors.get(&Symbol::lookup(key)?)
    }

    /// Answers a query from the indexes, touching only descriptors.
    ///
    /// Index entries narrow the candidate set (medium and attribute-equality
    /// conditions); the remaining conditions are checked on the candidates'
    /// descriptors. Returns matching keys in sorted order.
    pub fn query(&self, query: &Query) -> Vec<String> {
        // Build the candidate set from the most selective index available.
        let mut candidates: Option<BTreeSet<Symbol>> = None;
        if let Some(medium) = query.medium {
            let set = self.by_medium.get(&medium).cloned().unwrap_or_default();
            candidates = Some(set);
        }
        for (key, value) in &query.attribute_equals {
            let set = Symbol::lookup(key)
                .and_then(|key| self.by_attribute.get(&(key, value.clone())))
                .cloned()
                .unwrap_or_default();
            candidates = Some(match candidates {
                Some(existing) => existing.intersection(&set).copied().collect(),
                None => set,
            });
        }
        let candidates: Vec<Symbol> = match candidates {
            Some(set) => set.into_iter().collect(),
            None => self.descriptors.keys().copied().collect(),
        };
        let mut out: Vec<String> = candidates
            .into_iter()
            .filter(|key| {
                self.descriptors
                    .get(key)
                    .map(|d| query.matches(d))
                    .unwrap_or(false)
            })
            .map(|key| key.as_str().to_string())
            .collect();
        out.sort();
        out
    }

    /// Answers the same query by scanning media payloads in a block store —
    /// the "manipulate the data itself" strawman the paper argues against.
    ///
    /// For every stored block the payload is fetched (counted by the store)
    /// and a descriptor is re-derived from the bytes before the query is
    /// evaluated. The answer is identical to [`DescriptorDb::query`] for
    /// attributes that are derivable from the data; the cost is what
    /// differs.
    pub fn scan_blocks(&self, store: &BlockStore, query: &Query) -> Result<Vec<String>> {
        let mut out = Vec::new();
        for key in store.keys() {
            let payload = store.payload(&key)?;
            let block = crate::block::MediaBlock::new(key.clone(), payload);
            let mut derived = block.describe();
            // Attribute conditions can only be answered from the catalogued
            // descriptor (the data bytes do not carry titles); merge them in,
            // as a real scan would consult sidecar metadata.
            if let Some(full) = Symbol::lookup(&key).and_then(|k| self.descriptors.get(&k)) {
                derived.extra = full.extra.clone();
            }
            if query.matches(&derived) {
                out.push(key);
            }
        }
        out.sort();
        Ok(out)
    }

    /// Total size of the stored descriptors in bytes (compare with the block
    /// store's `total_bytes`).
    pub fn total_descriptor_bytes(&self) -> usize {
        self.descriptors
            .values()
            .map(DataDescriptor::approx_descriptor_size)
            .sum()
    }
}

impl DescriptorResolver for DescriptorDb {
    fn resolve(&self, key: &str) -> Option<DataDescriptor> {
        self.get(key).cloned()
    }

    fn resolve_symbol(&self, key: Symbol) -> Option<DataDescriptor> {
        self.descriptors.get(&key).cloned()
    }
}

/// Builds a database from every descriptor in a block store.
pub fn index_store(store: &BlockStore) -> Result<DescriptorDb> {
    let mut db = DescriptorDb::new();
    for key in store.keys() {
        let descriptor = store
            .descriptor(&key)
            .map_err(|_| MediaError::UnknownBlock { key: key.clone() })?;
        db.insert(descriptor);
    }
    Ok(db)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::MediaGenerator;
    use cmif_core::value::AttrValue;

    fn sample_db() -> DescriptorDb {
        let mut generator = MediaGenerator::new(11);
        let mut db = DescriptorDb::new();
        for story in 1..=4 {
            let audio = generator.audio(&format!("story-{story}/audio"), story * 1_000, 8000);
            db.insert(
                audio
                    .describe()
                    .with_extra(
                        "story",
                        AttrValue::Id(Symbol::intern(&format!("story-{story}"))),
                    )
                    .with_extra("language", AttrValue::Id("nl".into())),
            );
            let image = generator.image(&format!("story-{story}/graphic"), 64, 64, 24);
            db.insert(
                image
                    .describe()
                    .with_extra(
                        "story",
                        AttrValue::Id(Symbol::intern(&format!("story-{story}"))),
                    )
                    .with_extra("subject", AttrValue::Id("painting".into())),
            );
        }
        db
    }

    #[test]
    fn insert_get_and_remove() {
        let mut db = sample_db();
        assert_eq!(db.len(), 8);
        assert!(db.get("story-1/audio").is_some());
        let removed = db.remove("story-1/audio").unwrap();
        assert_eq!(removed.key, "story-1/audio");
        assert_eq!(db.len(), 7);
        assert!(db.get("story-1/audio").is_none());
        assert!(db.remove("story-1/audio").is_none());
        // The index no longer returns the removed key.
        assert!(!db
            .query(&Query::any().with_medium(MediaKind::Audio))
            .contains(&"story-1/audio".to_string()));
    }

    #[test]
    fn query_by_medium() {
        let db = sample_db();
        let audio = db.query(&Query::any().with_medium(MediaKind::Audio));
        assert_eq!(audio.len(), 4);
        assert!(audio.iter().all(|k| k.ends_with("/audio")));
    }

    #[test]
    fn query_by_attribute_and_conjunction() {
        let db = sample_db();
        let story2 = db.query(&Query::any().with_attribute("story", "story-2"));
        assert_eq!(story2.len(), 2);
        let story2_images = db.query(
            &Query::any()
                .with_attribute("story", "story-2")
                .with_medium(MediaKind::Image),
        );
        assert_eq!(story2_images, vec!["story-2/graphic".to_string()]);
        let nothing = db.query(
            &Query::any()
                .with_attribute("story", "story-2")
                .with_attribute("subject", "sculpture"),
        );
        assert!(nothing.is_empty());
    }

    #[test]
    fn query_by_duration_range() {
        let db = sample_db();
        let long = db.query(&Query::any().with_duration_range(Some(3_000), None));
        assert_eq!(long.len(), 2); // story-3 and story-4 audio
        let between = db.query(&Query::any().with_duration_range(Some(1_500), Some(3_500)));
        assert_eq!(between.len(), 2); // 2s and 3s audio
                                      // Descriptors without a duration never match a duration condition.
        assert!(db
            .query(
                &Query::any()
                    .with_medium(MediaKind::Image)
                    .with_duration_range(Some(1), None)
            )
            .is_empty());
    }

    #[test]
    fn unconstrained_query_returns_everything() {
        let db = sample_db();
        assert_eq!(db.query(&Query::any()).len(), 8);
    }

    #[test]
    fn reinserting_replaces_the_previous_descriptor() {
        let mut db = sample_db();
        let updated = db
            .get("story-1/graphic")
            .unwrap()
            .clone()
            .with_extra("subject", AttrValue::Id("map".into()));
        db.insert(updated);
        assert_eq!(db.len(), 8);
        assert!(db
            .query(&Query::any().with_attribute("subject", "map"))
            .contains(&"story-1/graphic".to_string()));
        assert!(!db
            .query(&Query::any().with_attribute("subject", "painting"))
            .contains(&"story-1/graphic".to_string()));
    }

    #[test]
    fn scan_blocks_matches_indexed_query_but_reads_payloads() {
        let store = BlockStore::new();
        let mut generator = MediaGenerator::new(21);
        for story in 1..=3 {
            let block = generator.audio(&format!("s{story}"), story * 1_000, 8000);
            let descriptor = block
                .describe()
                .with_extra("language", AttrValue::Id("nl".into()));
            store.put_with_descriptor(block, descriptor).unwrap();
        }
        let db = index_store(&store).unwrap();
        store.reset_stats();

        let query = Query::any()
            .with_medium(MediaKind::Audio)
            .with_duration_range(Some(2_000), None);
        let indexed = db.query(&query);
        let (_, payload_reads_after_index, _) = store.access_stats();
        assert_eq!(
            payload_reads_after_index, 0,
            "indexed query must not touch payloads"
        );

        let scanned = db.scan_blocks(&store, &query).unwrap();
        let (_, payload_reads_after_scan, bytes) = store.access_stats();
        assert_eq!(indexed, scanned);
        assert_eq!(payload_reads_after_scan, 3);
        assert!(bytes >= 6_000 * 8 / 8);
    }

    #[test]
    fn descriptor_bytes_are_small() {
        let db = sample_db();
        // Eight descriptors should fit in a few kilobytes.
        assert!(db.total_descriptor_bytes() < 8 * 1024);
    }

    #[test]
    fn resolver_interface() {
        let db = sample_db();
        assert!(DescriptorResolver::resolve(&db, "story-1/audio").is_some());
        assert!(DescriptorResolver::resolve(&db, "nope").is_none());
    }
}
