//! # cmif-media — the media substrate
//!
//! The CMIF paper assumes media capture hardware, storage servers and a
//! descriptor database around the document format. This crate is that
//! substrate, built synthetically so the whole pipeline runs on a laptop:
//!
//! * [`block`] — media blocks (audio, video frames, images, text, generator
//!   programs) and the derivation of their data descriptors;
//! * [`generate`] — deterministic synthetic media generators standing in for
//!   capture hardware;
//! * [`ops`] — the `slice`/`crop`/`clip` selections of Figure 7 applied to
//!   real bytes, plus the constraint-filter degradations of §2 (colour-depth
//!   reduction, downscaling, frame-rate sub-sampling, audio downsampling);
//! * [`codec`] — a run-length codec so stored and transported blocks have a
//!   real encoded form;
//! * [`store`] — the local block store with descriptor/payload access
//!   accounting;
//! * [`ddbms`] — the attribute-indexed descriptor database of Figure 2, with
//!   an indexed query path and a payload-scanning strawman to compare it
//!   against.
//!
//! ```
//! use cmif_media::generate::MediaGenerator;
//! use cmif_media::store::BlockStore;
//! use cmif_core::descriptor::DescriptorResolver;
//!
//! # fn main() -> Result<(), cmif_media::MediaError> {
//! let store = BlockStore::new();
//! let mut generator = MediaGenerator::new(42);
//! store.put(generator.audio("intro-speech", 3_000, 8_000))?;
//!
//! // Documents and schedulers only ever need the descriptor:
//! let descriptor = store.resolve("intro-speech").expect("stored above");
//! assert_eq!(descriptor.duration.expect("duration set").as_millis(), 3_000);
//! # Ok(()) }
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod block;
pub mod codec;
pub mod ddbms;
pub mod error;
pub mod generate;
pub mod ops;
pub mod store;

pub use block::{MediaBlock, MediaPayload};
pub use codec::{decode_payload, encode_payload, EncodedPayload};
pub use ddbms::{index_store, DescriptorDb, Query};
pub use error::{MediaError, Result};
pub use generate::MediaGenerator;
pub use store::BlockStore;
