//! The media block store.
//!
//! A [`BlockStore`] is the local storage server of the pipeline: it owns the
//! media bytes and the data descriptors that describe them, and it exposes
//! the [`DescriptorResolver`] interface so documents, schedulers and
//! constraint filters can work entirely from descriptors without pulling a
//! single media byte — the access pattern the paper argues for (§6).
//!
//! The store counts how often descriptors and payloads are fetched, so the
//! Figure 2 benchmark can show that descriptor-only workflows touch only a
//! tiny fraction of the stored bytes.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};

use parking_lot::RwLock;

use cmif_core::descriptor::{DataDescriptor, DescriptorResolver};

use crate::block::{MediaBlock, MediaPayload};
use crate::error::{MediaError, Result};

/// A thread-safe store of media blocks and their descriptors.
#[derive(Debug, Default)]
pub struct BlockStore {
    blocks: RwLock<BTreeMap<String, MediaBlock>>,
    descriptors: RwLock<BTreeMap<String, DataDescriptor>>,
    descriptor_reads: AtomicU64,
    payload_reads: AtomicU64,
    payload_bytes_read: AtomicU64,
}

impl BlockStore {
    /// Creates an empty store.
    pub fn new() -> BlockStore {
        BlockStore::default()
    }

    /// Stores a block and the descriptor derived from it, rejecting
    /// duplicate keys.
    pub fn put(&self, block: MediaBlock) -> Result<()> {
        let mut blocks = self.blocks.write();
        if blocks.contains_key(&block.key) {
            return Err(MediaError::DuplicateBlock {
                key: block.key.clone(),
            });
        }
        let descriptor = block.describe();
        self.descriptors
            .write()
            .insert(block.key.clone(), descriptor);
        blocks.insert(block.key.clone(), block);
        Ok(())
    }

    /// Stores a block with an explicitly provided descriptor (when a capture
    /// tool supplies richer attributes than [`MediaBlock::describe`]).
    pub fn put_with_descriptor(&self, block: MediaBlock, descriptor: DataDescriptor) -> Result<()> {
        let mut blocks = self.blocks.write();
        if blocks.contains_key(&block.key) {
            return Err(MediaError::DuplicateBlock {
                key: block.key.clone(),
            });
        }
        self.descriptors
            .write()
            .insert(block.key.clone(), descriptor);
        blocks.insert(block.key.clone(), block);
        Ok(())
    }

    /// Number of stored blocks.
    pub fn len(&self) -> usize {
        self.blocks.read().len()
    }

    /// True when the store holds no blocks.
    pub fn is_empty(&self) -> bool {
        self.blocks.read().is_empty()
    }

    /// All stored keys, sorted.
    pub fn keys(&self) -> Vec<String> {
        self.blocks.read().keys().cloned().collect()
    }

    /// True when a block with this key is stored (no read accounting, no
    /// allocation).
    pub fn contains(&self, key: &str) -> bool {
        self.blocks.read().contains_key(key)
    }

    /// Fetches a block's descriptor (cheap; counted separately from payload
    /// reads).
    pub fn descriptor(&self, key: &str) -> Result<DataDescriptor> {
        self.descriptor_reads.fetch_add(1, Ordering::Relaxed);
        self.descriptors
            .read()
            .get(key)
            .cloned()
            .ok_or_else(|| MediaError::UnknownBlock {
                key: key.to_string(),
            })
    }

    /// Fetches a block's payload (expensive; counted, with bytes).
    pub fn payload(&self, key: &str) -> Result<MediaPayload> {
        let blocks = self.blocks.read();
        let block = blocks.get(key).ok_or_else(|| MediaError::UnknownBlock {
            key: key.to_string(),
        })?;
        self.payload_reads.fetch_add(1, Ordering::Relaxed);
        self.payload_bytes_read
            .fetch_add(block.payload.size_bytes(), Ordering::Relaxed);
        Ok(block.payload.clone())
    }

    /// Replaces a block's payload and refreshes its descriptor (used by
    /// constraint filters that materialise degraded versions).
    pub fn replace_payload(&self, key: &str, payload: MediaPayload) -> Result<()> {
        let mut blocks = self.blocks.write();
        let block = blocks
            .get_mut(key)
            .ok_or_else(|| MediaError::UnknownBlock {
                key: key.to_string(),
            })?;
        block.payload = payload;
        let descriptor = block.describe();
        self.descriptors.write().insert(key.to_string(), descriptor);
        Ok(())
    }

    /// Total bytes of stored media.
    pub fn total_bytes(&self) -> u64 {
        self.blocks
            .read()
            .values()
            .map(|b| b.payload.size_bytes())
            .sum()
    }

    /// Access statistics: `(descriptor reads, payload reads, payload bytes)`.
    pub fn access_stats(&self) -> (u64, u64, u64) {
        (
            self.descriptor_reads.load(Ordering::Relaxed),
            self.payload_reads.load(Ordering::Relaxed),
            self.payload_bytes_read.load(Ordering::Relaxed),
        )
    }

    /// Resets the access counters (between benchmark phases).
    pub fn reset_stats(&self) {
        self.descriptor_reads.store(0, Ordering::Relaxed);
        self.payload_reads.store(0, Ordering::Relaxed);
        self.payload_bytes_read.store(0, Ordering::Relaxed);
    }

    /// Copies every descriptor into a [`cmif_core::descriptor::DescriptorCatalog`]
    /// so a document can be made self-contained before transport.
    pub fn export_catalog(&self) -> cmif_core::descriptor::DescriptorCatalog {
        let mut catalog = cmif_core::descriptor::DescriptorCatalog::new();
        for descriptor in self.descriptors.read().values() {
            catalog.upsert(descriptor.clone());
        }
        catalog
    }
}

impl DescriptorResolver for BlockStore {
    fn resolve(&self, key: &str) -> Option<DataDescriptor> {
        self.descriptor_reads.fetch_add(1, Ordering::Relaxed);
        self.descriptors.read().get(key).cloned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::MediaGenerator;
    use cmif_core::channel::MediaKind;

    fn filled_store() -> BlockStore {
        let store = BlockStore::new();
        let mut generator = MediaGenerator::new(5);
        store.put(generator.audio("speech", 2_000, 8000)).unwrap();
        store.put(generator.image("map", 64, 64, 24)).unwrap();
        store.put(generator.text("caption", 30)).unwrap();
        store
    }

    #[test]
    fn put_and_lookup() {
        let store = filled_store();
        assert_eq!(store.len(), 3);
        assert!(!store.is_empty());
        assert_eq!(store.keys(), vec!["caption", "map", "speech"]);
        let descriptor = store.descriptor("speech").unwrap();
        assert_eq!(descriptor.medium, MediaKind::Audio);
        assert_eq!(store.payload("map").unwrap().size_bytes(), 64 * 64 * 3);
        assert!(store.descriptor("missing").is_err());
        assert!(store.payload("missing").is_err());
    }

    #[test]
    fn duplicate_keys_are_rejected() {
        let store = filled_store();
        let block = MediaGenerator::new(9).text("caption", 5);
        assert!(matches!(
            store.put(block).unwrap_err(),
            MediaError::DuplicateBlock { .. }
        ));
    }

    #[test]
    fn access_stats_distinguish_descriptor_and_payload_reads() {
        let store = filled_store();
        store.reset_stats();
        store.descriptor("speech").unwrap();
        store.descriptor("map").unwrap();
        store.payload("speech").unwrap();
        let (descriptor_reads, payload_reads, payload_bytes) = store.access_stats();
        assert_eq!(descriptor_reads, 2);
        assert_eq!(payload_reads, 1);
        assert_eq!(payload_bytes, 16_000);
        store.reset_stats();
        assert_eq!(store.access_stats(), (0, 0, 0));
    }

    #[test]
    fn resolver_interface_counts_as_descriptor_read() {
        let store = filled_store();
        store.reset_stats();
        assert!(DescriptorResolver::resolve(&store, "map").is_some());
        assert!(DescriptorResolver::resolve(&store, "missing").is_none());
        assert_eq!(store.access_stats().0, 2);
        assert_eq!(store.access_stats().1, 0);
    }

    #[test]
    fn replace_payload_refreshes_descriptor() {
        let store = filled_store();
        let original = store.descriptor("map").unwrap();
        assert_eq!(original.color_depth, Some(24));
        let degraded = crate::ops::reduce_color_depth(&store.payload("map").unwrap(), 8).unwrap();
        store.replace_payload("map", degraded).unwrap();
        let updated = store.descriptor("map").unwrap();
        assert_eq!(updated.color_depth, Some(8));
        assert!(updated.size_bytes < original.size_bytes);
        assert!(store
            .replace_payload(
                "missing",
                MediaPayload::Text {
                    content: "x".into()
                }
            )
            .is_err());
    }

    #[test]
    fn export_catalog_contains_every_descriptor() {
        let store = filled_store();
        let catalog = store.export_catalog();
        assert_eq!(catalog.len(), 3);
        assert!(catalog.get("speech").is_some());
    }

    #[test]
    fn total_bytes_sums_payloads() {
        let store = filled_store();
        let expected = store.payload("speech").unwrap().size_bytes()
            + store.payload("map").unwrap().size_bytes()
            + store.payload("caption").unwrap().size_bytes();
        assert_eq!(store.total_bytes(), expected);
    }

    #[test]
    fn put_with_descriptor_keeps_custom_attributes() {
        let store = BlockStore::new();
        let block = MediaGenerator::new(1).image("poster", 32, 32, 8);
        let descriptor = block
            .describe()
            .with_extra("title", cmif_core::value::AttrValue::Str("Poster".into()));
        store.put_with_descriptor(block, descriptor).unwrap();
        assert!(store
            .descriptor("poster")
            .unwrap()
            .extra_attr("title")
            .is_some());
        let dup = MediaGenerator::new(1).image("poster", 8, 8, 8);
        let dup_descriptor = dup.describe();
        assert!(store.put_with_descriptor(dup, dup_descriptor).is_err());
    }
}
