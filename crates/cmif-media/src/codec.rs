//! Simple codecs for stored media blocks.
//!
//! The paper deliberately does "not dwell on storage structure or on methods
//! of encoding/compressing data" (§7) — encodings are just another data
//! descriptor attribute. A run-length codec is provided anyway so the
//! storage and transport layers have a real "encoded format" to carry, so
//! that descriptor `format` fields mean something, and so the distributed
//! store can trade CPU for bandwidth the way a 1991 system would have.

use bytes::Bytes;

use crate::block::MediaPayload;
use crate::error::{MediaError, Result};

/// Run-length encodes a byte stream: pairs of `(count, value)` with
/// `count >= 1`.
pub fn rle_encode(data: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(data.len() / 2 + 2);
    let mut iter = data.iter().copied();
    let mut current = match iter.next() {
        Some(byte) => byte,
        None => return out,
    };
    let mut count: u8 = 1;
    for byte in iter {
        if byte == current && count < u8::MAX {
            count += 1;
        } else {
            out.push(count);
            out.push(current);
            current = byte;
            count = 1;
        }
    }
    out.push(count);
    out.push(current);
    out
}

/// Decodes a run-length encoded stream produced by [`rle_encode`].
pub fn rle_decode(data: &[u8]) -> Result<Vec<u8>> {
    if data.len() % 2 != 0 {
        return Err(MediaError::CorruptData {
            reason: "run-length stream has an odd number of bytes".to_string(),
        });
    }
    let mut out = Vec::with_capacity(data.len());
    for pair in data.chunks(2) {
        let count = pair[0];
        if count == 0 {
            return Err(MediaError::CorruptData {
                reason: "run-length stream contains a zero-length run".to_string(),
            });
        }
        out.extend(std::iter::repeat(pair[1]).take(count as usize));
    }
    Ok(out)
}

/// The raw byte view of a payload that the codecs operate on, if it has one.
fn raw_bytes(payload: &MediaPayload) -> Option<&Bytes> {
    match payload {
        MediaPayload::Audio { samples, .. } => Some(samples),
        MediaPayload::Video { frames, .. } => Some(frames),
        MediaPayload::Image { pixels, .. } => Some(pixels),
        MediaPayload::Text { .. } | MediaPayload::Generator { .. } => None,
    }
}

/// An encoded media payload, as stored or shipped over the simulated
/// network.
#[derive(Debug, Clone, PartialEq)]
pub struct EncodedPayload {
    /// The encoding applied (currently `rle` or `identity`).
    pub encoding: &'static str,
    /// The encoded bytes.
    pub data: Vec<u8>,
    /// The original (decoded) size, for ratio reporting.
    pub original_len: usize,
}

impl EncodedPayload {
    /// Compression ratio (original / encoded); greater than 1 means the
    /// encoding saved space.
    pub fn ratio(&self) -> f64 {
        if self.data.is_empty() {
            return 1.0;
        }
        self.original_len as f64 / self.data.len() as f64
    }
}

/// Encodes the raw bytes of a payload with the run-length codec, falling
/// back to an identity encoding when the payload has no raw byte view or
/// when RLE would expand it.
pub fn encode_payload(payload: &MediaPayload) -> EncodedPayload {
    match raw_bytes(payload) {
        Some(bytes) => {
            let encoded = rle_encode(bytes);
            if encoded.len() < bytes.len() {
                EncodedPayload {
                    encoding: "rle",
                    data: encoded,
                    original_len: bytes.len(),
                }
            } else {
                EncodedPayload {
                    encoding: "identity",
                    data: bytes.to_vec(),
                    original_len: bytes.len(),
                }
            }
        }
        None => {
            let text = match payload {
                MediaPayload::Text { content } => content.clone().into_bytes(),
                MediaPayload::Generator { program, .. } => program.clone().into_bytes(),
                _ => unreachable!("raw_bytes covered the other variants"),
            };
            EncodedPayload {
                encoding: "identity",
                original_len: text.len(),
                data: text,
            }
        }
    }
}

/// Decodes an [`EncodedPayload`] back into raw bytes.
pub fn decode_payload(encoded: &EncodedPayload) -> Result<Vec<u8>> {
    match encoded.encoding {
        "rle" => rle_decode(&encoded.data),
        "identity" => Ok(encoded.data.clone()),
        other => Err(MediaError::CorruptData {
            reason: format!("unknown encoding `{other}`"),
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::MediaGenerator;
    use proptest::prelude::*;

    #[test]
    fn rle_round_trips_simple_runs() {
        let data = b"aaaabbbcccccd".to_vec();
        let encoded = rle_encode(&data);
        assert_eq!(rle_decode(&encoded).unwrap(), data);
        assert!(encoded.len() < data.len());
    }

    #[test]
    fn rle_handles_empty_and_long_runs() {
        assert!(rle_encode(&[]).is_empty());
        assert_eq!(rle_decode(&[]).unwrap(), Vec::<u8>::new());
        let long = vec![7u8; 1000];
        let encoded = rle_encode(&long);
        assert_eq!(rle_decode(&encoded).unwrap(), long);
        // 1000 = 3*255 + 235 -> 4 runs -> 8 bytes.
        assert_eq!(encoded.len(), 8);
    }

    #[test]
    fn rle_rejects_corrupt_streams() {
        assert!(rle_decode(&[3]).is_err());
        assert!(rle_decode(&[0, 9]).is_err());
    }

    #[test]
    fn encode_payload_prefers_the_smaller_form() {
        // A flat image compresses well.
        let flat = MediaPayload::Image {
            width: 32,
            height: 32,
            color_depth: 8,
            pixels: Bytes::from(vec![9u8; 1024]),
        };
        let encoded = encode_payload(&flat);
        assert_eq!(encoded.encoding, "rle");
        assert!(encoded.ratio() > 10.0);
        assert_eq!(decode_payload(&encoded).unwrap(), vec![9u8; 1024]);

        // Synthetic audio rarely has runs; identity must kick in rather than
        // expanding the data.
        let audio = MediaGenerator::new(1).audio("a", 500, 8000);
        let encoded = encode_payload(&audio.payload);
        assert!(encoded.data.len() <= audio.payload.size_bytes() as usize);
        assert_eq!(decode_payload(&encoded).unwrap().len(), 4000);
    }

    #[test]
    fn text_payloads_use_identity() {
        let text = MediaPayload::Text {
            content: "no runs here".into(),
        };
        let encoded = encode_payload(&text);
        assert_eq!(encoded.encoding, "identity");
        assert_eq!(decode_payload(&encoded).unwrap(), b"no runs here".to_vec());
    }

    #[test]
    fn unknown_encoding_is_rejected() {
        let bogus = EncodedPayload {
            encoding: "huffman",
            data: vec![],
            original_len: 0,
        };
        assert!(decode_payload(&bogus).is_err());
    }

    proptest! {
        #[test]
        fn rle_round_trips_arbitrary_bytes(data in proptest::collection::vec(any::<u8>(), 0..2000)) {
            let encoded = rle_encode(&data);
            prop_assert_eq!(rle_decode(&encoded).unwrap(), data);
        }

        #[test]
        fn encode_payload_never_loses_bytes(data in proptest::collection::vec(any::<u8>(), 1..1500)) {
            let payload = MediaPayload::Image {
                width: data.len() as u32,
                height: 1,
                color_depth: 8,
                pixels: Bytes::from(data.clone()),
            };
            let encoded = encode_payload(&payload);
            prop_assert_eq!(decode_payload(&encoded).unwrap(), data);
        }
    }
}
