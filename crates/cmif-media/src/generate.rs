//! Synthetic media generators.
//!
//! The paper's pipeline assumes media capture hardware ("we expect that
//! equipment vendors or third-party organizations will do this better than
//! we can", §2). This reproduction has no cameras or microphones, so the
//! capture stage synthesizes deterministic media with realistic sizes,
//! durations and rates instead: sine-tone PCM audio, procedurally patterned
//! video frames and raster images, and word-salad text. The document layer
//! never interprets media bytes, so any deterministic generator that
//! produces the right *shape* of data exercises the same code paths.

use bytes::Bytes;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::block::{MediaBlock, MediaPayload};

/// Deterministic generator for synthetic media blocks.
#[derive(Debug)]
pub struct MediaGenerator {
    rng: SmallRng,
}

impl MediaGenerator {
    /// Creates a generator with a fixed seed; the same seed always produces
    /// the same media.
    pub fn new(seed: u64) -> MediaGenerator {
        MediaGenerator {
            rng: SmallRng::seed_from_u64(seed),
        }
    }

    /// Generates a sine-tone 8-bit PCM audio block.
    pub fn audio(&mut self, key: &str, duration_ms: i64, sample_rate: u32) -> MediaBlock {
        let sample_count = (duration_ms.max(0) as u64 * sample_rate as u64 / 1000) as usize;
        let frequency = self.rng.gen_range(110.0..880.0_f64);
        let mut samples = Vec::with_capacity(sample_count);
        for i in 0..sample_count {
            let t = i as f64 / sample_rate as f64;
            let value = (t * frequency * std::f64::consts::TAU).sin();
            samples.push((value * 100.0 + 128.0) as u8);
        }
        MediaBlock::new(
            key,
            MediaPayload::Audio {
                sample_rate,
                samples: Bytes::from(samples),
            },
        )
    }

    /// Generates a video block of procedurally patterned frames.
    pub fn video(
        &mut self,
        key: &str,
        duration_ms: i64,
        width: u32,
        height: u32,
        fps: f64,
        color_depth: u8,
    ) -> MediaBlock {
        let frame_count = ((duration_ms.max(0) as f64 / 1000.0) * fps)
            .round()
            .max(1.0) as u32;
        let bytes_per_pixel = (color_depth as usize / 8).max(1);
        let frame_size = width as usize * height as usize * bytes_per_pixel;
        let phase = self.rng.gen_range(0u32..255);
        let mut frames = Vec::with_capacity(frame_size * frame_count as usize);
        for frame in 0..frame_count {
            for y in 0..height {
                for x in 0..width {
                    for plane in 0..bytes_per_pixel {
                        let value = (x ^ y).wrapping_add(frame).wrapping_add(phase) as u8
                            ^ (plane as u8 * 85);
                        frames.push(value);
                    }
                }
            }
        }
        MediaBlock::new(
            key,
            MediaPayload::Video {
                width,
                height,
                fps,
                color_depth,
                frames: Bytes::from(frames),
                frame_count,
            },
        )
    }

    /// Generates a gradient/checkerboard raster image.
    pub fn image(&mut self, key: &str, width: u32, height: u32, color_depth: u8) -> MediaBlock {
        let bytes_per_pixel = (color_depth as usize / 8).max(1);
        let offset = self.rng.gen_range(0u32..255);
        let mut pixels = Vec::with_capacity(width as usize * height as usize * bytes_per_pixel);
        for y in 0..height {
            for x in 0..width {
                for plane in 0..bytes_per_pixel {
                    let checker = if (x / 8 + y / 8) % 2 == 0 { 64 } else { 0 };
                    let value = ((x + y + offset) % 256) as u8 ^ checker ^ (plane as u8 * 40);
                    pixels.push(value);
                }
            }
        }
        MediaBlock::new(
            key,
            MediaPayload::Image {
                width,
                height,
                color_depth,
                pixels: Bytes::from(pixels),
            },
        )
    }

    /// Generates word-salad text of roughly `words` words.
    pub fn text(&mut self, key: &str, words: usize) -> MediaBlock {
        const LEXICON: &[&str] = &[
            "museum",
            "painting",
            "witness",
            "report",
            "announcer",
            "gallery",
            "insurance",
            "evening",
            "broadcast",
            "caption",
            "channel",
            "synchronise",
            "document",
            "archive",
            "story",
            "camera",
            "studio",
            "reporter",
            "bulletin",
            "headline",
        ];
        let mut content = String::new();
        for i in 0..words {
            if i > 0 {
                content.push(if i % 12 == 0 { '\n' } else { ' ' });
            }
            content.push_str(LEXICON[self.rng.gen_range(0..LEXICON.len())]);
        }
        MediaBlock::new(key, MediaPayload::Text { content })
    }

    /// Generates a "program" block: a generator that would produce data of
    /// another medium when executed.
    pub fn generator(&mut self, key: &str, produces: cmif_core::channel::MediaKind) -> MediaBlock {
        let scene = self.rng.gen_range(1..100);
        MediaBlock::new(
            key,
            MediaPayload::Generator {
                program: format!("render --scene {scene}"),
                produces,
            },
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cmif_core::channel::MediaKind;
    use cmif_core::time::TimeMs;

    #[test]
    fn generation_is_deterministic_per_seed() {
        let mut a = MediaGenerator::new(7);
        let mut b = MediaGenerator::new(7);
        assert_eq!(a.audio("x", 500, 8000), b.audio("x", 500, 8000));
        assert_eq!(a.image("y", 16, 16, 8), b.image("y", 16, 16, 8));
        let mut c = MediaGenerator::new(8);
        assert_ne!(
            MediaGenerator::new(7).audio("x", 500, 8000),
            c.audio("x", 500, 8000)
        );
    }

    #[test]
    fn audio_has_requested_duration_and_rate() {
        let block = MediaGenerator::new(1).audio("speech", 2_500, 8000);
        assert_eq!(block.payload.size_bytes(), 20_000);
        assert_eq!(block.payload.duration(), Some(TimeMs::from_millis(2_500)));
        let descriptor = block.describe();
        assert_eq!(descriptor.rates.samples_per_second, Some(8000));
    }

    #[test]
    fn video_geometry_matches_request() {
        let block = MediaGenerator::new(2).video("film", 2_000, 64, 48, 25.0, 24);
        match &block.payload {
            MediaPayload::Video {
                width,
                height,
                frame_count,
                frames,
                ..
            } => {
                assert_eq!((*width, *height), (64, 48));
                assert_eq!(*frame_count, 50);
                assert_eq!(frames.len(), 64 * 48 * 3 * 50);
            }
            other => panic!("unexpected payload {other:?}"),
        }
        assert_eq!(block.payload.duration(), Some(TimeMs::from_secs(2)));
    }

    #[test]
    fn image_size_follows_colour_depth() {
        let rgb = MediaGenerator::new(3).image("pic", 32, 32, 24);
        assert_eq!(rgb.payload.size_bytes(), 32 * 32 * 3);
        let indexed = MediaGenerator::new(3).image("pic8", 32, 32, 8);
        assert_eq!(indexed.payload.size_bytes(), 32 * 32);
    }

    #[test]
    fn text_contains_requested_word_count() {
        let block = MediaGenerator::new(4).text("caption", 24);
        match &block.payload {
            MediaPayload::Text { content } => {
                assert_eq!(content.split_whitespace().count(), 24);
            }
            other => panic!("unexpected payload {other:?}"),
        }
    }

    #[test]
    fn zero_duration_video_still_has_one_frame() {
        let block = MediaGenerator::new(5).video("tiny", 0, 8, 8, 25.0, 8);
        match &block.payload {
            MediaPayload::Video { frame_count, .. } => assert_eq!(*frame_count, 1),
            other => panic!("unexpected payload {other:?}"),
        }
    }

    #[test]
    fn generator_block_names_its_product() {
        let block = MediaGenerator::new(6).generator("render", MediaKind::Image);
        match &block.payload {
            MediaPayload::Generator { produces, program } => {
                assert_eq!(*produces, MediaKind::Image);
                assert!(program.starts_with("render"));
            }
            other => panic!("unexpected payload {other:?}"),
        }
    }
}
