//! Error types for the media substrate.

use std::fmt;

/// Result alias used throughout `cmif-media`.
pub type Result<T> = std::result::Result<T, MediaError>;

/// Errors raised by media block operations.
#[derive(Debug, Clone, PartialEq)]
pub enum MediaError {
    /// The requested block does not exist in the store.
    UnknownBlock {
        /// The missing key.
        key: String,
    },
    /// A block with this key is already stored.
    DuplicateBlock {
        /// The duplicate key.
        key: String,
    },
    /// An operation was applied to a payload of the wrong medium
    /// (e.g. cropping an audio clip).
    WrongMedium {
        /// The operation attempted.
        operation: &'static str,
        /// The medium the payload actually has.
        found: cmif_core::channel::MediaKind,
    },
    /// A selection (slice, crop, clip) falls outside the block.
    SelectionOutOfRange {
        /// Description of the failed selection.
        reason: String,
    },
    /// A transcode was asked for parameters the codec cannot produce.
    UnsupportedConversion {
        /// Description of the unsupported conversion.
        reason: String,
    },
    /// Encoded data could not be decoded.
    CorruptData {
        /// Description of the corruption.
        reason: String,
    },
    /// A structural error from the document model (e.g. while resolving the
    /// descriptor or channel a block is stored against).
    Core(cmif_core::error::CoreError),
}

impl fmt::Display for MediaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MediaError::UnknownBlock { key } => write!(f, "media block `{key}` is not stored"),
            MediaError::DuplicateBlock { key } => {
                write!(f, "media block `{key}` is already stored")
            }
            MediaError::WrongMedium { operation, found } => {
                write!(
                    f,
                    "operation `{operation}` cannot be applied to {found} data"
                )
            }
            MediaError::SelectionOutOfRange { reason } => {
                write!(f, "selection out of range: {reason}")
            }
            MediaError::UnsupportedConversion { reason } => {
                write!(f, "unsupported conversion: {reason}")
            }
            MediaError::CorruptData { reason } => write!(f, "corrupt encoded data: {reason}"),
            MediaError::Core(e) => write!(f, "document error: {e}"),
        }
    }
}

impl std::error::Error for MediaError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            MediaError::Core(e) => Some(e),
            _ => None,
        }
    }
}

impl From<cmif_core::error::CoreError> for MediaError {
    fn from(e: cmif_core::error::CoreError) -> Self {
        MediaError::Core(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cmif_core::channel::MediaKind;

    #[test]
    fn display_names_the_problem() {
        assert!(MediaError::UnknownBlock { key: "x".into() }
            .to_string()
            .contains("x"));
        assert!(MediaError::WrongMedium {
            operation: "crop",
            found: MediaKind::Audio
        }
        .to_string()
        .contains("crop"));
        assert!(MediaError::SelectionOutOfRange {
            reason: "past end".into()
        }
        .to_string()
        .contains("past end"));
    }

    #[test]
    fn implements_std_error() {
        fn is_error<E: std::error::Error>(_: &E) {}
        is_error(&MediaError::CorruptData {
            reason: "truncated".into(),
        });
    }

    #[test]
    fn core_errors_convert_and_chain() {
        use std::error::Error;
        let err: MediaError = cmif_core::error::CoreError::EmptyDocument.into();
        assert!(matches!(err, MediaError::Core(_)));
        assert!(err.source().is_some());
    }
}
