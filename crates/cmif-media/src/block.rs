//! Media data blocks.
//!
//! "Data blocks contain data that is typically associated with a single
//! medium. Examples may be sound clips, video segments, text blocks,
//! graphics images, etc. They may also be programs that produce information
//! of a particular type." (§3.1)
//!
//! A [`MediaBlock`] is the *data* side of the Figure 2 picture: the bytes a
//! data descriptor describes. CMIF documents never embed these; they stay in
//! a [`crate::store::BlockStore`] (or behind the simulated distributed store
//! of `cmif-distrib`) and are fetched only when a presentation actually
//! needs them.

use bytes::Bytes;
use cmif_core::channel::MediaKind;
use cmif_core::descriptor::{DataDescriptor, ResourceNeeds};
use cmif_core::time::{RateInfo, TimeMs};

/// The payload of a media block, one variant per medium.
#[derive(Debug, Clone, PartialEq)]
pub enum MediaPayload {
    /// Sampled audio: unsigned 8-bit PCM.
    Audio {
        /// Samples per second.
        sample_rate: u32,
        /// The PCM samples.
        samples: Bytes,
    },
    /// A sequence of raster frames, all of the same geometry.
    Video {
        /// Frame width in pixels.
        width: u32,
        /// Frame height in pixels.
        height: u32,
        /// Frames per second.
        fps: f64,
        /// Colour depth in bits per pixel (8 or 24).
        color_depth: u8,
        /// Concatenated frame rasters.
        frames: Bytes,
        /// Number of frames in `frames`.
        frame_count: u32,
    },
    /// A single raster image.
    Image {
        /// Width in pixels.
        width: u32,
        /// Height in pixels.
        height: u32,
        /// Colour depth in bits per pixel (8 or 24).
        color_depth: u8,
        /// The raster, row-major.
        pixels: Bytes,
    },
    /// Flowing text.
    Text {
        /// The text content.
        content: String,
    },
    /// A generator program: executing it produces a block of another medium
    /// ("a graphics program that produces a rendered 3-D image", §3.1).
    Generator {
        /// A description of the program (its name / parameters).
        program: String,
        /// The medium the program produces.
        produces: MediaKind,
    },
}

impl MediaPayload {
    /// The medium of this payload.
    pub fn medium(&self) -> MediaKind {
        match self {
            MediaPayload::Audio { .. } => MediaKind::Audio,
            MediaPayload::Video { .. } => MediaKind::Video,
            MediaPayload::Image { .. } => MediaKind::Image,
            MediaPayload::Text { .. } => MediaKind::Text,
            MediaPayload::Generator { .. } => MediaKind::Generator,
        }
    }

    /// Size of the payload in bytes.
    pub fn size_bytes(&self) -> u64 {
        match self {
            MediaPayload::Audio { samples, .. } => samples.len() as u64,
            MediaPayload::Video { frames, .. } => frames.len() as u64,
            MediaPayload::Image { pixels, .. } => pixels.len() as u64,
            MediaPayload::Text { content } => content.len() as u64,
            MediaPayload::Generator { program, .. } => program.len() as u64,
        }
    }

    /// The natural presentation duration of the payload, if it has one.
    pub fn duration(&self) -> Option<TimeMs> {
        match self {
            MediaPayload::Audio {
                sample_rate,
                samples,
            } => {
                if *sample_rate == 0 {
                    None
                } else {
                    Some(TimeMs::from_millis(
                        (samples.len() as i64 * 1000) / *sample_rate as i64,
                    ))
                }
            }
            MediaPayload::Video {
                fps, frame_count, ..
            } => {
                if *fps <= 0.0 {
                    None
                } else {
                    Some(TimeMs::from_millis(
                        (*frame_count as f64 * 1000.0 / fps) as i64,
                    ))
                }
            }
            _ => None,
        }
    }

    /// Bytes per frame for a raster payload (video frame or whole image).
    pub fn bytes_per_frame(&self) -> Option<u64> {
        match self {
            MediaPayload::Video {
                width,
                height,
                color_depth,
                ..
            }
            | MediaPayload::Image {
                width,
                height,
                color_depth,
                ..
            } => Some(*width as u64 * *height as u64 * (*color_depth as u64 / 8).max(1)),
            _ => None,
        }
    }
}

/// A stored media block: a descriptor key plus the payload it describes.
#[derive(Debug, Clone, PartialEq)]
pub struct MediaBlock {
    /// The key the block is known by (the `file` attribute value and
    /// descriptor key).
    pub key: String,
    /// The media bytes.
    pub payload: MediaPayload,
}

impl MediaBlock {
    /// Creates a block.
    pub fn new(key: impl Into<String>, payload: MediaPayload) -> MediaBlock {
        MediaBlock {
            key: key.into(),
            payload,
        }
    }

    /// Builds the [`DataDescriptor`] that describes this block — the
    /// "compile descriptors" job of the media capture tools (§2).
    pub fn describe(&self) -> DataDescriptor {
        let medium = self.payload.medium();
        let size = self.payload.size_bytes();
        let mut descriptor =
            DataDescriptor::new(self.key.clone(), medium, format_name(&self.payload))
                .with_size(size);
        if let Some(duration) = self.payload.duration() {
            descriptor = descriptor.with_duration(duration);
            let seconds = (duration.as_millis() as f64 / 1000.0).max(0.001);
            descriptor = descriptor.with_resources(ResourceNeeds {
                bandwidth_bps: (size as f64 / seconds) as u64,
                decode_cost: decode_cost(&self.payload),
                memory_bytes: self.payload.bytes_per_frame().unwrap_or(size.min(65_536)),
            });
        } else {
            descriptor = descriptor.with_resources(ResourceNeeds {
                bandwidth_bps: 0,
                decode_cost: decode_cost(&self.payload),
                memory_bytes: size,
            });
        }
        match &self.payload {
            MediaPayload::Audio { sample_rate, .. } => {
                descriptor =
                    descriptor.with_rates(RateInfo::audio(*sample_rate, *sample_rate as u64));
            }
            MediaPayload::Video {
                width,
                height,
                fps,
                color_depth,
                ..
            } => {
                descriptor = descriptor
                    .with_resolution(*width, *height)
                    .with_color_depth(*color_depth)
                    .with_rates(RateInfo::video(*fps));
            }
            MediaPayload::Image {
                width,
                height,
                color_depth,
                ..
            } => {
                descriptor = descriptor
                    .with_resolution(*width, *height)
                    .with_color_depth(*color_depth);
            }
            MediaPayload::Text { .. } | MediaPayload::Generator { .. } => {}
        }
        descriptor
    }
}

fn format_name(payload: &MediaPayload) -> &'static str {
    match payload {
        MediaPayload::Audio { .. } => "pcm8",
        MediaPayload::Video { color_depth: 8, .. } => "raw-video8",
        MediaPayload::Video { .. } => "raw-video24",
        MediaPayload::Image { color_depth: 8, .. } => "raster8",
        MediaPayload::Image { .. } => "raster24",
        MediaPayload::Text { .. } => "plain-text",
        MediaPayload::Generator { .. } => "generator",
    }
}

fn decode_cost(payload: &MediaPayload) -> u32 {
    match payload {
        MediaPayload::Audio { .. } => 5,
        MediaPayload::Video { width, height, .. } => ((width * height) / 10_000).max(10),
        MediaPayload::Image { width, height, .. } => ((width * height) / 50_000).max(2),
        MediaPayload::Text { .. } => 1,
        MediaPayload::Generator { .. } => 50,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn audio_payload(seconds: u32, sample_rate: u32) -> MediaPayload {
        MediaPayload::Audio {
            sample_rate,
            samples: Bytes::from(vec![128u8; (seconds * sample_rate) as usize]),
        }
    }

    #[test]
    fn payload_medium_and_size() {
        assert_eq!(audio_payload(1, 8000).medium(), MediaKind::Audio);
        assert_eq!(audio_payload(1, 8000).size_bytes(), 8000);
        let text = MediaPayload::Text {
            content: "abc".into(),
        };
        assert_eq!(text.medium(), MediaKind::Text);
        assert_eq!(text.size_bytes(), 3);
    }

    #[test]
    fn audio_duration_from_sample_count() {
        assert_eq!(
            audio_payload(3, 8000).duration(),
            Some(TimeMs::from_secs(3))
        );
        let silent = MediaPayload::Audio {
            sample_rate: 0,
            samples: Bytes::new(),
        };
        assert_eq!(silent.duration(), None);
    }

    #[test]
    fn video_duration_from_frame_count() {
        let video = MediaPayload::Video {
            width: 4,
            height: 4,
            fps: 25.0,
            color_depth: 8,
            frames: Bytes::from(vec![0u8; 16 * 50]),
            frame_count: 50,
        };
        assert_eq!(video.duration(), Some(TimeMs::from_secs(2)));
        assert_eq!(video.bytes_per_frame(), Some(16));
    }

    #[test]
    fn image_and_text_have_no_natural_duration() {
        let image = MediaPayload::Image {
            width: 2,
            height: 2,
            color_depth: 24,
            pixels: Bytes::from(vec![0u8; 12]),
        };
        assert_eq!(image.duration(), None);
        assert_eq!(image.bytes_per_frame(), Some(12));
        assert_eq!(
            MediaPayload::Text {
                content: "x".into()
            }
            .duration(),
            None
        );
    }

    #[test]
    fn describe_builds_a_consistent_descriptor() {
        let block = MediaBlock::new("clip", audio_payload(2, 8000));
        let descriptor = block.describe();
        assert_eq!(descriptor.key, "clip");
        assert_eq!(descriptor.medium, MediaKind::Audio);
        assert_eq!(descriptor.size_bytes, 16_000);
        assert_eq!(descriptor.duration, Some(TimeMs::from_secs(2)));
        assert_eq!(descriptor.rates.samples_per_second, Some(8000));
        assert_eq!(descriptor.resources.bandwidth_bps, 8_000);
    }

    #[test]
    fn describe_video_includes_resolution_and_rates() {
        let block = MediaBlock::new(
            "film",
            MediaPayload::Video {
                width: 320,
                height: 240,
                fps: 25.0,
                color_depth: 24,
                frames: Bytes::from(vec![0u8; 320 * 240 * 3 * 25]),
                frame_count: 25,
            },
        );
        let descriptor = block.describe();
        assert_eq!(descriptor.resolution, Some((320, 240)));
        assert_eq!(descriptor.color_depth, Some(24));
        assert_eq!(descriptor.rates.frames_per_second, Some(25.0));
        assert_eq!(descriptor.duration, Some(TimeMs::from_secs(1)));
        assert!(descriptor.resources.bandwidth_bps > 1_000_000);
    }

    #[test]
    fn generator_payload_describes_its_product() {
        let block = MediaBlock::new(
            "render",
            MediaPayload::Generator {
                program: "ray-trace scene-7".into(),
                produces: MediaKind::Image,
            },
        );
        let descriptor = block.describe();
        assert_eq!(descriptor.medium, MediaKind::Generator);
        assert_eq!(descriptor.format, "generator");
        assert!(descriptor.duration.is_none());
    }

    #[test]
    fn format_names_follow_colour_depth() {
        let image8 = MediaPayload::Image {
            width: 1,
            height: 1,
            color_depth: 8,
            pixels: Bytes::from(vec![0u8]),
        };
        assert_eq!(format_name(&image8), "raster8");
        let image24 = MediaPayload::Image {
            width: 1,
            height: 1,
            color_depth: 24,
            pixels: Bytes::from(vec![0u8; 3]),
        };
        assert_eq!(format_name(&image24), "raster24");
    }
}
