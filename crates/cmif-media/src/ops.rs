//! Operations on media payloads: selections and constraint-filter
//! transcodes.
//!
//! Two groups of operations live here:
//!
//! * **selections** — the `slice`, `crop` and `clip` attributes of Figure 7
//!   applied to actual data ([`apply_selection`]);
//! * **constraint filters** — the degradations the paper's constraint
//!   filtering tools perform to fit a document onto a weaker device (§2):
//!   "24-bit color to 8-bit color, color to monochrome, high-resolution to
//!   low resolution, full-frame-rate video to sub-sampled rate video".
//!   [`reduce_color_depth`], [`downscale`], [`subsample_frame_rate`] and
//!   [`downsample_audio`] implement those degradations on the synthetic
//!   payloads.

use bytes::Bytes;
use cmif_core::descriptor::Selection;

use crate::block::MediaPayload;
use crate::error::{MediaError, Result};

/// Applies a document selection to a payload, producing the reduced payload
/// a presentation would actually use.
pub fn apply_selection(payload: &MediaPayload, selection: &Selection) -> Result<MediaPayload> {
    match selection {
        Selection::Slice { start, length } => slice_bytes(payload, *start, *length),
        Selection::Crop {
            x,
            y,
            width,
            height,
        } => crop(payload, *x, *y, *width, *height),
        Selection::Clip {
            start_ms,
            duration_ms,
        } => clip(payload, *start_ms, *duration_ms),
    }
}

/// Extracts a byte range from any payload (the `slice` attribute).
pub fn slice_bytes(payload: &MediaPayload, start: u64, length: u64) -> Result<MediaPayload> {
    let take = |bytes: &Bytes| -> Result<Bytes> {
        let end = start
            .checked_add(length)
            .ok_or_else(|| MediaError::SelectionOutOfRange {
                reason: "slice end overflows".to_string(),
            })?;
        if end as usize > bytes.len() {
            return Err(MediaError::SelectionOutOfRange {
                reason: format!("slice {start}+{length} exceeds {} bytes", bytes.len()),
            });
        }
        Ok(bytes.slice(start as usize..end as usize))
    };
    match payload {
        MediaPayload::Audio {
            sample_rate,
            samples,
        } => Ok(MediaPayload::Audio {
            sample_rate: *sample_rate,
            samples: take(samples)?,
        }),
        MediaPayload::Video {
            width,
            height,
            fps,
            color_depth,
            frames,
            ..
        } => {
            let sliced = take(frames)?;
            let frame_size =
                (*width as usize * *height as usize * (*color_depth as usize / 8).max(1)).max(1);
            Ok(MediaPayload::Video {
                width: *width,
                height: *height,
                fps: *fps,
                color_depth: *color_depth,
                frame_count: (sliced.len() / frame_size) as u32,
                frames: sliced,
            })
        }
        MediaPayload::Image {
            width,
            height,
            color_depth,
            pixels,
        } => Ok(MediaPayload::Image {
            width: *width,
            height: *height,
            color_depth: *color_depth,
            pixels: take(pixels)?,
        }),
        MediaPayload::Text { content } => {
            let end = (start + length) as usize;
            if end > content.len() {
                return Err(MediaError::SelectionOutOfRange {
                    reason: format!("slice exceeds {} bytes of text", content.len()),
                });
            }
            Ok(MediaPayload::Text {
                content: content[start as usize..end].to_string(),
            })
        }
        MediaPayload::Generator { .. } => Err(MediaError::WrongMedium {
            operation: "slice",
            found: payload.medium(),
        }),
    }
}

/// Extracts a rectangular sub-image (the `crop` attribute).
pub fn crop(
    payload: &MediaPayload,
    x: u32,
    y: u32,
    width: u32,
    height: u32,
) -> Result<MediaPayload> {
    match payload {
        MediaPayload::Image {
            width: full_w,
            height: full_h,
            color_depth,
            pixels,
        } => {
            if x + width > *full_w || y + height > *full_h {
                return Err(MediaError::SelectionOutOfRange {
                    reason: format!(
                        "crop {x},{y} {width}x{height} exceeds image {full_w}x{full_h}"
                    ),
                });
            }
            let bpp = (*color_depth as usize / 8).max(1);
            let mut out = Vec::with_capacity(width as usize * height as usize * bpp);
            for row in y..y + height {
                let row_start = (row as usize * *full_w as usize + x as usize) * bpp;
                out.extend_from_slice(&pixels[row_start..row_start + width as usize * bpp]);
            }
            Ok(MediaPayload::Image {
                width,
                height,
                color_depth: *color_depth,
                pixels: Bytes::from(out),
            })
        }
        other => Err(MediaError::WrongMedium {
            operation: "crop",
            found: other.medium(),
        }),
    }
}

/// Extracts a temporal part of an audio or video payload (the `clip`
/// attribute).
pub fn clip(payload: &MediaPayload, start_ms: i64, duration_ms: i64) -> Result<MediaPayload> {
    if start_ms < 0 || duration_ms < 0 {
        return Err(MediaError::SelectionOutOfRange {
            reason: "clip times must be non-negative".to_string(),
        });
    }
    match payload {
        MediaPayload::Audio {
            sample_rate,
            samples,
        } => {
            let start = (start_ms as u64 * *sample_rate as u64 / 1000) as usize;
            let len = (duration_ms as u64 * *sample_rate as u64 / 1000) as usize;
            if start + len > samples.len() {
                return Err(MediaError::SelectionOutOfRange {
                    reason: format!("clip exceeds audio of {} samples", samples.len()),
                });
            }
            Ok(MediaPayload::Audio {
                sample_rate: *sample_rate,
                samples: samples.slice(start..start + len),
            })
        }
        MediaPayload::Video {
            width,
            height,
            fps,
            color_depth,
            frames,
            frame_count,
        } => {
            let frame_size =
                (*width as usize * *height as usize * (*color_depth as usize / 8).max(1)).max(1);
            let first = ((start_ms as f64 / 1000.0) * fps).floor() as usize;
            let count = ((duration_ms as f64 / 1000.0) * fps).round() as usize;
            if first + count > *frame_count as usize {
                return Err(MediaError::SelectionOutOfRange {
                    reason: format!("clip exceeds video of {frame_count} frames"),
                });
            }
            Ok(MediaPayload::Video {
                width: *width,
                height: *height,
                fps: *fps,
                color_depth: *color_depth,
                frames: frames.slice(first * frame_size..(first + count) * frame_size),
                frame_count: count as u32,
            })
        }
        other => Err(MediaError::WrongMedium {
            operation: "clip",
            found: other.medium(),
        }),
    }
}

/// Reduces 24-bit colour to 8-bit (or leaves 8-bit data untouched) — the
/// "24-bit color to 8-bit color" constraint filter.
pub fn reduce_color_depth(payload: &MediaPayload, target_bits: u8) -> Result<MediaPayload> {
    if target_bits != 8 {
        return Err(MediaError::UnsupportedConversion {
            reason: format!("only 8-bit targets are supported, asked for {target_bits}"),
        });
    }
    let quantize = |bytes: &Bytes, bpp: usize| -> Bytes {
        if bpp == 1 {
            return bytes.clone();
        }
        let mut out = Vec::with_capacity(bytes.len() / bpp);
        for pixel in bytes.chunks(bpp) {
            let luma = pixel.iter().map(|b| *b as u32).sum::<u32>() / bpp as u32;
            out.push(luma as u8);
        }
        Bytes::from(out)
    };
    match payload {
        MediaPayload::Image {
            width,
            height,
            color_depth,
            pixels,
        } => Ok(MediaPayload::Image {
            width: *width,
            height: *height,
            color_depth: 8,
            pixels: quantize(pixels, (*color_depth as usize / 8).max(1)),
        }),
        MediaPayload::Video {
            width,
            height,
            fps,
            color_depth,
            frames,
            frame_count,
        } => Ok(MediaPayload::Video {
            width: *width,
            height: *height,
            fps: *fps,
            color_depth: 8,
            frames: quantize(frames, (*color_depth as usize / 8).max(1)),
            frame_count: *frame_count,
        }),
        other => Err(MediaError::WrongMedium {
            operation: "reduce_color_depth",
            found: other.medium(),
        }),
    }
}

/// Downscales a raster payload by an integer factor — the "high-resolution
/// to low resolution" constraint filter.
pub fn downscale(payload: &MediaPayload, factor: u32) -> Result<MediaPayload> {
    if factor == 0 {
        return Err(MediaError::UnsupportedConversion {
            reason: "downscale factor must be at least 1".to_string(),
        });
    }
    let scale_raster =
        |bytes: &Bytes, w: u32, h: u32, bpp: usize, frames: u32| -> (Bytes, u32, u32) {
            let new_w = (w / factor).max(1);
            let new_h = (h / factor).max(1);
            let mut out =
                Vec::with_capacity(new_w as usize * new_h as usize * bpp * frames as usize);
            let frame_size = w as usize * h as usize * bpp;
            for frame in 0..frames as usize {
                let base = frame * frame_size;
                for y in 0..new_h {
                    for x in 0..new_w {
                        let src = base
                            + ((y * factor) as usize * w as usize + (x * factor) as usize) * bpp;
                        out.extend_from_slice(&bytes[src..src + bpp]);
                    }
                }
            }
            (Bytes::from(out), new_w, new_h)
        };
    match payload {
        MediaPayload::Image {
            width,
            height,
            color_depth,
            pixels,
        } => {
            let bpp = (*color_depth as usize / 8).max(1);
            let (scaled, new_w, new_h) = scale_raster(pixels, *width, *height, bpp, 1);
            Ok(MediaPayload::Image {
                width: new_w,
                height: new_h,
                color_depth: *color_depth,
                pixels: scaled,
            })
        }
        MediaPayload::Video {
            width,
            height,
            fps,
            color_depth,
            frames,
            frame_count,
        } => {
            let bpp = (*color_depth as usize / 8).max(1);
            let (scaled, new_w, new_h) = scale_raster(frames, *width, *height, bpp, *frame_count);
            Ok(MediaPayload::Video {
                width: new_w,
                height: new_h,
                fps: *fps,
                color_depth: *color_depth,
                frames: scaled,
                frame_count: *frame_count,
            })
        }
        other => Err(MediaError::WrongMedium {
            operation: "downscale",
            found: other.medium(),
        }),
    }
}

/// Keeps every `keep_one_in`-th frame — the "full-frame-rate video to
/// sub-sampled rate video" constraint filter.
pub fn subsample_frame_rate(payload: &MediaPayload, keep_one_in: u32) -> Result<MediaPayload> {
    if keep_one_in == 0 {
        return Err(MediaError::UnsupportedConversion {
            reason: "subsample factor must be at least 1".to_string(),
        });
    }
    match payload {
        MediaPayload::Video {
            width,
            height,
            fps,
            color_depth,
            frames,
            frame_count,
        } => {
            let frame_size =
                (*width as usize * *height as usize * (*color_depth as usize / 8).max(1)).max(1);
            let mut out = Vec::new();
            let mut kept = 0;
            for frame in 0..*frame_count as usize {
                if frame % keep_one_in as usize == 0 {
                    out.extend_from_slice(&frames[frame * frame_size..(frame + 1) * frame_size]);
                    kept += 1;
                }
            }
            Ok(MediaPayload::Video {
                width: *width,
                height: *height,
                fps: fps / keep_one_in as f64,
                color_depth: *color_depth,
                frames: Bytes::from(out),
                frame_count: kept,
            })
        }
        other => Err(MediaError::WrongMedium {
            operation: "subsample_frame_rate",
            found: other.medium(),
        }),
    }
}

/// Halves (or otherwise integer-divides) the audio sampling rate.
pub fn downsample_audio(payload: &MediaPayload, factor: u32) -> Result<MediaPayload> {
    if factor == 0 {
        return Err(MediaError::UnsupportedConversion {
            reason: "downsample factor must be at least 1".to_string(),
        });
    }
    match payload {
        MediaPayload::Audio {
            sample_rate,
            samples,
        } => {
            let kept: Vec<u8> = samples.iter().copied().step_by(factor as usize).collect();
            Ok(MediaPayload::Audio {
                sample_rate: (*sample_rate / factor).max(1),
                samples: Bytes::from(kept),
            })
        }
        other => Err(MediaError::WrongMedium {
            operation: "downsample_audio",
            found: other.medium(),
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::MediaGenerator;
    use cmif_core::time::TimeMs;

    fn generator() -> MediaGenerator {
        MediaGenerator::new(99)
    }

    #[test]
    fn slice_respects_bounds() {
        let audio = generator().audio("a", 1_000, 8000);
        let sliced = slice_bytes(&audio.payload, 0, 4_000).unwrap();
        assert_eq!(sliced.size_bytes(), 4_000);
        assert!(slice_bytes(&audio.payload, 7_000, 2_000).is_err());
    }

    #[test]
    fn slice_text_by_bytes() {
        let text = MediaPayload::Text {
            content: "hello world".into(),
        };
        let sliced = slice_bytes(&text, 6, 5).unwrap();
        match sliced {
            MediaPayload::Text { content } => assert_eq!(content, "world"),
            other => panic!("unexpected payload {other:?}"),
        }
    }

    #[test]
    fn crop_extracts_subimage() {
        let image = generator().image("pic", 32, 32, 24);
        let cropped = crop(&image.payload, 4, 4, 8, 8).unwrap();
        match cropped {
            MediaPayload::Image {
                width,
                height,
                pixels,
                ..
            } => {
                assert_eq!((width, height), (8, 8));
                assert_eq!(pixels.len(), 8 * 8 * 3);
            }
            other => panic!("unexpected payload {other:?}"),
        }
        assert!(crop(&image.payload, 30, 30, 8, 8).is_err());
        let audio = generator().audio("a", 100, 8000);
        assert!(matches!(
            crop(&audio.payload, 0, 0, 1, 1).unwrap_err(),
            MediaError::WrongMedium { .. }
        ));
    }

    #[test]
    fn clip_audio_by_time() {
        let audio = generator().audio("a", 4_000, 8000);
        let clipped = clip(&audio.payload, 1_000, 2_000).unwrap();
        assert_eq!(clipped.duration(), Some(TimeMs::from_secs(2)));
        assert!(clip(&audio.payload, 3_500, 1_000).is_err());
        assert!(clip(&audio.payload, -1, 100).is_err());
    }

    #[test]
    fn clip_video_by_time() {
        let video = generator().video("v", 4_000, 16, 16, 25.0, 8);
        let clipped = clip(&video.payload, 0, 2_000).unwrap();
        match clipped {
            MediaPayload::Video { frame_count, .. } => assert_eq!(frame_count, 50),
            other => panic!("unexpected payload {other:?}"),
        }
    }

    #[test]
    fn apply_selection_dispatches() {
        let image = generator().image("pic", 16, 16, 8);
        let out = apply_selection(
            &image.payload,
            &Selection::Crop {
                x: 0,
                y: 0,
                width: 4,
                height: 4,
            },
        )
        .unwrap();
        assert_eq!(out.size_bytes(), 16);
        let audio = generator().audio("a", 1_000, 8000);
        let out = apply_selection(
            &audio.payload,
            &Selection::Clip {
                start_ms: 0,
                duration_ms: 500,
            },
        )
        .unwrap();
        assert_eq!(out.size_bytes(), 4_000);
        let out = apply_selection(
            &audio.payload,
            &Selection::Slice {
                start: 0,
                length: 100,
            },
        )
        .unwrap();
        assert_eq!(out.size_bytes(), 100);
    }

    #[test]
    fn reduce_color_depth_shrinks_by_three() {
        let image = generator().image("pic", 16, 16, 24);
        let reduced = reduce_color_depth(&image.payload, 8).unwrap();
        assert_eq!(reduced.size_bytes(), 16 * 16);
        match reduced {
            MediaPayload::Image { color_depth, .. } => assert_eq!(color_depth, 8),
            other => panic!("unexpected payload {other:?}"),
        }
        // Reducing already-8-bit data is a no-op.
        let image8 = generator().image("pic8", 16, 16, 8);
        assert_eq!(
            reduce_color_depth(&image8.payload, 8).unwrap().size_bytes(),
            16 * 16
        );
        assert!(reduce_color_depth(&image.payload, 4).is_err());
    }

    #[test]
    fn downscale_reduces_geometry() {
        let image = generator().image("pic", 32, 32, 24);
        let small = downscale(&image.payload, 2).unwrap();
        match small {
            MediaPayload::Image {
                width,
                height,
                pixels,
                ..
            } => {
                assert_eq!((width, height), (16, 16));
                assert_eq!(pixels.len(), 16 * 16 * 3);
            }
            other => panic!("unexpected payload {other:?}"),
        }
        assert!(downscale(&image.payload, 0).is_err());
        let video = generator().video("v", 1_000, 32, 32, 25.0, 8);
        let small = downscale(&video.payload, 4).unwrap();
        match small {
            MediaPayload::Video {
                width,
                height,
                frame_count,
                ..
            } => {
                assert_eq!((width, height), (8, 8));
                assert_eq!(frame_count, 25);
            }
            other => panic!("unexpected payload {other:?}"),
        }
    }

    #[test]
    fn subsample_halves_frame_rate() {
        let video = generator().video("v", 2_000, 8, 8, 24.0, 8);
        let sub = subsample_frame_rate(&video.payload, 2).unwrap();
        match sub {
            MediaPayload::Video {
                fps, frame_count, ..
            } => {
                assert_eq!(fps, 12.0);
                assert_eq!(frame_count, 24);
            }
            other => panic!("unexpected payload {other:?}"),
        }
        // Duration is (approximately) preserved.
        assert_eq!(sub.duration(), video.payload.duration());
        assert!(subsample_frame_rate(&video.payload, 0).is_err());
    }

    #[test]
    fn downsample_audio_halves_rate_and_size() {
        let audio = generator().audio("a", 1_000, 8000);
        let down = downsample_audio(&audio.payload, 2).unwrap();
        match &down {
            MediaPayload::Audio {
                sample_rate,
                samples,
            } => {
                assert_eq!(*sample_rate, 4000);
                assert_eq!(samples.len(), 4000);
            }
            other => panic!("unexpected payload {other:?}"),
        }
        assert_eq!(down.duration(), audio.payload.duration());
    }

    #[test]
    fn filters_reject_wrong_media() {
        let text = MediaPayload::Text {
            content: "x".into(),
        };
        assert!(matches!(
            downscale(&text, 2).unwrap_err(),
            MediaError::WrongMedium { .. }
        ));
        assert!(matches!(
            subsample_frame_rate(&text, 2).unwrap_err(),
            MediaError::WrongMedium { .. }
        ));
        assert!(matches!(
            downsample_audio(&text, 2).unwrap_err(),
            MediaError::WrongMedium { .. }
        ));
        assert!(matches!(
            reduce_color_depth(&text, 8).unwrap_err(),
            MediaError::WrongMedium { .. }
        ));
    }
}
