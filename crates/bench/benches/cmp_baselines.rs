//! §3.2 — comparison with the Muse-style timeline and MIF/Diamond-style
//! static formats.
//!
//! The paper's comparison is qualitative; this bench puts numbers on it:
//! what each conversion loses, what a retargeting edit costs in each format
//! (hand-edited cues vs a re-solve), and how the conversion and re-solve
//! times compare.
//!
//! Expected shape: CMIF pays a modest scheduling cost and in exchange keeps
//! structure, tolerance windows and device independence; the timeline needs
//! hand edits proportional to the document length for a one-block change;
//! the static format cannot represent the temporal behaviour at all.

use std::time::Duration;

use cmif::baselines::{conversion_loss, to_static, MuseTimeline};
use cmif::core::prelude::*;
use cmif::news::evening_news;
use cmif::scheduler::{ConstraintGraph, ScheduleOptions};
use cmif::synthetic::SyntheticNews;
use cmif_bench::banner;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_baselines(c: &mut Criterion) {
    // Regenerate the artifact: loss and retargeting cost for the news.
    let doc = evening_news().unwrap();
    let solved = ConstraintGraph::derive(&doc, &doc.catalog, &ScheduleOptions::default())
        .unwrap()
        .solve(&doc, &doc.catalog)
        .unwrap();
    let timeline = MuseTimeline::from_schedule(&solved.schedule);
    let timeline_loss = conversion_loss(&doc);
    let (_, static_loss) = to_static(&doc).unwrap();
    let changed = doc.find("/story-3/caption-track/caption-1").unwrap();
    banner(
        "§3.2: what the baseline formats lose on the Evening News",
        &format!(
            "Muse timeline: {} cues; loses {} structure nodes, {} arcs, {} styles\n\
             retargeting one caption: {} hand-edited cues (CMIF: 0, one descriptor change + re-solve)\n\
             MIF static document: keeps {} elements; loses {} channels, {} arcs, {} timed leaves, \
             {} continuous-media leaves",
            timeline.len(),
            timeline_loss.structure_nodes_lost,
            timeline_loss.arcs_lost,
            timeline_loss.styles_lost,
            timeline.retarget_cost(changed, 2_000),
            static_loss.elements_kept,
            static_loss.channels_lost,
            static_loss.arcs_lost,
            static_loss.timed_leaves_lost,
            static_loss.continuous_media_lost
        ),
    );

    let mut group = c.benchmark_group("cmp_baselines");
    for stories in [2usize, 8, 32] {
        let broadcast = SyntheticNews::with_stories(stories).build().unwrap();
        let broadcast_solved =
            ConstraintGraph::derive(&broadcast, &broadcast.catalog, &ScheduleOptions::default())
                .unwrap()
                .solve(&broadcast, &broadcast.catalog)
                .unwrap();
        let broadcast_timeline = MuseTimeline::from_schedule(&broadcast_solved.schedule);
        let first_voice = broadcast.find("/story-0/narration").unwrap();

        // CMIF retargeting: change one descriptor and re-solve everything.
        group.bench_with_input(
            BenchmarkId::new("cmif_retarget_resolve", stories),
            &broadcast,
            |b, broadcast| {
                b.iter(|| {
                    let mut edited = broadcast.clone();
                    edited.catalog.upsert(
                        DataDescriptor::new("s0/audio", MediaKind::Audio, "pcm8")
                            .with_duration(TimeMs::from_secs(45)),
                    );
                    ConstraintGraph::derive(&edited, &edited.catalog, &ScheduleOptions::default())
                        .unwrap()
                        .solve(&edited, &edited.catalog)
                        .unwrap()
                })
            },
        );
        // Timeline retargeting: shift every downstream cue by hand.
        group.bench_with_input(
            BenchmarkId::new("muse_retarget_shift", stories),
            &broadcast_timeline,
            |b, timeline| {
                b.iter(|| {
                    let mut edited = timeline.clone();
                    edited.retarget(first_voice, 15_000);
                    edited
                })
            },
        );
        // Conversion costs.
        group.bench_with_input(
            BenchmarkId::new("convert_to_timeline", stories),
            &broadcast_solved,
            |b, solved| b.iter(|| MuseTimeline::from_schedule(&solved.schedule)),
        );
        group.bench_with_input(
            BenchmarkId::new("convert_to_static", stories),
            &broadcast,
            |b, broadcast| b.iter(|| to_static(broadcast).unwrap()),
        );
    }
    group.finish();
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_baselines
}
criterion_main!(benches);
