//! Figure 1 — the CWI/Multimedia Pipeline.
//!
//! Regenerates the pipeline artifact by running every stage (structure
//! validation, presentation mapping, constraint filtering, scheduling +
//! conflicts, viewing, playback) over broadcasts of growing size, and
//! measures where the time goes. The paper's claim is architectural: the
//! target-system-independent stages operate on the document description
//! only, so they stay cheap as the (simulated) media grows.

use std::time::Duration;

use cmif::pipeline::constraint::DeviceProfile;
use cmif::pipeline::pipeline::{run_structure_only, PipelineBuilder};
use cmif::scheduler::ScheduleOptions;
use cmif::synthetic::SyntheticNews;
use cmif_bench::{banner, news_fixture};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_pipeline(c: &mut Criterion) {
    // Regenerate the artifact: one full pipeline run with per-stage timings.
    let (doc, store) = news_fixture();
    let workstation = PipelineBuilder::new(DeviceProfile::workstation());
    let run = workstation.run(&doc, &store).expect("pipeline runs");
    banner(
        "Figure 1: pipeline stages (Evening News on a workstation)",
        &format!(
            "validate {:?}, presentation {:?}, filtering {:?}, scheduling {:?}, viewing {:?}, \
             playback {:?}\npresentable: {}",
            run.timings.validate,
            run.timings.presentation,
            run.timings.filtering,
            run.timings.scheduling,
            run.timings.viewing,
            run.timings.playback,
            run.is_presentable()
        ),
    );

    let mut group = c.benchmark_group("fig01_pipeline");
    // Full pipeline on the Evening News.
    group.bench_function("evening_news_full_pipeline", |b| {
        b.iter(|| workstation.run(&doc, &store).unwrap())
    });

    // Structure-only stages as the broadcast grows: the cost should scale
    // with document size, not with media size (which is held out entirely).
    for stories in [1usize, 4, 16, 64] {
        let broadcast = SyntheticNews::with_stories(stories).build().unwrap();
        group.bench_with_input(
            BenchmarkId::new("structure_only_stages", stories),
            &broadcast,
            |b, broadcast| {
                b.iter(|| {
                    run_structure_only(broadcast, &broadcast.catalog, &ScheduleOptions::default())
                        .unwrap()
                })
            },
        );
    }
    group.finish();
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_pipeline
}
criterion_main!(benches);
