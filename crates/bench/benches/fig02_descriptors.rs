//! Figure 2 — data blocks, data descriptors, event descriptors (and the
//! optional DDBMS).
//!
//! The paper's claim: "much of the work associated with manipulating a
//! document can be based on relatively small clusters of data (the
//! attributes) rather than the often massive amounts of media-based data
//! itself" (§6). The bench compares answering the same query from the
//! attribute-indexed descriptor database against scanning the stored media
//! payloads, over stores of growing size.

use std::time::Duration;

use cmif::core::channel::MediaKind;
use cmif::core::value::AttrValue;
use cmif::core::Symbol;
use cmif::media::store::BlockStore;
use cmif::media::{index_store, MediaGenerator, Query};
use cmif_bench::banner;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

/// Builds a store of `blocks` small media blocks tagged with story ids.
fn build_store(blocks: usize) -> BlockStore {
    let store = BlockStore::new();
    let mut generator = MediaGenerator::new(2);
    for i in 0..blocks {
        let block = if i % 3 == 0 {
            generator.audio(&format!("block-{i}"), 2_000, 8_000)
        } else if i % 3 == 1 {
            generator.image(&format!("block-{i}"), 64, 64, 24)
        } else {
            generator.text(&format!("block-{i}"), 40)
        };
        let descriptor = block
            .describe()
            .with_extra(
                "story",
                AttrValue::Id(Symbol::intern(&format!("story-{}", i % 10))),
            )
            .with_extra(
                "language",
                AttrValue::Id(if i % 2 == 0 { "nl" } else { "en" }.into()),
            );
        store.put_with_descriptor(block, descriptor).unwrap();
    }
    store
}

fn bench_descriptors(c: &mut Criterion) {
    // Regenerate the artifact: descriptor size vs data size for one store.
    let store = build_store(1_000);
    let db = index_store(&store).unwrap();
    banner(
        "Figure 2: descriptors vs data (1000 blocks)",
        &format!(
            "stored media: {:.1} MB, descriptors: {:.1} kB ({}x smaller)",
            store.total_bytes() as f64 / 1e6,
            db.total_descriptor_bytes() as f64 / 1e3,
            store.total_bytes() / db.total_descriptor_bytes().max(1) as u64
        ),
    );

    let query = Query::any()
        .with_medium(MediaKind::Image)
        .with_attribute("story", "story-3");

    let mut group = c.benchmark_group("fig02_descriptors");
    for blocks in [100usize, 1_000, 10_000] {
        let store = build_store(blocks);
        let db = index_store(&store).unwrap();
        group.bench_with_input(BenchmarkId::new("indexed_query", blocks), &db, |b, db| {
            b.iter(|| db.query(&query))
        });
        // The strawman only at the two smaller sizes (payload scans of a
        // 10k-block store take too long to be interesting).
        if blocks <= 1_000 {
            group.bench_with_input(
                BenchmarkId::new("payload_scan", blocks),
                &(&db, &store),
                |b, (db, store)| b.iter(|| db.scan_blocks(store, &query).unwrap()),
            );
        }
    }
    group.finish();

    // Sanity: the two paths agree.
    let store = build_store(300);
    let db = index_store(&store).unwrap();
    assert_eq!(db.query(&query), db.scan_blocks(&store, &query).unwrap());
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_descriptors
}
criterion_main!(benches);
