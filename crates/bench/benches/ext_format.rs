//! Extension — the wire codec's cost and size envelope.
//!
//! A document that travels (publish, replicate, transport) is serialized
//! and decoded once per hop, so the codec's cost is paid on every wire
//! crossing. This bench prices both interchange forms side by side on the
//! Figure 4 corpus (the Evening News document) and synthetic broadcasts at
//! 4/16/64 stories:
//!
//! * `parse_text` / `decode_binary` — bytes → validated document;
//! * `write_text` / `encode_binary` — document → wire bytes (both
//!   streaming serializers, no intermediate `String` per value);
//! * bytes-per-document for each form, which is what
//!   [`cmif::distrib::TrafficStats`] charges per structure transfer.
//!
//! The banner prints the size and throughput comparison, and the probe is
//! appended to `BENCH_ext_format.json` at the repo root so the codec's
//! perf trajectory is versioned next to the code.

use std::time::{Duration, Instant};

use cmif::core::tree::Document;
use cmif::format::{document_to_bytes, read_document_bytes, WireEncoding};
use cmif::news::evening_news;
use cmif::synthetic::SyntheticNews;
use cmif_bench::banner;
use cmif_bench::trajectory::{self, TrajectoryRun};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn corpus() -> Vec<(&'static str, Document)> {
    vec![
        ("fig04", evening_news().expect("evening news builds")),
        (
            "stories16",
            SyntheticNews::with_stories(16)
                .build()
                .expect("synthetic news builds"),
        ),
    ]
}

/// Decodes `bytes` `rounds` times and returns documents/sec (best of two).
fn decodes_per_sec(bytes: &[u8], rounds: usize) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..2 {
        let started = Instant::now();
        for _ in 0..rounds {
            let (doc, _) = read_document_bytes(bytes).expect("corpus bytes decode");
            assert!(doc.root().is_ok());
        }
        best = best.min(started.elapsed().as_secs_f64());
    }
    rounds as f64 / best
}

/// Encodes `doc` `rounds` times and returns documents/sec (best of two).
fn encodes_per_sec(doc: &Document, encoding: WireEncoding, rounds: usize) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..2 {
        let started = Instant::now();
        for _ in 0..rounds {
            let bytes = document_to_bytes(doc, encoding).expect("corpus encodes");
            assert!(!bytes.is_empty());
        }
        best = best.min(started.elapsed().as_secs_f64());
    }
    rounds as f64 / best
}

fn bench_format(c: &mut Criterion) {
    // Regenerate the artifact: size and throughput of both wire forms.
    let mut run = TrajectoryRun::now("cargo bench ext_format");
    let mut lines =
        String::from("corpus      text B   binary B   parse/s   decode/s   write/s   encode/s\n");
    for (label, doc) in corpus() {
        let text = document_to_bytes(&doc, WireEncoding::Text).expect("text encodes");
        let binary = document_to_bytes(&doc, WireEncoding::Binary).expect("binary encodes");
        assert!(
            binary.len() < text.len(),
            "binary must be the smaller wire form"
        );
        let rounds = 256;
        let parse_rate = decodes_per_sec(&text, rounds);
        let decode_rate = decodes_per_sec(&binary, rounds);
        let write_rate = encodes_per_sec(&doc, WireEncoding::Text, rounds);
        let encode_rate = encodes_per_sec(&doc, WireEncoding::Binary, rounds);
        lines.push_str(&format!(
            "{label:<11} {:<8} {:<10} {parse_rate:<9.0} {decode_rate:<10.0} \
             {write_rate:<9.0} {encode_rate:.0}\n",
            text.len(),
            binary.len(),
        ));
        run = run
            .metric(format!("{label}/text_bytes"), text.len() as f64)
            .metric(format!("{label}/binary_bytes"), binary.len() as f64)
            .metric(format!("{label}/parse_text_per_sec"), parse_rate)
            .metric(format!("{label}/decode_binary_per_sec"), decode_rate)
            .metric(format!("{label}/write_text_per_sec"), write_rate)
            .metric(format!("{label}/encode_binary_per_sec"), encode_rate);
    }
    banner("ext: wire codec cost (text vs binary per document)", &lines);
    match trajectory::record_run("ext_format", run) {
        Ok(path) => println!("perf trajectory appended to {}", path.display()),
        Err(e) => eprintln!("could not write the perf trajectory: {e}"),
    }

    // The gated targets.
    let mut group = c.benchmark_group("ext_format");
    for (label, doc) in corpus() {
        let text = document_to_bytes(&doc, WireEncoding::Text).expect("text encodes");
        let binary = document_to_bytes(&doc, WireEncoding::Binary).expect("binary encodes");
        group.bench_with_input(BenchmarkId::new("parse_text", label), &text, |b, bytes| {
            b.iter(|| read_document_bytes(bytes).expect("text decodes"));
        });
        group.bench_with_input(
            BenchmarkId::new("decode_binary", label),
            &binary,
            |b, bytes| {
                b.iter(|| read_document_bytes(bytes).expect("binary decodes"));
            },
        );
        group.bench_with_input(BenchmarkId::new("write_text", label), &doc, |b, doc| {
            b.iter(|| document_to_bytes(doc, WireEncoding::Text).expect("text encodes"));
        });
        group.bench_with_input(BenchmarkId::new("encode_binary", label), &doc, |b, doc| {
            b.iter(|| document_to_bytes(doc, WireEncoding::Binary).expect("binary encodes"));
        });
    }
    group.finish();
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_format
}
criterion_main!(benches);
