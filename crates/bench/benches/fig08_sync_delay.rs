//! Figure 8 — synchronization delay parameters (the δ/ε tolerance window).
//!
//! The figure's point is that a window between the minimum acceptable and
//! maximum tolerable delay lets one document run on devices of different
//! sloppiness. The bench regenerates that trade-off as a table: for a sweep
//! of device jitter against window width, the fraction of playback runs in
//! which every `Must` constraint held. It also measures the solver and the
//! playback simulator themselves, and ablates the window solver against a
//! scheduler that ignores tolerances (treating every arc as hard).
//!
//! Expected shape: satisfaction is ~1.0 whenever the window is at least as
//! wide as the jitter and falls off steeply once jitter exceeds the window —
//! which is exactly why the paper says transportable documents need δ/ε.

use std::time::Duration;

use cmif::core::arc::SyncArc;
use cmif::core::prelude::*;
use cmif::scheduler::{
    must_satisfaction_rate, ConstraintGraph, JitterModel, PlayerSession, ScheduleOptions,
};
use cmif_bench::banner;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

/// A two-channel document whose caption is synchronized onto the narration
/// with the given Must window.
fn windowed_doc(window_ms: i64) -> Document {
    let mut doc = DocumentBuilder::new("fig8")
        .channel("audio", MediaKind::Audio)
        .channel("caption", MediaKind::Text)
        .descriptor(
            DataDescriptor::new("speech", MediaKind::Audio, "pcm8")
                .with_duration(TimeMs::from_secs(20)),
        )
        .root_par(|story| {
            story.ext("narration", "audio", "speech");
            // The captions are parallel children positioned purely by their
            // arcs, so each one's launch jitter is judged against its own
            // window (no cumulative drift from a sequential chain).
            story.par("captions", |track| {
                for i in 0..5 {
                    track.imm_text(&format!("caption-{i}"), "caption", "text", 4_000);
                }
            });
        })
        .build()
        .unwrap();
    for i in 0..5 {
        let caption = doc.find(&format!("/captions/caption-{i}")).unwrap();
        doc.add_arc(
            caption,
            SyncArc::hard_start("/narration", "")
                .with_offset(MediaTime::seconds(4 * i as i64))
                .with_window(
                    DelayMs::ZERO,
                    MaxDelay::Bounded(DelayMs::from_millis(window_ms)),
                ),
        )
        .unwrap();
    }
    doc
}

fn bench_sync_delay(c: &mut Criterion) {
    // Regenerate the artifact: satisfaction rate vs jitter for three window
    // widths.
    let mut table = String::from("jitter(ms)   window=50ms  window=250ms  window=1000ms\n");
    for jitter_ms in [0i64, 50, 100, 250, 500, 1_000] {
        let mut row = format!("{jitter_ms:<12}");
        for window_ms in [50i64, 250, 1_000] {
            let doc = windowed_doc(window_ms);
            let solved = ConstraintGraph::derive(&doc, &doc.catalog, &ScheduleOptions::default())
                .unwrap()
                .solve(&doc, &doc.catalog)
                .unwrap();
            let rate = must_satisfaction_rate(
                &doc,
                &solved,
                &doc.catalog,
                &JitterModel::uniform(jitter_ms, 11),
                40,
            )
            .unwrap();
            row.push_str(&format!(" {rate:<12.2}"));
        }
        table.push_str(&row);
        table.push('\n');
    }
    banner(
        "Figure 8: Must-satisfaction rate vs device jitter and window width",
        &table,
    );

    let mut group = c.benchmark_group("fig08_sync_delay");
    let doc = windowed_doc(250);
    group.bench_function("solve_with_windows", |b| {
        b.iter(|| {
            ConstraintGraph::derive(&doc, &doc.catalog, &ScheduleOptions::default())
                .unwrap()
                .solve(&doc, &doc.catalog)
                .unwrap()
        })
    });
    let solved = ConstraintGraph::derive(&doc, &doc.catalog, &ScheduleOptions::default())
        .unwrap()
        .solve(&doc, &doc.catalog)
        .unwrap();
    for jitter_ms in [0i64, 250, 1_000] {
        let jitter = JitterModel::uniform(jitter_ms, 7);
        group.bench_with_input(
            BenchmarkId::new("playback_simulation", jitter_ms),
            &jitter,
            |b, jitter| {
                b.iter(|| {
                    PlayerSession::new(&doc, &solved, &doc.catalog, jitter)
                        .unwrap()
                        .run_to_completion()
                })
            },
        );
    }
    // Ablation: the same document with every window forced hard (δ = ε = 0):
    // the ASAP schedule is identical but the document stops absorbing any
    // jitter at all.
    let hard = windowed_doc(0);
    let hard_solved = ConstraintGraph::derive(&hard, &hard.catalog, &ScheduleOptions::default())
        .unwrap()
        .solve(&hard, &hard.catalog)
        .unwrap();
    assert_eq!(
        hard_solved.schedule.total_duration,
        solved.schedule.total_duration
    );
    let rate_hard = must_satisfaction_rate(
        &hard,
        &hard_solved,
        &hard.catalog,
        &JitterModel::uniform(100, 5),
        40,
    )
    .unwrap();
    let rate_windowed = must_satisfaction_rate(
        &doc,
        &solved,
        &doc.catalog,
        &JitterModel::uniform(100, 5),
        40,
    )
    .unwrap();
    banner(
        "Figure 8 ablation: windows vs hard synchronization under 100 ms jitter",
        &format!(
            "hard arcs: {rate_hard:.2} satisfied, 250 ms windows: {rate_windowed:.2} satisfied"
        ),
    );
    group.finish();
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_sync_delay
}
criterion_main!(benches);
