//! Figure 7 — the standard attribute set: names, inheritance, styles,
//! channel references.
//!
//! Regenerates the attribute table (which attributes are inherited /
//! root-only) and measures effective-attribute resolution through deep
//! inheritance chains and style expansion at growing nesting depth — the
//! ablation for the "style shorthand" design choice in DESIGN.md.

use std::time::Duration;

use cmif::core::prelude::*;
use cmif_bench::banner;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

/// A chain document: a single path of nested seq nodes with the channel set
/// only at the root, so the leaf's channel resolves through `depth` levels of
/// inheritance.
fn inheritance_chain(depth: usize) -> (Document, NodeId) {
    let mut doc = Document::with_root(NodeKind::Seq);
    let root = doc.root().unwrap();
    doc.channels
        .define(ChannelDef::new("caption", MediaKind::Text))
        .unwrap();
    doc.set_attr(root, AttrName::Channel, AttrValue::Id("caption".into()))
        .unwrap();
    let mut current = root;
    for i in 0..depth {
        let child = doc.add_seq(current).unwrap();
        doc.set_attr(
            child,
            AttrName::Name,
            AttrValue::Id(Symbol::intern(&format!("level-{i}"))),
        )
        .unwrap();
        current = child;
    }
    let leaf = doc.add_imm_text(current, "deep leaf").unwrap();
    doc.set_attr(leaf, AttrName::Name, AttrValue::Id("leaf".into()))
        .unwrap();
    doc.set_attr(leaf, AttrName::Duration, AttrValue::Number(1_000))
        .unwrap();
    (doc, leaf)
}

/// A style dictionary where style `s<n>` builds on `s<n-1>`, so expanding
/// the deepest style walks `depth` definitions.
fn style_stack(depth: usize) -> StyleDictionary {
    let mut dict = StyleDictionary::new();
    for i in 0..depth {
        let mut def = StyleDef::new(format!("s{i}")).with_attr(Attr::new(
            AttrName::custom(format!("attr-{i}")),
            AttrValue::Number(i as i64),
        ));
        if i > 0 {
            def = def.with_parent(format!("s{}", i - 1));
        }
        dict.define(def).unwrap();
    }
    dict
}

fn bench_attributes(c: &mut Criterion) {
    // Regenerate the artifact: the standard attribute table.
    let names = [
        AttrName::Name,
        AttrName::StyleDictionary,
        AttrName::Style,
        AttrName::ChannelDictionary,
        AttrName::Channel,
        AttrName::File,
        AttrName::TFormatting,
        AttrName::Slice,
        AttrName::Crop,
        AttrName::Clip,
        AttrName::SyncArc,
        AttrName::Duration,
    ];
    let mut table = String::from("attribute          inherited  root-only\n");
    for name in &names {
        table.push_str(&format!(
            "{:<18} {:<10} {}\n",
            name.as_str(),
            name.is_inherited(),
            name.is_root_only()
        ));
    }
    banner("Figure 7: standard attributes", &table);

    let mut group = c.benchmark_group("fig07_attributes");
    for depth in [1usize, 4, 16] {
        let (doc, leaf) = inheritance_chain(depth);
        group.bench_with_input(
            BenchmarkId::new("inherited_channel_lookup", depth),
            &(&doc, leaf),
            |b, (doc, leaf)| b.iter(|| doc.channel_of(*leaf).unwrap()),
        );
        let dict = style_stack(depth);
        let deepest = format!("s{}", depth - 1);
        group.bench_with_input(
            BenchmarkId::new("style_expansion", depth),
            &(&dict, &deepest),
            |b, (dict, deepest)| b.iter(|| dict.expand(deepest).unwrap()),
        );
    }
    // Ablation: resolving through a style versus reading a flat attribute.
    let mut styled = Document::with_root(NodeKind::Par);
    let root = styled.root().unwrap();
    styled
        .channels
        .define(ChannelDef::new("caption", MediaKind::Text))
        .unwrap();
    styled.styles = style_stack(8);
    let leaf = styled.add_imm_text(root, "styled").unwrap();
    styled
        .set_attr(leaf, AttrName::Channel, AttrValue::Id("caption".into()))
        .unwrap();
    styled
        .set_attr(leaf, AttrName::Style, AttrValue::Id("s7".into()))
        .unwrap();
    group.bench_function("effective_attr_via_style", |b| {
        b.iter(|| {
            styled
                .effective_attr(leaf, &AttrName::custom("attr-3"))
                .unwrap()
        })
    });
    group.bench_function("effective_attr_flat", |b| {
        b.iter(|| styled.effective_attr(leaf, &AttrName::Channel).unwrap())
    });
    group.finish();
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_attributes
}
criterion_main!(benches);
