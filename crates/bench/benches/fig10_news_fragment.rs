//! Figure 10 — the news report fragment with its explicit synchronization
//! arcs, and the three conflict classes of §5.3.3.
//!
//! Regenerates the scheduled fragment (Gantt chart), shows the freeze-frame
//! behaviour the figure describes, and measures conflict detection for all
//! three classes: specification conflicts, device conflicts on three
//! environments, and navigation (seek) conflicts.

use std::time::Duration;

use cmif::news::evening_news;
use cmif::scheduler::{
    device_conflicts, full_report, invalid_arcs_when_seeking, specification_conflicts,
    ConstraintGraph, EnvironmentLimits, JitterModel, PlayerSession, ScheduleOptions,
};
use cmif_bench::{banner, news_fixture};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_news_fragment(c: &mut Criterion) {
    let doc = evening_news().unwrap();
    let solved = ConstraintGraph::derive(&doc, &doc.catalog, &ScheduleOptions::default())
        .unwrap()
        .solve(&doc, &doc.catalog)
        .unwrap();
    let playback = PlayerSession::new(&doc, &solved, &doc.catalog, &JitterModel::ideal())
        .unwrap()
        .run_to_completion();
    banner(
        "Figure 10: the scheduled news fragment",
        &format!(
            "{}\nfreeze-frame time on continuous channels: {} ms",
            solved.schedule.render_gantt(72),
            playback.freeze_frame_ms
        ),
    );

    let (_, store) = news_fixture();
    let environments = [
        EnvironmentLimits::workstation(),
        EnvironmentLimits::low_end_pc(),
        EnvironmentLimits::audio_kiosk(),
    ];
    let mut summary = String::new();
    for limits in &environments {
        let report = full_report(&doc, &solved, &store, Some(limits)).unwrap();
        summary.push_str(&format!(
            "{:<14} class1={} class2={} class3(seek to final shot)={}\n",
            limits.name,
            report.of_class(1).len(),
            report.of_class(2).len(),
            invalid_arcs_when_seeking(
                &doc,
                &solved.schedule,
                doc.find("/story-3/video-track/talking-head-2").unwrap()
            )
            .unwrap()
            .len(),
        ));
    }
    banner("§5.3.3: conflicts per class per environment", &summary);

    let mut group = c.benchmark_group("fig10_news_fragment");
    group.bench_function("schedule_fragment", |b| {
        b.iter(|| {
            ConstraintGraph::derive(&doc, &doc.catalog, &ScheduleOptions::default())
                .unwrap()
                .solve(&doc, &doc.catalog)
                .unwrap()
        })
    });
    group.bench_function("specification_conflicts", |b| {
        b.iter(|| specification_conflicts(&solved))
    });
    for limits in &environments {
        group.bench_with_input(
            BenchmarkId::new("device_conflicts", limits.name),
            limits,
            |b, limits| {
                b.iter(|| device_conflicts(&doc, &solved.schedule, &store, limits).unwrap())
            },
        );
    }
    let seek_target = doc.find("/story-3/video-track/talking-head-2").unwrap();
    group.bench_function("navigation_conflicts", |b| {
        b.iter(|| invalid_arcs_when_seeking(&doc, &solved.schedule, seek_target).unwrap())
    });
    group.bench_function("playback_with_freeze_frames", |b| {
        b.iter(|| {
            PlayerSession::new(&doc, &solved, &doc.catalog, &JitterModel::uniform(100, 3))
                .unwrap()
                .run_to_completion()
        })
    });
    group.finish();
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_news_fragment
}
criterion_main!(benches);
