//! Figure 6 — the general formats of the four node types (seq, par, ext,
//! imm).
//!
//! Regenerates one instance of each node format in the interchange syntax
//! and measures parsing and serializing documents dominated by each node
//! kind, plus the Evening News mix.

use std::time::Duration;

use cmif::core::prelude::*;
use cmif::format::{parse_document, write_document};
use cmif::news::evening_news;
use cmif_bench::banner;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

/// Builds a document whose leaves are all external or all immediate nodes,
/// nested under the requested interior kind.
fn homogeneous(interior_seq: bool, external: bool, groups: usize, per_group: usize) -> Document {
    let mut builder = DocumentBuilder::new("node formats")
        .channel("caption", MediaKind::Text)
        .channel("audio", MediaKind::Audio);
    if external {
        builder = builder.descriptor(
            DataDescriptor::new("shared-block", MediaKind::Audio, "pcm8")
                .with_duration(TimeMs::from_secs(2)),
        );
    }
    builder
        .root_seq(|root| {
            for g in 0..groups {
                let fill = |group: &mut NodeBuilder<'_>| {
                    for i in 0..per_group {
                        if external {
                            group.ext(&format!("leaf-{i}"), "audio", "shared-block");
                        } else {
                            group.imm_text(
                                &format!("leaf-{i}"),
                                "caption",
                                "an immediate text payload",
                                1_000,
                            );
                        }
                    }
                };
                if interior_seq {
                    root.seq(&format!("group-{g}"), fill);
                } else {
                    root.par(&format!("group-{g}"), fill);
                }
            }
        })
        .build()
        .unwrap()
}

fn bench_node_formats(c: &mut Criterion) {
    // Regenerate the artifact: one node of each kind in interchange syntax.
    let sample = homogeneous(true, true, 1, 1);
    let sample_text = write_document(&sample).unwrap();
    let imm_sample = homogeneous(false, false, 1, 1);
    let imm_text = write_document(&imm_sample).unwrap();
    banner(
        "Figure 6: node general formats (seq/ext and par/imm examples)",
        &format!("{sample_text}\n{imm_text}"),
    );

    let mut group = c.benchmark_group("fig06_node_formats");
    let variants = [
        ("seq_of_ext", homogeneous(true, true, 20, 20)),
        ("seq_of_imm", homogeneous(true, false, 20, 20)),
        ("par_of_ext", homogeneous(false, true, 20, 20)),
        ("par_of_imm", homogeneous(false, false, 20, 20)),
        ("evening_news_mix", evening_news().unwrap()),
    ];
    for (name, doc) in &variants {
        group.bench_with_input(BenchmarkId::new("write", *name), doc, |b, doc| {
            b.iter(|| write_document(doc).unwrap())
        });
        let text = write_document(doc).unwrap();
        group.bench_with_input(BenchmarkId::new("parse", *name), &text, |b, text| {
            b.iter(|| parse_document(text).unwrap())
        });
    }
    group.finish();
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_node_formats
}
criterion_main!(benches);
