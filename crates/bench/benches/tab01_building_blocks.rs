//! §3.1 building-block table — data blocks, data descriptors, event
//! descriptors, synchronization channels, synchronization arcs.
//!
//! Regenerates the inventory for the Evening News and for synthetic
//! broadcasts, and measures the cost of constructing documents from the five
//! building blocks (the document structure mapping tool's inner loop) and of
//! computing the structure statistics that later tools rely on.

use std::time::Duration;

use cmif::core::stats::stats;
use cmif::news::evening_news;
use cmif::synthetic::SyntheticNews;
use cmif_bench::banner;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_building_blocks(c: &mut Criterion) {
    // Regenerate the artifact: the building-block inventory of the news.
    let doc = evening_news().unwrap();
    let summary = stats(&doc, &doc.catalog).unwrap();
    banner(
        "Table (§3.1): CMIF building blocks of the Evening News",
        &summary.to_string(),
    );

    let mut group = c.benchmark_group("tab01_building_blocks");
    for stories in [1usize, 8, 32] {
        let config = SyntheticNews::with_stories(stories);
        group.bench_with_input(
            BenchmarkId::new("build_document", stories),
            &config,
            |b, config| b.iter(|| config.build().unwrap()),
        );
        let doc = config.build().unwrap();
        group.bench_with_input(
            BenchmarkId::new("document_stats", stories),
            &doc,
            |b, doc| b.iter(|| stats(doc, &doc.catalog).unwrap()),
        );
        group.bench_with_input(BenchmarkId::new("events", stories), &doc, |b, doc| {
            b.iter(|| doc.events(&doc.catalog).unwrap())
        });
    }
    group.finish();
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_building_blocks
}
criterion_main!(benches);
