//! §6 — structure-only manipulation and distributed transport.
//!
//! Regenerates the eager-vs-lazy transport comparison over the simulated
//! Amoeba-style cluster (structure plus all media vs structure plus only the
//! blocks the destination device can present) and measures publishing,
//! transporting and attribute-driven search.
//!
//! Expected shape: the structure is kilobytes while the media is megabytes,
//! so structure-only transport wins by orders of magnitude, and the gap
//! grows with the broadcast size.

use std::collections::BTreeSet;
use std::time::Duration;

use cmif::core::channel::MediaKind;
use cmif::distrib::network::{Link, Network};
use cmif::distrib::store::DistributedStore;
use cmif::distrib::transport::{compare_transport, referenced_keys};
use cmif::distrib::TrafficStats;
use cmif::media::MediaGenerator;
use cmif::news::evening_news;
use cmif::synthetic::SyntheticNews;
use cmif_bench::banner;
use cmif_core::tree::Document;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

/// Renders a phase's per-link traffic as indented `from → to` lines, so the
/// banner shows which links carried structure and which carried media.
fn per_link_lines(traffic: &TrafficStats) -> String {
    let mut lines = String::new();
    for (from, to, link) in traffic.per_link() {
        lines.push_str(&format!(
            "\n    {from} → {to}: {} B structure, {} B media, {} transfer(s), {} simulated ms",
            link.structure_bytes, link.media_bytes, link.transfers, link.simulated_ms
        ));
    }
    lines
}

/// Builds a cluster with the document's media stored on `server`.
fn cluster_with(doc: &Document) -> DistributedStore {
    let store = DistributedStore::new(Network::uniform(&["server", "desk", "kiosk"], Link::lan()));
    let mut generator = MediaGenerator::new(5);
    for descriptor in doc.catalog.iter() {
        let block = match descriptor.medium {
            MediaKind::Audio => generator.audio(
                descriptor.key.as_str(),
                descriptor.duration.map(|d| d.as_millis()).unwrap_or(1_000),
                8_000,
            ),
            MediaKind::Video => generator.video(descriptor.key.as_str(), 2_000, 64, 48, 25.0, 24),
            _ => generator.image(descriptor.key.as_str(), 160, 120, 24),
        };
        store
            .put_block("server", block, descriptor.clone())
            .unwrap();
    }
    store.publish_document("server", "doc", doc).unwrap();
    store
}

fn bench_distrib(c: &mut Criterion) {
    // Regenerate the artifact: eager vs lazy transport of the Evening News
    // to an audio-only reader.
    let news = evening_news().unwrap();
    let cluster = cluster_with(&news);
    let comparison = compare_transport(
        &cluster,
        &news,
        "server",
        "desk",
        "kiosk",
        "doc",
        Some(&[MediaKind::Audio]),
    )
    .unwrap();
    banner(
        "§6: transport of the Evening News (eager vs structure-only + audio)",
        &format!(
            "eager: {} B structure + {:.2} MB media in {:.1} simulated s ({} blocks){}\n\
             lazy:  {} B structure + {:.2} MB media in {:.1} simulated s ({} blocks){}\n\
             eager moves {:.0}x more bytes",
            comparison.eager.structure_bytes,
            comparison.eager.media_bytes as f64 / 1e6,
            comparison.eager.simulated_ms as f64 / 1e3,
            comparison.eager.blocks_moved,
            per_link_lines(&comparison.eager_traffic),
            comparison.lazy.structure_bytes,
            comparison.lazy.media_bytes as f64 / 1e6,
            comparison.lazy.simulated_ms as f64 / 1e3,
            comparison.lazy.blocks_moved,
            per_link_lines(&comparison.lazy_traffic),
            comparison.byte_ratio()
        ),
    );

    let mut group = c.benchmark_group("ext_distrib");
    for stories in [1usize, 4, 16] {
        let broadcast = SyntheticNews::with_stories(stories).build().unwrap();
        let cluster = cluster_with(&broadcast);
        group.bench_with_input(
            BenchmarkId::new("publish_structure", stories),
            &(&cluster, &broadcast),
            |b, (cluster, broadcast)| {
                let mut revision = 0u64;
                b.iter(|| {
                    revision += 1;
                    cluster
                        .publish_document("server", &format!("doc-{revision}"), broadcast)
                        .unwrap()
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("transport_structure", stories),
            &cluster,
            |b, cluster| b.iter(|| cluster.transport_document("server", "desk", "doc").unwrap()),
        );
        group.bench_with_input(
            BenchmarkId::new("select_presentable_blocks", stories),
            &broadcast,
            |b, broadcast| {
                b.iter(|| {
                    referenced_keys(broadcast, Some(&[MediaKind::Audio]))
                        .into_iter()
                        .collect::<BTreeSet<cmif::core::Symbol>>()
                })
            },
        );
    }

    // Sharded-store demonstration: four publishers hammer four distinct
    // hosts at once. Under the old store-wide RwLock these serialized; with
    // per-host shards (and replication factor 1, so no cross-host traffic
    // at all) they share no store lock whatsoever.
    let broadcast = SyntheticNews::with_stories(4).build().unwrap();
    let hosts = ["h0", "h1", "h2", "h3"];
    let cluster = DistributedStore::new(Network::uniform(&hosts, Link::lan()));
    group.bench_function("publish_concurrent_4_hosts", |b| {
        b.iter(|| {
            std::thread::scope(|scope| {
                // A fixed name per host keeps the document maps at steady
                // state (publish overwrites) across iterations.
                for host in hosts {
                    let cluster = &cluster;
                    let broadcast = &broadcast;
                    scope.spawn(move || {
                        cluster
                            .publish_document(host, &format!("doc-{host}"), broadcast)
                            .unwrap()
                    });
                }
            })
        })
    });
    group.finish();
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_distrib
}
criterion_main!(benches);
