//! §6 — structure-only manipulation and distributed transport.
//!
//! Regenerates the eager-vs-lazy transport comparison over the simulated
//! Amoeba-style cluster (structure plus all media vs structure plus only the
//! blocks the destination device can present) and measures publishing,
//! transporting and attribute-driven search.
//!
//! Expected shape: the structure is kilobytes while the media is megabytes,
//! so structure-only transport wins by orders of magnitude, and the gap
//! grows with the broadcast size.

use std::collections::BTreeSet;
use std::time::{Duration, Instant};

use cmif::core::channel::MediaKind;
use cmif::distrib::network::{Link, Network};
use cmif::distrib::store::DistributedStore;
use cmif::distrib::transport::{compare_transport, referenced_keys};
use cmif::distrib::{FaultPlan, RetryPolicy, TrafficStats};
use cmif::media::MediaGenerator;
use cmif::news::evening_news;
use cmif::synthetic::SyntheticNews;
use cmif_bench::banner;
use cmif_bench::trajectory::{self, TrajectoryRun};
use cmif_core::tree::Document;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

/// Renders a phase's per-link traffic as indented `from → to` lines, so the
/// banner shows which links carried structure and which carried media.
fn per_link_lines(traffic: &TrafficStats) -> String {
    let mut lines = String::new();
    for (from, to, link) in traffic.per_link() {
        lines.push_str(&format!(
            "\n    {from} → {to}: {} B structure, {} B media, {} transfer(s), {} simulated ms",
            link.structure_bytes, link.media_bytes, link.transfers, link.simulated_ms
        ));
    }
    lines
}

/// Builds a cluster with the document's media stored on `server`.
fn cluster_with(doc: &Document) -> DistributedStore {
    let store = DistributedStore::new(Network::uniform(&["server", "desk", "kiosk"], Link::lan()));
    let mut generator = MediaGenerator::new(5);
    for descriptor in doc.catalog.iter() {
        let block = match descriptor.medium {
            MediaKind::Audio => generator.audio(
                descriptor.key.as_str(),
                descriptor.duration.map(|d| d.as_millis()).unwrap_or(1_000),
                8_000,
            ),
            MediaKind::Video => generator.video(descriptor.key.as_str(), 2_000, 64, 48, 25.0, 24),
            _ => generator.image(descriptor.key.as_str(), 160, 120, 24),
        };
        store
            .put_block("server", block, descriptor.clone())
            .unwrap();
    }
    store.publish_document("server", "doc", doc).unwrap();
    store
}

/// Like [`cluster_with`], but six hosts at replication factor 2, so a host
/// can die mid-run without losing a single block.
fn replicated_cluster_with(doc: &Document) -> DistributedStore {
    let hosts = ["h0", "h1", "h2", "h3", "h4", "h5"];
    let store =
        DistributedStore::with_replication(Network::uniform(&hosts, Link::lan()), 2).unwrap();
    let mut generator = MediaGenerator::new(5);
    for descriptor in doc.catalog.iter() {
        let block = match descriptor.medium {
            MediaKind::Audio => generator.audio(
                descriptor.key.as_str(),
                descriptor.duration.map(|d| d.as_millis()).unwrap_or(1_000),
                8_000,
            ),
            MediaKind::Video => generator.video(descriptor.key.as_str(), 2_000, 64, 48, 25.0, 24),
            _ => generator.image(descriptor.key.as_str(), 160, 120, 24),
        };
        store.put_block("h0", block, descriptor.clone()).unwrap();
    }
    store.publish_document("h0", "doc", doc).unwrap();
    store
}

/// The fault drill behind the `BENCH_ext_distrib.json` trajectory: flaky
/// links plus a scripted mid-run kill of the origin, every read still
/// succeeding, then a repair pass restoring the replication factor. All
/// probe metrics except the wall-clock repair rate are simulation units,
/// so they are bit-identical across machines.
fn fault_drill_probe() -> (String, TrajectoryRun) {
    let broadcast = SyntheticNews::with_stories(8).build().unwrap();
    let cluster = replicated_cluster_with(&broadcast)
        .with_fault_plan(
            FaultPlan::seeded(1991)
                .fail_transfers(0.1)
                .kill_host_at(12, "h0"),
        )
        .with_retry_policy(RetryPolicy::with_attempts(6));
    cluster.reset_traffic();
    let keys: BTreeSet<cmif::core::Symbol> =
        referenced_keys(&broadcast, None).into_iter().collect();
    let report = cluster
        .fetch_blocks_for_traced("h3", &keys)
        .expect("every replicated block must survive the drill");
    let traffic = cluster.traffic();

    let started = Instant::now();
    let repair = cluster.repair_all();
    let repair_seconds = started.elapsed().as_secs_f64().max(1e-9);
    let blocks_per_sec = repair.repaired.len() as f64 / repair_seconds;

    let mut run = TrajectoryRun::now("cargo bench ext_distrib");
    run = run
        .metric("degraded/blocks", keys.len() as f64)
        .metric("degraded/fetches", report.degraded as f64)
        .metric("degraded/retries", report.retries as f64)
        .metric("degraded/simulated_ms", report.simulated_ms as f64)
        .metric("degraded/failed_transfers", traffic.failed_transfers as f64)
        .metric("repair/actions", repair.actions.len() as f64)
        .metric("repair/bytes_copied", repair.bytes_copied as f64)
        .metric("repair/simulated_ms", repair.simulated_ms as f64)
        .metric("repair/blocks_per_sec", blocks_per_sec);
    let lines = format!(
        "drill: 10% of transfers die, origin killed at transfer 12, RF 2, 6 hosts\n\
         reads: {} blocks requested, {} fetched + {} local, {} degraded, \
         {} retries, {} failed transfer(s), {} simulated ms\n\
         repair: {} action(s) restored {} object(s) ({} B, {} simulated ms) \
         at {:.0} blocks/s wall-clock; lost: {}, deferred: {}",
        report.requested,
        report.fetched,
        report.local_hits,
        report.degraded,
        report.retries,
        traffic.failed_transfers,
        report.simulated_ms,
        repair.actions.len(),
        repair.repaired.len(),
        repair.bytes_copied,
        repair.simulated_ms,
        blocks_per_sec,
        repair.lost.len(),
        repair.deferred.len(),
    );
    (lines, run)
}

fn bench_distrib(c: &mut Criterion) {
    // Regenerate the artifact: eager vs lazy transport of the Evening News
    // to an audio-only reader.
    let news = evening_news().unwrap();
    let cluster = cluster_with(&news);
    let comparison = compare_transport(
        &cluster,
        &news,
        "server",
        "desk",
        "kiosk",
        "doc",
        Some(&[MediaKind::Audio]),
    )
    .unwrap();
    banner(
        "§6: transport of the Evening News (eager vs structure-only + audio)",
        &format!(
            "eager: {} B structure + {:.2} MB media in {:.1} simulated s ({} blocks){}\n\
             lazy:  {} B structure + {:.2} MB media in {:.1} simulated s ({} blocks){}\n\
             eager moves {:.0}x more bytes",
            comparison.eager.structure_bytes,
            comparison.eager.media_bytes as f64 / 1e6,
            comparison.eager.simulated_ms as f64 / 1e3,
            comparison.eager.blocks_moved,
            per_link_lines(&comparison.eager_traffic),
            comparison.lazy.structure_bytes,
            comparison.lazy.media_bytes as f64 / 1e6,
            comparison.lazy.simulated_ms as f64 / 1e3,
            comparison.lazy.blocks_moved,
            per_link_lines(&comparison.lazy_traffic),
            comparison.byte_ratio()
        ),
    );

    // Fault drill: the probe metrics (all simulation units except the
    // wall-clock repair rate) land in the committed trajectory file.
    let (drill_lines, drill_run) = fault_drill_probe();
    banner(
        "ext: fault drill (degraded reads + self-healing re-replication)",
        &drill_lines,
    );
    match trajectory::record_run("ext_distrib", drill_run) {
        Ok(path) => println!("perf trajectory appended to {}", path.display()),
        Err(e) => eprintln!("could not write the perf trajectory: {e}"),
    }

    let mut group = c.benchmark_group("ext_distrib");
    for stories in [1usize, 4, 16] {
        let broadcast = SyntheticNews::with_stories(stories).build().unwrap();
        let cluster = cluster_with(&broadcast);
        group.bench_with_input(
            BenchmarkId::new("publish_structure", stories),
            &(&cluster, &broadcast),
            |b, (cluster, broadcast)| {
                let mut revision = 0u64;
                b.iter(|| {
                    revision += 1;
                    cluster
                        .publish_document("server", &format!("doc-{revision}"), broadcast)
                        .unwrap()
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("transport_structure", stories),
            &cluster,
            |b, cluster| b.iter(|| cluster.transport_document("server", "desk", "doc").unwrap()),
        );
        group.bench_with_input(
            BenchmarkId::new("select_presentable_blocks", stories),
            &broadcast,
            |b, broadcast| {
                b.iter(|| {
                    referenced_keys(broadcast, Some(&[MediaKind::Audio]))
                        .into_iter()
                        .collect::<BTreeSet<cmif::core::Symbol>>()
                })
            },
        );
    }

    // Fault-mode targets ride the same group, so the CI delta gate covers
    // the degraded paths too.
    let drill = SyntheticNews::with_stories(2).build().unwrap();
    let churn_cluster = replicated_cluster_with(&drill);
    // One warm cycle so the measured iterations all see the same steady
    // state (the first down-scan performs the real re-replication).
    churn_cluster.mark_down("h0").unwrap();
    churn_cluster.repair_all();
    churn_cluster.mark_up("h0").unwrap();
    group.bench_function("host_churn_cycle", |b| {
        // Down the origin (scanning every placement entry for lost
        // replicas), drain the repair queue, bring it back: the steady
        // state of a flapping host.
        b.iter(|| {
            churn_cluster.mark_down("h0").unwrap();
            let report = churn_cluster.repair_all();
            churn_cluster.mark_up("h0").unwrap();
            report.actions.len()
        })
    });
    group.bench_function("degraded_fetch_walk", |b| {
        // A fresh cluster per iteration — the destination caches the block
        // after a successful fetch, so the walk only exists on first read.
        b.iter(|| {
            let store = DistributedStore::with_replication(
                Network::uniform(&["s0", "s1", "s2"], Link::lan()),
                2,
            )
            .unwrap();
            let block = MediaGenerator::new(9).audio("clip", 250, 8_000);
            let descriptor = block.describe();
            store.put_block("s0", block, descriptor).unwrap();
            let holders = store.replicas_of("clip");
            let reader = ["s0", "s1", "s2"]
                .into_iter()
                .find(|h| !holders.contains(&h.to_string()))
                .unwrap();
            let mut plan = FaultPlan::seeded(7);
            for holder in &holders {
                plan = plan.fail_link(holder.clone(), reader, 1);
            }
            let store = store.with_fault_plan(plan);
            store.fetch_block(reader, "clip").unwrap()
        })
    });

    // Sharded-store demonstration: four publishers hammer four distinct
    // hosts at once. Under the old store-wide RwLock these serialized; with
    // per-host shards (and replication factor 1, so no cross-host traffic
    // at all) they share no store lock whatsoever.
    let broadcast = SyntheticNews::with_stories(4).build().unwrap();
    let hosts = ["h0", "h1", "h2", "h3"];
    let cluster = DistributedStore::new(Network::uniform(&hosts, Link::lan()));
    group.bench_function("publish_concurrent_4_hosts", |b| {
        b.iter(|| {
            std::thread::scope(|scope| {
                // A fixed name per host keeps the document maps at steady
                // state (publish overwrites) across iterations.
                for host in hosts {
                    let cluster = &cluster;
                    let broadcast = &broadcast;
                    scope.spawn(move || {
                        cluster
                            .publish_document(host, &format!("doc-{host}"), broadcast)
                            .unwrap()
                    });
                }
            })
        })
    });
    group.finish();
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_distrib
}
criterion_main!(benches);
