//! Figure 5 — the CMIF tree in conventional and embedded forms.
//!
//! Regenerates both renderings for a small tree and measures rendering,
//! serializing and re-parsing trees of growing depth and fan-out — the cost
//! of moving a document description around, which the paper argues is the
//! cheap part of the system.

use std::time::Duration;

use cmif::format::{conventional_view, embedded_view, parse_document, write_document};
use cmif::synthetic::balanced_tree;
use cmif_bench::banner;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_tree_forms(c: &mut Criterion) {
    let small = balanced_tree(3, 3).unwrap();
    banner(
        "Figure 5a: conventional tree form (depth 3, fan-out 3)",
        &conventional_view(&small).unwrap(),
    );
    banner(
        "Figure 5b: embedded tree form (depth 3, fan-out 3)",
        &embedded_view(&small).unwrap(),
    );

    let mut group = c.benchmark_group("fig05_tree_forms");
    for (depth, fanout) in [(3usize, 3usize), (5, 4), (7, 3)] {
        let doc = balanced_tree(depth, fanout).unwrap();
        let nodes = doc.node_count();
        group.bench_with_input(
            BenchmarkId::new("render_conventional", nodes),
            &doc,
            |b, doc| b.iter(|| conventional_view(doc).unwrap()),
        );
        group.bench_with_input(
            BenchmarkId::new("render_embedded", nodes),
            &doc,
            |b, doc| b.iter(|| embedded_view(doc).unwrap()),
        );
        group.bench_with_input(
            BenchmarkId::new("write_interchange", nodes),
            &doc,
            |b, doc| b.iter(|| write_document(doc).unwrap()),
        );
        let text = write_document(&doc).unwrap();
        group.bench_with_input(
            BenchmarkId::new("parse_interchange", nodes),
            &text,
            |b, text| b.iter(|| parse_document(text).unwrap()),
        );
    }
    group.finish();
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_tree_forms
}
criterion_main!(benches);
