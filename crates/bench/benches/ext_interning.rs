//! Extension — the string-interning plane underneath every layer.
//!
//! This PR moved channel names, node names and descriptor keys from cloned
//! `String`s to `Copy` `Symbol`s backed by a global lock-sharded pool. The
//! targets here measure the interner's own primitives and the map-lookup
//! win the rest of the system buys with them:
//!
//! * `intern_hit` — interning a string the pool already holds (the steady
//!   state: every document repeats the same channel and key vocabulary);
//! * `intern_miss` — interning a fresh string (pool growth; also the cost
//!   ceiling for `Symbol::lookup` misses, which do *not* grow the pool);
//! * `map_lookup` — a `BTreeMap` keyed by `Symbol` (integer comparisons)
//!   vs the same map keyed by `String` (byte-wise comparisons), the shape
//!   of the scheduler's conflict maps and the distrib placement index.

use std::collections::BTreeMap;
use std::time::Duration;

use cmif::core::Symbol;
use cmif_bench::banner;
use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};

/// The kind of name vocabulary a broadcast-sized document carries.
fn vocabulary(size: usize) -> Vec<String> {
    (0..size)
        .map(|i| match i % 4 {
            0 => format!("s{i}/audio"),
            1 => format!("s{i}/video"),
            2 => format!("story-{i}/caption-track/caption-{i}"),
            _ => format!("channel-{i}"),
        })
        .collect()
}

fn bench_interning(c: &mut Criterion) {
    let names = vocabulary(256);
    let symbols: Vec<Symbol> = names.iter().map(|n| Symbol::intern(n)).collect();

    banner(
        "ext: string interning (pool primitives and Symbol- vs String-keyed maps)",
        &format!(
            "vocabulary: {} names, avg {} bytes; pool ids are Copy u32s",
            names.len(),
            names.iter().map(String::len).sum::<usize>() / names.len()
        ),
    );

    let mut group = c.benchmark_group("ext_interning");

    // Steady state: every intern is a hit.
    group.bench_function("intern_hit", |b| {
        let mut i = 0;
        b.iter(|| {
            i = (i + 1) % names.len();
            black_box(Symbol::intern(&names[i]))
        })
    });

    // Pool growth: every intern is a miss. The counter makes each string
    // new; the formatting cost is identical in the hit case above, so the
    // delta between the two targets is the true miss overhead.
    group.bench_function("intern_miss", |b| {
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            black_box(Symbol::intern(&format!("ext-interning-miss-{i}")))
        })
    });

    // Query-path lookup that must not grow the pool.
    group.bench_function("lookup_hit", |b| {
        let mut i = 0;
        b.iter(|| {
            i = (i + 1) % names.len();
            black_box(Symbol::lookup(&names[i]))
        })
    });

    // Map lookups: the shape of every name-keyed index in the system.
    let symbol_map: BTreeMap<Symbol, usize> =
        symbols.iter().enumerate().map(|(i, s)| (*s, i)).collect();
    let string_map: BTreeMap<String, usize> = names
        .iter()
        .enumerate()
        .map(|(i, n)| (n.clone(), i))
        .collect();
    group.bench_with_input(
        BenchmarkId::new("map_lookup", "symbol_keys"),
        &symbol_map,
        |b, map| {
            let mut i = 0;
            b.iter(|| {
                i = (i + 1) % symbols.len();
                black_box(map.get(&symbols[i]))
            })
        },
    );
    group.bench_with_input(
        BenchmarkId::new("map_lookup", "string_keys"),
        &string_map,
        |b, map| {
            let mut i = 0;
            b.iter(|| {
                i = (i + 1) % names.len();
                black_box(map.get(names[i].as_str()))
            })
        },
    );

    group.finish();
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_interning
}
criterion_main!(benches);
