//! Extension — the static analyser's cost envelope.
//!
//! The lint engine fronts both the pipeline's stage 2 and the scheduling
//! engine's admission gate, so its cost is paid per document *before* any
//! worker is spent. This bench prices the two sides of that bargain:
//!
//! * `check_clean` — the full 18-pass registry over lint-clean synthetic
//!   news documents at 4/16/64 stories. This is the admission overhead an
//!   honest document pays. The structural passes are preorder walks, but
//!   the timing passes relax the derived constraint graph (Bellman-Ford,
//!   O(points × constraints)), so the envelope grows superlinearly — the
//!   per-size figures keep that visible.
//! * `check_broken` / `render_broken` — a parsed document with findings in
//!   every code family (structure, timing, resources), checked and then
//!   rendered rustc-style against its `SourceMap`. Rendering prices the
//!   source-line lookup and caret assembly, which only failing documents
//!   pay.
//!
//! The banner prints documents/sec per size plus the broken-document
//! figures, and the probe is appended to `BENCH_ext_lint.json` at the repo
//! root so the analyser's perf trajectory is versioned next to the code.

use std::time::{Duration, Instant};

use cmif::core::tree::Document;
use cmif::format::parse_document_unvalidated;
use cmif::lint::Linter;
use cmif::synthetic::SyntheticNews;
use cmif_bench::banner;
use cmif_bench::trajectory::{self, TrajectoryRun};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

/// A document with at least one finding per code family: an undefined
/// style (L005), an undeclared channel (L201), a descriptor-less external
/// (L202), a double-booked channel (L203) and a two-arc cycle (L101).
const BROKEN: &str = r#"(cmif
  (channels
    (channel audio audio)
    (channel caption text))
  (seq (name bulletin)
    (par (name story)
      (ext (name voice) (channel audio) (file "story-audio")
        (sync_arc begin must begin "../line" 1000 ms "" 0 inf))
      (imm (name line) (channel caption) (duration 3000)
        (style headline)
        (sync_arc begin must begin "../voice" 1000 ms "" 0 inf)
        (data "Van Gogh recovered"))
      (imm (name lower-third) (channel caption) (duration 2000)
        (data "Amsterdam"))
      (imm (name ticker) (channel wire) (duration 2000)
        (data "more at eleven")))))
"#;

fn clean_doc(stories: usize) -> Document {
    SyntheticNews::with_stories(stories)
        .build()
        .expect("synthetic news builds")
}

/// Checks `doc` `rounds` times and returns documents/sec (best of two).
fn docs_per_sec(linter: &Linter, doc: &Document, rounds: usize) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..2 {
        let started = Instant::now();
        for _ in 0..rounds {
            let report = linter.check(doc);
            assert!(!report.has_deny(), "clean fixture must stay clean");
        }
        best = best.min(started.elapsed().as_secs_f64());
    }
    rounds as f64 / best
}

fn bench_lint(c: &mut Criterion) {
    let linter = Linter::new();

    // Regenerate the artifact: full-registry checks/sec as documents grow.
    let mut run = TrajectoryRun::now("cargo bench ext_lint");
    let mut lines = String::from("stories   nodes   checks/sec\n");
    for stories in [4usize, 16, 64] {
        let doc = clean_doc(stories);
        let nodes = doc.node_count();
        let rate = docs_per_sec(&linter, &doc, 64);
        lines.push_str(&format!("{stories:<9} {nodes:<7} {rate:.0}\n"));
        run = run.metric(format!("clean/stories{stories}/checks_per_sec"), rate);
    }

    let broken = parse_document_unvalidated(BROKEN).expect("broken fixture parses");
    let report = linter.check(&broken);
    let findings = report.diagnostics().len();
    assert!(report.has_deny(), "broken fixture must keep its findings");
    let started = Instant::now();
    let rounds = 256;
    for _ in 0..rounds {
        let report = linter.check(&broken);
        assert_eq!(report.diagnostics().len(), findings);
    }
    let broken_rate = rounds as f64 / started.elapsed().as_secs_f64();
    let rendered = report.render(broken.sources.as_deref());
    lines.push_str(&format!(
        "broken document: {findings} findings/check, {broken_rate:.0} checks/sec, \
         {} rendered bytes\n",
        rendered.len()
    ));
    run = run
        .metric("broken/findings_per_check", findings as f64)
        .metric("broken/checks_per_sec", broken_rate);
    banner(
        "ext: static analysis cost (full registry per document)",
        &lines,
    );
    match trajectory::record_run("ext_lint", run) {
        Ok(path) => println!("perf trajectory appended to {}", path.display()),
        Err(e) => eprintln!("could not write the perf trajectory: {e}"),
    }

    // The gated targets.
    let mut group = c.benchmark_group("ext_lint");
    for stories in [4usize, 16, 64] {
        let doc = clean_doc(stories);
        group.bench_with_input(BenchmarkId::new("check_clean", stories), &doc, |b, doc| {
            b.iter(|| linter.check(doc));
        });
    }
    group.bench_function("check_broken", |b| {
        b.iter(|| linter.check(&broken));
    });
    group.bench_function("render_broken", |b| {
        b.iter(|| linter.check(&broken).render(broken.sources.as_deref()));
    });
    group.finish();
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_lint
}
criterion_main!(benches);
