//! Figure 3 — document structure components: channels, event descriptors and
//! synchronization arcs laid out over time.
//!
//! Regenerates the per-channel column view for the Evening News and measures
//! the operations the figure implies: grouping events per channel, deriving
//! the default synchronization arcs from the tree, and solving the implied
//! schedule, as the number of channels/events grows.

use std::time::Duration;

use cmif::format::channel_view;
use cmif::news::evening_news;
use cmif::scheduler::{derive_constraints, ConstraintGraph, ScheduleOptions};
use cmif::synthetic::SyntheticNews;
use cmif_bench::banner;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_channels(c: &mut Criterion) {
    let doc = evening_news().unwrap();
    banner(
        "Figure 3: channels, events and arcs (Evening News)",
        &channel_view(&doc, &doc.catalog).unwrap(),
    );

    let mut group = c.benchmark_group("fig03_channels");
    for (stories, captions) in [(1usize, 5usize), (8, 10), (32, 20)] {
        let config = SyntheticNews {
            stories,
            captions_per_story: captions,
            ..SyntheticNews::default()
        };
        let doc = config.build().unwrap();
        let events = doc.leaves().len();
        group.bench_with_input(
            BenchmarkId::new("leaves_by_channel", events),
            &doc,
            |b, doc| b.iter(|| doc.leaves_by_channel().unwrap()),
        );
        group.bench_with_input(
            BenchmarkId::new("derive_default_arcs", events),
            &doc,
            |b, doc| {
                b.iter(|| {
                    derive_constraints(doc, &doc.catalog, &ScheduleOptions::default()).unwrap()
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("solve_schedule", events),
            &doc,
            |b, doc| {
                b.iter(|| {
                    ConstraintGraph::derive(doc, &doc.catalog, &ScheduleOptions::default())
                        .unwrap()
                        .solve(doc, &doc.catalog)
                        .unwrap()
                })
            },
        );
    }
    group.finish();
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_channels
}
criterion_main!(benches);
