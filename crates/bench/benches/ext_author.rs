//! Extension — live authoring: incremental re-solve vs cold full re-solve.
//!
//! CMIFed's edit-while-playing loop re-schedules a document after every
//! authoring gesture, so the cost that matters is *per edit*, not per
//! document: an author inserting one caption into a 64-story broadcast
//! should not pay a full constraint derivation plus Bellman–Ford over the
//! whole event-point graph. This bench prices both paths on the same edit
//! script — single-subtree insert/remove pairs rotating across stories —
//! at 4/16/64 stories:
//!
//! * `incremental` — [`EditSession::apply`] (dirty-region re-derive plus
//!   worklist fixpoint repair) followed by [`EditSession::solve_result`];
//! * `full` — [`DocRevision::apply`] followed by a cold
//!   [`ConstraintGraph::derive`] + `solve` of the edited document, the
//!   only option before the revision plane existed.
//!
//! The two paths produce identical `SolveResult`s (the `edit_sessions`
//! proptest pins that down; this bench asserts it once per size as a
//! sanity check), so the ratio is pure efficiency. The banner prints
//! edits/sec for both plus the speedup, and the probe is appended to
//! `BENCH_ext_author.json` — the acceptance bar is incremental ≥ 5× full
//! at 64 stories.

use std::sync::Arc;
use std::time::{Duration, Instant};

use cmif::core::edit::{DocRevision, Edit, NodeSpec};
use cmif::core::tree::Document;
use cmif::scheduler::{ConstraintGraph, EditSession, ScheduleOptions, SolveResult};
use cmif::synthetic::SyntheticNews;
use cmif_bench::banner;
use cmif_bench::trajectory::{self, TrajectoryRun};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn corpus(stories: usize) -> Arc<Document> {
    Arc::new(
        SyntheticNews::with_stories(stories)
            .build()
            .expect("synthetic news builds"),
    )
}

fn cold_solve(doc: &Document) -> SolveResult {
    ConstraintGraph::derive(doc, &doc.catalog, &ScheduleOptions::default())
        .expect("corpus derives")
        .solve(doc, &doc.catalog)
        .expect("corpus solves")
}

/// The `serial`-th edit of the script: an insert of a fresh caption into a
/// rotating story (even serials) or the removal of the node the previous
/// insert created (odd serials). Both are single-subtree edits — the
/// document returns to its original shape after every pair.
fn insert_edit(doc: &Document, stories: usize, serial: usize) -> Edit {
    let story = (serial / 2) % stories;
    let parent = doc
        .find(&format!("/story-{story}"))
        .expect("story par exists");
    Edit::InsertSubtree {
        parent,
        spec: NodeSpec::imm_text(format!("late-{serial}"), "breaking update")
            .on_channel("caption")
            .lasting_ms(2_500),
    }
}

/// Runs `rounds` insert/remove pairs through an [`EditSession`], solving
/// after every edit. Returns edits/sec.
fn incremental_edits_per_sec(doc: &Arc<Document>, stories: usize, rounds: usize) -> f64 {
    let catalog = doc.catalog.clone();
    let mut session = EditSession::begin(
        DocRevision::initial(Arc::clone(doc)),
        &catalog,
        ScheduleOptions::default(),
    )
    .expect("session opens");
    let started = Instant::now();
    for round in 0..rounds {
        let edit = insert_edit(session.revision().doc(), stories, round * 2);
        let delta = session.apply(&edit).expect("insert applies");
        session.solve_result().expect("insert solves");
        let inserted = delta.inserted.expect("insert reports its subtree");
        session
            .apply(&Edit::RemoveSubtree { node: inserted })
            .expect("remove applies");
        session.solve_result().expect("remove solves");
    }
    (rounds * 2) as f64 / started.elapsed().as_secs_f64()
}

/// The same edit script, but every edit pays a cold full re-solve of the
/// edited document. Returns edits/sec.
fn full_edits_per_sec(doc: &Arc<Document>, stories: usize, rounds: usize) -> f64 {
    let mut revision = DocRevision::initial(Arc::clone(doc));
    let started = Instant::now();
    for round in 0..rounds {
        let edit = insert_edit(revision.doc(), stories, round * 2);
        let (next, delta) = revision.apply(&edit).expect("insert applies");
        revision = next;
        cold_solve(revision.doc());
        let inserted = delta.inserted.expect("insert reports its subtree");
        let (next, _) = revision
            .apply(&Edit::RemoveSubtree { node: inserted })
            .expect("remove applies");
        revision = next;
        cold_solve(revision.doc());
    }
    (rounds * 2) as f64 / started.elapsed().as_secs_f64()
}

/// One-off equivalence spot check: the two paths agree on the edited
/// document (the `edit_sessions` proptest covers the general claim).
fn assert_equivalent(doc: &Arc<Document>, stories: usize) {
    let catalog = doc.catalog.clone();
    let mut session = EditSession::begin(
        DocRevision::initial(Arc::clone(doc)),
        &catalog,
        ScheduleOptions::default(),
    )
    .expect("session opens");
    let edit = insert_edit(doc, stories, 0);
    session.apply(&edit).expect("insert applies");
    let incremental = session.solve_result().expect("insert solves");
    let cold = cold_solve(session.revision().doc());
    assert_eq!(incremental, cold, "incremental must equal cold re-solve");
}

fn bench_author(c: &mut Criterion) {
    let mut run = TrajectoryRun::now("cargo bench ext_author");
    let mut lines = String::from("stories   incr edits/s   full edits/s   speedup\n");
    for stories in [4usize, 16, 64] {
        let doc = corpus(stories);
        assert_equivalent(&doc, stories);
        let rounds = if stories >= 64 { 24 } else { 64 };
        let incremental = incremental_edits_per_sec(&doc, stories, rounds);
        let full = full_edits_per_sec(&doc, stories, rounds);
        let speedup = incremental / full;
        lines.push_str(&format!(
            "{stories:<9} {incremental:<14.0} {full:<14.0} {speedup:.1}x\n"
        ));
        run = run
            .metric(
                format!("stories{stories}/incremental_edits_per_sec"),
                incremental,
            )
            .metric(format!("stories{stories}/full_edits_per_sec"), full)
            .metric(format!("stories{stories}/speedup"), speedup);
    }
    banner(
        "ext: live authoring (incremental repair vs cold re-solve per edit)",
        &lines,
    );
    match trajectory::record_run("ext_author", run) {
        Ok(path) => println!("perf trajectory appended to {}", path.display()),
        Err(e) => eprintln!("could not write the perf trajectory: {e}"),
    }

    // The gated targets.
    let mut group = c.benchmark_group("ext_author");
    for stories in [4usize, 64] {
        let doc = corpus(stories);
        group.bench_with_input(
            BenchmarkId::new("incremental_edit", stories),
            &doc,
            |b, doc| {
                let catalog = doc.catalog.clone();
                let mut session = EditSession::begin(
                    DocRevision::initial(Arc::clone(doc)),
                    &catalog,
                    ScheduleOptions::default(),
                )
                .expect("session opens");
                let mut serial = 0usize;
                b.iter(|| {
                    let edit = insert_edit(session.revision().doc(), stories, serial * 2);
                    let delta = session.apply(&edit).expect("insert applies");
                    session.solve_result().expect("insert solves");
                    session
                        .apply(&Edit::RemoveSubtree {
                            node: delta.inserted.expect("insert reports its subtree"),
                        })
                        .expect("remove applies");
                    session.solve_result().expect("remove solves");
                    serial += 1;
                });
            },
        );
        let doc = corpus(stories);
        group.bench_with_input(BenchmarkId::new("full_resolve", stories), &doc, |b, doc| {
            let mut revision = DocRevision::initial(Arc::clone(doc));
            let mut serial = 0usize;
            b.iter(|| {
                let edit = insert_edit(revision.doc(), stories, serial * 2);
                let (next, delta) = revision.apply(&edit).expect("insert applies");
                revision = next;
                cold_solve(revision.doc());
                let (next, _) = revision
                    .apply(&Edit::RemoveSubtree {
                        node: delta.inserted.expect("insert reports its subtree"),
                    })
                    .expect("remove applies");
                revision = next;
                cold_solve(revision.doc());
                serial += 1;
            });
        });
    }
    group.finish();
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_author
}
criterion_main!(benches);
