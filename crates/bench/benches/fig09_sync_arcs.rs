//! Figure 9 — the synchronization arc in tabular form
//! (`type source offset destination min_delay max_delay`).
//!
//! Regenerates the tabular form for the Evening News arcs and measures the
//! arc machinery itself: validation of the delay-sign rules, endpoint (path)
//! resolution, serialization, and parsing, for documents with growing arc
//! counts.

use std::time::Duration;

use cmif::core::arc::SyncArc;
use cmif::core::prelude::*;
use cmif::format::{parse_document, write_arc, write_document};
use cmif::news::evening_news;
use cmif_bench::banner;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

/// A flat document with `arcs` leaves, each carrying one explicit arc onto
/// its predecessor.
fn arc_heavy(arcs: usize) -> Document {
    let mut doc = DocumentBuilder::new("arc-heavy")
        .channel("caption", MediaKind::Text)
        .root_par(|root| {
            for i in 0..=arcs {
                root.imm_text(&format!("block-{i}"), "caption", "x", 1_000);
            }
        })
        .build()
        .unwrap();
    for i in 1..=arcs {
        let carrier = doc.find(&format!("/block-{i}")).unwrap();
        doc.add_arc(
            carrier,
            SyncArc::hard_start(format!("../block-{}", i - 1).as_str(), "")
                .with_offset(MediaTime::millis(200))
                .with_window(
                    DelayMs::from_millis(-50),
                    MaxDelay::Bounded(DelayMs::from_millis(100)),
                ),
        )
        .unwrap();
    }
    doc
}

fn bench_sync_arcs(c: &mut Criterion) {
    // Regenerate the artifact: the news arcs in the Figure 9 tabular form.
    let news = evening_news().unwrap();
    let mut table = String::from("type source offset destination min_delay max_delay\n");
    for (carrier, arc) in news.arcs() {
        table.push_str(&format!(
            "carried by {}: {}\n",
            news.path_of(*carrier).unwrap(),
            write_arc(arc)
        ));
    }
    banner("Figure 9: synchronization arcs of the Evening News", &table);

    let mut group = c.benchmark_group("fig09_sync_arcs");
    for arcs in [10usize, 100, 1_000] {
        let doc = arc_heavy(arcs);
        group.bench_with_input(BenchmarkId::new("validate_arcs", arcs), &doc, |b, doc| {
            b.iter(|| {
                for (_, arc) in doc.arcs() {
                    arc.validate().unwrap();
                }
            })
        });
        group.bench_with_input(
            BenchmarkId::new("resolve_endpoints", arcs),
            &doc,
            |b, doc| b.iter(|| doc.resolved_arcs().unwrap()),
        );
        group.bench_with_input(
            BenchmarkId::new("write_interchange", arcs),
            &doc,
            |b, doc| b.iter(|| write_document(doc).unwrap()),
        );
        let text = write_document(&doc).unwrap();
        group.bench_with_input(
            BenchmarkId::new("parse_interchange", arcs),
            &text,
            |b, text| b.iter(|| parse_document(text).unwrap()),
        );
    }
    group.finish();
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_sync_arcs
}
criterion_main!(benches);
